// Quickstart: build a continuous query, annotate it with update patterns,
// compile it for each execution strategy, and run it over a synthetic
// traffic trace.
//
//   $ ./quickstart
//
// The query is the paper's Figure 1 scenario: join two outgoing links on
// the source address, keeping only ftp connections, over 500-time-unit
// sliding windows, and materialize the result.

#include <cstdio>

#include "core/logical_plan.h"
#include "core/optimizer.h"
#include "core/physical_planner.h"
#include "exec/replay.h"
#include "workload/lbl_generator.h"

int main() {
  using namespace upa;

  // 1. Generate a workload: an LBL-style TCP connection trace split into
  //    two logical streams by outgoing link (one tuple per link per time
  //    unit; schema: duration, protocol, payload, src_ip, dst_ip).
  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 20000;
  cfg.num_sources = 500;
  const Trace trace = GenerateLblTrace(cfg);

  // 2. Describe the continuous query as a logical plan.
  const Time window = 500;
  auto link = [&](int id) {
    return MakeSelect(
        MakeWindow(MakeStream(id, LblSchema()), window),
        {Predicate{kColProtocol, CmpOp::kEq, Value{int64_t{kProtoFtp}}}});
  };
  PlanPtr plan = MakeJoin(link(0), link(1), kColSrcIp, kColSrcIp);

  // 3. Annotate every edge with its update pattern (Section 5.2).
  AnnotatePatterns(plan.get());
  std::printf("Annotated plan:\n%s\n", plan->ToString().c_str());

  // 4. Compile and run under each execution strategy; the answers are
  //    identical, the costs are not.
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    auto pipeline = BuildPipeline(*plan, mode);
    const ReplayMetrics m = ReplayTrace(trace, pipeline.get());
    std::printf(
        "%-7s  %7.3f ms / 1000 tuples   results in view: %zu   "
        "negative tuples processed: %llu\n",
        ExecModeName(mode).c_str(), m.ms_per_1000_tuples,
        pipeline->view().Size(),
        static_cast<unsigned long long>(m.stats.negatives_delivered));
  }

  // 5. Ask the optimizer what it thinks of the plan (Section 5.4).
  Catalog catalog;
  for (int s : {0, 1}) {
    StreamStats stats;
    stats.rate = 1.0;
    stats.columns[kColSrcIp].distinct = cfg.num_sources;
    stats.columns[kColProtocol].distinct = 5;
    stats.columns[kColProtocol].value_freq[Value{int64_t{kProtoFtp}}] = 0.03;
    catalog.streams[s] = stats;
  }
  const OptimizedPlan best = Optimize(*plan, catalog, ExecMode::kUpa);
  std::printf("\nOptimizer-estimated cost of the chosen plan: %.1f\n",
              best.cost);
  return 0;
}
