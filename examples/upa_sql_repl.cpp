// upa_sql: interactive text-SQL session shell over the binary wire
// protocol (src/net + src/sql/session). Connects to an engine_server
// started with --sql and executes one statement per input line:
//
//   ./examples/engine_server --port 0 --sql     # prints the bound port
//   ./examples/upa_sql --port <p>
//
//   upa> CREATE STREAM link0 (ts INT, src INT, bytes INT)
//   upa> REGISTER QUERY total AS SELECT COUNT(*) FROM link0 [RANGE 100]
//   upa> EXPLAIN SELECT COUNT(*) FROM link0 [RANGE 100]
//   upa> SUBSCRIBE total
//
// See src/sql/session/statement.h for the full dialect. Statement
// errors print the server's message plus its caret context (byte-offset
// anchored), and leave the session usable.
//
// Local meta-commands (handled client-side, never sent):
//   .rows <query>   print the local subscription mirror of <query>
//   .poll [ms]      drain pending subscription pushes (default 0 ms)
//   .quit           exit
//
// Non-interactive use: each -e <stmt> executes in order, then the shell
// exits (nonzero if any statement failed). scripts/ci.sh drives the
// loopback SQL smoke stage this way and diffs the output.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/tuple.h"
#include "net/client.h"

namespace {

using namespace upa;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port <p> [options]\n"
               "  --port <p>   engine_server wire-protocol port (required)\n"
               "  --host <h>   server host (default 127.0.0.1)\n"
               "  -e <stmt>    execute one statement and continue; with any\n"
               "               -e the shell never reads stdin and exits\n"
               "               nonzero if a statement failed (repeatable)\n"
               "  --help       this message\n",
               argv0);
  return 1;
}

bool ParseInt(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// Renders mirror rows sorted on their field values -- the stable form
/// the CI smoke stage diffs against.
void PrintRows(const std::vector<Tuple>& rows) {
  std::vector<std::string> lines;
  lines.reserve(rows.size());
  for (const Tuple& t : rows) {
    std::string line = "(";
    for (size_t i = 0; i < t.fields.size(); ++i) {
      if (i > 0) line += ", ";
      line += ToString(t.fields[i]);
    }
    line += ")";
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) std::printf("  %s\n", line.c_str());
  std::printf("  [%zu row%s]\n", lines.size(), lines.size() == 1 ? "" : "s");
}

/// Trims leading/trailing whitespace (statements keep internal offsets
/// valid because the server parses the text we send verbatim).
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

struct Shell {
  net::Client* client;
  /// SUBSCRIBE mirrors by query name, for `.rows`.
  std::map<std::string, net::SubscriptionMirror*> mirrors;

  /// Executes one line (statement or meta-command). Returns false on
  /// transport failure (connection unusable); statement-level failures
  /// print and set *stmt_failed.
  bool RunLine(const std::string& raw, bool* stmt_failed, bool* quit) {
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') return true;

    if (line[0] == '.') {
      return RunMeta(line, stmt_failed, quit);
    }

    std::string err;
    net::SqlExecResult r;
    if (!client->SqlExec(line, &r, &err)) {
      std::fprintf(stderr, "connection error: %s\n", err.c_str());
      return false;
    }
    if (!r.ok) {
      *stmt_failed = true;
      std::printf("error: %s\n", r.error.c_str());
      if (!r.context.empty()) std::printf("%s\n", r.context.c_str());
      return true;
    }
    if (!r.text.empty()) std::printf("%s\n", r.text.c_str());
    if (r.mirror != nullptr) {
      mirrors[r.mirror->query()] = r.mirror;
      PrintRows(r.mirror->Rows());
    }
    return true;
  }

  bool RunMeta(const std::string& line, bool* stmt_failed, bool* quit) {
    if (line == ".quit" || line == ".exit") {
      *quit = true;
      return true;
    }
    if (line.rfind(".poll", 0) == 0) {
      long ms = 0;
      const std::string arg = Trim(line.substr(5));
      if (!arg.empty() && (!ParseInt(arg.c_str(), &ms) || ms < 0)) {
        std::printf("usage: .poll [milliseconds]\n");
        *stmt_failed = true;
        return true;
      }
      std::string err;
      if (!client->PollEvents(static_cast<int>(ms), &err)) {
        std::fprintf(stderr, "connection error: %s\n", err.c_str());
        return false;
      }
      std::printf("polled\n");
      return true;
    }
    if (line.rfind(".rows", 0) == 0) {
      const std::string name = Trim(line.substr(5));
      auto it = mirrors.find(name);
      if (name.empty() || it == mirrors.end()) {
        std::printf("no subscription mirror for '%s' (SUBSCRIBE first)\n",
                    name.c_str());
        *stmt_failed = true;
        return true;
      }
      // Apply anything the server already pushed before rendering.
      std::string err;
      if (!client->PollEvents(0, &err)) {
        std::fprintf(stderr, "connection error: %s\n", err.c_str());
        return false;
      }
      if (it->second->dropped()) {
        std::printf("subscription to '%s' was dropped by the server\n",
                    name.c_str());
        mirrors.erase(it);
        *stmt_failed = true;
        return true;
      }
      PrintRows(it->second->Rows());
      return true;
    }
    std::printf("unknown meta-command '%s' (.rows, .poll, .quit)\n",
                line.c_str());
    *stmt_failed = true;
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  long port = -1;
  std::string host = "127.0.0.1";
  std::vector<std::string> scripted;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!has_value || !ParseInt(argv[++i], &port) || port < 1 ||
          port > 65535) {
        std::fprintf(stderr, "--port requires a port number\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--host") == 0) {
      if (!has_value) {
        std::fprintf(stderr, "--host requires a value\n");
        return Usage(argv[0]);
      }
      host = argv[++i];
    } else if (std::strcmp(arg, "-e") == 0) {
      if (!has_value) {
        std::fprintf(stderr, "-e requires a statement\n");
        return Usage(argv[0]);
      }
      scripted.push_back(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (port < 0) {
    std::fprintf(stderr, "--port is required\n");
    return Usage(argv[0]);
  }

  net::Client client;
  std::string err;
  if (!client.Connect(host, static_cast<int>(port), &err, "upa-sql")) {
    std::fprintf(stderr, "connect failed: %s\n", err.c_str());
    return 1;
  }

  Shell shell;
  shell.client = &client;
  bool any_failed = false;
  bool quit = false;

  if (!scripted.empty()) {
    for (const std::string& stmt : scripted) {
      std::printf("> %s\n", stmt.c_str());
      bool failed = false;
      if (!shell.RunLine(stmt, &failed, &quit)) return 1;
      any_failed = any_failed || failed;
      if (quit) break;
    }
    client.Close();
    return any_failed ? 1 : 0;
  }

  const bool tty = isatty(STDIN_FILENO) != 0;
  if (tty) {
    std::printf("connected to %s -- one statement per line, .quit exits\n",
                client.server_name().c_str());
  }
  std::string line;
  while (!quit) {
    if (tty) {
      std::printf("upa> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    bool failed = false;
    if (!shell.RunLine(line, &failed, &quit)) return 1;
    any_failed = any_failed || failed;
  }
  client.Close();
  // Interactive sessions exit 0; piped scripts report failures so CI
  // can assert on them.
  return (!tty && any_failed) ? 1 : 0;
}
