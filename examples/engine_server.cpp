// Engine server: the multi-query runtime end to end. Four continuous
// queries are registered from SQL text against a shared two-link LBL
// connection trace; the engine fans every arrival out to the queries
// bound to that link and executes each query on hash-partitioned shard
// workers (single-shard fallback when the plan is not partitionable).
//
//   telnet-pairs : sources with concurrent telnet sessions on both links
//                  (paper Query 1 shape) — partitioned on src_ip;
//   sources      : DISTINCT src_ip on link 0 (paper Query 2) —
//                  partitioned on src_ip;
//   proto-bytes  : SUM(payload) GROUP BY protocol — partitioned on the
//                  group column;
//   total        : COUNT(*) over link 0's window — a single-group
//                  aggregate, so the partitionability analysis reports
//                  the fallback and the query runs on one shard.
//
// Run from the build tree:  ./examples/engine_server

#include <cstdio>
#include <vector>

#include "engine/engine.h"
#include "workload/lbl_generator.h"

int main() {
  using namespace upa;

  EngineOptions opts;
  opts.default_shards = 4;
  Engine engine(opts);

  engine.catalog()->DeclareStream("link0", LblSchema());
  engine.catalog()->DeclareStream("link1", LblSchema());

  struct Spec {
    const char* name;
    const char* sql;
  };
  const std::vector<Spec> specs = {
      {"telnet-pairs",
       "SELECT link0.src_ip FROM link0 [RANGE 800], link1 [RANGE 800] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2"},
      {"sources", "SELECT DISTINCT src_ip FROM link0 [RANGE 800]"},
      {"proto-bytes",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 800] "
       "GROUP BY protocol"},
      {"total", "SELECT COUNT(*) FROM link0 [RANGE 800]"},
  };
  for (const Spec& spec : specs) {
    const RegisterResult r = engine.RegisterSql(spec.name, spec.sql);
    if (!r.ok) {
      std::fprintf(stderr, "register %s failed: %s\n", spec.name,
                   r.error.c_str());
      return 1;
    }
    std::printf("registered %-13s shards=%d  %s\n", r.name.c_str(), r.shards,
                r.partition_note.c_str());
  }

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 6000;
  cfg.num_sources = 200;
  cfg.source_zipf = 1.1;
  const Trace trace = GenerateLblTrace(cfg);
  std::printf("\ningesting %zu events over %lld time units...\n",
              trace.events.size(), static_cast<long long>(cfg.duration));

  // One shared input feed: every event is routed to all queries reading
  // its link. Report periodically through consistent view snapshots.
  const Time report_every = 2000;
  Time next_report = report_every;
  std::vector<Tuple> rows;
  for (const TraceEvent& e : trace.events) {
    engine.Ingest(e.stream, e.tuple);
    if (e.tuple.ts >= next_report) {
      next_report += report_every;
      std::printf("t=%-6lld", static_cast<long long>(engine.clock()));
      for (const Spec& spec : specs) {
        engine.Snapshot(spec.name, &rows);
        std::printf("  %s=%zu", spec.name, rows.size());
      }
      std::printf("\n");
    }
  }
  engine.Flush();

  std::printf("\n%s", engine.Metrics().ToString().c_str());

  std::printf("\nFinal proto-bytes window:\n");
  engine.Snapshot("proto-bytes", &rows);
  for (const Tuple& row : rows) {
    std::printf("  protocol %lld: %.0f bytes\n",
                static_cast<long long>(AsInt(row.fields[0])),
                AsDouble(row.fields[1]));
  }
  engine.Stop();
  return 0;
}
