// Engine server: the multi-query runtime end to end. Four continuous
// queries are registered from SQL text against a shared two-link LBL
// connection trace; the engine fans every arrival out to the queries
// bound to that link and executes each query on hash-partitioned shard
// workers (single-shard fallback when the plan is not partitionable).
//
//   telnet-pairs : sources with concurrent telnet sessions on both links
//                  (paper Query 1 shape) — partitioned on src_ip;
//   sources      : DISTINCT src_ip on link 0 (paper Query 2) —
//                  partitioned on src_ip;
//   proto-bytes  : SUM(payload) GROUP BY protocol — partitioned on the
//                  group column;
//   total        : COUNT(*) over link 0's window — a single-group
//                  aggregate, so the partitionability analysis reports
//                  the fallback and the query runs on one shard.
//
// Every query runs with the sampling profiler attached, so the final
// report includes the paper's Section 6.1 phase split, and the same
// numbers are rendered in Prometheus text exposition format.
//
// Run from the build tree:  ./examples/engine_server
// With a metrics endpoint:  ./examples/engine_server --listen 9090
// then                      curl http://localhost:9090/metrics
// Durable:                  ./examples/engine_server --durable-dir /tmp/upa
// ...and after a crash, add --recover to resume from the last checkpoint.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the ingest loop stops, the
// shard queues drain through a flush barrier, a final checkpoint is
// written (when durable), and the engine stops cleanly.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "workload/lbl_generator.h"

#include <netinet/in.h>
#include <sys/select.h>
#include <sys/socket.h>
#include <unistd.h>

namespace {

// Async-signal-safe shutdown request: the handler only sets the flag; the
// ingest and serve loops poll it and unwind normally.
volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int /*signum*/) { g_shutdown = 1; }

// Minimal single-threaded HTTP responder: serves `render()` to every
// connection for `seconds`, then returns. Good enough to demonstrate the
// exposition format against a real scraper; not a production server.
void ServeMetrics(int port, double seconds,
                  const std::function<std::string()>& render) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    std::perror("bind/listen");
    ::close(fd);
    return;
  }
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::printf("serving /metrics on http://localhost:%d for %.0f s\n", port,
              seconds);
  const auto deadline = upa::obs::NowNs() + static_cast<uint64_t>(seconds * 1e9);
  while (upa::obs::NowNs() < deadline && g_shutdown == 0) {
    // Accept with a timeout so the deadline is honored while idle.
    fd_set rfds;
    FD_ZERO(&rfds);
    FD_SET(fd, &rfds);
    timeval wait{};
    wait.tv_sec = 1;
    if (::select(fd + 1, &rfds, nullptr, nullptr, &wait) <= 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;
    char req[1024];
    const ssize_t n = ::recv(conn, req, sizeof(req) - 1, 0);
    const std::string request(req, n > 0 ? static_cast<size_t>(n) : 0);
    // Malformed or hostile request lines get an error response (400/404/
    // 405), never a crash — see HandleMetricsRequest and its tests.
    const std::string resp = upa::HandleMetricsRequest(request, render);
    (void)!::send(conn, resp.data(), resp.size(), 0);
    ::close(conn);
  }
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  int listen_port = 0;
  double listen_seconds = 30.0;
  std::string durable_dir;
  bool recover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--listen") == 0 && i + 1 < argc) {
      listen_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--listen-seconds") == 0 && i + 1 < argc) {
      listen_seconds = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--durable-dir") == 0 && i + 1 < argc) {
      durable_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--recover") == 0) {
      recover = true;
    }
  }
  if (recover && durable_dir.empty()) {
    std::fprintf(stderr, "--recover requires --durable-dir <dir>\n");
    return 1;
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  EngineOptions opts;
  opts.default_shards = 4;
  opts.profile_queries = true;  // Section 6.1 phase split in the report.
  opts.durability.dir = durable_dir;

  struct Spec {
    const char* name;
    const char* sql;
  };
  const std::vector<Spec> specs = {
      {"telnet-pairs",
       "SELECT link0.src_ip FROM link0 [RANGE 800], link1 [RANGE 800] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2"},
      {"sources", "SELECT DISTINCT src_ip FROM link0 [RANGE 800]"},
      {"proto-bytes",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 800] "
       "GROUP BY protocol"},
      {"total", "SELECT COUNT(*) FROM link0 [RANGE 800]"},
  };

  std::unique_ptr<Engine> engine_ptr;
  if (recover) {
    // Sources and queries come back from the checkpoint + WAL replay; a
    // fresh registration pass would just collide with the restored names.
    durability::RecoveryReport report;
    engine_ptr = Engine::StartFromCheckpoint(durable_dir, opts, &report);
    std::printf("recovery: %s (%.3f s, %llu queries, %llu WAL records "
                "replayed)\n",
                report.note.c_str(), report.seconds,
                static_cast<unsigned long long>(report.queries_restored),
                static_cast<unsigned long long>(report.wal_records_replayed));
  } else {
    engine_ptr = std::make_unique<Engine>(opts);
  }
  Engine& engine = *engine_ptr;

  if (engine.catalog()->Find("link0") == nullptr) {
    // WAL-logged declarations (plain catalog calls when not durable).
    engine.DeclareStream("link0", LblSchema());
    engine.DeclareStream("link1", LblSchema());
  }
  for (const Spec& spec : specs) {
    PipelineStats probe;
    if (engine.Stats(spec.name, &probe)) continue;  // Restored.
    const RegisterResult r = engine.RegisterSql(spec.name, spec.sql);
    if (!r.ok) {
      std::fprintf(stderr, "register %s failed: %s\n", spec.name,
                   r.error.c_str());
      return 1;
    }
    std::printf("registered %-13s shards=%d  %s\n", r.name.c_str(), r.shards,
                r.partition_note.c_str());
  }

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 6000;
  cfg.num_sources = 200;
  cfg.source_zipf = 1.1;
  const Trace trace = GenerateLblTrace(cfg);
  std::printf("\ningesting %zu events over %lld time units...\n",
              trace.events.size(), static_cast<long long>(cfg.duration));

  // One shared input feed: every event is routed to all queries reading
  // its link. Report periodically through consistent view snapshots; a
  // durable run also checkpoints at each report boundary, so a kill
  // mid-ingest loses at most the WAL suffix past the last barrier.
  const Time report_every = 2000;
  Time next_report = report_every;
  std::vector<Tuple> rows;
  for (const TraceEvent& e : trace.events) {
    if (g_shutdown != 0) {
      std::printf("\nshutdown requested; draining...\n");
      break;
    }
    engine.Ingest(e.stream, e.tuple);
    if (e.tuple.ts >= next_report) {
      next_report += report_every;
      std::printf("t=%-6lld", static_cast<long long>(engine.clock()));
      for (const Spec& spec : specs) {
        engine.Snapshot(spec.name, &rows);
        std::printf("  %s=%zu", spec.name, rows.size());
      }
      std::printf("\n");
      if (!durable_dir.empty()) {
        std::string err;
        if (!engine.Checkpoint(&err)) {
          std::fprintf(stderr, "checkpoint failed: %s\n", err.c_str());
        }
      }
    }
  }
  engine.Flush();

  std::printf("\n%s", engine.Metrics().ToString().c_str());

  std::printf("\nFinal proto-bytes window:\n");
  engine.Snapshot("proto-bytes", &rows);
  for (const Tuple& row : rows) {
    std::printf("  protocol %lld: %.0f bytes\n",
                static_cast<long long>(AsInt(row.fields[0])),
                AsDouble(row.fields[1]));
  }

  // Prometheus text exposition: engine metrics plus whatever the process
  // registered in the global registry.
  auto render = [&engine] {
    return engine.Metrics().ToPrometheus() +
           obs::MetricsRegistry::Global().RenderPrometheus();
  };
  if (g_shutdown == 0) {
    if (listen_port > 0) {
      ServeMetrics(listen_port, listen_seconds, render);
    } else {
      std::printf("\n--- /metrics exposition (run with --listen <port> to "
                  "serve over HTTP) ---\n%s",
                  render().c_str());
    }
  }
  // Graceful exit: the queues are drained (Flush above barriers every
  // shard), so a final checkpoint captures everything ingested.
  if (!durable_dir.empty()) {
    std::string err;
    if (engine.Checkpoint(&err)) {
      std::printf("final checkpoint written to %s\n", durable_dir.c_str());
    } else {
      std::fprintf(stderr, "final checkpoint failed: %s\n", err.c_str());
    }
  }
  engine.Stop();
  std::printf(g_shutdown != 0 ? "graceful shutdown complete\n" : "done\n");
  return 0;
}
