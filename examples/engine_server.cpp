// Engine server: the multi-query runtime end to end, now fronted by the
// src/net network service layer.
//
// Two modes:
//
//  - Demo mode (default): four continuous queries are registered from
//    SQL text against a shared two-link LBL connection trace; the engine
//    fans every arrival out to the queries bound to that link and
//    executes each query on hash-partitioned shard workers. The final
//    report includes the Section 6.1 phase split, and the same numbers
//    are rendered in Prometheus exposition format (serve them with
//    --listen <port>).
//
//  - Serve mode (--port <p>): the engine accepts remote clients speaking
//    the binary wire protocol (see src/net/protocol.h): declarations,
//    SQL registration, ingest, barriers, snapshots and pattern-aware
//    result subscriptions. Pass --port 0 for an ephemeral port; the
//    bound address is printed as "listening on 127.0.0.1:<port>". Pair
//    with examples/engine_client, which drives the LBL workload over
//    TCP and can differentially check the server against the reference
//    evaluator.
//
// Both modes serve HTTP /metrics through the same net::Server poll loop
// as the binary protocol -- there is exactly one socket implementation
// in the tree.
//
//   ./examples/engine_server
//   ./examples/engine_server --listen 9090          # then curl /metrics
//   ./examples/engine_server --port 0               # wire-protocol server
//   ./examples/engine_server --durable-dir /tmp/upa # WAL + checkpoints
//   ...after a crash, add --recover to resume from the last checkpoint.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the ingest loop (or serve
// loop) stops, the shard queues drain through a flush barrier, a final
// checkpoint is written (when durable), and the engine stops cleanly.
//
// Unknown or malformed flags are rejected with a usage message and a
// nonzero exit -- a typo must not silently run the wrong experiment.

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "workload/lbl_generator.h"

namespace {

// Async-signal-safe shutdown request: the handler only sets the flag; the
// ingest and serve loops poll it and unwind normally.
volatile std::sig_atomic_t g_shutdown = 0;

void OnSignal(int /*signum*/) { g_shutdown = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port <p>            serve the binary wire protocol on port p\n"
      "                        (0 = ephemeral; bound port is printed)\n"
      "  --listen <p>          serve HTTP /metrics on port p\n"
      "  --listen-seconds <s>  demo mode: keep /metrics up for s seconds\n"
      "                        after the run (default 30)\n"
      "  --serve-seconds <s>   serve mode: exit after s seconds\n"
      "                        (default: run until SIGINT/SIGTERM)\n"
      "  --sql                 serve mode: accept text-SQL sessions\n"
      "                        (kSqlExec; pair with examples/upa_sql)\n"
      "  --session-lease-ms <ms>\n"
      "                        serve mode: keep a disconnected subscriber's\n"
      "                        session resumable for ms milliseconds\n"
      "                        (default 10000; 0 disables resumption;\n"
      "                        UPA_SESSION_LEASE_MS overrides the default)\n"
      "  --replay-ring-bytes <n>\n"
      "                        serve mode: per-session replay buffer cap in\n"
      "                        bytes (default 1048576). A resume whose\n"
      "                        deltas were evicted from the ring falls back\n"
      "                        to a consistent snapshot catch-up instead of\n"
      "                        replay -- same answers, more bytes; watch\n"
      "                        upa_net_replay_ring_overruns_total\n"
      "  --heartbeat-ms <ms>   serve mode: ping idle subscribers every ms\n"
      "                        milliseconds and detach peers silent for 4x\n"
      "                        that long into their lease (default 0 = off)\n"
      "  --durable-dir <dir>   enable WAL + checkpoints under dir\n"
      "  --recover             resume from the last checkpoint in\n"
      "                        --durable-dir instead of starting fresh\n"
      "  --help                this message\n",
      argv0);
  return 1;
}

bool ParseInt(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseDouble(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  long serve_port = -1;     // --port; -1 = demo mode.
  long metrics_port = -1;   // --listen; -1 = disabled.
  double listen_seconds = 30.0;
  double serve_seconds = 0.0;  // 0 = until signal.
  std::string durable_dir;
  bool recover = false;
  bool enable_sql = false;
  long session_lease_ms = 10000;  // Serve mode default: resumption on.
  long replay_ring_bytes = 1 << 20;
  long heartbeat_ms = 0;
  if (const char* env = std::getenv("UPA_SESSION_LEASE_MS")) {
    ParseInt(env, &session_lease_ms);
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!has_value || !ParseInt(argv[++i], &serve_port) || serve_port < 0 ||
          serve_port > 65535) {
        std::fprintf(stderr, "--port requires a port number (0-65535)\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--listen") == 0) {
      if (!has_value || !ParseInt(argv[++i], &metrics_port) ||
          metrics_port < 0 || metrics_port > 65535) {
        std::fprintf(stderr, "--listen requires a port number (0-65535)\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--listen-seconds") == 0) {
      if (!has_value || !ParseDouble(argv[++i], &listen_seconds) ||
          listen_seconds < 0) {
        std::fprintf(stderr, "--listen-seconds requires a duration\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--serve-seconds") == 0) {
      if (!has_value || !ParseDouble(argv[++i], &serve_seconds) ||
          serve_seconds < 0) {
        std::fprintf(stderr, "--serve-seconds requires a duration\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--durable-dir") == 0) {
      if (!has_value) {
        std::fprintf(stderr, "--durable-dir requires a directory\n");
        return Usage(argv[0]);
      }
      durable_dir = argv[++i];
    } else if (std::strcmp(arg, "--session-lease-ms") == 0) {
      if (!has_value || !ParseInt(argv[++i], &session_lease_ms) ||
          session_lease_ms < 0) {
        std::fprintf(stderr,
                     "--session-lease-ms requires a duration in ms\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--replay-ring-bytes") == 0) {
      if (!has_value || !ParseInt(argv[++i], &replay_ring_bytes) ||
          replay_ring_bytes < 0) {
        std::fprintf(stderr, "--replay-ring-bytes requires a byte count\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--heartbeat-ms") == 0) {
      if (!has_value || !ParseInt(argv[++i], &heartbeat_ms) ||
          heartbeat_ms < 0) {
        std::fprintf(stderr, "--heartbeat-ms requires a duration in ms\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--recover") == 0) {
      recover = true;
    } else if (std::strcmp(arg, "--sql") == 0) {
      enable_sql = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (recover && durable_dir.empty()) {
    std::fprintf(stderr, "--recover requires --durable-dir <dir>\n");
    return Usage(argv[0]);
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  EngineOptions opts;
  opts.default_shards = 4;
  opts.profile_queries = true;  // Section 6.1 phase split in the report.
  opts.durability.dir = durable_dir;

  std::unique_ptr<Engine> engine_ptr;
  if (recover) {
    // Sources and queries come back from the checkpoint + WAL replay; a
    // fresh registration pass would just collide with the restored names.
    durability::RecoveryReport report;
    engine_ptr = Engine::StartFromCheckpoint(durable_dir, opts, &report);
    std::printf("recovery: %s (%.3f s, %llu queries, %llu WAL records "
                "replayed)\n",
                report.note.c_str(), report.seconds,
                static_cast<unsigned long long>(report.queries_restored),
                static_cast<unsigned long long>(report.wal_records_replayed));
  } else {
    engine_ptr = std::make_unique<Engine>(opts);
  }
  Engine& engine = *engine_ptr;

  // --- Serve mode: remote clients drive the engine over the wire. ---
  if (serve_port >= 0) {
    net::ServerOptions sopts;
    sopts.port = static_cast<int>(serve_port);
    sopts.metrics_port = static_cast<int>(metrics_port);
    sopts.enable_sql = enable_sql;
    sopts.session_lease_ms = session_lease_ms;
    sopts.replay_ring_bytes = static_cast<size_t>(replay_ring_bytes);
    sopts.heartbeat_ms = static_cast<int>(heartbeat_ms);
    net::Server server(&engine, sopts);
    std::string err;
    if (!server.Start(&err)) {
      std::fprintf(stderr, "server start failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("listening on 127.0.0.1:%d\n", server.port());
    if (session_lease_ms > 0) {
      std::printf("session resumption: lease %ld ms, replay ring %ld bytes"
                  "%s\n",
                  session_lease_ms, replay_ring_bytes,
                  heartbeat_ms > 0 ? ", heartbeats on" : "");
    } else {
      std::printf("session resumption: disabled\n");
    }
    if (server.metrics_port() >= 0) {
      std::printf("serving /metrics on http://127.0.0.1:%d/metrics\n",
                  server.metrics_port());
    }
    std::fflush(stdout);  // Launchers parse the bound port from stdout.
    const auto started = obs::NowNs();
    while (g_shutdown == 0) {
      if (serve_seconds > 0 &&
          obs::NowNs() - started >
              static_cast<uint64_t>(serve_seconds * 1e9)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("shutting down...\n");
    server.Stop();
    engine.Flush();
    if (!durable_dir.empty()) {
      std::string cerr;
      if (engine.Checkpoint(&cerr)) {
        std::printf("final checkpoint written to %s\n", durable_dir.c_str());
      } else {
        std::fprintf(stderr, "final checkpoint failed: %s\n", cerr.c_str());
      }
    }
    engine.Stop();
    std::printf("graceful shutdown complete\n");
    return 0;
  }

  // --- Demo mode: built-in LBL workload. ---
  struct Spec {
    const char* name;
    const char* sql;
  };
  const std::vector<Spec> specs = {
      {"telnet-pairs",
       "SELECT link0.src_ip FROM link0 [RANGE 800], link1 [RANGE 800] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2"},
      {"sources", "SELECT DISTINCT src_ip FROM link0 [RANGE 800]"},
      {"proto-bytes",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 800] "
       "GROUP BY protocol"},
      {"total", "SELECT COUNT(*) FROM link0 [RANGE 800]"},
  };

  if (engine.catalog()->Find("link0") == nullptr) {
    // WAL-logged declarations (plain catalog calls when not durable).
    engine.DeclareStream("link0", LblSchema());
    engine.DeclareStream("link1", LblSchema());
  }
  for (const Spec& spec : specs) {
    PipelineStats probe;
    if (engine.Stats(spec.name, &probe)) continue;  // Restored.
    const RegisterResult r = engine.RegisterSql(spec.name, spec.sql);
    if (!r.ok) {
      std::fprintf(stderr, "register %s failed: %s\n", spec.name,
                   r.error.c_str());
      return 1;
    }
    std::printf("registered %-13s shards=%d  %s\n", r.name.c_str(), r.shards,
                r.partition_note.c_str());
  }

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 6000;
  cfg.num_sources = 200;
  cfg.source_zipf = 1.1;
  const Trace trace = GenerateLblTrace(cfg);
  std::printf("\ningesting %zu events over %lld time units...\n",
              trace.events.size(), static_cast<long long>(cfg.duration));

  // One shared input feed: every event is routed to all queries reading
  // its link. Report periodically through consistent view snapshots; a
  // durable run also checkpoints at each report boundary, so a kill
  // mid-ingest loses at most the WAL suffix past the last barrier.
  const Time report_every = 2000;
  Time next_report = report_every;
  std::vector<Tuple> rows;
  for (const TraceEvent& e : trace.events) {
    if (g_shutdown != 0) {
      std::printf("\nshutdown requested; draining...\n");
      break;
    }
    engine.Ingest(e.stream, e.tuple);
    if (e.tuple.ts >= next_report) {
      next_report += report_every;
      std::printf("t=%-6lld", static_cast<long long>(engine.clock()));
      for (const Spec& spec : specs) {
        engine.Snapshot(spec.name, &rows);
        std::printf("  %s=%zu", spec.name, rows.size());
      }
      std::printf("\n");
      if (!durable_dir.empty()) {
        std::string err;
        if (!engine.Checkpoint(&err)) {
          std::fprintf(stderr, "checkpoint failed: %s\n", err.c_str());
        }
      }
    }
  }
  engine.Flush();

  std::printf("\n%s", engine.Metrics().ToString().c_str());

  std::printf("\nFinal proto-bytes window:\n");
  engine.Snapshot("proto-bytes", &rows);
  for (const Tuple& row : rows) {
    std::printf("  protocol %lld: %.0f bytes\n",
                static_cast<long long>(AsInt(row.fields[0])),
                AsDouble(row.fields[1]));
  }

  // Prometheus text exposition: engine metrics plus whatever the process
  // registered in the global registry. Served through the same net
  // machinery as the wire protocol (net::Server's default renderer).
  if (g_shutdown == 0) {
    if (metrics_port >= 0) {
      net::ServerOptions sopts;
      sopts.port = -1;  // /metrics only.
      sopts.metrics_port = static_cast<int>(metrics_port);
      net::Server server(&engine, sopts);
      std::string err;
      if (!server.Start(&err)) {
        std::fprintf(stderr, "metrics server failed: %s\n", err.c_str());
        return 1;
      }
      std::printf("serving /metrics on http://127.0.0.1:%d/metrics for "
                  "%.0f s\n",
                  server.metrics_port(), listen_seconds);
      std::fflush(stdout);
      const auto deadline =
          obs::NowNs() + static_cast<uint64_t>(listen_seconds * 1e9);
      while (obs::NowNs() < deadline && g_shutdown == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      server.Stop();
    } else {
      std::printf("\n--- /metrics exposition (run with --listen <port> to "
                  "serve over HTTP) ---\n%s",
                  (engine.Metrics().ToPrometheus() +
                   obs::MetricsRegistry::Global().RenderPrometheus())
                      .c_str());
    }
  }
  // Graceful exit: the queues are drained (Flush above barriers every
  // shard), so a final checkpoint captures everything ingested.
  if (!durable_dir.empty()) {
    std::string err;
    if (engine.Checkpoint(&err)) {
      std::printf("final checkpoint written to %s\n", durable_dir.c_str());
    } else {
      std::fprintf(stderr, "final checkpoint failed: %s\n", err.c_str());
    }
  }
  engine.Stop();
  std::printf(g_shutdown != 0 ? "graceful shutdown complete\n" : "done\n");
  return 0;
}
