// Non-retroactive relations: the paper's Section 4.1 financial-ticker
// example. A stream of stock quotes is joined with a table mapping stock
// symbols to company names. The table is metadata: when a company is
// delisted, previously reported quotes must NOT be retracted, and a newly
// listed symbol must not join with quotes that arrived before the listing.
//
// The example runs the same query twice -- once with the table declared as
// an NRR and once as a retroactive relation -- and prints the visible
// difference: the retroactive variant emits negative tuples on deletion
// and back-joins on insertion.

#include <cstdio>

#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "exec/pipeline.h"

namespace {

using namespace upa;

Schema QuoteSchema() {
  return Schema({Field{"symbol_id", ValueType::kInt},
                 Field{"price_cents", ValueType::kInt}});
}

Schema ListingSchema() {
  return Schema({Field{"symbol_id", ValueType::kInt},
                 Field{"company", ValueType::kString}});
}

Tuple Quote(Time ts, int64_t symbol, int64_t price) {
  Tuple t;
  t.ts = ts;
  t.fields = {Value{symbol}, Value{price}};
  return t;
}

Tuple Listing(Time ts, int64_t symbol, const char* company, bool remove) {
  Tuple t;
  t.ts = ts;
  t.negative = remove;
  t.fields = {Value{symbol}, Value{std::string(company)}};
  return t;
}

void RunScenario(bool retroactive) {
  std::printf("=== symbol table as %s ===\n",
              retroactive ? "retroactive relation (R-join, STR output)"
                          : "non-retroactive relation (NRR-join)");
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, QuoteSchema()), 1000),
                          MakeRelation(1, ListingSchema(), retroactive),
                          /*stream col=*/0, /*table col=*/0);
  AnnotatePatterns(plan.get());
  std::printf("%s", plan->ToString().c_str());
  auto pipeline = BuildPipeline(*plan, ExecMode::kUpa);

  auto feed = [&](const Tuple& t, int stream) {
    pipeline->Tick(t.ts);
    pipeline->Ingest(stream, t);
  };

  feed(Listing(1, 100, "Acme Corp", false), 1);   // List Acme.
  feed(Quote(5, 100, 1250), 0);                   // Acme quote: joins.
  feed(Quote(6, 200, 900), 0);                    // Unknown symbol: nothing.
  feed(Listing(10, 200, "Globex Inc", false), 1); // List Globex at t=10.
  feed(Quote(15, 200, 905), 0);                   // Globex quote: joins.
  feed(Listing(20, 100, "Acme Corp", true), 1);   // Delist Acme at t=20.
  feed(Quote(25, 100, 1300), 0);                  // Acme gone: no result.

  std::printf("answer set at t=25:\n");
  for (const Tuple& row : pipeline->view().Snapshot()) {
    std::printf("  %s @ %lld cents (quote ts irrelevant)\n",
                AsString(row.fields[3]).c_str(),
                static_cast<long long>(AsInt(row.fields[1])));
  }
  std::printf("negative result tuples produced: %llu\n\n",
              static_cast<unsigned long long>(
                  pipeline->stats().results_neg));
}

}  // namespace

int main() {
  // NRR semantics: the Acme quote from t=5 is still in the answer at t=25
  // even though Acme was delisted at t=20, and the Globex listing at t=10
  // did not retroactively join the t=6 quote (Definition 2).
  RunScenario(/*retroactive=*/false);
  // Retroactive semantics: the delisting retracts the old Acme result
  // with a negative tuple; the Globex listing back-joins the t=6 quote.
  RunScenario(/*retroactive=*/true);
  return 0;
}
