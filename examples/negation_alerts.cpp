// Strict non-monotonic alerting: "sources that used link 0 but not link 1
// in the last W time units" -- the paper's Query 3 (negation), run both
// with the direct/partitioned strategy and with the hybrid negative-tuple
// strategy of Section 5.4.3, which the planner selects when premature
// expirations dominate.

#include <cstdio>

#include "core/cost_model.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "exec/replay.h"
#include "ops/negation.h"
#include "workload/lbl_generator.h"

int main() {
  using namespace upa;

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 15000;
  cfg.num_sources = 400;
  const Trace trace = GenerateLblTrace(cfg);
  const Time window = 600;

  auto src = [&](int link) {
    return MakeProject(MakeWindow(MakeStream(link, LblSchema()), window),
                       {kColSrcIp});
  };
  PlanPtr plan = MakeNegate(src(0), src(1), 0, 0);
  AnnotatePatterns(plan.get());
  std::printf("alert query:\n%s\n", plan->ToString().c_str());

  // The cost model predicts how often answers die prematurely (an arrival
  // on link 1 kills an alert before its window expiry), which drives the
  // Section 5.4.3 storage choice for STR results.
  Catalog catalog;
  for (int s : {0, 1}) {
    StreamStats stats;
    stats.rate = 1.0;
    stats.columns[kColSrcIp].distinct = cfg.num_sources;
    catalog.streams[s] = stats;
  }
  std::printf("estimated premature-expiration frequency: %.2f\n\n",
              EstimatePrematureFrequency(*plan, catalog));

  for (StrStrategy strategy :
       {StrStrategy::kPartitioned, StrStrategy::kNegativeTuples}) {
    PlannerOptions options;
    options.str_strategy = strategy;
    auto pipeline = BuildPipeline(*plan, ExecMode::kUpa, options);
    const ReplayMetrics m = ReplayTrace(trace, pipeline.get());
    const NegationOp* negation = nullptr;
    for (int i = 0; i < pipeline->num_operators(); ++i) {
      negation = dynamic_cast<const NegationOp*>(&pipeline->op(i));
      if (negation != nullptr) break;
    }
    std::printf(
        "%-28s %7.3f ms / 1000 tuples | live alerts %zu | premature "
        "negatives %llu\n",
        strategy == StrStrategy::kPartitioned
            ? "partitioned view (direct)"
            : "hybrid negative-tuple view",
        m.ms_per_1000_tuples, pipeline->view().Size(),
        static_cast<unsigned long long>(negation->premature_negatives()));
  }

  std::printf(
      "\nBoth strategies maintain the identical alert set; the paper's E3\n"
      "experiment sweeps the value-domain overlap to find their crossover.\n");
  return 0;
}
