// Declarative front end: compile CQL-style query text into
// update-pattern-annotated plans and run them over a synthetic traffic
// trace. Pass one or more queries as command-line arguments, or run with
// none to execute a demo set.
//
//   $ ./sql_shell "SELECT DISTINCT src_ip FROM link0 [RANGE 500]"
//
// Registered sources: link0, link1 (LBL-style connection streams with
// columns duration, protocol, payload, src_ip, dst_ip).

#include <cstdio>
#include <string>
#include <vector>

#include "core/physical_planner.h"
#include "exec/replay.h"
#include "sql/parser.h"
#include "workload/lbl_generator.h"

int main(int argc, char** argv) {
  using namespace upa;

  std::map<std::string, SourceDecl> sources;
  sources["link0"] = SourceDecl{0, LblSchema(), SourceKind::kStream};
  sources["link1"] = SourceDecl{1, LblSchema(), SourceKind::kStream};

  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) queries.emplace_back(argv[i]);
  if (queries.empty()) {
    queries = {
        "SELECT DISTINCT src_ip FROM link0 [RANGE 500]",
        "SELECT protocol, SUM(payload) FROM link0 [RANGE 500] "
        "GROUP BY protocol",
        "SELECT link0.src_ip FROM link0 [RANGE 500], link1 [RANGE 500] "
        "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 1",
        "SELECT src_ip FROM link0 [RANGE 500] EXCEPT "
        "SELECT src_ip FROM link1 [RANGE 500]",
    };
  }

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 5000;
  cfg.num_sources = 300;
  const Trace trace = GenerateLblTrace(cfg);

  for (const std::string& text : queries) {
    std::printf("query> %s\n", text.c_str());
    const ParseResult parsed = ParseQuery(text, sources);
    if (!parsed.ok()) {
      std::printf("  error: %s\n\n", parsed.error.c_str());
      continue;
    }
    std::printf("%s", parsed.plan->ToString().c_str());
    auto pipeline = BuildPipeline(*parsed.plan, ExecMode::kUpa);
    const ReplayMetrics m = ReplayTrace(trace, pipeline.get());
    std::printf("  -> %zu result tuples, %.3f ms / 1000 tuples\n",
                pipeline->view().Size(), m.ms_per_1000_tuples);
    size_t shown = 0;
    for (const Tuple& t : pipeline->view().Snapshot()) {
      if (++shown > 5) {
        std::printf("     ...\n");
        break;
      }
      std::printf("     %s\n", t.ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
