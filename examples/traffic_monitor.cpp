// Traffic monitoring: the paper's motivating Internet-traffic-analysis
// scenario. Three continuous queries run side by side over an LBL-style
// connection trace:
//
//   Q-distinct : the distinct source addresses on link 0 (paper Query 2);
//   Q-bytes    : per-protocol total payload over a sliding window;
//   Q-pairs    : sources seen on both links (paper Query 4: distinct +
//                join), i.e. hosts talking through both outgoing links.
//
// Each query is compiled with the update-pattern-aware planner (UPA) and
// its answer is printed periodically, demonstrating the library's
// materialized views.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "exec/pipeline.h"
#include "workload/lbl_generator.h"

int main() {
  using namespace upa;

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 6000;
  cfg.num_sources = 200;
  cfg.source_zipf = 1.1;
  const Trace trace = GenerateLblTrace(cfg);
  const Time window = 800;

  // Q-distinct: DISTINCT src_ip over link 0's window.
  PlanPtr q_distinct = MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, LblSchema()), window),
                  {kColSrcIp}),
      {0});

  // Q-bytes: SELECT protocol, SUM(payload) GROUP BY protocol.
  PlanPtr q_bytes = MakeGroupBy(MakeWindow(MakeStream(1, LblSchema()), window),
                                kColProtocol, AggKind::kSum, kColPayload);

  // Q-pairs: distinct sources per link, joined on src_ip.
  auto distinct_side = [&](int link) {
    return MakeDistinct(
        MakeProject(MakeWindow(MakeStream(link, LblSchema()), window),
                    {kColSrcIp}),
        {0});
  };
  PlanPtr q_pairs = MakeJoin(distinct_side(0), distinct_side(1), 0, 0);

  struct Running {
    const char* name;
    PlanPtr plan;
    std::unique_ptr<Pipeline> pipeline;
  };
  std::vector<Running> queries;
  queries.push_back({"distinct-sources", std::move(q_distinct), nullptr});
  queries.push_back({"bytes-by-protocol", std::move(q_bytes), nullptr});
  queries.push_back({"sources-on-both-links", std::move(q_pairs), nullptr});
  for (Running& q : queries) {
    AnnotatePatterns(q.plan.get());
    q.pipeline = BuildPipeline(*q.plan, ExecMode::kUpa);
  }

  // Drive all pipelines from one trace; report periodically.
  const Time report_every = 1000;
  Time next_report = report_every;
  for (const TraceEvent& e : trace.events) {
    for (Running& q : queries) {
      q.pipeline->Tick(e.tuple.ts);
      if (q.pipeline->HasStream(e.stream)) {
        q.pipeline->Ingest(e.stream, e.tuple);
      }
    }
    if (e.tuple.ts >= next_report) {
      next_report += report_every;
      std::printf("t=%-6lld", static_cast<long long>(e.tuple.ts));
      for (const Running& q : queries) {
        std::printf("  %s=%zu", q.name, q.pipeline->view().Size());
      }
      std::printf("\n");
    }
  }

  // Show the group-by view's content: payload bytes per protocol.
  std::printf("\nFinal bytes-by-protocol window:\n");
  for (const Tuple& row : queries[1].pipeline->view().Snapshot()) {
    std::printf("  protocol %lld: %.0f bytes\n",
                static_cast<long long>(AsInt(row.fields[0])),
                AsDouble(row.fields[1]));
  }
  std::printf("\nPer-pipeline state footprint (bytes):\n");
  for (const Running& q : queries) {
    std::printf("  %-22s %zu\n", q.name, q.pipeline->StateBytes());
  }
  return 0;
}
