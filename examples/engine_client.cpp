// Engine client: drives the LBL connection-trace workload against a
// running engine_server over the binary wire protocol (src/net). It
// declares the two link streams, registers the demo queries, subscribes
// to each (pattern-aware result subscriptions), ships the trace in
// ingest batches, and periodically barriers the engine.
//
// Because the server publishes subscription watermarks before acking a
// Flush, each client-side SubscriptionMirror equals the server-side
// materialized view at every barrier. With --check this is verified
// three ways at each report boundary:
//
//   mirror rows  ==  Snapshot RPC rows  ==  reference-evaluator oracle
//
// (the oracle recomputes the answer from scratch per Definition 1, so a
// mismatch is a real correctness bug, not drift). The client exits
// nonzero on any mismatch -- scripts/ci.sh runs this as the loopback
// smoke stage.
//
//   ./examples/engine_server --port 0          # prints the bound port
//   ./examples/engine_client --port <p> --check
//
// Unknown or malformed flags are rejected with usage and exit 1.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/logical_plan.h"
#include "net/client.h"
#include "ref/reference.h"
#include "sql/catalog.h"
#include "workload/lbl_generator.h"

namespace {

using namespace upa;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port <p> [options]\n"
               "  --port <p>      engine_server wire-protocol port\n"
               "  --host <h>      server host (default 127.0.0.1)\n"
               "  --duration <t>  trace length in time units (default 4000)\n"
               "  --check         differentially verify each barrier\n"
               "                  (mirror == snapshot RPC == oracle)\n"
               "  --help          this message\n",
               argv0);
  return 1;
}

bool ParseInt(const char* s, long* out) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// Sorted multiset of field vectors -- the canonical comparison form
/// (mirrors testing_util::Canonical).
std::vector<std::vector<Value>> Canonical(const std::vector<Tuple>& tuples) {
  std::vector<std::vector<Value>> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) out.push_back(t.fields);
  std::sort(out.begin(), out.end());
  return out;
}

struct Spec {
  const char* name;
  const char* sql;
};

const std::vector<Spec>& Specs() {
  static const std::vector<Spec> specs = {
      {"telnet-pairs",
       "SELECT link0.src_ip FROM link0 [RANGE 800], link1 [RANGE 800] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2"},
      {"sources", "SELECT DISTINCT src_ip FROM link0 [RANGE 800]"},
      {"proto-bytes",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 800] "
       "GROUP BY protocol"},
      {"total", "SELECT COUNT(*) FROM link0 [RANGE 800]"},
  };
  return specs;
}

/// Local oracle for one query: an identical catalog + plan, replaying
/// the same trace events the client ships over the wire.
struct Oracle {
  PlanPtr plan;
  std::unique_ptr<ReferenceEvaluator> ref;
  std::set<int> streams;  ///< Local stream ids the plan reads.
};

}  // namespace

int main(int argc, char** argv) {
  long port = -1;
  std::string host = "127.0.0.1";
  long duration = 4000;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else if (std::strcmp(arg, "--port") == 0) {
      if (!has_value || !ParseInt(argv[++i], &port) || port < 1 ||
          port > 65535) {
        std::fprintf(stderr, "--port requires a port number\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--host") == 0) {
      if (!has_value) {
        std::fprintf(stderr, "--host requires a value\n");
        return Usage(argv[0]);
      }
      host = argv[++i];
    } else if (std::strcmp(arg, "--duration") == 0) {
      if (!has_value || !ParseInt(argv[++i], &duration) || duration < 1) {
        std::fprintf(stderr, "--duration requires a positive length\n");
        return Usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage(argv[0]);
    }
  }
  if (port < 0) {
    std::fprintf(stderr, "--port is required\n");
    return Usage(argv[0]);
  }

  net::Client client;
  std::string err;
  if (!client.Connect(host, static_cast<int>(port), &err)) {
    std::fprintf(stderr, "connect failed: %s\n", err.c_str());
    return 1;
  }
  std::printf("connected to %s (%s:%ld)\n", client.server_name().c_str(),
              host.c_str(), port);

  // Remote declarations (idempotent against a recovered server).
  const int64_t link0 = client.DeclareStream("link0", LblSchema(), &err);
  const int64_t link1 = client.DeclareStream("link1", LblSchema(), &err);
  if (link0 < 0 || link1 < 0) {
    std::fprintf(stderr, "declare failed: %s\n", err.c_str());
    return 1;
  }
  const int64_t remote_id[2] = {link0, link1};

  // Register + subscribe. The ack's update pattern decides the delivery
  // contract the mirror replays (and what we can pin: monotonic/WKS
  // subscriptions must never carry a negative tuple).
  std::vector<net::SubscriptionMirror*> mirrors;
  for (const Spec& spec : Specs()) {
    net::ClientQueryInfo info;
    if (!client.RegisterQuery(spec.name, spec.sql, 0, &info, &err)) {
      std::fprintf(stderr, "register %s failed: %s\n", spec.name,
                   err.c_str());
      return 1;
    }
    net::SubscriptionMirror* sub = client.Subscribe(spec.name, &err);
    if (sub == nullptr) {
      std::fprintf(stderr, "subscribe %s failed: %s\n", spec.name,
                   err.c_str());
      return 1;
    }
    mirrors.push_back(sub);
    std::printf("registered %-13s shards=%d pattern=%s  %s\n",
                info.name.c_str(), info.shards,
                PatternName(info.pattern).c_str(),
                info.partition_note.c_str());
  }

  // Local oracles (only with --check: EvalAt is intentionally O(history)).
  std::vector<Oracle> oracles;
  int local_id[2] = {0, 1};
  SourceCatalog catalog;
  if (check) {
    local_id[0] = catalog.DeclareStream("link0", LblSchema());
    local_id[1] = catalog.DeclareStream("link1", LblSchema());
    for (const Spec& spec : Specs()) {
      ParseResult p = catalog.Compile(spec.sql);
      if (!p.ok()) {
        std::fprintf(stderr, "oracle compile %s failed: %s\n", spec.name,
                     p.error.c_str());
        return 1;
      }
      Oracle o;
      o.plan = std::move(p.plan);
      const std::function<void(const PlanNode&)> collect =
          [&o, &collect](const PlanNode& n) {
            if (n.kind == PlanOpKind::kStream) o.streams.insert(n.stream_id);
            for (const auto& c : n.children) collect(*c);
          };
      collect(*o.plan);
      o.ref = std::make_unique<ReferenceEvaluator>(o.plan.get());
      oracles.push_back(std::move(o));
    }
  }

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = duration;
  cfg.num_sources = 200;
  cfg.source_zipf = 1.1;
  const Trace trace = GenerateLblTrace(cfg);
  std::printf("ingesting %zu events over %ld time units...\n",
              trace.events.size(), duration);

  const Time report_every = 1000;
  Time next_report = report_every;
  int failures = 0;

  const auto compare_all = [&]() {
    for (size_t qi = 0; qi < Specs().size(); ++qi) {
      const Spec& spec = Specs()[qi];
      std::vector<Tuple> snap;
      Time at = 0;
      if (!client.Snapshot(spec.name, &snap, &at, &err)) {
        std::fprintf(stderr, "snapshot %s failed: %s\n", spec.name,
                     err.c_str());
        ++failures;
        continue;
      }
      const auto mirror_rows = Canonical(mirrors[qi]->Rows());
      const auto snap_rows = Canonical(snap);
      if (mirror_rows != snap_rows) {
        std::fprintf(stderr,
                     "MISMATCH %s at t=%lld: mirror %zu rows != snapshot "
                     "%zu rows\n",
                     spec.name, static_cast<long long>(at),
                     mirror_rows.size(), snap_rows.size());
        ++failures;
      }
      if (check) {
        const auto want = Canonical(oracles[qi].ref->EvalAt(at));
        if (snap_rows != want) {
          std::fprintf(stderr,
                       "MISMATCH %s at t=%lld: engine %zu rows != oracle "
                       "%zu rows\n",
                       spec.name, static_cast<long long>(at),
                       snap_rows.size(), want.size());
          ++failures;
        }
      }
      // Section 5.2 pin: only STR result streams may carry deletions.
      const UpdatePattern p = mirrors[qi]->pattern();
      if ((p == UpdatePattern::kMonotonic || p == UpdatePattern::kWeakest) &&
          mirrors[qi]->negatives_applied() != 0) {
        std::fprintf(stderr, "VIOLATION %s: %s subscription carried %llu "
                             "negative tuples\n",
                     spec.name, PatternName(p).c_str(),
                     static_cast<unsigned long long>(
                         mirrors[qi]->negatives_applied()));
        ++failures;
      }
    }
  };

  std::vector<std::pair<uint32_t, Tuple>> batch;
  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    // Ship whole timestamp groups: Definition 1 constrains the answer at
    // tau only once all inputs at tau are processed, so barriers (and
    // comparisons) happen at group boundaries.
    const Time ts = trace.events[i].tuple.ts;
    while (i < n && trace.events[i].tuple.ts == ts) {
      const TraceEvent& e = trace.events[i];
      batch.emplace_back(static_cast<uint32_t>(remote_id[e.stream]),
                         e.tuple);
      if (check) {
        for (Oracle& o : oracles) {
          if (o.streams.count(local_id[e.stream]) > 0) {
            o.ref->Observe(local_id[e.stream], e.tuple);
          }
        }
      }
      ++i;
    }
    if (batch.size() >= 512 || ts >= next_report || i == n) {
      if (!client.IngestBatch(batch, &err)) {
        std::fprintf(stderr, "ingest failed: %s\n", err.c_str());
        return 1;
      }
      batch.clear();
    }
    if (ts >= next_report || i == n) {
      while (next_report <= ts) next_report += report_every;
      if (!client.Flush(&err)) {
        std::fprintf(stderr, "flush failed: %s\n", err.c_str());
        return 1;
      }
      std::printf("t=%-6lld", static_cast<long long>(ts));
      for (size_t qi = 0; qi < mirrors.size(); ++qi) {
        std::printf("  %s=%zu", Specs()[qi].name, mirrors[qi]->Rows().size());
      }
      std::printf("\n");
      compare_all();
    }
  }

  for (net::SubscriptionMirror* sub : mirrors) {
    client.Unsubscribe(sub, &err);
  }
  client.Close();

  if (failures > 0) {
    std::fprintf(stderr, "%d check(s) FAILED\n", failures);
    return 1;
  }
  std::printf(check ? "all differential checks passed\n" : "done\n");
  return 0;
}
