# Empty compiler generated dependencies file for bench_q3_negation.
# This may be replaced when dependencies are built.
