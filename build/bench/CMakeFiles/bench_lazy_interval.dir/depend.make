# Empty dependencies file for bench_lazy_interval.
# This may be replaced when dependencies are built.
