file(REMOVE_RECURSE
  "CMakeFiles/bench_lazy_interval.dir/bench_lazy_interval.cc.o"
  "CMakeFiles/bench_lazy_interval.dir/bench_lazy_interval.cc.o.d"
  "bench_lazy_interval"
  "bench_lazy_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lazy_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
