file(REMOVE_RECURSE
  "CMakeFiles/bench_q5_rewritings.dir/bench_q5_rewritings.cc.o"
  "CMakeFiles/bench_q5_rewritings.dir/bench_q5_rewritings.cc.o.d"
  "bench_q5_rewritings"
  "bench_q5_rewritings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q5_rewritings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
