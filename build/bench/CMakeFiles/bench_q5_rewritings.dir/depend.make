# Empty dependencies file for bench_q5_rewritings.
# This may be replaced when dependencies are built.
