file(REMOVE_RECURSE
  "CMakeFiles/bench_q4_distinct_join.dir/bench_q4_distinct_join.cc.o"
  "CMakeFiles/bench_q4_distinct_join.dir/bench_q4_distinct_join.cc.o.d"
  "bench_q4_distinct_join"
  "bench_q4_distinct_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q4_distinct_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
