# Empty dependencies file for bench_q4_distinct_join.
# This may be replaced when dependencies are built.
