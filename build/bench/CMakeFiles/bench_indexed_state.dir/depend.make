# Empty dependencies file for bench_indexed_state.
# This may be replaced when dependencies are built.
