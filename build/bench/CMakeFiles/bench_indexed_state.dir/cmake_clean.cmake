file(REMOVE_RECURSE
  "CMakeFiles/bench_indexed_state.dir/bench_indexed_state.cc.o"
  "CMakeFiles/bench_indexed_state.dir/bench_indexed_state.cc.o.d"
  "bench_indexed_state"
  "bench_indexed_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_indexed_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
