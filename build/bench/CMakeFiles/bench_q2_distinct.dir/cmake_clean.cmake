file(REMOVE_RECURSE
  "CMakeFiles/bench_q2_distinct.dir/bench_q2_distinct.cc.o"
  "CMakeFiles/bench_q2_distinct.dir/bench_q2_distinct.cc.o.d"
  "bench_q2_distinct"
  "bench_q2_distinct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q2_distinct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
