# Empty dependencies file for bench_q2_distinct.
# This may be replaced when dependencies are built.
