file(REMOVE_RECURSE
  "CMakeFiles/bench_dupelim_memory.dir/bench_dupelim_memory.cc.o"
  "CMakeFiles/bench_dupelim_memory.dir/bench_dupelim_memory.cc.o.d"
  "bench_dupelim_memory"
  "bench_dupelim_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dupelim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
