# Empty dependencies file for bench_dupelim_memory.
# This may be replaced when dependencies are built.
