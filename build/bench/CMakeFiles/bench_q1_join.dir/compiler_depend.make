# Empty compiler generated dependencies file for bench_q1_join.
# This may be replaced when dependencies are built.
