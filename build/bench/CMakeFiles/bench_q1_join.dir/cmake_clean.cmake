file(REMOVE_RECURSE
  "CMakeFiles/bench_q1_join.dir/bench_q1_join.cc.o"
  "CMakeFiles/bench_q1_join.dir/bench_q1_join.cc.o.d"
  "bench_q1_join"
  "bench_q1_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q1_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
