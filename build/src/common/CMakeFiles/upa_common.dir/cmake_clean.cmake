file(REMOVE_RECURSE
  "CMakeFiles/upa_common.dir/key.cc.o"
  "CMakeFiles/upa_common.dir/key.cc.o.d"
  "CMakeFiles/upa_common.dir/rng.cc.o"
  "CMakeFiles/upa_common.dir/rng.cc.o.d"
  "CMakeFiles/upa_common.dir/schema.cc.o"
  "CMakeFiles/upa_common.dir/schema.cc.o.d"
  "CMakeFiles/upa_common.dir/tuple.cc.o"
  "CMakeFiles/upa_common.dir/tuple.cc.o.d"
  "CMakeFiles/upa_common.dir/value.cc.o"
  "CMakeFiles/upa_common.dir/value.cc.o.d"
  "libupa_common.a"
  "libupa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
