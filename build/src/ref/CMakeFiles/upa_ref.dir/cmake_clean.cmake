file(REMOVE_RECURSE
  "CMakeFiles/upa_ref.dir/reference.cc.o"
  "CMakeFiles/upa_ref.dir/reference.cc.o.d"
  "libupa_ref.a"
  "libupa_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
