file(REMOVE_RECURSE
  "libupa_ref.a"
)
