# Empty dependencies file for upa_ref.
# This may be replaced when dependencies are built.
