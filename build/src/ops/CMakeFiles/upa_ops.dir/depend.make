# Empty dependencies file for upa_ops.
# This may be replaced when dependencies are built.
