file(REMOVE_RECURSE
  "CMakeFiles/upa_ops.dir/distinct.cc.o"
  "CMakeFiles/upa_ops.dir/distinct.cc.o.d"
  "CMakeFiles/upa_ops.dir/groupby.cc.o"
  "CMakeFiles/upa_ops.dir/groupby.cc.o.d"
  "CMakeFiles/upa_ops.dir/intersect.cc.o"
  "CMakeFiles/upa_ops.dir/intersect.cc.o.d"
  "CMakeFiles/upa_ops.dir/join.cc.o"
  "CMakeFiles/upa_ops.dir/join.cc.o.d"
  "CMakeFiles/upa_ops.dir/negation.cc.o"
  "CMakeFiles/upa_ops.dir/negation.cc.o.d"
  "CMakeFiles/upa_ops.dir/predicate.cc.o"
  "CMakeFiles/upa_ops.dir/predicate.cc.o.d"
  "CMakeFiles/upa_ops.dir/relation_join.cc.o"
  "CMakeFiles/upa_ops.dir/relation_join.cc.o.d"
  "CMakeFiles/upa_ops.dir/stateless.cc.o"
  "CMakeFiles/upa_ops.dir/stateless.cc.o.d"
  "CMakeFiles/upa_ops.dir/window.cc.o"
  "CMakeFiles/upa_ops.dir/window.cc.o.d"
  "libupa_ops.a"
  "libupa_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
