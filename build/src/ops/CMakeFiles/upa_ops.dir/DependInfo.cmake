
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/distinct.cc" "src/ops/CMakeFiles/upa_ops.dir/distinct.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/distinct.cc.o.d"
  "/root/repo/src/ops/groupby.cc" "src/ops/CMakeFiles/upa_ops.dir/groupby.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/groupby.cc.o.d"
  "/root/repo/src/ops/intersect.cc" "src/ops/CMakeFiles/upa_ops.dir/intersect.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/intersect.cc.o.d"
  "/root/repo/src/ops/join.cc" "src/ops/CMakeFiles/upa_ops.dir/join.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/join.cc.o.d"
  "/root/repo/src/ops/negation.cc" "src/ops/CMakeFiles/upa_ops.dir/negation.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/negation.cc.o.d"
  "/root/repo/src/ops/predicate.cc" "src/ops/CMakeFiles/upa_ops.dir/predicate.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/predicate.cc.o.d"
  "/root/repo/src/ops/relation_join.cc" "src/ops/CMakeFiles/upa_ops.dir/relation_join.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/relation_join.cc.o.d"
  "/root/repo/src/ops/stateless.cc" "src/ops/CMakeFiles/upa_ops.dir/stateless.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/stateless.cc.o.d"
  "/root/repo/src/ops/window.cc" "src/ops/CMakeFiles/upa_ops.dir/window.cc.o" "gcc" "src/ops/CMakeFiles/upa_ops.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/upa_state.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
