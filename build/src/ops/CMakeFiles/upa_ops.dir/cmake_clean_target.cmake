file(REMOVE_RECURSE
  "libupa_ops.a"
)
