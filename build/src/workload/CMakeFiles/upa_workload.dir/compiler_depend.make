# Empty compiler generated dependencies file for upa_workload.
# This may be replaced when dependencies are built.
