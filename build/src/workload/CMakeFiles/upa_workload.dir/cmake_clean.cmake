file(REMOVE_RECURSE
  "CMakeFiles/upa_workload.dir/lbl_generator.cc.o"
  "CMakeFiles/upa_workload.dir/lbl_generator.cc.o.d"
  "CMakeFiles/upa_workload.dir/trace.cc.o"
  "CMakeFiles/upa_workload.dir/trace.cc.o.d"
  "libupa_workload.a"
  "libupa_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
