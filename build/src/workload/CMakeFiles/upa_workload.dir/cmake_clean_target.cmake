file(REMOVE_RECURSE
  "libupa_workload.a"
)
