
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/state/buffer.cc" "src/state/CMakeFiles/upa_state.dir/buffer.cc.o" "gcc" "src/state/CMakeFiles/upa_state.dir/buffer.cc.o.d"
  "/root/repo/src/state/hash_buffer.cc" "src/state/CMakeFiles/upa_state.dir/hash_buffer.cc.o" "gcc" "src/state/CMakeFiles/upa_state.dir/hash_buffer.cc.o.d"
  "/root/repo/src/state/indexed_buffer.cc" "src/state/CMakeFiles/upa_state.dir/indexed_buffer.cc.o" "gcc" "src/state/CMakeFiles/upa_state.dir/indexed_buffer.cc.o.d"
  "/root/repo/src/state/list_buffer.cc" "src/state/CMakeFiles/upa_state.dir/list_buffer.cc.o" "gcc" "src/state/CMakeFiles/upa_state.dir/list_buffer.cc.o.d"
  "/root/repo/src/state/partitioned_buffer.cc" "src/state/CMakeFiles/upa_state.dir/partitioned_buffer.cc.o" "gcc" "src/state/CMakeFiles/upa_state.dir/partitioned_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
