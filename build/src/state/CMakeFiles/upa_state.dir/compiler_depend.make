# Empty compiler generated dependencies file for upa_state.
# This may be replaced when dependencies are built.
