file(REMOVE_RECURSE
  "CMakeFiles/upa_state.dir/buffer.cc.o"
  "CMakeFiles/upa_state.dir/buffer.cc.o.d"
  "CMakeFiles/upa_state.dir/hash_buffer.cc.o"
  "CMakeFiles/upa_state.dir/hash_buffer.cc.o.d"
  "CMakeFiles/upa_state.dir/indexed_buffer.cc.o"
  "CMakeFiles/upa_state.dir/indexed_buffer.cc.o.d"
  "CMakeFiles/upa_state.dir/list_buffer.cc.o"
  "CMakeFiles/upa_state.dir/list_buffer.cc.o.d"
  "CMakeFiles/upa_state.dir/partitioned_buffer.cc.o"
  "CMakeFiles/upa_state.dir/partitioned_buffer.cc.o.d"
  "libupa_state.a"
  "libupa_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
