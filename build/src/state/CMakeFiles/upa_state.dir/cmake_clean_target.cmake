file(REMOVE_RECURSE
  "libupa_state.a"
)
