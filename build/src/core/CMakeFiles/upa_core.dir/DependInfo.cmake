
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/upa_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/upa_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/logical_plan.cc" "src/core/CMakeFiles/upa_core.dir/logical_plan.cc.o" "gcc" "src/core/CMakeFiles/upa_core.dir/logical_plan.cc.o.d"
  "/root/repo/src/core/optimizer.cc" "src/core/CMakeFiles/upa_core.dir/optimizer.cc.o" "gcc" "src/core/CMakeFiles/upa_core.dir/optimizer.cc.o.d"
  "/root/repo/src/core/physical_planner.cc" "src/core/CMakeFiles/upa_core.dir/physical_planner.cc.o" "gcc" "src/core/CMakeFiles/upa_core.dir/physical_planner.cc.o.d"
  "/root/repo/src/core/update_pattern.cc" "src/core/CMakeFiles/upa_core.dir/update_pattern.cc.o" "gcc" "src/core/CMakeFiles/upa_core.dir/update_pattern.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/upa_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/upa_state.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/upa_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/upa_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
