file(REMOVE_RECURSE
  "CMakeFiles/upa_core.dir/cost_model.cc.o"
  "CMakeFiles/upa_core.dir/cost_model.cc.o.d"
  "CMakeFiles/upa_core.dir/logical_plan.cc.o"
  "CMakeFiles/upa_core.dir/logical_plan.cc.o.d"
  "CMakeFiles/upa_core.dir/optimizer.cc.o"
  "CMakeFiles/upa_core.dir/optimizer.cc.o.d"
  "CMakeFiles/upa_core.dir/physical_planner.cc.o"
  "CMakeFiles/upa_core.dir/physical_planner.cc.o.d"
  "CMakeFiles/upa_core.dir/update_pattern.cc.o"
  "CMakeFiles/upa_core.dir/update_pattern.cc.o.d"
  "libupa_core.a"
  "libupa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
