file(REMOVE_RECURSE
  "CMakeFiles/upa_exec.dir/pipeline.cc.o"
  "CMakeFiles/upa_exec.dir/pipeline.cc.o.d"
  "CMakeFiles/upa_exec.dir/replay.cc.o"
  "CMakeFiles/upa_exec.dir/replay.cc.o.d"
  "CMakeFiles/upa_exec.dir/view.cc.o"
  "CMakeFiles/upa_exec.dir/view.cc.o.d"
  "libupa_exec.a"
  "libupa_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
