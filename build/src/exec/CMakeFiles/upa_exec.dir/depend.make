# Empty dependencies file for upa_exec.
# This may be replaced when dependencies are built.
