file(REMOVE_RECURSE
  "libupa_exec.a"
)
