file(REMOVE_RECURSE
  "libupa_sql.a"
)
