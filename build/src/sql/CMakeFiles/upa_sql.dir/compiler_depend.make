# Empty compiler generated dependencies file for upa_sql.
# This may be replaced when dependencies are built.
