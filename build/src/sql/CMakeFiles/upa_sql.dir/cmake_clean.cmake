file(REMOVE_RECURSE
  "CMakeFiles/upa_sql.dir/parser.cc.o"
  "CMakeFiles/upa_sql.dir/parser.cc.o.d"
  "libupa_sql.a"
  "libupa_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upa_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
