file(REMOVE_RECURSE
  "CMakeFiles/traffic_monitor.dir/traffic_monitor.cpp.o"
  "CMakeFiles/traffic_monitor.dir/traffic_monitor.cpp.o.d"
  "traffic_monitor"
  "traffic_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
