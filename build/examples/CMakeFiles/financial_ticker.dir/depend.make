# Empty dependencies file for financial_ticker.
# This may be replaced when dependencies are built.
