file(REMOVE_RECURSE
  "CMakeFiles/financial_ticker.dir/financial_ticker.cpp.o"
  "CMakeFiles/financial_ticker.dir/financial_ticker.cpp.o.d"
  "financial_ticker"
  "financial_ticker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_ticker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
