file(REMOVE_RECURSE
  "CMakeFiles/negation_alerts.dir/negation_alerts.cpp.o"
  "CMakeFiles/negation_alerts.dir/negation_alerts.cpp.o.d"
  "negation_alerts"
  "negation_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/negation_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
