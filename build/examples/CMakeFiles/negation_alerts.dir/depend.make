# Empty dependencies file for negation_alerts.
# This may be replaced when dependencies are built.
