# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/state_test[1]_include.cmake")
include("/root/repo/build/tests/ops_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/reference_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/random_plan_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
