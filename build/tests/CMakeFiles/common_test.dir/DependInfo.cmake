
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/common_test.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/upa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/upa_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/upa_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/ops/CMakeFiles/upa_ops.dir/DependInfo.cmake"
  "/root/repo/build/src/state/CMakeFiles/upa_state.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/upa_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/upa_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/upa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
