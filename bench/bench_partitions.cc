// Experiment E6: the number-of-partitions parameter of the partitioned
// state buffer (Section 5.3.2 / Figure 7): "adding more partitions
// improves insertion and deletion times (there is less state to scan),
// but increases the space requirements as each partition is stored as a
// separate structure."
//
// Runs the Query 1 (ftp) plan under UPA at a fixed window, sweeping the
// partition count. Expected shape: execution time falls steeply from
// P=1 (a single sorted list, scanned on every insertion) and flattens;
// reported state bytes grow with P.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

void BM_Partitions(benchmark::State& state) {
  const Time window = 20000;
  auto side = [&](int link) {
    return MakeSelect(
        MakeWindow(MakeStream(link, LblSchema()), window),
        {Predicate{kColProtocol, CmpOp::kEq, Value{int64_t{kProtoFtp}}}});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  PlannerOptions options;
  options.num_partitions = static_cast<int>(state.range(0));
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, "BM_Partitions", {state.range(0)}, *plan, ExecMode::kUpa,
           options, trace);
  state.counters["partitions"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_Partitions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(50)
    ->Arg(100)
    ->Arg(500)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("partitions");
