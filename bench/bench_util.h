#ifndef UPA_BENCH_BENCH_UTIL_H_
#define UPA_BENCH_BENCH_UTIL_H_

#include <map>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"
#include "core/cost_model.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "exec/replay.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace bench_util {

/// The experiments replay, per Section 6.1, a fixed-rate trace whose
/// length scales with the window size so that the windows fill and then
/// slide for at least twice their span.
inline Time TraceDurationFor(Time window) {
  return std::max<Time>(3 * window, 6000);
}

/// Cached trace generation (several benchmarks share the same trace).
/// `zipf` overrides the source-address skew (the generator's default is
/// 1.0; the E14 skew sweep varies it from uniform to hot-key-dominated).
inline const Trace& LblTrace(int links, Time duration, int sources = 1000,
                             uint64_t seed = 42, double zipf = 1.0) {
  struct Key {
    int links;
    Time duration;
    int sources;
    uint64_t seed;
    double zipf;
    bool operator<(const Key& o) const {
      return std::tie(links, duration, sources, seed, zipf) <
             std::tie(o.links, o.duration, o.sources, o.seed, o.zipf);
    }
  };
  static std::map<Key, Trace>* cache = new std::map<Key, Trace>();
  const Key key{links, duration, sources, seed, zipf};
  auto it = cache->find(key);
  if (it == cache->end()) {
    LblTraceConfig cfg;
    cfg.num_links = links;
    cfg.duration = duration;
    cfg.num_sources = sources;
    cfg.seed = seed;
    cfg.source_zipf = zipf;
    it = cache->emplace(key, GenerateLblTrace(cfg)).first;
  }
  return it->second;
}

/// Catalog matching the generator's statistics, for optimizer benches.
inline Catalog LblCatalog(int links, int sources) {
  Catalog catalog;
  for (int s = 0; s < links; ++s) {
    StreamStats stats;
    stats.rate = 1.0;
    stats.columns[kColSrcIp].distinct = sources;
    stats.columns[kColProtocol].distinct = 5;
    stats.columns[kColProtocol].value_freq[Value{int64_t{kProtoFtp}}] = 0.03;
    stats.columns[kColProtocol].value_freq[Value{int64_t{kProtoTelnet}}] =
        0.30;
    catalog.streams[s] = stats;
  }
  return catalog;
}

/// Replays `trace` through a fresh pipeline for `plan` and reports the
/// paper's metric (execution time per 1000 tuples) plus state/result
/// counters through the google-benchmark counter mechanism, and records
/// the run (with the profiler's Section 6.1 phase split, unless
/// UPA_BENCH_PROFILE=0) into BENCH_<name>.json. `family` and `args` name
/// the run in the JSON the same way google-benchmark names it on the
/// console ("family/arg0/arg1"). Call from a benchmark body with
/// ->UseManualTime()->Iterations(1).
inline void RunQuery(benchmark::State& state, const std::string& family,
                     std::vector<int64_t> args, const PlanNode& plan,
                     ExecMode mode, const PlannerOptions& options,
                     const Trace& trace, const std::string& label = {},
                     const ReplayOptions& replay_options = {}) {
  const std::string run_label = label.empty() ? ExecModeName(mode) : label;
  for (auto _ : state) {
    auto pipeline = BuildPipeline(plan, mode, options);
    bench_json::Collector& collector = bench_json::Collector::Global();
    if (collector.profile_enabled()) {
      obs::ProfilerOptions popts;
      popts.sample_interval = collector.sample_interval();
      pipeline->EnableProfiling(popts);
    }
    const ReplayMetrics m = ReplayTrace(trace, pipeline.get(), replay_options);
    state.SetIterationTime(m.wall_seconds);
    state.counters["ms_per_1k"] = m.ms_per_1000_tuples;
    if (m.latency_measured) {
      state.counters["p99_us"] = m.latency_ns.Percentile(99.0) / 1e3;
      state.counters["p50_us"] = m.latency_ns.Percentile(50.0) / 1e3;
    }
    state.counters["results"] =
        static_cast<double>(pipeline->view().Size());
    state.counters["neg_tuples"] =
        static_cast<double>(m.stats.negatives_delivered);
    state.counters["state_KB"] =
        static_cast<double>(m.max_state_bytes) / 1024.0;
    state.counters["state_tuples"] =
        static_cast<double>(m.max_state_tuples);
    if (m.profiled) {
      state.counters["proc_ms"] = m.profile.phases.processing_ns / 1e6;
      state.counters["ins_ms"] = m.profile.phases.insertion_ns / 1e6;
      state.counters["exp_ms"] = m.profile.phases.expiration_ns / 1e6;
    }

    bench_json::Run run;
    run.family = family;
    run.name = family;
    for (int64_t a : args) run.name += "/" + std::to_string(a);
    run.label = run_label;
    run.args = args;
    run.FillFromReplay(m);
    run.counters["results"] = static_cast<double>(pipeline->view().Size());
    if (m.latency_measured) {
      run.counters["p99_us"] = m.latency_ns.Percentile(99.0) / 1e3;
      run.counters["p50_us"] = m.latency_ns.Percentile(50.0) / 1e3;
    }
    // Heavy-light coverage for the skew experiments: how much of the
    // probe mass the materialized heavy partition absorbed.
    const HeavyLightStats hl = pipeline->CollectHeavyLight();
    if (hl.heavy_probe_hits + hl.light_probes > 0) {
      run.counters["heavy_keys"] = static_cast<double>(hl.heavy_keys);
      run.counters["heavy_hits"] = static_cast<double>(hl.heavy_probe_hits);
      run.counters["light_probes"] = static_cast<double>(hl.light_probes);
    }
    collector.Add(std::move(run));
  }
  state.SetLabel(run_label);
}

/// Window-size sweep used across the experiments (Section 6.1: windows of
/// 2,000 to 200,000 time units at ~1 tuple per link per time unit). The
/// sweep is trimmed at the top relative to the paper because the DIRECT
/// baseline's sequential scans are quadratic in the window size -- by
/// W=20,000 the orderings and growth trends are unambiguous, and pushing
/// further only multiplies the DIRECT runtime (at W=50,000 a single
/// DIRECT run of Query 1 takes minutes while UPA stays in milliseconds).
inline const std::vector<Time>& WindowSweep() {
  static const std::vector<Time>* sweep =
      new std::vector<Time>{2000, 5000, 10000, 20000};
  return *sweep;
}

inline ExecMode ModeOf(int64_t arg) {
  switch (arg) {
    case 0:
      return ExecMode::kNegativeTuple;
    case 1:
      return ExecMode::kDirect;
    default:
      return ExecMode::kUpa;
  }
}

}  // namespace bench_util
}  // namespace upa

#endif  // UPA_BENCH_BENCH_UTIL_H_
