// Experiment E9 (extension ablation): the IndexedBuffer grid -- state
// that is simultaneously hash-indexed on the probe attribute and
// partitioned by expiration time (see state/indexed_buffer.h). This goes
// beyond the SIGMOD'05 design in the direction of the authors' companion
// report on indexing the results of sliding window queries.
//
// The index pays off when probe cost dominates (it does nothing for the
// result-view maintenance the other experiments stress), so the query
// correlates the two links on the *payload size* -- a wide-domain
// attribute where matches are rare: nearly all of the per-arrival cost is
// the probe of the other link's full window state. Expected shape:
// UPA-scan grows linearly with the window (O(W) scan per arrival) while
// UPA-indexed stays flat (one hash column of the grid per probe).

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

void BM_IndexedState(benchmark::State& state) {
  const Time window = state.range(0);
  const bool indexed = state.range(1) == 1;
  auto side = [&](int link) {
    return MakeWindow(MakeStream(link, LblSchema()), window);
  };
  PlanPtr plan = MakeJoin(side(0), side(1), kColPayload, kColPayload);
  AnnotatePatterns(plan.get());
  PlannerOptions options;
  options.index_probed_state = indexed;
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, "BM_IndexedState", {window, state.range(1)}, *plan,
           ExecMode::kUpa, options, trace,
           indexed ? "UPA-indexed" : "UPA-scan");
}

void Args(benchmark::internal::Benchmark* b) {
  for (Time w : {2000, 5000, 10000, 20000}) {
    for (int indexed = 0; indexed < 2; ++indexed) b->Args({w, indexed});
  }
}

BENCHMARK(BM_IndexedState)->Apply(Args)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("indexed_state");
