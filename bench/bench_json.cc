#include "bench/bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "obs/trace.h"

namespace upa {
namespace bench_json {
namespace {

std::string EnvOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

/// Best-effort short revision of the checkout the binary was built from.
std::string GitSha() {
  std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[64] = {};
  const bool ok = std::fgets(buf, sizeof(buf), p) != nullptr;
  ::pclose(p);
  if (!ok) return "unknown";
  std::string sha(buf);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

std::string IsoTimestampUtc() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void AppendKv(const char* key, const std::string& value, std::string* out) {
  *out += '"';
  *out += key;
  *out += "\":\"";
  AppendEscaped(value, out);
  *out += '"';
}

void AppendNum(const char* key, double v, std::string* out) {
  char buf[64];
  // %.9g round-trips the magnitudes we emit (ns sums, ms ratios) without
  // printing noise digits.
  std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", key, v);
  *out += buf;
}

void AppendInt(const char* key, uint64_t v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%llu", key,
                static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

void Run::FillFromReplay(const ReplayMetrics& m) {
  wall_seconds = m.wall_seconds;
  counters["ms_per_1k"] = m.ms_per_1000_tuples;
  counters["tuples"] = static_cast<double>(m.tuples);
  counters["state_KB"] = static_cast<double>(m.max_state_bytes) / 1024.0;
  counters["state_tuples"] = static_cast<double>(m.max_state_tuples);
  counters["neg_tuples"] = static_cast<double>(m.stats.negatives_delivered);
  if (!m.profiled) return;
  profiled = true;
  phases = m.profile.phases;
  ops.clear();
  ops.reserve(m.profile.ops.size());
  for (const obs::OpSnapshot& o : m.profile.ops) {
    OpRow row;
    row.op = o.name;
    row.processing_ms = o.processing_ns / 1e6;
    row.insertion_ms = o.insertion_ns / 1e6;
    row.expiration_ms = o.expiration_ns / 1e6;
    row.process_calls = o.c.process_calls;
    row.emitted = o.c.emitted;
    row.state_bytes = o.c.state_bytes;
    row.p50_ns = o.process_ns_hist.Percentile(50);
    row.p95_ns = o.process_ns_hist.Percentile(95);
    row.p99_ns = o.process_ns_hist.Percentile(99);
    ops.push_back(std::move(row));
  }
}

Collector::Collector() {
  json_dir_ = EnvOr("UPA_BENCH_JSON_DIR", ".");
  json_enabled_ = EnvOr("UPA_BENCH_JSON", "1") != "0";
  profile_enabled_ = EnvOr("UPA_BENCH_PROFILE", "1") != "0";
  trace_out_ = EnvOr("UPA_TRACE_OUT", "");
  const std::string interval = EnvOr("UPA_BENCH_SAMPLE_INTERVAL", "251");
  const long parsed = std::strtol(interval.c_str(), nullptr, 10);
  sample_interval_ = parsed >= 1 ? static_cast<uint32_t>(parsed) : 251;
  if (!trace_out_.empty()) {
    // A useful trace needs every event, not one in every stride.
    sample_interval_ = 1;
    profile_enabled_ = true;
  }
}

Collector& Collector::Global() {
  static Collector* g = new Collector();
  return *g;
}

void Collector::Begin(const std::string& bench_name) {
  bench_name_ = bench_name;
  if (!trace_out_.empty()) obs::Tracer::Global().Enable();
}

void Collector::Add(Run run) { runs_.push_back(std::move(run)); }

std::string Collector::Flush() {
  if (flushed_) return "";
  flushed_ = true;
  if (!trace_out_.empty()) {
    if (obs::Tracer::Global().ExportChromeTrace(trace_out_)) {
      std::fprintf(stderr, "wrote Chrome trace to %s (%zu events)\n",
                   trace_out_.c_str(), obs::Tracer::Global().size());
    }
    obs::Tracer::Global().Disable();
  }
  // An empty collection means the binary was invoked for metadata only
  // (--benchmark_list_tests, a non-matching filter): don't clobber a
  // previously written result file with a runless shell.
  if (!json_enabled_ || bench_name_.empty() || runs_.empty()) return "";

  std::string out = "{\n  ";
  AppendKv("schema", kSchema, &out);
  out += ",\n  ";
  AppendKv("bench", bench_name_, &out);
  out += ",\n  ";
  AppendKv("git_sha", GitSha(), &out);
  out += ",\n  ";
  AppendKv("timestamp", IsoTimestampUtc(), &out);
  out += ",\n  \"config\":{";
  AppendInt("profile", profile_enabled_ ? 1 : 0, &out);
  out += ",";
  AppendInt("sample_interval", sample_interval_, &out);
  out += "},\n  \"runs\":[";
  bool first_run = true;
  for (const Run& r : runs_) {
    out += first_run ? "\n    {" : ",\n    {";
    first_run = false;
    AppendKv("family", r.family, &out);
    out += ",";
    AppendKv("name", r.name, &out);
    out += ",";
    AppendKv("label", r.label, &out);
    out += ",\"args\":[";
    for (size_t i = 0; i < r.args.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(r.args[i]);
    }
    out += "],";
    AppendNum("wall_seconds", r.wall_seconds, &out);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [key, value] : r.counters) {
      if (!first) out += ",";
      first = false;
      AppendNum(key.c_str(), value, &out);
    }
    out += "}";
    if (r.profiled) {
      out += ",\"profiled\":true,\"phases\":{";
      AppendNum("processing_ms", r.phases.processing_ns / 1e6, &out);
      out += ",";
      AppendNum("insertion_ms", r.phases.insertion_ns / 1e6, &out);
      out += ",";
      AppendNum("expiration_ms", r.phases.expiration_ns / 1e6, &out);
      out += ",";
      AppendInt("ingests", r.phases.ingests, &out);
      out += ",";
      AppendInt("sampled_ingests", r.phases.sampled_ingests, &out);
      out += ",";
      AppendInt("ticks", r.phases.ticks, &out);
      out += ",";
      AppendInt("sampled_ticks", r.phases.sampled_ticks, &out);
      out += "},\"ops\":[";
      for (size_t i = 0; i < r.ops.size(); ++i) {
        const Run::OpRow& op = r.ops[i];
        if (i > 0) out += ",";
        out += "{";
        AppendKv("op", op.op, &out);
        out += ",";
        AppendNum("processing_ms", op.processing_ms, &out);
        out += ",";
        AppendNum("insertion_ms", op.insertion_ms, &out);
        out += ",";
        AppendNum("expiration_ms", op.expiration_ms, &out);
        out += ",";
        AppendInt("process_calls", op.process_calls, &out);
        out += ",";
        AppendInt("emitted", op.emitted, &out);
        out += ",";
        AppendInt("state_bytes", op.state_bytes, &out);
        out += ",";
        AppendNum("p50_ns", op.p50_ns, &out);
        out += ",";
        AppendNum("p95_ns", op.p95_ns, &out);
        out += ",";
        AppendNum("p99_ns", op.p99_ns, &out);
        out += "}";
      }
      out += "]";
    }
    out += "}";
  }
  out += "\n  ]\n}\n";

  const std::string path = json_dir_ + "/BENCH_" + bench_name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return "";
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu runs)\n", path.c_str(), runs_.size());
  return path;
}

}  // namespace bench_json
}  // namespace upa
