// Experiment E7: the space claim of the delta duplicate-elimination
// operator (Section 5.3.1): "instead of storing both the input and the
// output, the space requirement of delta is at most twice the size of the
// output" -- which is never larger than the input, so delta strictly
// saves memory on duplicate-heavy streams.
//
// Runs Query 2 (distinct sources) under UPA (delta) versus DIRECT and NT
// (classic input+output implementation) and reports the peak stored
// tuples and bytes. The duplicate ratio is controlled through the source
// domain size: fewer sources = more duplicates = bigger delta advantage.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::ModeOf;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

void BM_DupelimMemory(benchmark::State& state) {
  const Time window = 20000;
  const int sources = static_cast<int>(state.range(0));
  const ExecMode mode = ModeOf(state.range(1));
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, LblSchema()), window),
                  {kColSrcIp}),
      {0});
  AnnotatePatterns(plan.get());
  const Trace& trace = LblTrace(1, TraceDurationFor(window), sources);
  RunQuery(state, "BM_DupelimMemory", {state.range(0), state.range(1)}, *plan,
           mode, {}, trace);
  state.counters["sources"] = sources;
}

void Args(benchmark::internal::Benchmark* b) {
  for (int sources : {100, 1000, 10000}) {
    for (int mode = 0; mode < 3; ++mode) b->Args({sources, mode});
  }
}

BENCHMARK(BM_DupelimMemory)->Apply(Args)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("dupelim_memory");
