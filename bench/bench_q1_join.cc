// Experiment E1 (paper Query 1): sliding-window join of two outgoing
// links on the source address, with a selective predicate (protocol=ftp,
// E1a) and a non-selective one (protocol=telnet, ~10x the results, E1b).
// Compares NT / DIRECT / UPA while sweeping the window size; tests the
// partitioned data structure used for the materialized result.
//
// Expected shape (Section 6 claims): UPA fastest; DIRECT degrades
// super-linearly with window size because the insertion-ordered result
// view is scanned sequentially on every expiration check; NT pays the
// doubled tuple count and window materialization. The telnet variant
// magnifies the gaps because ten times as many results are maintained.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::ModeOf;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

PlanPtr Query1(Time window, int64_t protocol) {
  auto side = [&](int link) {
    return MakeSelect(MakeWindow(MakeStream(link, LblSchema()), window),
                      {Predicate{kColProtocol, CmpOp::kEq, Value{protocol}}});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  return plan;
}

void BM_Q1(benchmark::State& state, const char* family, int64_t protocol) {
  const Time window = state.range(0);
  const ExecMode mode = ModeOf(state.range(1));
  PlanPtr plan = Query1(window, protocol);
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, family, {window, state.range(1)}, *plan, mode, {}, trace);
}

void BM_Q1_Ftp(benchmark::State& state) {
  BM_Q1(state, "BM_Q1_Ftp", kProtoFtp);
}
void BM_Q1_Telnet(benchmark::State& state) {
  BM_Q1(state, "BM_Q1_Telnet", kProtoTelnet);
}

// Experiment E14: the skew sweep. Fixed window, UPA execution, telnet
// selectivity (large probed state); the source-address Zipf exponent
// (arg0, x10) and the heavy-light threshold (arg1, 0 = disabled oracle
// path) vary. Per-tuple latency is measured so the table can report the
// p99 tail, which the hot keys dominate: a scan-probed buffer pays its
// O(N) probe on exactly the popular arrivals.
void BM_Q1_SkewZipf(benchmark::State& state) {
  const double zipf = static_cast<double>(state.range(0)) / 10.0;
  const int threshold = static_cast<int>(state.range(1));
  const Time window = 10000;
  PlanPtr plan = Query1(window, kProtoTelnet);
  const Trace& trace =
      LblTrace(2, TraceDurationFor(window), 1000, 42, zipf);
  PlannerOptions popts;
  popts.heavy_threshold = threshold;
  // Let the top-K bound follow the threshold: at threshold 2 roughly the
  // top hundred keys qualify under zipf >= 1.0, and capping them at the
  // default 64 would leave probe mass on the scan path.
  popts.heavy_max_keys = 256;
  ReplayOptions ropts;
  ropts.measure_latency = true;
  RunQuery(state, "BM_Q1_SkewZipf", {state.range(0), threshold}, *plan,
           ExecMode::kUpa, popts, trace,
           "UPA_H" + std::to_string(threshold), ropts);
}

void SkewArgs(benchmark::internal::Benchmark* b) {
  for (int64_t z : {0, 8, 10, 14}) {       // Zipf exponent x10.
    for (int64_t h : {0, 2, 8}) b->Args({z, h});
  }
}

void FtpArgs(benchmark::internal::Benchmark* b) {
  for (Time w : bench_util::WindowSweep()) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

void TelnetArgs(benchmark::internal::Benchmark* b) {
  // Telnet maintains an order of magnitude more results; trim the sweep
  // so the DIRECT baseline finishes (its trend is unambiguous well
  // before that).
  for (Time w : {1000, 2000, 5000}) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

BENCHMARK(BM_Q1_Ftp)->Apply(FtpArgs)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Q1_Telnet)->Apply(TelnetArgs)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Q1_SkewZipf)->Apply(SkewArgs)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("q1_join");
