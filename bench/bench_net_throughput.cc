// Network layer experiment: what the wire costs on the ingest path.
//
//   BM_NetIngestThroughput : tuples/sec and MB/sec through a loopback
//                            Server as a function of ingest batch size
//                            (framing + CRC + one round trip per batch)
//                            and client count (1 vs 4 concurrent
//                            sessions). The engine runs a live
//                            duplicate-eliminating query with one
//                            subscriber per client, so every batch also
//                            pays the subscription fan-out.
//
//   BM_NetReconnectChurn   : the same ingest+subscribe path while the
//                            client deliberately drops its connection
//                            every N wire batches and rides its
//                            reconnect-with-resume machinery back
//                            (session lease + replay ring on). Arg 0 is
//                            the no-churn baseline; the counters report
//                            how many reconnects/resumes the run paid
//                            and what that did to tuples/sec.
//
// Small batches are dominated by the per-frame round trip; the batch
// knob shows where the protocol amortizes away.

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"

namespace upa {
namespace {

using bench_util::LblTrace;

/// `engine_batch` feeds EngineOptions::batch_size: how many routed rows
/// the engine coalesces per shard-queue item once tuples leave the wire
/// (0 = auto, 1 = per-tuple; DESIGN.md Section 15). Orthogonal to the
/// wire batch, which amortizes framing and round trips.
void RunNetIngest(benchmark::State& state, const std::string& family,
                  size_t batch_size, int num_clients, size_t engine_batch) {
  const Trace& trace = LblTrace(1, 4000);
  auto& collector = bench_json::Collector::Global();
  for (auto _ : state) {
    EngineOptions eopts;
    eopts.default_shards = 2;
    eopts.batch_size = engine_batch;
    Engine engine(eopts);
    net::ServerOptions sopts;
    sopts.port = 0;
    net::Server server(&engine, sopts);
    std::string err;
    if (!server.Start(&err)) {
      state.SkipWithError("server start failed");
      return;
    }

    // Round-robin the trace across the clients: each session ships an
    // interleaved, per-session ts-ordered slice.
    std::vector<net::Client> clients(static_cast<size_t>(num_clients));
    std::vector<net::SubscriptionMirror*> subs(
        static_cast<size_t>(num_clients));
    int64_t link0 = -1;
    bool setup_ok = true;
    for (int c = 0; c < num_clients; ++c) {
      if (!clients[c].Connect("127.0.0.1", server.port(), &err)) {
        setup_ok = false;
        break;
      }
      link0 = clients[c].DeclareStream("link0", LblSchema(), &err);
      if (link0 < 0) {
        setup_ok = false;
        break;
      }
      if (c == 0 &&
          !clients[c].RegisterQuery(
              "sources", "SELECT DISTINCT src_ip FROM link0 [RANGE 800]",
              0, nullptr, &err)) {
        setup_ok = false;
        break;
      }
      subs[c] = clients[c].Subscribe("sources", &err);
      if (subs[c] == nullptr) {
        setup_ok = false;
        break;
      }
    }
    if (!setup_ok) {
      state.SkipWithError("client setup failed");
      return;
    }

    const uint64_t bytes_before = server.Stats().bytes_in;
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < num_clients; ++c) {
      threads.emplace_back([&, c] {
        std::string terr;
        std::vector<std::pair<uint32_t, Tuple>> batch;
        batch.reserve(batch_size);
        for (size_t i = static_cast<size_t>(c); i < trace.events.size();
             i += static_cast<size_t>(num_clients)) {
          batch.emplace_back(static_cast<uint32_t>(link0),
                             trace.events[i].tuple);
          if (batch.size() >= batch_size) {
            if (!clients[c].IngestBatch(batch, &terr)) return;
            batch.clear();
          }
        }
        if (!batch.empty()) clients[c].IngestBatch(batch, &terr);
        clients[c].Flush(&terr);
      });
    }
    for (std::thread& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const uint64_t wire_bytes = server.Stats().bytes_in - bytes_before;
    for (int c = 0; c < num_clients; ++c) clients[c].Close();
    server.Stop();
    engine.Stop();

    state.SetIterationTime(secs);
    const double tuples = static_cast<double>(trace.events.size());
    state.counters["ktuples_per_s"] = tuples / secs / 1000.0;
    state.counters["wire_mb_per_s"] =
        static_cast<double>(wire_bytes) / secs / (1024.0 * 1024.0);
    state.counters["bytes_per_tuple"] =
        static_cast<double>(wire_bytes) / tuples;

    bench_json::Run run;
    run.family = family;
    if (family == "BM_NetEngineBatchSweep") {
      run.name = family + "/ebatch:" + std::to_string(engine_batch);
      run.args = {static_cast<int64_t>(engine_batch)};
    } else {
      run.name = family + "/batch:" + std::to_string(batch_size) +
                 "/clients:" + std::to_string(num_clients);
      run.args = {static_cast<int64_t>(batch_size), num_clients};
    }
    run.wall_seconds = secs;
    run.counters["ktuples_per_s"] = state.counters["ktuples_per_s"];
    run.counters["wire_mb_per_s"] = state.counters["wire_mb_per_s"];
    run.counters["bytes_per_tuple"] = state.counters["bytes_per_tuple"];
    collector.Add(std::move(run));
  }
}

void BM_NetIngestThroughput(benchmark::State& state) {
  RunNetIngest(state, "BM_NetIngestThroughput",
               static_cast<size_t>(state.range(0)),
               static_cast<int>(state.range(1)), /*engine_batch=*/0);
}

// Engine-batch sweep behind a fixed wire configuration (E13): one client
// shipping 128-tuple wire batches while the engine's ingest coalescing
// runs from per-tuple (1) to 1024. Isolates the Section 15 win on the
// full client -> server -> engine -> subscriber path.
void BM_NetEngineBatchSweep(benchmark::State& state) {
  RunNetIngest(state, "BM_NetEngineBatchSweep", /*batch_size=*/128,
               /*num_clients=*/1, static_cast<size_t>(state.range(0)));
}

// Reconnect churn (robustness cost model): one client ingesting
// 128-tuple wire batches into a resumption-enabled server, dropping its
// own connection every `churn` batches. Each drop pays a reconnect
// handshake plus a resume (ring replay of whatever the subscription
// missed), so the throughput delta against churn:0 prices the fault
// path end to end.
void BM_NetReconnectChurn(benchmark::State& state) {
  const size_t batch_size = 128;
  const int64_t churn = state.range(0);  // Batches between drops; 0 = never.
  const Trace& trace = LblTrace(1, 4000);
  auto& collector = bench_json::Collector::Global();
  for (auto _ : state) {
    EngineOptions eopts;
    eopts.default_shards = 2;
    Engine engine(eopts);
    net::ServerOptions sopts;
    sopts.port = 0;
    sopts.session_lease_ms = 10000;
    sopts.replay_ring_bytes = 1 << 20;
    net::Server server(&engine, sopts);
    std::string err;
    if (!server.Start(&err)) {
      state.SkipWithError("server start failed");
      return;
    }
    net::Client client;
    net::ReconnectPolicy policy;
    policy.enabled = true;
    policy.max_attempts = 10;
    policy.backoff_base_ms = 1;
    policy.backoff_max_ms = 50;
    policy.jitter_seed = 7;
    client.set_reconnect(policy);
    bool ok = client.Connect("127.0.0.1", server.port(), &err);
    const int64_t link0 =
        ok ? client.DeclareStream("link0", LblSchema(), &err) : -1;
    ok = ok && link0 >= 0 &&
         client.RegisterQuery("sources",
                              "SELECT DISTINCT src_ip FROM link0 [RANGE 800]",
                              0, nullptr, &err) &&
         client.Subscribe("sources", &err) != nullptr;
    if (!ok) {
      state.SkipWithError("client setup failed");
      return;
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::pair<uint32_t, Tuple>> batch;
    batch.reserve(batch_size);
    int64_t batches = 0;
    for (const TraceEvent& e : trace.events) {
      batch.emplace_back(static_cast<uint32_t>(link0), e.tuple);
      if (batch.size() >= batch_size) {
        if (!client.IngestBatch(batch, &err)) {
          state.SkipWithError("ingest failed");
          return;
        }
        batch.clear();
        if (churn > 0 && ++batches % churn == 0) client.Disconnect();
      }
    }
    if (!batch.empty() && !client.IngestBatch(batch, &err)) {
      state.SkipWithError("ingest failed");
      return;
    }
    client.Flush(&err);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const net::ClientStats cs = client.stats();
    client.Close();
    server.Stop();
    engine.Stop();

    state.SetIterationTime(secs);
    const double tuples = static_cast<double>(trace.events.size());
    state.counters["ktuples_per_s"] = tuples / secs / 1000.0;
    state.counters["reconnects"] = static_cast<double>(cs.reconnects);
    state.counters["resumes"] = static_cast<double>(cs.resumes);
    state.counters["resume_replays"] = static_cast<double>(cs.resume_replays);
    state.counters["resume_snapshots"] =
        static_cast<double>(cs.resume_snapshots);

    bench_json::Run run;
    run.family = "BM_NetReconnectChurn";
    run.name = run.family + "/churn:" + std::to_string(churn);
    run.args = {churn};
    run.wall_seconds = secs;
    run.counters["ktuples_per_s"] = state.counters["ktuples_per_s"];
    run.counters["reconnects"] = state.counters["reconnects"];
    run.counters["resumes"] = state.counters["resumes"];
    run.counters["resume_replays"] = state.counters["resume_replays"];
    run.counters["resume_snapshots"] = state.counters["resume_snapshots"];
    collector.Add(std::move(run));
  }
}

BENCHMARK(BM_NetIngestThroughput)
    ->ArgsProduct({{16, 128, 1024}, {1, 4}})
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_NetEngineBatchSweep)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_NetReconnectChurn)
    ->Arg(0)
    ->Arg(8)
    ->Arg(2)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("net_throughput");
