// Cost-model validation ablation: the Section 5.4.1 per-unit-time cost
// model is only useful if its plan *rankings* agree with measured
// runtimes. For the decisions DESIGN.md calls out -- execution strategy
// on Query 1, the Query 5 rewriting choice, and the STR storage strategy
// at low/high premature-expiration frequency -- this bench measures every
// alternative, prints the model's estimate next to the measurement, and
// reports whether the argmin agrees.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/optimizer.h"

namespace upa {
namespace {

using bench_util::LblCatalog;
using bench_util::LblTrace;
using bench_util::TraceDurationFor;

struct Alternative {
  std::string name;
  double estimated = 0.0;
  double measured_ms = 0.0;
};

double Measure(const PlanNode& plan, ExecMode mode,
               const PlannerOptions& options, const Trace& trace) {
  auto pipeline = BuildPipeline(plan, mode, options);
  return ReplayTrace(trace, pipeline.get()).ms_per_1000_tuples;
}

void Report(const std::string& decision, const std::string& slug,
            std::vector<Alternative> alts) {
  size_t best_est = 0;
  size_t best_meas = 0;
  for (size_t i = 1; i < alts.size(); ++i) {
    if (alts[i].estimated < alts[best_est].estimated) best_est = i;
    if (alts[i].measured_ms < alts[best_meas].measured_ms) best_meas = i;
  }
  std::printf("\n== %s ==\n", decision.c_str());
  for (const Alternative& a : alts) {
    std::printf("  %-28s est. cost %12.1f   measured %8.3f ms/1k\n",
                a.name.c_str(), a.estimated, a.measured_ms);
  }
  const bool agree = best_est == best_meas;
  std::printf("  model argmin = %s, measured argmin = %s  -> %s\n",
              alts[best_est].name.c_str(), alts[best_meas].name.c_str(),
              agree ? "AGREE" : "DISAGREE");
  for (const Alternative& a : alts) {
    bench_json::Run run;
    run.family = slug;
    run.name = slug + "/" + a.name;
    run.label = a.name;
    run.counters["estimated_cost"] = a.estimated;
    run.counters["ms_per_1k"] = a.measured_ms;
    run.counters["agree"] = agree ? 1.0 : 0.0;
    bench_json::Collector::Global().Add(std::move(run));
  }
}

PlanPtr Q1(Time window) {
  auto side = [&](int link) {
    return MakeSelect(
        MakeWindow(MakeStream(link, LblSchema()), window),
        {Predicate{kColProtocol, CmpOp::kEq, Value{int64_t{kProtoFtp}}}});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  return plan;
}

void ValidateStrategyChoice() {
  const Time window = 20000;
  PlanPtr plan = Q1(window);
  const Catalog catalog = LblCatalog(2, 1000);
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  std::vector<Alternative> alts;
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    Alternative a;
    a.name = ExecModeName(mode);
    a.estimated = EstimatePlanCost(*plan, catalog, mode, {}).total;
    a.measured_ms = Measure(*plan, mode, {}, trace);
    alts.push_back(std::move(a));
  }
  Report("Query 1 (ftp, W=20000): execution strategy", "q1_strategy",
         std::move(alts));
}

void ValidateQ5Rewriting() {
  const Time window = 5000;
  auto sigma3 = [&]() {
    return MakeSelect(
        MakeWindow(MakeStream(2, LblSchema()), window),
        {Predicate{kColProtocol, CmpOp::kEq, Value{int64_t{kProtoFtp}}}});
  };
  PlanPtr push_down = MakeJoin(
      MakeNegate(MakeWindow(MakeStream(0, LblSchema()), window),
                 MakeWindow(MakeStream(1, LblSchema()), window), kColSrcIp,
                 kColSrcIp),
      sigma3(), kColSrcIp, kColSrcIp);
  AnnotatePatterns(push_down.get());
  PlanPtr pull_up = RewriteNegationPullUp(*push_down);
  AnnotatePatterns(pull_up.get());

  const Catalog catalog = LblCatalog(3, 1000);
  const Trace& trace = LblTrace(3, TraceDurationFor(window));
  std::vector<Alternative> alts;
  alts.push_back({"push-down",
                  EstimatePlanCost(*push_down, catalog, ExecMode::kUpa, {}).total,
                  Measure(*push_down, ExecMode::kUpa, {}, trace)});
  alts.push_back({"pull-up",
                  EstimatePlanCost(*pull_up, catalog, ExecMode::kUpa, {}).total,
                  Measure(*pull_up, ExecMode::kUpa, {}, trace)});
  Report("Query 5 (W=5000, UPA): negation placement", "q5_negation_placement",
         std::move(alts));
}

void ValidateStrStorage(double overlap) {
  const Time window = 10000;
  auto src = [&](int link) {
    return MakeProject(MakeWindow(MakeStream(link, LblSchema()), window),
                       {kColSrcIp});
  };
  PlanPtr plan = MakeNegate(src(0), src(1), 0, 0);
  AnnotatePatterns(plan.get());

  Catalog catalog = LblCatalog(2, 1000);
  catalog.value_overlap[{{0, kColSrcIp}, {1, kColSrcIp}}] = overlap;
  Trace trace = LblTrace(2, TraceDurationFor(window));
  Rng rng(13);
  for (TraceEvent& e : trace.events) {
    if (e.stream == 1 && !rng.NextBool(overlap)) {
      e.tuple.fields[kColSrcIp] =
          Value{AsInt(e.tuple.fields[kColSrcIp]) + 1'000'000};
    }
  }
  const double premature = EstimatePrematureFrequency(*plan, catalog);

  std::vector<Alternative> alts;
  for (StrStrategy strategy :
       {StrStrategy::kPartitioned, StrStrategy::kNegativeTuples}) {
    PlannerOptions options;
    options.str_strategy = strategy;
    Alternative a;
    a.name = strategy == StrStrategy::kPartitioned ? "partitioned-view"
                                                   : "negative/hash-view";
    // The cost model folds the strategy choice into the premature
    // frequency: the partitioned view's cost grows with the premature
    // share while the hash view's stays flat at the calibrated threshold.
    a.estimated = strategy == StrStrategy::kPartitioned
                      ? premature
                      : kPrematureFrequencyThreshold;
    a.measured_ms = Measure(*plan, ExecMode::kUpa, options, trace);
    alts.push_back(std::move(a));
  }
  char title[128];
  std::snprintf(title, sizeof(title),
                "Query 3 STR storage at overlap %.2f (premature freq %.2f)",
                overlap, premature);
  char slug[64];
  std::snprintf(slug, sizeof(slug), "q3_str_storage_overlap_%.0f",
                overlap * 100.0);
  Report(title, slug, std::move(alts));
}

}  // namespace
}  // namespace upa

int main() {
  // No google-benchmark run loop here: this binary drives the JSON
  // collector directly, emitting one run per (decision, alternative).
  upa::bench_json::Collector::Global().Begin("cost_model");
  std::printf("Cost-model validation: does the Section 5.4.1 model rank "
              "alternatives the way measurements do?\n");
  upa::ValidateStrategyChoice();
  upa::ValidateQ5Rewriting();
  upa::ValidateStrStorage(0.0);
  upa::ValidateStrStorage(1.0);
  upa::bench_json::Collector::Global().Flush();
  return 0;
}
