// Engine scaling experiment: throughput of the multi-query runtime as the
// shard count grows, on the paper's workload. A hash-partitionable query
// (Query 1: window join of two links on the source address) should scale
// superlinearly at first — each shard holds 1/S of the window state, so
// probes scan less — while a non-partitionable plan (single-group
// aggregate) is pinned to one shard and shows flat throughput regardless
// of the requested shard count (the documented fallback).

#include <chrono>

#include "bench/bench_util.h"
#include "engine/engine.h"

namespace upa {
namespace {

using bench_util::LblTrace;

PlanPtr JoinQuery(Time window, int64_t protocol) {
  auto side = [&](int link) {
    return MakeSelect(MakeWindow(MakeStream(link, LblSchema()), window),
                      {Predicate{kColProtocol, CmpOp::kEq, Value{protocol}}});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  return plan;
}

PlanPtr SingleGroupQuery(Time window) {
  PlanPtr plan = MakeGroupBy(MakeWindow(MakeStream(0, LblSchema()), window),
                             -1, AggKind::kCount, -1);
  AnnotatePatterns(plan.get());
  return plan;
}

/// `arg` is the family's sweep variable (shard count for the scaling
/// families, ingest batch size for the batch sweep) and names the run.
/// `batch_size` feeds EngineOptions::batch_size (0 = auto, Section 15).
void RunEngineBench(benchmark::State& state, const std::string& family,
                    PlanPtr plan, int shards, const Trace& trace,
                    int64_t arg, size_t batch_size = 0) {
  auto& collector = bench_json::Collector::Global();
  for (auto _ : state) {
    EngineOptions opts;
    opts.default_shards = shards;
    opts.queue_capacity = 8192;
    opts.max_batch = 256;
    opts.batch_size = batch_size;
    opts.profile_queries = collector.profile_enabled();
    Engine engine(opts);
    const RegisterResult reg =
        engine.RegisterPlan("bench", plan->Clone());
    const auto start = std::chrono::steady_clock::now();
    engine.IngestTrace(trace);
    engine.Flush();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    engine.Stop();
    state.SetIterationTime(secs);
    const double tuples = static_cast<double>(trace.events.size());
    state.counters["ktuples_per_s"] = tuples / secs / 1000.0;
    state.counters["shards"] = static_cast<double>(reg.shards);
    PipelineStats stats;
    engine.Stats("bench", &stats);
    state.counters["ingested"] = static_cast<double>(stats.ingested);
    state.counters["results"] = static_cast<double>(stats.results_pos);

    bench_json::Run run;
    run.family = family;
    run.name = family + "/" + std::to_string(arg);
    run.args = {arg};
    run.wall_seconds = secs;
    run.counters["ktuples_per_s"] = state.counters["ktuples_per_s"];
    run.counters["shards"] = static_cast<double>(reg.shards);
    run.counters["ingested"] = static_cast<double>(stats.ingested);
    run.counters["results"] = static_cast<double>(stats.results_pos);
    // The engine aggregates per-shard phase breakdowns; fold the rollup
    // for this (only) query into the run the same way RunQuery does for
    // single-pipeline benches.
    const EngineMetrics em = engine.Metrics();
    for (const QueryMetrics& qm : em.queries) {
      if (qm.name != "bench" || !qm.profiled) continue;
      run.profiled = true;
      run.phases = qm.phases;
    }
    collector.Add(std::move(run));
  }
}

void BM_EngineJoinScaling(benchmark::State& state) {
  const Time window = 2000;
  PlanPtr plan = JoinQuery(window, kProtoTelnet);
  const Trace& trace = LblTrace(2, 20000);
  RunEngineBench(state, "BM_EngineJoinScaling", std::move(plan),
                 static_cast<int>(state.range(0)), trace, state.range(0));
}

void BM_EngineFallbackScaling(benchmark::State& state) {
  const Time window = 2000;
  PlanPtr plan = SingleGroupQuery(window);
  const Trace& trace = LblTrace(1, 20000);
  RunEngineBench(state, "BM_EngineFallbackScaling", std::move(plan),
                 static_cast<int>(state.range(0)), trace, state.range(0));
}

// Batch-size sweep on the 1-shard join (E13): same plan and trace as the
// scaling family's first point, with ingest coalescing dialed from the
// per-tuple oracle (batch 1) up to 1024. The gap isolates what Section 15
// buys: amortized clock advances and one expiration sweep per batch.
void BM_EngineJoinBatchSweep(benchmark::State& state) {
  const Time window = 2000;
  PlanPtr plan = JoinQuery(window, kProtoTelnet);
  const Trace& trace = LblTrace(2, 20000);
  RunEngineBench(state, "BM_EngineJoinBatchSweep", std::move(plan),
                 /*shards=*/1, trace, state.range(0),
                 static_cast<size_t>(state.range(0)));
}

BENCHMARK(BM_EngineJoinScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_EngineFallbackScaling)
    ->Arg(1)
    ->Arg(4)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_EngineJoinBatchSweep)
    ->Arg(1)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("engine_scaling");
