// Experiment E5 (paper Query 5 / Figure 6): negation of two links on the
// source address, joined with a third link filtered to protocol = ftp.
// The two equivalent rewritings are executed:
//
//   push-down : join(negate(W1, W2), sigma_ftp(W3))  -- negation below;
//               the join and the result view must process every negative
//               tuple the negation produces.
//   pull-up   : negate(join(W1, sigma_ftp(W3)), W2)  -- negation above;
//               the join subtree is only weak non-monotonic ("update
//               pattern simplification") and the negation feeds the view
//               directly, enabling the hybrid negative-tuple view.
//
// Each rewriting runs under DIRECT, UPA-partitioned and (for the pull-up
// form, where negation is the root) the UPA hybrid strategy. Expected
// shape: with the selective ftp predicate, pull-up beats push-down, and
// the hybrid view wins when premature expirations are frequent -- the
// paper's argument for recommending the negative approach only together
// with negation pull-up (Section 5.4.3). The cost-model agreement with
// these measurements is checked by bench_cost_model.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

PlanPtr SigmaFtp(Time window) {
  return MakeSelect(
      MakeWindow(MakeStream(2, LblSchema()), window),
      {Predicate{kColProtocol, CmpOp::kEq, Value{int64_t{kProtoFtp}}}});
}

PlanPtr Window(int link, Time window) {
  return MakeWindow(MakeStream(link, LblSchema()), window);
}

PlanPtr Q5PushDown(Time window) {
  PlanPtr plan =
      MakeJoin(MakeNegate(Window(0, window), Window(1, window), kColSrcIp,
                          kColSrcIp),
               SigmaFtp(window), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  return plan;
}

PlanPtr Q5PullUp(Time window) {
  PlanPtr plan = MakeNegate(
      MakeJoin(Window(0, window), SigmaFtp(window), kColSrcIp, kColSrcIp),
      Window(1, window), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  return plan;
}

// range(0) = window; range(1): 0 = push-down/UPA-partitioned,
// 1 = pull-up/UPA-partitioned, 2 = pull-up/UPA-hybrid, 3 = push-down/DIRECT,
// 4 = pull-up/DIRECT.
void BM_Q5(benchmark::State& state) {
  const Time window = state.range(0);
  const int variant = static_cast<int>(state.range(1));
  const bool pull_up = variant == 1 || variant == 2 || variant == 4;
  PlanPtr plan = pull_up ? Q5PullUp(window) : Q5PushDown(window);
  PlannerOptions options;
  ExecMode mode = ExecMode::kUpa;
  std::string label;
  switch (variant) {
    case 0:
      options.str_strategy = StrStrategy::kPartitioned;
      label = "push-down/UPA-partitioned";
      break;
    case 1:
      options.str_strategy = StrStrategy::kPartitioned;
      label = "pull-up/UPA-partitioned";
      break;
    case 2:
      options.str_strategy = StrStrategy::kNegativeTuples;
      label = "pull-up/UPA-hybrid";
      break;
    case 3:
      mode = ExecMode::kDirect;
      label = "push-down/DIRECT";
      break;
    default:
      mode = ExecMode::kDirect;
      label = "pull-up/DIRECT";
      break;
  }
  const Trace& trace = LblTrace(3, TraceDurationFor(window));
  RunQuery(state, "BM_Q5", {window, state.range(1)}, *plan, mode, options,
           trace, label);
}

void Args(benchmark::internal::Benchmark* b) {
  // The pull-up rewriting materializes the unfiltered W1-side join, whose
  // state grows quadratically with the window under the trace's Zipf
  // source skew; W=5000 already shows the crossovers.
  for (Time w : {1000, 2000, 5000}) {
    for (int variant = 0; variant < 5; ++variant) b->Args({w, variant});
  }
}

BENCHMARK(BM_Q5)->Apply(Args)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("q5_rewritings");
