// Schema-versioned JSON emission for the benchmark binaries.
//
// Every bench built with UPA_BENCH_MAIN("<name>") writes
// BENCH_<name>.json on exit (into $UPA_BENCH_JSON_DIR, default the
// working directory): run configuration, git revision, one row per
// benchmark run with its counters, and -- when the pipeline profiler is
// on -- the paper's Section 6.1 phase breakdown plus per-operator cost
// rows. scripts/bench_report.py validates, renders, and diffs the files.
//
// Environment knobs (read once at startup):
//   UPA_BENCH_JSON_DIR        output directory (default ".")
//   UPA_BENCH_JSON=0          disable the JSON file
//   UPA_BENCH_PROFILE=0       run without the pipeline profiler
//   UPA_BENCH_SAMPLE_INTERVAL profiler sampling stride (default 251)
//   UPA_TRACE_OUT=<path>      capture a Chrome trace of the run; implies
//                             sample interval 1 (trace every event)

#ifndef UPA_BENCH_BENCH_JSON_H_
#define UPA_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/replay.h"

namespace upa {
namespace bench_json {

/// Schema identifier embedded in every file; bump when the layout of the
/// JSON changes incompatibly.
inline constexpr const char* kSchema = "upa.bench.v1";

/// One benchmark run (one Args() combination of one family).
struct Run {
  std::string family;          ///< e.g. "BM_Q1_Ftp".
  std::string name;            ///< family + "/" + args, mirrors console.
  std::string label;           ///< Mode label (NT/DIRECT/UPA) or custom.
  std::vector<int64_t> args;
  double wall_seconds = 0.0;
  std::map<std::string, double> counters;  ///< ms_per_1k, state_KB, ...

  bool profiled = false;
  obs::PhaseBreakdown phases;  ///< Whole-run phase estimate.
  struct OpRow {
    std::string op;
    double processing_ms = 0.0;
    double insertion_ms = 0.0;
    double expiration_ms = 0.0;
    uint64_t process_calls = 0;
    uint64_t emitted = 0;
    size_t state_bytes = 0;
    double p50_ns = 0.0;  ///< Per-Process-call self time percentiles.
    double p95_ns = 0.0;
    double p99_ns = 0.0;
  };
  std::vector<OpRow> ops;

  /// Copies replay timing, counters, and (when present) the profile.
  void FillFromReplay(const ReplayMetrics& m);
};

/// Process-wide run collector behind UPA_BENCH_MAIN.
class Collector {
 public:
  static Collector& Global();

  /// Declares the bench name ("q1_join" => BENCH_q1_join.json) and, when
  /// UPA_TRACE_OUT is set, starts the global tracer.
  void Begin(const std::string& bench_name);
  void Add(Run run);

  /// True unless UPA_BENCH_JSON=0.
  bool json_enabled() const { return json_enabled_; }
  /// True unless UPA_BENCH_PROFILE=0; RunQuery attaches the pipeline
  /// profiler iff this is set.
  bool profile_enabled() const { return profile_enabled_; }
  /// UPA_BENCH_SAMPLE_INTERVAL (default 251; forced to 1 when tracing).
  uint32_t sample_interval() const { return sample_interval_; }

  /// Writes BENCH_<name>.json (and the Chrome trace, when requested);
  /// returns the JSON path or "" when disabled/failed. Idempotent.
  std::string Flush();

 private:
  Collector();

  std::string bench_name_;
  std::string json_dir_;
  std::string trace_out_;
  bool json_enabled_ = true;
  bool profile_enabled_ = true;
  uint32_t sample_interval_ = 251;
  bool flushed_ = false;
  std::vector<Run> runs_;
};

}  // namespace bench_json
}  // namespace upa

/// Replaces BENCHMARK_MAIN() in the bench binaries: same google-benchmark
/// behavior plus the BENCH_<name>.json emission on exit.
#define UPA_BENCH_MAIN(bench_name)                                        \
  int main(int argc, char** argv) {                                       \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::upa::bench_json::Collector::Global().Begin(bench_name);             \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    ::upa::bench_json::Collector::Global().Flush();                       \
    return 0;                                                             \
  }

#endif  // UPA_BENCH_BENCH_JSON_H_
