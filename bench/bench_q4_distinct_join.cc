// Experiment E4 (paper Query 4): distinct source addresses on two
// outgoing links, joined on the source address -- "which sources are
// currently using both links?". Combines the benefits measured separately
// in E1 and E2: the delta duplicate-elimination operator feeds the join
// (the optimizer's duplicate-elimination push-down, Section 5.4.2), and
// partitioned structures store the weak non-monotonic intermediate and
// final results.
//
// Expected shape: the UPA advantage compounds -- order of magnitude over
// DIRECT at the larger windows; NT sits in between, paying the doubled
// tuple processing through *two* stateful operators per branch.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::ModeOf;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

PlanPtr Query4(Time window) {
  auto side = [&](int link) {
    return MakeDistinct(
        MakeProject(MakeWindow(MakeStream(link, LblSchema()), window),
                    {kColSrcIp}),
        {0});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), 0, 0);
  AnnotatePatterns(plan.get());
  return plan;
}

void BM_Q4(benchmark::State& state) {
  const Time window = state.range(0);
  const ExecMode mode = ModeOf(state.range(1));
  PlanPtr plan = Query4(window);
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, "BM_Q4", {window, state.range(1)}, *plan, mode, {}, trace);
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (Time w : bench_util::WindowSweep()) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

// Experiment E14 (second query): the same skew sweep over the distinct +
// join shape. The delta-distinct outputs keep one tuple per live source,
// so the join buffers hold the full key domain and every probe scans it;
// a heavy key's materialized copies collapse that to its match count.
void BM_Q4_SkewZipf(benchmark::State& state) {
  const double zipf = static_cast<double>(state.range(0)) / 10.0;
  const int threshold = static_cast<int>(state.range(1));
  const Time window = 2000;
  PlanPtr plan = Query4(window);
  const Trace& trace =
      LblTrace(2, TraceDurationFor(window), 1000, 42, zipf);
  PlannerOptions popts;
  popts.heavy_threshold = threshold;
  popts.heavy_max_keys = 256;  // Match the Q1 sweep (see bench_q1_join).
  ReplayOptions ropts;
  ropts.measure_latency = true;
  RunQuery(state, "BM_Q4_SkewZipf", {state.range(0), threshold}, *plan,
           ExecMode::kUpa, popts, trace,
           "UPA_H" + std::to_string(threshold), ropts);
}

void SkewArgs(benchmark::internal::Benchmark* b) {
  for (int64_t z : {0, 8, 10, 14}) {       // Zipf exponent x10.
    for (int64_t h : {0, 2, 8}) b->Args({z, h});
  }
}

BENCHMARK(BM_Q4)->Apply(SweepArgs)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Q4_SkewZipf)->Apply(SkewArgs)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("q4_distinct_join");
