// Experiment E4 (paper Query 4): distinct source addresses on two
// outgoing links, joined on the source address -- "which sources are
// currently using both links?". Combines the benefits measured separately
// in E1 and E2: the delta duplicate-elimination operator feeds the join
// (the optimizer's duplicate-elimination push-down, Section 5.4.2), and
// partitioned structures store the weak non-monotonic intermediate and
// final results.
//
// Expected shape: the UPA advantage compounds -- order of magnitude over
// DIRECT at the larger windows; NT sits in between, paying the doubled
// tuple processing through *two* stateful operators per branch.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::ModeOf;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

PlanPtr Query4(Time window) {
  auto side = [&](int link) {
    return MakeDistinct(
        MakeProject(MakeWindow(MakeStream(link, LblSchema()), window),
                    {kColSrcIp}),
        {0});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), 0, 0);
  AnnotatePatterns(plan.get());
  return plan;
}

void BM_Q4(benchmark::State& state) {
  const Time window = state.range(0);
  const ExecMode mode = ModeOf(state.range(1));
  PlanPtr plan = Query4(window);
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, "BM_Q4", {window, state.range(1)}, *plan, mode, {}, trace);
}

void SweepArgs(benchmark::internal::Benchmark* b) {
  for (Time w : bench_util::WindowSweep()) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

BENCHMARK(BM_Q4)->Apply(SweepArgs)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("q4_distinct_join");
