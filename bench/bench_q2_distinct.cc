// Experiment E2 (paper Query 2): duplicate elimination over one outgoing
// link -- distinct source addresses (E2a) and distinct source-destination
// pairs (E2b, larger output domain). Tests the improved delta operator
// (Section 5.3.1) and the partitioned output structure against the classic
// store-input-and-output implementation used by NT and DIRECT.
//
// Expected shape: UPA (delta) fastest -- it stores no input and promotes
// replacements in O(1); DIRECT's classic operator scans its stored input
// on every output expiration; NT processes twice the tuples.

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::ModeOf;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

PlanPtr Query2(Time window, bool pairs) {
  std::vector<int> cols = pairs ? std::vector<int>{kColSrcIp, kColDstIp}
                                : std::vector<int>{kColSrcIp};
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, LblSchema()), window), cols),
      pairs ? std::vector<int>{0, 1} : std::vector<int>{0});
  AnnotatePatterns(plan.get());
  return plan;
}

void BM_Q2(benchmark::State& state, const char* family, bool pairs) {
  const Time window = state.range(0);
  const ExecMode mode = ModeOf(state.range(1));
  PlanPtr plan = Query2(window, pairs);
  const Trace& trace = LblTrace(1, TraceDurationFor(window));
  RunQuery(state, family, {window, state.range(1)}, *plan, mode, {}, trace);
}

void BM_Q2_DistinctSources(benchmark::State& state) {
  BM_Q2(state, "BM_Q2_DistinctSources", false);
}
void BM_Q2_DistinctPairs(benchmark::State& state) {
  BM_Q2(state, "BM_Q2_DistinctPairs", true);
}

void SourceArgs(benchmark::internal::Benchmark* b) {
  for (Time w : bench_util::WindowSweep()) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

void PairArgs(benchmark::internal::Benchmark* b) {
  // Nearly every tuple is a distinct (src, dst) pair, so the output --
  // and with it the paper's lambda1*No/2 output-probe cost -- is as large
  // as the window in every strategy; keep the sweep short.
  for (Time w : {1000, 2000, 5000}) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

BENCHMARK(BM_Q2_DistinctSources)->Apply(SourceArgs)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Q2_DistinctPairs)->Apply(PairArgs)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("q2_distinct");
