// Experiment E3 (paper Query 3): negation of two outgoing links on the
// source address -- which sources used link 0 but not link 1? Tests the
// two storage choices for strict non-monotonic results (Section 5.3.2):
// the partitioned structure with scan-on-negative deletion versus the
// negative tuple approach with a hash table on the negation attribute
// (the Section 5.4.3 hybrid, here with negation at the root).
//
// The premature-expiration frequency is controlled by shifting a fraction
// of link 1's source addresses into a disjoint range: overlap 1.0 means
// most answer deletions are premature (an arrival on link 1 kills an
// answer tuple); overlap 0.0 means none ever are. The expected crossover:
// the hash/negative choice wins at high overlap, the partitioned/direct
// choice wins at low overlap -- exactly the decision the cost model's
// EstimatePrematureFrequency drives.

#include "bench/bench_util.h"

#include "common/rng.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::ModeOf;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

PlanPtr Query3(Time window) {
  auto src = [&](int link) {
    return MakeProject(MakeWindow(MakeStream(link, LblSchema()), window),
                       {kColSrcIp});
  };
  PlanPtr plan = MakeNegate(src(0), src(1), 0, 0);
  AnnotatePatterns(plan.get());
  return plan;
}

/// Rewrites a fraction of link-1 source addresses into a disjoint range.
Trace WithOverlap(const Trace& base, double overlap, uint64_t seed) {
  Rng rng(seed);
  Trace out = base;
  for (TraceEvent& e : out.events) {
    if (e.stream == 1 && !rng.NextBool(overlap)) {
      e.tuple.fields[kColSrcIp] =
          Value{AsInt(e.tuple.fields[kColSrcIp]) + 1'000'000};
    }
  }
  return out;
}

void BM_Q3_ModeSweep(benchmark::State& state) {
  const Time window = state.range(0);
  const ExecMode mode = ModeOf(state.range(1));
  PlanPtr plan = Query3(window);
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, "BM_Q3_ModeSweep", {window, state.range(1)}, *plan, mode, {},
           trace);
}

void BM_Q3_StrStrategy(benchmark::State& state) {
  // UPA with the two STR storage strategies, sweeping the value overlap.
  const double overlap = static_cast<double>(state.range(0)) / 100.0;
  const Time window = 10000;
  PlanPtr plan = Query3(window);
  const Trace trace =
      WithOverlap(LblTrace(2, TraceDurationFor(window)), overlap, 7);
  PlannerOptions options;
  options.str_strategy = state.range(1) == 0 ? StrStrategy::kPartitioned
                                             : StrStrategy::kNegativeTuples;
  RunQuery(state, "BM_Q3_StrStrategy", {state.range(0), state.range(1)}, *plan,
           ExecMode::kUpa, options, trace,
           state.range(1) == 0 ? "UPA-partitioned" : "UPA-negative");
  state.counters["overlap"] = overlap;
}

void ModeArgs(benchmark::internal::Benchmark* b) {
  for (Time w : {1000, 2000, 5000, 10000}) {
    for (int mode = 0; mode < 3; ++mode) b->Args({w, mode});
  }
}

void OverlapArgs(benchmark::internal::Benchmark* b) {
  for (int overlap_pct : {0, 25, 50, 75, 100}) {
    for (int strategy = 0; strategy < 2; ++strategy) {
      b->Args({overlap_pct, strategy});
    }
  }
}

BENCHMARK(BM_Q3_ModeSweep)->Apply(ModeArgs)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Q3_StrStrategy)->Apply(OverlapArgs)->UseManualTime()->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("q3_negation");
