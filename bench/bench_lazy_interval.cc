// Experiment E8: the lazy expiration interval parameter (Section 6.1:
// "the lazy expiration interval is set to five percent of the window
// size. Increasing this interval gives slightly better performance").
//
// Runs the Query 1 (ftp) plan under UPA, sweeping the interval from 1% to
// 50% of the window. Expected shape: execution time decreases mildly with
// a longer interval (fewer physical purges of the lazily maintained join
// state), while the peak state size grows (expired tuples linger longer).

#include "bench/bench_util.h"

namespace upa {
namespace {

using bench_util::LblTrace;
using bench_util::RunQuery;
using bench_util::TraceDurationFor;

void BM_LazyInterval(benchmark::State& state) {
  const Time window = 20000;
  auto side = [&](int link) {
    return MakeSelect(
        MakeWindow(MakeStream(link, LblSchema()), window),
        {Predicate{kColProtocol, CmpOp::kEq, Value{int64_t{kProtoFtp}}}});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
  AnnotatePatterns(plan.get());
  PlannerOptions options;
  options.lazy_fraction = static_cast<double>(state.range(0)) / 100.0;
  const Trace& trace = LblTrace(2, TraceDurationFor(window));
  RunQuery(state, "BM_LazyInterval", {state.range(0)}, *plan, ExecMode::kUpa,
           options, trace);
  state.counters["lazy_pct"] = static_cast<double>(state.range(0));
}

BENCHMARK(BM_LazyInterval)
    ->Arg(1)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("lazy_interval");
