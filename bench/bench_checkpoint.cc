// Durability experiment: what the WAL and pattern-aware checkpoints cost.
//
//   BM_WalAppendOverhead : ingest throughput with durability off vs on —
//                          the WAL sits on the ingest path (every tuple is
//                          framed, CRC'd and written before it is routed),
//                          so the delta is the per-tuple durability tax.
//   BM_CheckpointWrite   : wall time and size of one checkpoint as the
//                          query window grows. Retained state is truncated
//                          to the recovery horizon, so the checkpoint
//                          scales with the window, not with the trace.
//   BM_Recovery          : Engine::StartFromCheckpoint wall time for the
//                          same windows — manifest load plus WAL-suffix
//                          replay into fresh replicas.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>

#include "bench/bench_util.h"
#include "engine/engine.h"

namespace upa {
namespace {

using bench_util::LblTrace;

namespace fs = std::filesystem;

/// Fresh scratch directory per benchmark run; removed on destruction so
/// repeated runs never recover each other's state.
struct ScratchDir {
  explicit ScratchDir(const char* tag) {
    path = fs::temp_directory_path() /
           ("upa_bench_ckpt_" + std::string(tag) + "_" +
            std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  fs::path path;
};

/// The durable workload: a duplicate-eliminating query (weakest pattern,
/// FIFO state) over one LBL link. The window is the experiment knob — it
/// sets the recovery horizon and therefore how much ingest a checkpoint
/// retains.
std::string SourcesSql(Time window) {
  return "SELECT DISTINCT src_ip FROM link0 [RANGE " +
         std::to_string(window) + "]";
}

EngineOptions DurableOptions(const fs::path& dir) {
  EngineOptions opts;
  opts.default_shards = 2;
  opts.durability.dir = dir.string();
  return opts;
}

void BM_WalAppendOverhead(benchmark::State& state) {
  const bool durable = state.range(0) != 0;
  const Trace& trace = LblTrace(1, 4000);
  auto& collector = bench_json::Collector::Global();
  for (auto _ : state) {
    ScratchDir scratch("wal");
    EngineOptions opts;
    opts.default_shards = 2;
    if (durable) opts.durability.dir = scratch.path.string();
    Engine engine(opts);
    engine.DeclareStream("link0", LblSchema());
    benchmark::DoNotOptimize(
        engine.RegisterSql("sources", SourcesSql(800)));
    const auto start = std::chrono::steady_clock::now();
    engine.IngestTrace(trace);
    engine.Flush();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const EngineMetrics m = engine.Metrics();
    engine.Stop();
    state.SetIterationTime(secs);
    const double tuples = static_cast<double>(trace.events.size());
    state.counters["ktuples_per_s"] = tuples / secs / 1000.0;
    state.counters["wal_records"] =
        static_cast<double>(m.durability.wal_records);
    state.counters["wal_mb"] =
        static_cast<double>(m.durability.wal_bytes) / (1024.0 * 1024.0);

    bench_json::Run run;
    run.family = "BM_WalAppendOverhead";
    run.name = std::string("BM_WalAppendOverhead/") +
               (durable ? "durable" : "volatile");
    run.args = {durable ? 1 : 0};
    run.wall_seconds = secs;
    run.counters["ktuples_per_s"] = state.counters["ktuples_per_s"];
    run.counters["wal_records"] = state.counters["wal_records"];
    run.counters["wal_mb"] = state.counters["wal_mb"];
    collector.Add(std::move(run));
  }
}

void BM_CheckpointWrite(benchmark::State& state) {
  const Time window = state.range(0);
  const Trace& trace = LblTrace(1, 4000);
  auto& collector = bench_json::Collector::Global();
  for (auto _ : state) {
    ScratchDir scratch("write");
    Engine engine(DurableOptions(scratch.path));
    engine.DeclareStream("link0", LblSchema());
    benchmark::DoNotOptimize(
        engine.RegisterSql("sources", SourcesSql(window)));
    engine.IngestTrace(trace);
    engine.Flush();
    const auto start = std::chrono::steady_clock::now();
    std::string error;
    if (!engine.Checkpoint(&error)) {
      std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
      state.SkipWithError("checkpoint failed");
      return;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const EngineMetrics m = engine.Metrics();
    engine.Stop();
    state.SetIterationTime(secs);
    state.counters["checkpoint_kb"] =
        static_cast<double>(m.durability.last_checkpoint_bytes) / 1024.0;
    state.counters["retained_tuples"] =
        static_cast<double>(m.durability.last_retained_tuples);
    state.counters["truncated_tuples"] =
        static_cast<double>(m.durability.last_truncated_tuples);

    bench_json::Run run;
    run.family = "BM_CheckpointWrite";
    run.name = "BM_CheckpointWrite/" + std::to_string(window);
    run.args = {window};
    run.wall_seconds = secs;
    run.counters["checkpoint_kb"] = state.counters["checkpoint_kb"];
    run.counters["retained_tuples"] = state.counters["retained_tuples"];
    run.counters["truncated_tuples"] = state.counters["truncated_tuples"];
    collector.Add(std::move(run));
  }
}

void BM_Recovery(benchmark::State& state) {
  const Time window = state.range(0);
  const Trace& trace = LblTrace(1, 4000);
  auto& collector = bench_json::Collector::Global();
  for (auto _ : state) {
    ScratchDir scratch("recover");
    {
      Engine engine(DurableOptions(scratch.path));
      engine.DeclareStream("link0", LblSchema());
      benchmark::DoNotOptimize(
          engine.RegisterSql("sources", SourcesSql(window)));
      engine.IngestTrace(trace);
      engine.Flush();
      std::string error;
      if (!engine.Checkpoint(&error)) {
        std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
        state.SkipWithError("checkpoint failed");
        return;
      }
      engine.Stop();
    }
    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<Engine> recovered =
        Engine::StartFromCheckpoint(scratch.path.string());
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const EngineMetrics m = recovered->Metrics();
    recovered->Stop();
    state.SetIterationTime(secs);
    state.counters["retained_replayed"] =
        static_cast<double>(m.durability.recovery_retained_replayed);
    state.counters["wal_records_replayed"] =
        static_cast<double>(m.durability.recovery_wal_records_replayed);

    bench_json::Run run;
    run.family = "BM_Recovery";
    run.name = "BM_Recovery/" + std::to_string(window);
    run.args = {window};
    run.wall_seconds = secs;
    run.counters["retained_replayed"] = state.counters["retained_replayed"];
    run.counters["wal_records_replayed"] =
        state.counters["wal_records_replayed"];
    collector.Add(std::move(run));
  }
}

BENCHMARK(BM_WalAppendOverhead)
    ->Arg(0)
    ->Arg(1)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_CheckpointWrite)
    ->Arg(200)
    ->Arg(800)
    ->Arg(3200)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Recovery)
    ->Arg(200)
    ->Arg(800)
    ->Arg(3200)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace upa

UPA_BENCH_MAIN("checkpoint");
