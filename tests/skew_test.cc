// Zipf differential battery for heavy-light partitioned state
// (DESIGN.md Section 16). Heavy-light partitioning is an execution
// strategy, not a semantics: for every heavy threshold the engine must
// produce results, digests, and operator counters identical to the
// disabled-path oracle (heavy_threshold = 0, which constructs no
// HeavyLightBuffer at all), which is itself pinned to the reference
// evaluator -- the same differential structure batch_test.cc uses for
// batched ingest. Four suites:
//
//   * SkewDifferentialTest -- the five paper queries replayed over LBL
//     traces at source_zipf in {0, 0.8, 1.0, 1.4}, at heavy thresholds
//     {2, 32} x batch sizes {1, 64}, against the threshold=0 run and the
//     reference oracle: canonical rows and serde::RowsDigest at every
//     snapshot barrier plus the final PipelineStats. At high skew with
//     the low threshold the battery additionally asserts the mechanism
//     actually engaged (promotions and heavy probe hits observed), so a
//     silently-dead heavy path cannot pass.
//   * SkewChaosTest -- 50 seeds of random plan + random trace at
//     thresholds {0, 2, 32} x batch {1, 64}; all runs must agree with
//     the reference oracle.
//   * KeyFrequencyTrackerTest -- determinism, space bound, top-K order,
//     and decay of the frequency sketch.
//   * HeavyLightBufferTest -- order-replication properties probed
//     directly against unwrapped control buffers for every ProbeOrder,
//     including demote + re-promote reproducing identical enumeration
//     state and negative-tuple erasure from heavy copies.
//
// All engine runs arm the update-pattern invariant checker, so a heavy
// probe that violated an operator's Section 5.2 expiration contract
// aborts rather than merely diffing.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "engine/engine.h"
#include "ref/reference.h"
#include "state/heavy_light_buffer.h"
#include "state/list_buffer.h"
#include "state/partitioned_buffer.h"
#include "state/serde.h"
#include "tests/random_plan_util.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace {

using testing_util::Canonical;
using testing_util::RandomPlan;
using testing_util::RandomTrace;
using testing_util::RowsToString;
using testing_util::T;

constexpr Time kWindow = 60;
constexpr int kLowThreshold = 2;
constexpr int kHighThreshold = 32;

void CollectStreams(const PlanNode& n, std::set<int>* out) {
  if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
    out->insert(n.stream_id);
  }
  for (const auto& c : n.children) CollectStreams(*c, out);
}

// --- The five paper queries over the LBL schema (batch_test shapes). ---

PlanPtr Query1() {  // Join of selections on the source address.
  auto side = [](int link) {
    return MakeSelect(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                      {Predicate{kColProtocol, CmpOp::kEq,
                                 Value{int64_t{kProtoTelnet}}}});
  };
  return MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
}

PlanPtr Query2() {  // Distinct source addresses on one link.
  return MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, LblSchema()), kWindow),
                  {kColSrcIp}),
      {0});
}

PlanPtr Query3() {  // Negation of two links on the source address.
  auto src = [](int link) {
    return MakeProject(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                       {kColSrcIp});
  };
  return MakeNegate(src(0), src(1), 0, 0);
}

PlanPtr Query4() {  // Join of per-link distinct source addresses.
  auto side = [](int link) {
    return MakeDistinct(
        MakeProject(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                    {kColSrcIp}),
        {0});
  };
  return MakeJoin(side(0), side(1), 0, 0);
}

PlanPtr Query5() {  // Negation above a join (Figure 6 pull-up shape).
  return MakeNegate(
      MakeJoin(MakeProject(MakeWindow(MakeStream(0, LblSchema()), kWindow),
                           {kColSrcIp}),
               MakeSelect(MakeWindow(MakeStream(2, LblSchema()), kWindow),
                          {Predicate{kColProtocol, CmpOp::kEq,
                                     Value{int64_t{kProtoTelnet}}}}),
               0, kColSrcIp),
      MakeProject(MakeWindow(MakeStream(1, LblSchema()), kWindow), {0}), 0,
      0);
}

struct PaperQuery {
  std::string name;
  PlanPtr (*make)();
  std::vector<int> compare_cols;  ///< Empty = all (see engine_test.cc).
  int links;
};

std::vector<PaperQuery> PaperQueries() {
  std::vector<PaperQuery> qs;
  qs.push_back({"q1", &Query1, {}, 2});
  qs.push_back({"q2", &Query2, {}, 1});
  qs.push_back({"q3", &Query3, {}, 2});
  qs.push_back({"q4", &Query4, {}, 2});
  qs.push_back({"q5", &Query5, {0}, 3});
  return qs;
}

/// Everything one replay observes. Runs of the same query + trace at
/// different heavy thresholds / batch sizes must compare equal on every
/// field except `heavy` (the only counters the knob is allowed to move).
struct RunRecord {
  std::vector<std::vector<std::vector<Value>>> checkpoints;
  std::vector<uint64_t> digests;
  PipelineStats stats;
  HeavyLightStats heavy;
};

/// Replays `trace` through an engine running `pq` with the given heavy
/// threshold and batch size, snapshotting every 75 ticks plus a drain.
RunRecord RunConfigured(const PaperQuery& pq, const Trace& trace,
                        int heavy_threshold, size_t batch_size) {
  PlanPtr plan = pq.make();
  AnnotatePatterns(plan.get());

  EngineOptions opts;
  opts.default_shards = 2;
  opts.queue_capacity = 256;
  opts.max_batch = 32;
  opts.batch_size = batch_size;
  opts.check_invariants = true;
  Engine engine(opts);
  QueryOptions qopts;
  // Explicit, including 0: the disabled leg must stay the oracle even
  // when the suite itself runs under UPA_HEAVY_THRESHOLD (the CI env
  // variant) -- only a negative value defers to the environment.
  qopts.planner.heavy_threshold = heavy_threshold;
  const RegisterResult reg =
      engine.RegisterPlan(pq.name, std::move(plan), qopts);
  EXPECT_TRUE(reg.ok) << reg.error;

  RunRecord rec;
  const Time checkpoint_every = 75;
  Time next_checkpoint = checkpoint_every;
  std::vector<Tuple> view;
  auto snapshot_at = [&](Time ts) {
    EXPECT_TRUE(engine.Snapshot(pq.name, &view, ts));
    rec.checkpoints.push_back(Canonical(view, pq.compare_cols));
    rec.digests.push_back(serde::RowsDigest(view));
  };

  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    while (i < n && trace.events[i].tuple.ts == ts) {
      engine.Ingest(trace.events[i].stream, trace.events[i].tuple);
      ++i;
    }
    if (ts >= next_checkpoint) {
      next_checkpoint = ts + checkpoint_every;
      snapshot_at(ts);
    }
  }
  snapshot_at(trace.LastTs() + 2 * kWindow);  // Drain.
  for (const QueryMetrics& qm : engine.Metrics().queries) {
    if (qm.name == pq.name) rec.heavy = qm.heavy;
  }
  engine.Stop();
  EXPECT_TRUE(engine.Stats(pq.name, &rec.stats));
  return rec;
}

void ExpectSameRun(const PaperQuery& pq, const std::string& label,
                   const RunRecord& got, const RunRecord& want) {
  ASSERT_EQ(got.checkpoints.size(), want.checkpoints.size());
  for (size_t c = 0; c < got.checkpoints.size(); ++c) {
    EXPECT_EQ(got.checkpoints[c], want.checkpoints[c])
        << pq.name << " " << label << " checkpoint " << c << "\nheavy:\n"
        << RowsToString(got.checkpoints[c]) << "oracle:\n"
        << RowsToString(want.checkpoints[c]);
    EXPECT_EQ(got.digests[c], want.digests[c])
        << pq.name << " " << label << " checkpoint " << c;
  }
  // Operator counters, not just views: a heavy probe that enumerated a
  // different replacement representative or delivered extra (later-
  // cancelled) tuples would diff here even with equal snapshots.
  EXPECT_EQ(got.stats.ingested, want.stats.ingested) << pq.name;
  EXPECT_EQ(got.stats.delivered, want.stats.delivered)
      << pq.name << " " << label;
  EXPECT_EQ(got.stats.negatives_delivered, want.stats.negatives_delivered)
      << pq.name << " " << label;
  EXPECT_EQ(got.stats.results_pos, want.stats.results_pos)
      << pq.name << " " << label;
  EXPECT_EQ(got.stats.results_neg, want.stats.results_neg)
      << pq.name << " " << label;
}

class SkewDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SkewDifferentialTest, PaperQueryMatchesDisabledOracleAcrossSkews) {
  const PaperQuery pq =
      std::move(PaperQueries()[static_cast<size_t>(GetParam())]);
  for (double zipf : {0.0, 0.8, 1.0, 1.4}) {
    LblTraceConfig cfg;
    cfg.num_links = pq.links;
    cfg.duration = 300;
    cfg.num_sources = 40;
    cfg.source_zipf = zipf;
    const Trace trace = GenerateLblTrace(cfg);
    SCOPED_TRACE(pq.name + " zipf=" + std::to_string(zipf));

    // Reference oracle for the final view; the disabled-path engine run
    // is additionally pinned to it per-checkpoint by engine_test.
    PlanPtr oracle_plan = pq.make();
    AnnotatePatterns(oracle_plan.get());
    std::set<int> streams;
    CollectStreams(*oracle_plan, &streams);
    ReferenceEvaluator oracle(oracle_plan.get());
    for (const TraceEvent& e : trace.events) {
      if (streams.count(e.stream) > 0) oracle.Observe(e.stream, e.tuple);
    }

    const RunRecord base = RunConfigured(pq, trace, /*heavy_threshold=*/0, 1);
    ASSERT_FALSE(base.checkpoints.empty());
    ASSERT_GT(base.stats.ingested, 0u);  // The diff must cover real work.
    EXPECT_EQ(base.heavy.heavy_keys + base.heavy.promotions, 0u)
        << pq.name << ": disabled path must construct no heavy state";
    EXPECT_EQ(base.checkpoints.back(),
              Canonical(oracle.EvalAt(trace.LastTs() + 2 * kWindow),
                        pq.compare_cols))
        << pq.name << ": disabled path vs oracle";

    for (int threshold : {kLowThreshold, kHighThreshold}) {
      for (size_t batch : {size_t{1}, size_t{64}}) {
        const std::string label = "threshold=" + std::to_string(threshold) +
                                  " batch=" + std::to_string(batch);
        const RunRecord got = RunConfigured(pq, trace, threshold, batch);
        ExpectSameRun(pq, label, got, base);
        // The skewed join must actually exercise the heavy path at the
        // low threshold -- otherwise this battery would pass with the
        // decorator silently never promoting.
        if (pq.name == "q1" && zipf >= 1.0 && threshold == kLowThreshold &&
            batch == 1) {
          EXPECT_GT(got.heavy.promotions, 0u) << label;
          EXPECT_GT(got.heavy.heavy_probe_hits, 0u) << label;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, SkewDifferentialTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return PaperQueries()[static_cast<size_t>(
                                                     info.param)]
                               .name;
                         });

// --- Random-plan sweep: the chaos corpus across heavy thresholds. ---

constexpr Time kDrain = 40;

struct Scenario {
  PlanPtr plan;
  Trace trace;
  std::set<int> streams;
};

Scenario BuildScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.plan = RandomPlan(rng, static_cast<int>(1 + rng.NextBelow(2)));
  AnnotatePatterns(s.plan.get());
  s.trace = RandomTrace(rng, 120);
  const std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    if (n.kind == PlanOpKind::kStream) s.streams.insert(n.stream_id);
    for (const auto& c : n.children) collect(*c);
  };
  collect(*s.plan);
  return s;
}

std::vector<std::vector<Value>> RunScenario(uint64_t seed, int heavy_threshold,
                                            size_t batch_size) {
  Scenario s = BuildScenario(seed);
  EngineOptions opts;
  opts.default_shards = 2;
  opts.queue_capacity = 64;
  opts.max_batch = 8;
  opts.batch_size = batch_size;
  opts.check_invariants = true;
  Engine engine(opts);
  QueryOptions qopts;
  qopts.planner.heavy_threshold = heavy_threshold;
  const RegisterResult r = engine.RegisterPlan("q", std::move(s.plan), qopts);
  EXPECT_TRUE(r.ok) << r.error;
  engine.IngestTrace(s.trace);
  engine.AdvanceTo(s.trace.LastTs() + kDrain);
  std::vector<Tuple> view;
  EXPECT_TRUE(engine.Snapshot("q", &view));
  engine.Stop();
  return Canonical(view);
}

class SkewChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SkewChaosTest, RandomPlanAgreesAcrossHeavyThresholds) {
  const uint64_t seed = GetParam();
  const Scenario s = BuildScenario(seed);
  ASSERT_TRUE(IsValidPlan(*s.plan)) << s.plan->ToString();
  SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + s.plan->ToString());

  ReferenceEvaluator ref(s.plan.get());
  for (const TraceEvent& e : s.trace.events) {
    if (s.streams.count(e.stream) > 0) ref.Observe(e.stream, e.tuple);
  }
  const auto oracle = Canonical(ref.EvalAt(s.trace.LastTs() + kDrain));

  for (int threshold : {0, kLowThreshold, kHighThreshold}) {
    for (size_t batch : {size_t{1}, size_t{64}}) {
      const auto rows = RunScenario(seed, threshold, batch);
      EXPECT_EQ(rows, oracle)
          << "threshold=" << threshold << " batch=" << batch << "\nengine:\n"
          << RowsToString(rows) << "oracle:\n"
          << RowsToString(oracle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewChaosTest,
                         ::testing::Range<uint64_t>(1, 51));

// --- Frequency sketch properties. ---

TEST(KeyFrequencyTrackerTest, DeterministicForFixedIngestOrder) {
  KeyFrequencyTracker a(32), b(32);
  Rng rng(7);
  std::vector<Value> observed;
  for (int i = 0; i < 5000; ++i) {
    // Quadratic skew: low values dominate, tail churns the sketch.
    const int64_t v = static_cast<int64_t>(rng.NextBelow(20) *
                                           (1 + rng.NextBelow(20)));
    observed.emplace_back(v);
  }
  for (size_t i = 0; i < observed.size(); ++i) {
    a.Observe(observed[i]);
    b.Observe(observed[i]);
    if (i % 500 == 499) {
      a.Decay();
      b.Decay();
    }
  }
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.HeavyKeys(1, 32), b.HeavyKeys(1, 32));
  for (const Value& v : a.HeavyKeys(1, 32)) {
    EXPECT_EQ(a.CountOf(v), b.CountOf(v));
  }
}

TEST(KeyFrequencyTrackerTest, SpaceBoundHoldsUnderDistinctFlood) {
  KeyFrequencyTracker t(16);
  for (int64_t i = 0; i < 10000; ++i) {
    t.Observe(Value{i});
    ASSERT_LE(t.size(), 16u);
  }
  EXPECT_LE(t.HeavyKeys(1, 1000).size(), 16u);
}

TEST(KeyFrequencyTrackerTest, HeavyKeysOrderedAndTruncated) {
  KeyFrequencyTracker t(8);
  for (int i = 0; i < 9; ++i) t.Observe(Value{int64_t{3}});
  for (int i = 0; i < 9; ++i) t.Observe(Value{int64_t{1}});  // Tie with 3.
  for (int i = 0; i < 5; ++i) t.Observe(Value{int64_t{2}});
  t.Observe(Value{int64_t{4}});

  const auto all = t.HeavyKeys(1, 8);
  ASSERT_EQ(all.size(), 4u);
  // Count descending, key ascending on ties.
  EXPECT_EQ(all[0], Value{int64_t{1}});
  EXPECT_EQ(all[1], Value{int64_t{3}});
  EXPECT_EQ(all[2], Value{int64_t{2}});
  EXPECT_EQ(all[3], Value{int64_t{4}});

  EXPECT_EQ(t.HeavyKeys(5, 8).size(), 3u);   // Threshold filter.
  EXPECT_EQ(t.HeavyKeys(1, 2).size(), 2u);   // Top-K truncation.
  EXPECT_EQ(t.HeavyKeys(1, 2)[0], Value{int64_t{1}});
}

TEST(KeyFrequencyTrackerTest, DecayHalvesAndEvictsCooledKeys) {
  KeyFrequencyTracker t(8);
  for (int i = 0; i < 8; ++i) t.Observe(Value{int64_t{1}});
  t.Observe(Value{int64_t{2}});
  t.Decay();
  EXPECT_EQ(t.CountOf(Value{int64_t{1}}), 4u);
  EXPECT_EQ(t.CountOf(Value{int64_t{2}}), 0u);  // 1 -> 0: evicted.
  EXPECT_EQ(t.size(), 1u);
  t.Decay();
  t.Decay();
  t.Decay();
  EXPECT_EQ(t.size(), 0u);  // Fully cooled sketch frees all slots.
}

TEST(KeyFrequencyTrackerTest, SpaceSavingInheritsEvictedCount) {
  KeyFrequencyTracker t(2);
  for (int i = 0; i < 3; ++i) t.Observe(Value{int64_t{10}});
  t.Observe(Value{int64_t{20}});
  // Full sketch: 30 replaces the smallest resident (20, count 1) and
  // inherits count + 1 = 2, the space-saving overestimate.
  t.Observe(Value{int64_t{30}});
  EXPECT_EQ(t.CountOf(Value{int64_t{20}}), 0u);
  EXPECT_EQ(t.CountOf(Value{int64_t{30}}), 2u);
  EXPECT_EQ(t.CountOf(Value{int64_t{10}}), 3u);
}

// --- Order-replication properties of the decorator. ---

/// Canonical string of one enumerated tuple (fields + timing identity).
std::string Row(const Tuple& t) {
  std::string s = "[ts=" + std::to_string(t.ts) +
                  " exp=" + std::to_string(t.exp) + "]";
  for (const Value& v : t.fields) s += " " + ToString(v);
  return s;
}

std::vector<std::string> MatchSequence(const StateBuffer& buf, int col,
                                       const Value& v) {
  std::vector<std::string> out;
  buf.ForEachMatch(col, v, [&](const Tuple& t) { out.push_back(Row(t)); });
  return out;
}

struct OrderCase {
  std::string name;
  HeavyLightBuffer::ProbeOrder order;
  bool lazy = false;       ///< Partitioned cases only.
  bool partitioned = false;
};

/// Builds the wrapped buffer and an identically-configured unwrapped
/// control for one case. `partition_span` receives the geometry the
/// decorator must replicate.
std::unique_ptr<StateBuffer> MakeInner(const OrderCase& c) {
  if (!c.partitioned) return std::make_unique<ListBuffer>();
  auto part = std::make_unique<PartitionedBuffer>(4, kWindow);
  if (c.lazy) part->SetLazy(kWindow / 4);
  return part;
}

std::vector<OrderCase> OrderCases() {
  return {
      {"arrival_list", HeavyLightBuffer::ProbeOrder::kArrival, false, false},
      {"partition_lazy", HeavyLightBuffer::ProbeOrder::kPartitionArrival,
       true, true},
      {"partition_eager", HeavyLightBuffer::ProbeOrder::kPartitionExp, false,
       true},
  };
}

TEST(HeavyLightBufferTest, HeavyProbesReplicateInnerEnumerationOrder) {
  for (const OrderCase& c : OrderCases()) {
    SCOPED_TRACE(c.name);
    auto inner = MakeInner(c);
    const Time block_span =
        c.partitioned
            ? static_cast<PartitionedBuffer*>(inner.get())->block_span()
            : kWindow;
    HeavyLightBuffer::Options opts;
    opts.threshold = 2;
    opts.epoch = kWindow / 4;
    HeavyLightBuffer wrapped(std::move(inner), /*key_col=*/0, c.order,
                             block_span, /*num_partitions=*/4, opts);
    auto control = MakeInner(c);

    Rng rng(11);
    Time now = 0;
    const auto step = [&](Time to) {
      now = to;
      wrapped.Advance(now, nullptr);
      control->Advance(now, nullptr);
    };
    const auto probe_all = [&] {
      for (int64_t k = 0; k < 6; ++k) {
        EXPECT_EQ(MatchSequence(wrapped, 0, Value{k}),
                  MatchSequence(*control, 0, Value{k}))
            << c.name << " key " << k << " at t=" << now;
      }
    };

    for (Time ts = 1; ts <= 4 * kWindow; ++ts) {
      step(ts);
      for (int j = 0; j < 2; ++j) {
        // Skewed keys: 0 and 1 dominate and go heavy; 2..5 stay light.
        const int64_t key = rng.NextBelow(3) != 0
                                ? static_cast<int64_t>(rng.NextBelow(2))
                                : static_cast<int64_t>(2 + rng.NextBelow(4));
        const Tuple t = T({key, static_cast<int64_t>(ts)}, ts,
                          ts + 1 + rng.NextInRange(0, kWindow - 2));
        wrapped.Insert(t);
        control->Insert(t);
      }
      probe_all();  // Trains the sketch and diffs every enumeration.
    }
    EXPECT_FALSE(wrapped.HeavyKeysForTest().empty())
        << c.name << ": the skewed keys must actually promote";
    // Drain: enumerations must track expiration exactly.
    for (Time ts = 4 * kWindow + 1; ts <= 5 * kWindow + 2; ++ts) {
      step(ts);
      probe_all();
    }
    EXPECT_EQ(wrapped.LiveCount(), control->LiveCount());
  }
}

TEST(HeavyLightBufferTest, DemoteThenRepromoteReproducesEnumerationState) {
  HeavyLightBuffer::Options opts;
  opts.threshold = 4;
  opts.epoch = kWindow;  // Manual repartitioning via the test hook.
  HeavyLightBuffer buf(std::make_unique<ListBuffer>(), 0,
                       HeavyLightBuffer::ProbeOrder::kArrival, kWindow, 4,
                       opts);
  const Value key{int64_t{7}};
  for (Time ts = 1; ts <= 10; ++ts) {
    buf.Advance(ts, nullptr);
    buf.Insert(T({7, static_cast<int64_t>(ts)}, ts, ts + kWindow));
  }
  for (int i = 0; i < 8; ++i) buf.ForEachMatch(0, key, [](const Tuple&) {});
  // Second-chance admission: the first barrier only marks the key
  // pending; the second confirms and promotes.
  buf.RepartitionForTest();
  ASSERT_TRUE(buf.HeavyKeysForTest().empty());
  buf.RepartitionForTest();
  ASSERT_EQ(buf.HeavyKeysForTest(), std::vector<Value>{key});

  std::vector<std::string> before;
  for (const Tuple& t : buf.HeavyEnumerationForTest(key)) {
    before.push_back(Row(t));
  }
  ASSERT_EQ(before.size(), 10u);
  ASSERT_EQ(before, MatchSequence(buf.inner(), 0, key));

  // Each repartition decays the sketch; without fresh probes the key
  // cools below the threshold and is demoted.
  int rounds = 0;
  while (!buf.HeavyKeysForTest().empty() && rounds < 10) {
    buf.RepartitionForTest();
    ++rounds;
  }
  ASSERT_TRUE(buf.HeavyKeysForTest().empty()) << "never demoted";
  EXPECT_TRUE(buf.HeavyEnumerationForTest(key).empty());

  // Re-promote (again via qualify-then-confirm): the rebuilt copy vector
  // must equal the original one.
  for (int i = 0; i < 8; ++i) buf.ForEachMatch(0, key, [](const Tuple&) {});
  buf.RepartitionForTest();
  buf.RepartitionForTest();
  ASSERT_EQ(buf.HeavyKeysForTest(), std::vector<Value>{key});
  std::vector<std::string> after;
  for (const Tuple& t : buf.HeavyEnumerationForTest(key)) {
    after.push_back(Row(t));
  }
  EXPECT_EQ(after, before);

  HeavyLightStats hl;
  buf.CollectHeavyLight(&hl);
  EXPECT_EQ(hl.promotions, 2u);
  EXPECT_EQ(hl.demotions, 1u);
  EXPECT_EQ(hl.heavy_keys, 1u);
}

TEST(HeavyLightBufferTest, EraseOneMatchRemovesHeavyCopies) {
  HeavyLightBuffer::Options opts;
  opts.threshold = 2;
  opts.epoch = kWindow;
  HeavyLightBuffer buf(std::make_unique<ListBuffer>(), 0,
                       HeavyLightBuffer::ProbeOrder::kArrival, kWindow, 4,
                       opts);
  ListBuffer control;
  const Value key{int64_t{5}};
  std::vector<Tuple> stored;
  for (Time ts = 1; ts <= 6; ++ts) {
    buf.Advance(ts, nullptr);
    control.Advance(ts, nullptr);
    const Tuple t = T({5, static_cast<int64_t>(ts)}, ts, ts + kWindow);
    buf.Insert(t);
    control.Insert(t);
    stored.push_back(t);
  }
  for (int i = 0; i < 4; ++i) buf.ForEachMatch(0, key, [](const Tuple&) {});
  buf.RepartitionForTest();  // Qualify (pending).
  buf.RepartitionForTest();  // Confirm and promote.
  ASSERT_EQ(buf.HeavyKeysForTest(), std::vector<Value>{key});

  // Negative-tuple-style erasure of a middle element must hit the heavy
  // copy too, keeping the decorated enumeration equal to the control's.
  ASSERT_TRUE(buf.EraseOneMatch(stored[2]));
  ASSERT_TRUE(control.EraseOneMatch(stored[2]));
  EXPECT_EQ(MatchSequence(buf, 0, key), MatchSequence(control, 0, key));
  EXPECT_EQ(buf.HeavyEnumerationForTest(key).size(), 5u);
  EXPECT_FALSE(buf.EraseOneMatch(stored[2]));  // Already gone.
}

}  // namespace
}  // namespace upa
