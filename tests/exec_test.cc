#include <gtest/gtest.h>

#include "exec/pipeline.h"
#include "exec/replay.h"
#include "exec/view.h"
#include "ops/join.h"
#include "ops/stateless.h"
#include "ops/window.h"
#include "state/hash_buffer.h"
#include "state/list_buffer.h"
#include "tests/test_util.h"
#include "workload/trace.h"

namespace upa {
namespace {

using testing_util::IntSchema;
using testing_util::T;

TEST(BufferViewTest, TimeExpirationRemovesResults) {
  BufferView view(std::make_unique<ListBuffer>(), /*time_expiration=*/true);
  view.Apply(T({1}, 1, 10));
  view.Apply(T({2}, 2, 20));
  EXPECT_EQ(view.Size(), 2u);
  view.AdvanceTime(10);
  EXPECT_EQ(view.Size(), 1u);
  EXPECT_EQ(AsInt(view.Snapshot()[0].fields[0]), 2);
}

TEST(BufferViewTest, NegativeTuplesRemoveWithoutClock) {
  BufferView view(std::make_unique<HashBuffer>(0, 8),
                  /*time_expiration=*/false);
  view.Apply(T({1}, 1, 10));
  view.AdvanceTime(50);  // Clock moves, but nothing expires by time.
  EXPECT_EQ(view.Size(), 1u);
  Tuple neg = T({1}, 1, 10);
  neg.negative = true;
  view.Apply(neg);
  EXPECT_EQ(view.Size(), 0u);
}

TEST(GroupArrayViewTest, ReplaceSemanticsAndDrop) {
  GroupArrayView view;
  Tuple t;
  t.fields = {Value{int64_t{1}}, Value{5.0}, Value{int64_t{2}}};
  view.Apply(t);
  ASSERT_NE(view.Lookup(Value{int64_t{1}}), nullptr);
  EXPECT_DOUBLE_EQ(*view.Lookup(Value{int64_t{1}}), 5.0);
  t.fields = {Value{int64_t{1}}, Value{9.0}, Value{int64_t{1}}};
  view.Apply(t);  // Replaces, no growth.
  EXPECT_EQ(view.Size(), 1u);
  EXPECT_DOUBLE_EQ(*view.Lookup(Value{int64_t{1}}), 9.0);
  t.fields = {Value{int64_t{1}}, Value{0.0}, Value{int64_t{0}}};
  view.Apply(t);  // Count 0: group vanishes.
  EXPECT_EQ(view.Size(), 0u);
  EXPECT_EQ(view.Lookup(Value{int64_t{1}}), nullptr);
}

std::unique_ptr<Pipeline> MakeJoinPipeline(bool nt) {
  auto pp = std::make_unique<Pipeline>();
  Pipeline& p = *pp;
  const int w0 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, nt), {});
  const int w1 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, nt), {});
  p.AddOperator(std::make_unique<JoinOp>(
                    IntSchema(2), IntSchema(2), 0, 0,
                    std::make_unique<ListBuffer>(),
                    std::make_unique<ListBuffer>(), !nt),
                {w0, w1});
  p.BindStream(0, w0, 0);
  p.BindStream(1, w1, 0);
  p.SetView(std::make_unique<BufferView>(
      nt ? std::unique_ptr<StateBuffer>(std::make_unique<HashBuffer>(0, 8))
         : std::unique_ptr<StateBuffer>(std::make_unique<ListBuffer>()),
      !nt));
  // A window join is WK, not WKS: results expire at min(constituent exp),
  // which does not follow emission order -- but every deletion is still
  // signalled exactly when the clock crosses it. Every pipeline test
  // below runs with the matching checker armed.
  p.EnableInvariantChecks(PatternInvariant::kPredictable);
  return pp;
}

TEST(PipelineTest, RoutesAndCounts) {
  auto pipeline = MakeJoinPipeline(/*nt=*/false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  p.Tick(2);
  p.Ingest(1, T({1, 20}, 2));
  EXPECT_EQ(p.view().Size(), 1u);
  EXPECT_EQ(p.stats().ingested, 2u);
  EXPECT_EQ(p.stats().results_pos, 1u);
  EXPECT_EQ(p.stats().results_neg, 0u);
  // Result expires with the older constituent at t=11.
  p.Tick(11);
  EXPECT_EQ(p.view().Size(), 0u);
}

TEST(PipelineTest, NtModeCountsNegatives) {
  auto pipeline = MakeJoinPipeline(/*nt=*/true);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  p.Tick(2);
  p.Ingest(1, T({1, 20}, 2));
  EXPECT_EQ(p.view().Size(), 1u);
  p.Tick(50);  // Windows emit negatives; the join relays one result death.
  EXPECT_EQ(p.view().Size(), 0u);
  EXPECT_GT(p.stats().negatives_delivered, 0u);
  EXPECT_EQ(p.stats().results_neg, 1u);
}

TEST(PipelineTest, TickIsIdempotentPerTimestamp) {
  auto pipeline = MakeJoinPipeline(/*nt=*/true);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  p.Tick(50);
  const auto negs = p.stats().negatives_delivered;
  p.Tick(50);  // No double emission.
  EXPECT_EQ(p.stats().negatives_delivered, negs);
}

TEST(PipelineTest, StateAccounting) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  EXPECT_GT(p.StateBytes(), 0u);
  EXPECT_EQ(p.StateTuples(), 1u);  // One join-state tuple, empty view.
}

TEST(PipelineStatsTest, MergeSumsEveryCounter) {
  PipelineStats a;
  a.ingested = 10;
  a.delivered = 20;
  a.negatives_delivered = 3;
  a.results_pos = 7;
  a.results_neg = 2;
  PipelineStats b;
  b.ingested = 1;
  b.delivered = 2;
  b.negatives_delivered = 4;
  b.results_pos = 8;
  b.results_neg = 16;
  a += b;
  EXPECT_EQ(a.ingested, 11u);
  EXPECT_EQ(a.delivered, 22u);
  EXPECT_EQ(a.negatives_delivered, 7u);
  EXPECT_EQ(a.results_pos, 15u);
  EXPECT_EQ(a.results_neg, 18u);
  const PipelineStats c = a + b;
  EXPECT_EQ(c.ingested, 12u);
  EXPECT_EQ(c.results_neg, 34u);
}

TEST(PipelineStatsTest, MergedShardStatsEqualSingleRun) {
  // Two replicas processing a disjoint split of the input must merge to
  // the counters of one pipeline processing everything: the property the
  // engine's per-query stats rollup depends on.
  auto split0 = MakeJoinPipeline(false);
  auto split1 = MakeJoinPipeline(false);
  auto whole = MakeJoinPipeline(false);
  for (Time ts = 1; ts <= 40; ++ts) {
    const int stream = ts % 2;
    const Tuple t = T({ts % 3, ts}, ts);
    whole->Tick(ts);
    whole->Ingest(stream, t);
    // Key-partition by column 0 (the join key), like the engine does.
    Pipeline* shard = (ts % 3) % 2 == 0 ? split0.get() : split1.get();
    shard->Tick(ts);
    shard->Ingest(stream, t);
  }
  const PipelineStats merged = split0->stats() + split1->stats();
  EXPECT_EQ(merged.ingested, whole->stats().ingested);
  EXPECT_EQ(merged.delivered, whole->stats().delivered);
  EXPECT_EQ(merged.results_pos, whole->stats().results_pos);
  EXPECT_EQ(merged.results_neg, whole->stats().results_neg);
}

TEST(PipelineStatsTest, ReentrantDeliveryCountsOncePerHop) {
  // Pins the counting discipline under re-entrant Deliver: one base
  // tuple fanned out to two ingress bindings of the same stream counts
  // once in `ingested` and once per binding in `delivered`; every
  // derived emission adds exactly one delivery per hop it travels.
  Pipeline p;
  const int w0 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, /*nt=*/false), {});
  const int w1 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 20, /*nt=*/false), {});
  p.AddOperator(std::make_unique<UnionOp>(IntSchema(2)), {w0, w1});
  p.BindStream(0, w0, 0);
  p.BindStream(0, w1, 0);
  p.SetView(std::make_unique<BufferView>(std::make_unique<ListBuffer>(),
                                         /*time_expiration=*/true));
  p.Tick(1);
  p.Ingest(0, T({1, 1}, 1));
  EXPECT_EQ(p.stats().ingested, 1u);   // Once per Ingest call.
  // Two window deliveries + two union deliveries (one per window copy).
  EXPECT_EQ(p.stats().delivered, 4u);
  EXPECT_EQ(p.stats().results_pos, 2u);  // Both copies reach the view.
  EXPECT_EQ(p.stats().negatives_delivered, 0u);
}

TEST(PipelineTest, DebugStringShowsWiring) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  const std::string s = p.DebugString();
  EXPECT_NE(s.find("join"), std::string::npos);
  EXPECT_NE(s.find("-> view"), std::string::npos);
}

TEST(PipelineDeathTest, RejectsUnknownStream) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  EXPECT_DEATH(p.Ingest(7, T({1, 1}, 1)), "UPA_CHECK");
}

TEST(PipelineDeathTest, RejectsTupleAheadOfClock) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  EXPECT_DEATH(p.Ingest(0, T({1, 1}, 5)), "UPA_CHECK");
}

TEST(ReplayTest, MetricsPopulated) {
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = 2;
  for (Time ts = 1; ts <= 50; ++ts) {
    for (int s = 0; s < 2; ++s) {
      TraceEvent e;
      e.stream = s;
      e.tuple = T({ts % 5, ts}, ts);
      trace.events.push_back(e);
    }
  }
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  ReplayOptions opts;
  opts.state_poll_interval = 10;
  const ReplayMetrics m = ReplayTrace(trace, &p, opts);
  EXPECT_EQ(m.tuples, 100u);
  EXPECT_GT(m.ms_per_1000_tuples, 0.0);
  EXPECT_GT(m.max_state_bytes, 0u);
  EXPECT_EQ(m.stats.ingested, 100u);
}

// --- The Section 5.2 update-pattern invariant checker must actually
// --- catch violations, not just ride along silently.

std::unique_ptr<Pipeline> PassThroughPipeline(PatternInvariant invariant) {
  auto pp = std::make_unique<Pipeline>();
  const int sel = pp->AddOperator(
      std::make_unique<SelectOp>(IntSchema(1), std::vector<Predicate>{}), {});
  pp->BindStream(0, sel, 0);
  pp->SetView(std::make_unique<BufferView>(std::make_unique<ListBuffer>(),
                                           /*time_expiration=*/true));
  pp->EnableInvariantChecks(invariant);
  return pp;
}

TEST(PipelineInvariantDeathTest, OutOfOrderExpirationAbortsUnderFifo) {
  // WKS output expires FIFO: a later result with an *earlier* exp means
  // the operator tree broke the weakest update pattern.
  auto p = PassThroughPipeline(PatternInvariant::kFifo);
  p->Tick(10);
  p->Ingest(0, T({1}, 10, 30));
  EXPECT_DEATH(p->Ingest(0, T({2}, 10, 20)), "UPA_CHECK failed");
}

TEST(PipelineInvariantDeathTest, PrematureDeletionAbortsUnderPredictable) {
  // WK deletions are expirations: signalling one before the clock reaches
  // the tuple's exp is an STR behaviour the pattern forbids.
  auto p = PassThroughPipeline(PatternInvariant::kPredictable);
  p->Tick(10);
  p->Ingest(0, T({1}, 10, 30));
  Tuple neg = T({1}, 10, 30);
  neg.negative = true;
  EXPECT_DEATH(p->Ingest(0, neg), "UPA_CHECK failed");
}

TEST(PipelineInvariantDeathTest, StaleDeletionAbortsUnderPredictable) {
  // ...and signalling it *after* the tick that crossed exp is just as
  // wrong: the expiration must land exactly when the clock passes it.
  auto p = PassThroughPipeline(PatternInvariant::kPredictable);
  p->Tick(10);
  p->Ingest(0, T({1}, 10, 12));
  p->Tick(20);
  p->Tick(30);
  Tuple neg = T({1}, 10, 12);
  neg.negative = true;
  EXPECT_DEATH(p->Ingest(0, neg), "UPA_CHECK failed");
}

TEST(PipelineInvariantDeathTest, DeadPositiveAbortsUnderEveryInvariant) {
  // No pattern may emit a result that was already expired before the
  // previous tick -- even STR's premature deletions only go one way.
  auto p = PassThroughPipeline(PatternInvariant::kLiveOnly);
  p->Tick(10);
  p->Tick(20);
  EXPECT_DEATH(p->Ingest(0, T({1}, 15, 5)), "UPA_CHECK failed");
}

TEST(PipelineInvariantTest, LiveOnlyAllowsPrematureDeletions) {
  // STR plans delete at will; kLiveOnly only checks result liveness.
  auto p = PassThroughPipeline(PatternInvariant::kLiveOnly);
  p->Tick(10);
  p->Ingest(0, T({1}, 10, 30));
  Tuple neg = T({1}, 10, 30);
  neg.negative = true;
  p->Ingest(0, neg);  // Premature, but legal under STR.
  EXPECT_EQ(p->view().Size(), 0u);
}

TEST(PipelineInvariantTest, FifoCheckerAcceptsAWellBehavedWindow) {
  // A materialized time window is the canonical WKS operator: insertion
  // order == expiration order. The checker must stay silent across
  // arrivals and expirations alike.
  auto pp = std::make_unique<Pipeline>();
  const int w = pp->AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(1), 10, /*materialize=*/true),
      {});
  pp->BindStream(0, w, 0);
  pp->SetView(std::make_unique<BufferView>(std::make_unique<ListBuffer>(),
                                           /*time_expiration=*/false));
  pp->EnableInvariantChecks(PatternInvariant::kFifo);
  for (Time ts = 1; ts <= 40; ++ts) {
    pp->Tick(ts);
    pp->Ingest(0, T({static_cast<int>(ts % 7)}, ts));
  }
  pp->Tick(100);
  EXPECT_GT(pp->stats().results_neg, 0u);
  EXPECT_EQ(pp->view().Size(), 0u);
}

TEST(ReplayTest, DrainExpiresRemainingState) {
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = 2;
  TraceEvent e;
  e.stream = 0;
  e.tuple = T({1, 1}, 1);
  trace.events.push_back(e);
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  ReplayOptions opts;
  opts.drain = 100;
  ReplayTrace(trace, &p, opts);
  EXPECT_EQ(p.StateTuples(), 0u);
}

}  // namespace
}  // namespace upa
