#include <gtest/gtest.h>

#include "exec/pipeline.h"
#include "exec/replay.h"
#include "exec/view.h"
#include "ops/join.h"
#include "ops/stateless.h"
#include "ops/window.h"
#include "state/hash_buffer.h"
#include "state/list_buffer.h"
#include "tests/test_util.h"
#include "workload/trace.h"

namespace upa {
namespace {

using testing_util::IntSchema;
using testing_util::T;

TEST(BufferViewTest, TimeExpirationRemovesResults) {
  BufferView view(std::make_unique<ListBuffer>(), /*time_expiration=*/true);
  view.Apply(T({1}, 1, 10));
  view.Apply(T({2}, 2, 20));
  EXPECT_EQ(view.Size(), 2u);
  view.AdvanceTime(10);
  EXPECT_EQ(view.Size(), 1u);
  EXPECT_EQ(AsInt(view.Snapshot()[0].fields[0]), 2);
}

TEST(BufferViewTest, NegativeTuplesRemoveWithoutClock) {
  BufferView view(std::make_unique<HashBuffer>(0, 8),
                  /*time_expiration=*/false);
  view.Apply(T({1}, 1, 10));
  view.AdvanceTime(50);  // Clock moves, but nothing expires by time.
  EXPECT_EQ(view.Size(), 1u);
  Tuple neg = T({1}, 1, 10);
  neg.negative = true;
  view.Apply(neg);
  EXPECT_EQ(view.Size(), 0u);
}

TEST(GroupArrayViewTest, ReplaceSemanticsAndDrop) {
  GroupArrayView view;
  Tuple t;
  t.fields = {Value{int64_t{1}}, Value{5.0}, Value{int64_t{2}}};
  view.Apply(t);
  ASSERT_NE(view.Lookup(Value{int64_t{1}}), nullptr);
  EXPECT_DOUBLE_EQ(*view.Lookup(Value{int64_t{1}}), 5.0);
  t.fields = {Value{int64_t{1}}, Value{9.0}, Value{int64_t{1}}};
  view.Apply(t);  // Replaces, no growth.
  EXPECT_EQ(view.Size(), 1u);
  EXPECT_DOUBLE_EQ(*view.Lookup(Value{int64_t{1}}), 9.0);
  t.fields = {Value{int64_t{1}}, Value{0.0}, Value{int64_t{0}}};
  view.Apply(t);  // Count 0: group vanishes.
  EXPECT_EQ(view.Size(), 0u);
  EXPECT_EQ(view.Lookup(Value{int64_t{1}}), nullptr);
}

std::unique_ptr<Pipeline> MakeJoinPipeline(bool nt) {
  auto pp = std::make_unique<Pipeline>();
  Pipeline& p = *pp;
  const int w0 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, nt), {});
  const int w1 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, nt), {});
  p.AddOperator(std::make_unique<JoinOp>(
                    IntSchema(2), IntSchema(2), 0, 0,
                    std::make_unique<ListBuffer>(),
                    std::make_unique<ListBuffer>(), !nt),
                {w0, w1});
  p.BindStream(0, w0, 0);
  p.BindStream(1, w1, 0);
  p.SetView(std::make_unique<BufferView>(
      nt ? std::unique_ptr<StateBuffer>(std::make_unique<HashBuffer>(0, 8))
         : std::unique_ptr<StateBuffer>(std::make_unique<ListBuffer>()),
      !nt));
  return pp;
}

TEST(PipelineTest, RoutesAndCounts) {
  auto pipeline = MakeJoinPipeline(/*nt=*/false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  p.Tick(2);
  p.Ingest(1, T({1, 20}, 2));
  EXPECT_EQ(p.view().Size(), 1u);
  EXPECT_EQ(p.stats().ingested, 2u);
  EXPECT_EQ(p.stats().results_pos, 1u);
  EXPECT_EQ(p.stats().results_neg, 0u);
  // Result expires with the older constituent at t=11.
  p.Tick(11);
  EXPECT_EQ(p.view().Size(), 0u);
}

TEST(PipelineTest, NtModeCountsNegatives) {
  auto pipeline = MakeJoinPipeline(/*nt=*/true);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  p.Tick(2);
  p.Ingest(1, T({1, 20}, 2));
  EXPECT_EQ(p.view().Size(), 1u);
  p.Tick(50);  // Windows emit negatives; the join relays one result death.
  EXPECT_EQ(p.view().Size(), 0u);
  EXPECT_GT(p.stats().negatives_delivered, 0u);
  EXPECT_EQ(p.stats().results_neg, 1u);
}

TEST(PipelineTest, TickIsIdempotentPerTimestamp) {
  auto pipeline = MakeJoinPipeline(/*nt=*/true);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  p.Tick(50);
  const auto negs = p.stats().negatives_delivered;
  p.Tick(50);  // No double emission.
  EXPECT_EQ(p.stats().negatives_delivered, negs);
}

TEST(PipelineTest, StateAccounting) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  p.Ingest(0, T({1, 10}, 1));
  EXPECT_GT(p.StateBytes(), 0u);
  EXPECT_EQ(p.StateTuples(), 1u);  // One join-state tuple, empty view.
}

TEST(PipelineTest, DebugStringShowsWiring) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  const std::string s = p.DebugString();
  EXPECT_NE(s.find("join"), std::string::npos);
  EXPECT_NE(s.find("-> view"), std::string::npos);
}

TEST(PipelineDeathTest, RejectsUnknownStream) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  EXPECT_DEATH(p.Ingest(7, T({1, 1}, 1)), "UPA_CHECK");
}

TEST(PipelineDeathTest, RejectsTupleAheadOfClock) {
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  p.Tick(1);
  EXPECT_DEATH(p.Ingest(0, T({1, 1}, 5)), "UPA_CHECK");
}

TEST(ReplayTest, MetricsPopulated) {
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = 2;
  for (Time ts = 1; ts <= 50; ++ts) {
    for (int s = 0; s < 2; ++s) {
      TraceEvent e;
      e.stream = s;
      e.tuple = T({ts % 5, ts}, ts);
      trace.events.push_back(e);
    }
  }
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  ReplayOptions opts;
  opts.state_poll_interval = 10;
  const ReplayMetrics m = ReplayTrace(trace, &p, opts);
  EXPECT_EQ(m.tuples, 100u);
  EXPECT_GT(m.ms_per_1000_tuples, 0.0);
  EXPECT_GT(m.max_state_bytes, 0u);
  EXPECT_EQ(m.stats.ingested, 100u);
}

TEST(ReplayTest, DrainExpiresRemainingState) {
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = 2;
  TraceEvent e;
  e.stream = 0;
  e.tuple = T({1, 1}, 1);
  trace.events.push_back(e);
  auto pipeline = MakeJoinPipeline(false);
  Pipeline& p = *pipeline;
  ReplayOptions opts;
  opts.drain = 100;
  ReplayTrace(trace, &p, opts);
  EXPECT_EQ(p.StateTuples(), 0u);
}

}  // namespace
}  // namespace upa
