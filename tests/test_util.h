#ifndef UPA_TESTS_TEST_UTIL_H_
#define UPA_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/schema.h"
#include "common/tuple.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "exec/replay.h"
#include "ref/reference.h"
#include "workload/trace.h"

namespace upa {
namespace testing_util {

/// Simple integer schema ("c0", "c1", ...) with `width` columns.
inline Schema IntSchema(int width) {
  std::vector<Field> fields;
  for (int i = 0; i < width; ++i) {
    fields.push_back(Field{"c" + std::to_string(i), ValueType::kInt});
  }
  return Schema(std::move(fields));
}

/// Tuple literal helper.
inline Tuple T(std::vector<int64_t> vals, Time ts = 0,
               Time exp = kNeverExpires) {
  Tuple t;
  t.ts = ts;
  t.exp = exp;
  t.fields.reserve(vals.size());
  for (int64_t v : vals) t.fields.emplace_back(v);
  return t;
}

/// Projects each tuple onto `cols` (empty = all columns) and returns the
/// sorted multiset of field vectors -- the canonical form used to compare
/// engine views against the reference evaluator.
inline std::vector<std::vector<Value>> Canonical(
    const std::vector<Tuple>& tuples, const std::vector<int>& cols = {}) {
  std::vector<std::vector<Value>> out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    std::vector<Value> row;
    if (cols.empty()) {
      row = t.fields;
    } else {
      row.reserve(cols.size());
      for (int c : cols) row.push_back(t.fields[static_cast<size_t>(c)]);
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

inline std::string RowsToString(const std::vector<std::vector<Value>>& rows) {
  std::string s;
  size_t limit = std::min<size_t>(rows.size(), 25);
  for (size_t i = 0; i < limit; ++i) {
    s += "  (";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) s += ", ";
      s += ToString(rows[i][j]);
    }
    s += ")\n";
  }
  if (rows.size() > limit) s += "  ... " + std::to_string(rows.size()) + " rows total\n";
  return s;
}

/// The update-pattern invariant a plan's result stream can be held to
/// (Section 5.2): WKS plans expire FIFO, WK plans only ever signal a
/// deletion exactly when the clock crosses the tuple's exp. Group-by
/// (replacement deletions), count windows (count-driven eviction), and
/// relations (updates delete never-expiring tuples) fall back to the
/// liveness-only check.
inline PatternInvariant InvariantForPlan(const PlanNode& plan) {
  const std::function<bool(const PlanNode&, PlanOpKind)> contains =
      [&](const PlanNode& n, PlanOpKind kind) {
        if (n.kind == kind) return true;
        for (const auto& c : n.children) {
          if (contains(*c, kind)) return true;
        }
        return false;
      };
  if (contains(plan, PlanOpKind::kGroupBy) ||
      contains(plan, PlanOpKind::kCountWindow) ||
      contains(plan, PlanOpKind::kRelation)) {
    return PatternInvariant::kLiveOnly;
  }
  switch (plan.pattern) {
    case UpdatePattern::kWeakest:
      return PatternInvariant::kFifo;
    case UpdatePattern::kWeak:
      return PatternInvariant::kPredictable;
    default:
      return PatternInvariant::kLiveOnly;
  }
}

/// Runs `plan` under `mode`, replaying `trace`, and checks the
/// materialized view against the reference evaluator (projected onto
/// `compare_cols`; empty = all columns) at tick boundaries, roughly every
/// `checkpoint_interval` tuples. Comparisons happen only once *all*
/// events of a timestamp have been ingested -- Definition 1 constrains
/// Q(tau) after the inputs at tau have been fully processed. The
/// pipeline additionally runs with the Section 5.2 update-pattern
/// invariant checker enabled (see InvariantForPlan), so a WKS/WK plan
/// that expires results out of order aborts the test. Returns the number
/// of checkpoints compared.
inline int CheckAgainstReference(const PlanNode& plan, const Trace& trace,
                                 ExecMode mode,
                                 const PlannerOptions& options = {},
                                 uint64_t checkpoint_interval = 25,
                                 std::vector<int> compare_cols = {},
                                 Time drain = 0) {
  std::unique_ptr<Pipeline> pipeline = BuildPipeline(plan, mode, options);
  pipeline->EnableInvariantChecks(InvariantForPlan(plan));
  ReferenceEvaluator ref(&plan);
  int checkpoints = 0;
  const auto compare = [&](Time now) {
    ++checkpoints;
    const auto got = Canonical(pipeline->view().Snapshot(), compare_cols);
    const auto want = Canonical(ref.EvalAt(now), compare_cols);
    ASSERT_EQ(got, want) << "mode=" << ExecModeName(mode) << " at t=" << now
                         << "\nengine:\n"
                         << RowsToString(got) << "oracle:\n"
                         << RowsToString(want);
  };
  uint64_t since_checkpoint = 0;
  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    pipeline->Tick(ts);
    while (i < n && trace.events[i].tuple.ts == ts) {
      // Traces may carry streams the plan does not reference.
      if (pipeline->HasStream(trace.events[i].stream)) {
        ref.Observe(trace.events[i].stream, trace.events[i].tuple);
        pipeline->Ingest(trace.events[i].stream, trace.events[i].tuple);
        ++since_checkpoint;
      }
      ++i;
    }
    if (since_checkpoint >= checkpoint_interval) {
      since_checkpoint = 0;
      compare(ts);
      if (::testing::Test::HasFatalFailure()) return checkpoints;
    }
  }
  // Idle drain: operators keep expiring state without arrivals.
  if (drain > 0 && n > 0) {
    const Time last = trace.LastTs();
    const Time step = std::max<Time>(1, drain / 8);
    for (Time t = last + step; t <= last + drain; t += step) {
      pipeline->Tick(t);
      compare(t);
      if (::testing::Test::HasFatalFailure()) return checkpoints;
    }
  }
  return checkpoints;
}

}  // namespace testing_util
}  // namespace upa

#endif  // UPA_TESTS_TEST_UTIL_H_
