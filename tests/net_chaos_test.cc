// Network chaos differential (src/net under deterministic fire).
//
// Every seed builds the full stack -- engine, server, and a seeded
// FaultProxy that re-segments the byte stream and injects scheduled
// connection resets and stalls -- then drives one paper-shaped query
// through a *faulted* client (reconnect-with-resume enabled, all ingest
// and barriers on the faulted path) while a *clean* client watches the
// same subscription directly. The invariant, checked at every barrier
// and at the end:
//
//   faulted mirror == server view (Snapshot RPC) == reference oracle
//                  == clean mirror
//
// i.e. connection loss, half-delivered frames, request retries, ring
// replay and snapshot fallback are all invisible in the answer set. On
// top of the differential, the resume accounting must balance exactly:
// every server-side adoption resolves its subscription as replayed or
// snapshot (never dropped), the client's view of its own resumes is a
// prefix of the server's (an ack can be lost to a reset), and nothing
// is ever reported lost.
//
// Seeds 1..100; the schedule, the proxy's chunking, and the client's
// reconnect jitter are all derived from the seed, so a failure
// reproduces byte-for-byte.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/fault.h"
#include "net/client.h"
#include "net/fault_socket.h"
#include "net/protocol.h"
#include "net/server.h"
#include "ref/reference.h"
#include "sql/catalog.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace net {
namespace {

using testing_util::Canonical;
using testing_util::RowsToString;

struct ChaosCase {
  const char* name;
  const char* sql;
  UpdatePattern pattern;
  bool relation = false;
};

/// Same paper-shaped suite as net_test's differential: all four update
/// patterns and both view delta kinds.
const std::vector<ChaosCase>& Cases() {
  static const std::vector<ChaosCase> cases = {
      {"q1-join",
       "SELECT link0.src_ip FROM link0 [RANGE 60], link1 [RANGE 60] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2",
       UpdatePattern::kWeak},
      {"q2-distinct", "SELECT DISTINCT src_ip FROM link0 [RANGE 60]",
       UpdatePattern::kWeak},
      {"q3-group",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 60] "
       "GROUP BY protocol",
       UpdatePattern::kWeak},
      {"q4-window", "SELECT src_ip FROM link0 [RANGE 60] WHERE protocol = 2",
       UpdatePattern::kWeakest},
      {"q5-mono", "SELECT src_ip FROM link0 WHERE protocol = 2",
       UpdatePattern::kMonotonic},
      {"q6-str",
       "SELECT link0.src_ip FROM link0 [RANGE 60], meta "
       "WHERE link0.src_ip = meta.key",
       UpdatePattern::kStrict, /*relation=*/true},
  };
  return cases;
}

Schema MetaSchema() { return Schema({Field{"key", ValueType::kInt}}); }

Trace ChaosTrace() {
  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 120;
  cfg.num_sources = 40;
  return GenerateLblTrace(cfg);
}

class NetChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetChaosTest, FaultedMirrorMatchesCleanMirrorAndOracle) {
  const uint64_t seed = GetParam();
  const ChaosCase& c = Cases()[seed % Cases().size()];

  EngineOptions eopts;
  eopts.default_shards = 2;
  eopts.check_invariants = true;
  Engine engine(eopts);
  ServerOptions sopts;
  sopts.port = 0;
  sopts.session_lease_ms = 30000;  // Leases never expire within a run.
  // Every third seed runs with a ring too small for real delta frames,
  // forcing the snapshot-fallback path; the rest mostly replay.
  sopts.replay_ring_bytes = seed % 3 == 0 ? 4096 : (1u << 20);
  Server server(&engine, sopts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;

  const Trace trace = ChaosTrace();
  // Rough per-direction byte volumes anchor the schedule's reset/stall
  // offsets inside the run (encoded tuples are a few dozen bytes each).
  const uint64_t c2s = trace.events.size() * 48 + 4096;
  const uint64_t s2c = trace.events.size() * 40 + 8192;
  FaultInjector faults(FaultInjector::RandomNetSchedule(seed, c2s, s2c));
  FaultProxyOptions popts;
  popts.target_port = server.port();
  popts.seed = seed;
  popts.injector = &faults;
  FaultProxy proxy(popts);
  ASSERT_TRUE(proxy.Start(&err)) << err;

  Client faulted;
  ReconnectPolicy policy;
  policy.enabled = true;
  policy.max_attempts = 30;
  policy.backoff_base_ms = 1;
  policy.backoff_max_ms = 50;
  policy.jitter_seed = seed;
  faulted.set_reconnect(policy);
  // A reset scheduled within the first handshake bytes can kill the
  // initial Connect (no session to resume yet); just connect again.
  bool up = false;
  for (int i = 0; i < 10 && !up; ++i) {
    up = faulted.Connect("127.0.0.1", proxy.port(), &err);
  }
  ASSERT_TRUE(up) << err;

  const int64_t remote_id[2] = {
      faulted.DeclareStream("link0", LblSchema(), &err),
      faulted.DeclareStream("link1", LblSchema(), &err)};
  ASSERT_GE(remote_id[0], 0) << err;
  ASSERT_GE(remote_id[1], 0) << err;
  int64_t meta_remote = -1;
  if (c.relation) {
    meta_remote = faulted.DeclareRelation("meta", MetaSchema(),
                                          /*retroactive=*/true, &err);
    ASSERT_GE(meta_remote, 0) << err;
  }
  ASSERT_TRUE(faulted.RegisterQuery(c.name, c.sql, 0, nullptr, &err)) << err;
  SubscriptionMirror* fsub = faulted.Subscribe(c.name, &err);
  ASSERT_NE(fsub, nullptr) << err;

  Client clean;
  ASSERT_TRUE(clean.Connect("127.0.0.1", server.port(), &err)) << err;
  SubscriptionMirror* csub = clean.Subscribe(c.name, &err);
  ASSERT_NE(csub, nullptr) << err;

  // Identical local catalog for the oracle.
  SourceCatalog catalog;
  const int local_id[2] = {catalog.DeclareStream("link0", LblSchema()),
                           catalog.DeclareStream("link1", LblSchema())};
  int meta_local = -1;
  if (c.relation) {
    meta_local = catalog.DeclareRelation("meta", MetaSchema(),
                                         /*retroactive=*/true);
  }
  const ParseResult p = catalog.Compile(c.sql);
  ASSERT_TRUE(p.ok()) << p.error;
  std::set<int> streams;
  const std::function<void(const PlanNode&)> collect =
      [&streams, &collect](const PlanNode& n) {
        if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
          streams.insert(n.stream_id);
        }
        for (const auto& ch : n.children) collect(*ch);
      };
  collect(*p.plan);
  ReferenceEvaluator ref(p.plan.get());

  // Drive everything through the faulted path. Ingest is exactly-once
  // despite retries (the server's response cache absorbs a re-sent
  // request that already executed), so the oracle observes each tuple
  // exactly once, when it is added to a batch.
  const auto observe = [&](int local, const Tuple& t) {
    if (streams.count(local) > 0) ref.Observe(local, t);
  };
  std::vector<std::pair<uint32_t, Tuple>> batch;
  std::vector<int64_t> meta_keys;
  Time last_barrier = 0;
  Time next_barrier = 30;
  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    if (meta_remote >= 0) {
      if (ts % 3 == 0) {
        Tuple u;
        u.ts = ts;
        u.exp = kNeverExpires;
        u.fields = {Value{static_cast<int64_t>(ts % 40)}};
        meta_keys.push_back(ts % 40);
        batch.emplace_back(static_cast<uint32_t>(meta_remote), u);
        observe(meta_local, u);
      }
      if (ts % 7 == 0 && !meta_keys.empty()) {
        Tuple u;
        u.ts = ts;
        u.exp = kNeverExpires;
        u.negative = true;
        u.fields = {Value{meta_keys.front()}};
        meta_keys.erase(meta_keys.begin());
        batch.emplace_back(static_cast<uint32_t>(meta_remote), u);
        observe(meta_local, u);
      }
    }
    while (i < n && trace.events[i].tuple.ts == ts) {
      const TraceEvent& e = trace.events[i];
      batch.emplace_back(static_cast<uint32_t>(remote_id[e.stream]), e.tuple);
      observe(local_id[e.stream], e.tuple);
      ++i;
    }
    if (batch.size() >= 128 || ts >= next_barrier || i == n) {
      ASSERT_TRUE(faulted.IngestBatch(batch, &err)) << err;
      batch.clear();
    }
    if (ts >= next_barrier || i == n) {
      while (next_barrier <= ts) next_barrier += 30;
      ASSERT_TRUE(faulted.Flush(&err)) << err;
      std::vector<Tuple> snap;
      Time at = 0;
      ASSERT_TRUE(faulted.Snapshot(c.name, &snap, &at, &err)) << err;
      last_barrier = at;
      const auto mirror_rows = Canonical(fsub->Rows());
      const auto snap_rows = Canonical(snap);
      ASSERT_EQ(mirror_rows, snap_rows)
          << c.name << " seed=" << seed << " at t=" << at << "\nmirror:\n"
          << RowsToString(mirror_rows) << "view:\n"
          << RowsToString(snap_rows);
      const auto want = Canonical(ref.EvalAt(at));
      ASSERT_EQ(snap_rows, want)
          << c.name << " seed=" << seed << " at t=" << at << "\nengine:\n"
          << RowsToString(snap_rows) << "oracle:\n"
          << RowsToString(want);
      ASSERT_TRUE(clean.PollEvents(0, &err)) << err;  // Keep it draining.
    }
  }

  // The clean mirror syncs via pushed watermarks; drain until it
  // reaches the final barrier, then all four states must agree.
  for (int r = 0; r < 400 && csub->watermark() < last_barrier; ++r) {
    ASSERT_TRUE(clean.PollEvents(25, &err)) << err;
  }
  ASSERT_GE(csub->watermark(), last_barrier);
  EXPECT_EQ(Canonical(csub->Rows()), Canonical(fsub->Rows()))
      << c.name << " seed=" << seed
      << ": clean and faulted subscribers diverged";

  // Exact resume accounting. Client resumes can trail the server's (a
  // resume ack lost to a reset is retried against the successor token),
  // but every adoption resolves as replay or snapshot -- never a
  // silent drop -- and each successful client resume pairs with one
  // adoption.
  const ClientStats cs = faulted.stats();
  const ServerStats ss = server.Stats();
  EXPECT_EQ(cs.resume_lost, 0u) << "a subscription was reported lost";
  EXPECT_FALSE(fsub->dropped());
  EXPECT_EQ(cs.resumes, cs.resume_replays + cs.resume_snapshots);
  EXPECT_EQ(ss.resumes, ss.resume_replays + ss.resume_snapshots);
  EXPECT_GE(ss.resumes, cs.resumes);
  EXPECT_LE(ss.resumes, cs.reconnects);
  EXPECT_EQ(faults.fired(FaultKind::kNetRst), proxy.rsts_injected());
  if (proxy.rsts_injected() > 0) {
    EXPECT_GE(cs.reconnects, 1u)
        << "resets fired but the client never reconnected";
  }
  if (cs.resumes > 0 && sopts.replay_ring_bytes >= (1u << 20)) {
    EXPECT_GT(cs.frames_deduped + cs.resume_replays + cs.resume_snapshots, 0u);
  }

  clean.Close();
  faulted.Close();
  proxy.Stop();
  server.Stop();
  engine.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetChaosTest,
                         ::testing::Range<uint64_t>(1, 101));

// Sanity for the harness itself (scripts/ci.sh runs this plus a fixed
// slice of the seeded differential as its fault-socket soak stage): a
// fault-free proxy must be a perfectly transparent byte pipe.
TEST(NetChaosSoak, FaultFreeProxyIsTransparent) {
  EngineOptions eopts;
  eopts.default_shards = 1;
  Engine engine(eopts);
  ServerOptions sopts;
  sopts.port = 0;
  Server server(&engine, sopts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;
  FaultProxyOptions popts;
  popts.target_port = server.port();
  popts.seed = 42;
  FaultProxy proxy(popts);
  ASSERT_TRUE(proxy.Start(&err)) << err;
  Client via_proxy;
  ASSERT_TRUE(via_proxy.Connect("127.0.0.1", proxy.port(), &err)) << err;
  ASSERT_GE(via_proxy.DeclareStream("link0", LblSchema(), &err), 0) << err;
  ASSERT_TRUE(via_proxy.Ping(&err)) << err;
  EXPECT_GE(proxy.connections(), 1u);
  EXPECT_GT(proxy.bytes_forwarded(), 0u);
  via_proxy.Close();
  proxy.Stop();
  server.Stop();
  engine.Stop();
}

}  // namespace
}  // namespace net
}  // namespace upa
