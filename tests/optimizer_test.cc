#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/optimizer.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::Canonical;
using testing_util::CheckAgainstReference;
using testing_util::IntSchema;

PlanPtr Win(int stream, Time size, int width = 2) {
  return MakeWindow(MakeStream(stream, IntSchema(width)), size);
}

Catalog SimpleCatalog() {
  Catalog cat;
  for (int s = 0; s < 4; ++s) {
    StreamStats stats;
    stats.rate = 1.0;
    stats.columns[0].distinct = 50;
    stats.columns[1].distinct = 5;
    cat.streams[s] = stats;
  }
  return cat;
}

// --- Individual rewrites. ---

TEST(RewriteTest, SelectPushDownThroughJoin) {
  // Predicate on the left side (col 0) and the right side (col 2).
  PlanPtr p = MakeSelect(MakeJoin(Win(0, 100), Win(1, 100), 0, 0),
                         {Predicate{0, CmpOp::kEq, Value{int64_t{3}}},
                          Predicate{2, CmpOp::kLt, Value{int64_t{9}}}});
  PlanPtr q = RewritePushDownSelect(*p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, PlanOpKind::kJoin);
  EXPECT_EQ(q->child(0).kind, PlanOpKind::kSelect);
  EXPECT_EQ(q->child(1).kind, PlanOpKind::kSelect);
  // Right-side predicate's column is rebased.
  EXPECT_EQ(q->child(1).preds[0].col, 0);
  // Idempotent: nothing left to push.
  EXPECT_EQ(RewritePushDownSelect(*q), nullptr);
}

TEST(RewriteTest, SelectPushDownThroughUnion) {
  PlanPtr p = MakeSelect(MakeUnion(Win(0, 100), Win(1, 100)),
                         {Predicate{0, CmpOp::kGt, Value{int64_t{5}}}});
  PlanPtr q = RewritePushDownSelect(*p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, PlanOpKind::kUnion);
  EXPECT_EQ(q->child(0).kind, PlanOpKind::kSelect);
}

TEST(RewriteTest, SelectStaysAboveRelationSide) {
  PlanPtr p = MakeSelect(
      MakeJoin(Win(0, 100), MakeRelation(3, IntSchema(2), false), 0, 0),
      {Predicate{3, CmpOp::kEq, Value{int64_t{1}}}});
  // Table-side predicate cannot be pushed into the relation leaf.
  EXPECT_EQ(RewritePushDownSelect(*p), nullptr);
}

TEST(RewriteTest, NegationPullUpLeft) {
  PlanPtr p = MakeJoin(MakeNegate(Win(0, 100), Win(1, 100), 0, 0),
                       Win(2, 100), 0, 0);
  PlanPtr q = RewriteNegationPullUp(*p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, PlanOpKind::kNegate);
  EXPECT_EQ(q->child(0).kind, PlanOpKind::kJoin);
  EXPECT_EQ(q->left_col, 0);
  // The STR region shrank: the join's inputs are now windows.
  AnnotatePatterns(q.get());
  EXPECT_EQ(q->child(0).pattern, UpdatePattern::kWeak);
}

TEST(RewriteTest, NegationPullUpRight) {
  PlanPtr p = MakeJoin(Win(2, 100),
                       MakeNegate(Win(0, 100), Win(1, 100), 1, 0), 0, 0);
  PlanPtr q = RewriteNegationPullUp(*p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, PlanOpKind::kNegate);
  // The negation attribute shifts past the left join input's width.
  EXPECT_EQ(q->left_col, 2 + 1);
}

TEST(RewriteTest, NegationPushDownInvertsPullUp) {
  PlanPtr p = MakeJoin(MakeNegate(Win(0, 100), Win(1, 100), 0, 0),
                       Win(2, 100), 0, 0);
  AnnotatePatterns(p.get());
  PlanPtr up = RewriteNegationPullUp(*p);
  ASSERT_NE(up, nullptr);
  PlanPtr down = RewriteNegationPushDown(*up);
  ASSERT_NE(down, nullptr);
  AnnotatePatterns(down.get());
  EXPECT_EQ(down->ToString(), p->ToString());
}

TEST(RewriteTest, DistinctPushDown) {
  PlanPtr p = MakeDistinct(MakeJoin(Win(0, 100), Win(1, 100), 0, 0), {0});
  PlanPtr q = RewriteDistinctPushDown(*p);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->kind, PlanOpKind::kDistinct);
  EXPECT_EQ(q->child(0).kind, PlanOpKind::kJoin);
  EXPECT_EQ(q->child(0).child(0).kind, PlanOpKind::kDistinct);
  EXPECT_EQ(q->child(0).child(1).kind, PlanOpKind::kDistinct);
  // Join keys are included in the pushed distinct keys.
  EXPECT_EQ(q->child(0).child(1).cols, std::vector<int>{0});
  EXPECT_EQ(RewriteDistinctPushDown(*q), nullptr);  // No repeat.
}

// --- Rewrite soundness: rewritten plans produce the same answers.
// Negation/join commuting is exercised with a unique-match join side
// (each value occurs at most once in W3), where Equation 1 semantics make
// the two forms exactly equivalent (see optimizer.h). ---

Trace UniqueMatchTrace(Time duration, uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = 3;
  for (Time ts = 1; ts <= duration; ++ts) {
    for (int s = 0; s < 3; ++s) {
      TraceEvent e;
      e.stream = s;
      e.tuple.ts = ts;
      if (s == 2) {
        // W3 values unique within any window: derived from the timestamp.
        e.tuple.fields = {Value{ts % 7}, Value{int64_t{0}}};
      } else {
        e.tuple.fields = {Value{rng.NextInRange(0, 6)},
                          Value{rng.NextInRange(0, 99)}};
      }
      trace.events.push_back(std::move(e));
    }
  }
  return trace;
}

TEST(RewriteSoundnessTest, NegationJoinCommuteOnUniqueMatches) {
  // Window 5 < period 7 so each W3 value is live at most once.
  PlanPtr push_down = MakeJoin(
      MakeNegate(MakeProject(Win(0, 5), {0}), MakeProject(Win(1, 5), {0}), 0,
                 0),
      MakeProject(Win(2, 5), {0}), 0, 0);
  AnnotatePatterns(push_down.get());
  PlanPtr pull_up = RewriteNegationPullUp(*push_down);
  ASSERT_NE(pull_up, nullptr);
  AnnotatePatterns(pull_up.get());

  const Trace trace = UniqueMatchTrace(120, 42);
  // Both rewritings must match their own oracle, and the two oracles
  // coincide on unique-match inputs -- so both engines agree.
  EXPECT_GT(CheckAgainstReference(*push_down, trace, ExecMode::kUpa, {}, 10,
                                  {0}),
            0);
  EXPECT_GT(
      CheckAgainstReference(*pull_up, trace, ExecMode::kUpa, {}, 10, {0}), 0);
  ReferenceEvaluator ref_down(push_down.get());
  ReferenceEvaluator ref_up(pull_up.get());
  for (const TraceEvent& e : trace.events) {
    ref_down.Observe(e.stream, e.tuple);
    ref_up.Observe(e.stream, e.tuple);
  }
  for (Time tau : {30, 60, 90, 120}) {
    EXPECT_EQ(Canonical(ref_down.EvalAt(tau), {0}),
              Canonical(ref_up.EvalAt(tau), {0}))
        << "tau=" << tau;
  }
}

TEST(RewriteSoundnessTest, SelectPushDownPreservesAnswers) {
  PlanPtr p = MakeSelect(MakeJoin(Win(0, 20), Win(1, 20), 0, 0),
                         {Predicate{1, CmpOp::kLt, Value{int64_t{500}}},
                          Predicate{3, CmpOp::kGe, Value{int64_t{200}}}});
  AnnotatePatterns(p.get());
  PlanPtr q = RewritePushDownSelect(*p);
  ASSERT_NE(q, nullptr);
  AnnotatePatterns(q.get());
  const Trace trace = UniqueMatchTrace(100, 7);
  EXPECT_GT(CheckAgainstReference(*p, trace, ExecMode::kUpa, {}, 15), 0);
  EXPECT_GT(CheckAgainstReference(*q, trace, ExecMode::kUpa, {}, 15), 0);
  ReferenceEvaluator a(p.get());
  ReferenceEvaluator b(q.get());
  for (const TraceEvent& e : trace.events) {
    a.Observe(e.stream, e.tuple);
    b.Observe(e.stream, e.tuple);
  }
  EXPECT_EQ(Canonical(a.EvalAt(80)), Canonical(b.EvalAt(80)));
}

// --- End-to-end optimization. ---

TEST(OptimizerTest, PushesSelectionsDown) {
  PlanPtr p = MakeSelect(MakeJoin(Win(0, 1000), Win(1, 1000), 0, 0),
                         {Predicate{1, CmpOp::kEq, Value{int64_t{2}}}});
  AnnotatePatterns(p.get());
  OptimizedPlan best = Optimize(*p, SimpleCatalog(), ExecMode::kUpa);
  // The chosen plan filters before joining.
  EXPECT_EQ(best.plan->kind, PlanOpKind::kJoin);
  EXPECT_LT(best.cost,
            EstimatePlanCost(*p, SimpleCatalog(), ExecMode::kUpa, {}).total);
}

TEST(OptimizerTest, PullsNegationUpOnFigure6Shape) {
  // Query 5 / Figure 6: (W1 minus W2) joined with a *selective* selection
  // over W3. With frequent premature expirations, keeping the negation
  // below forces the join to process its negative tuples; pulling it up
  // simplifies the update patterns in the join subtree (Section 5.4.2's
  // "update pattern simplification").
  PlanPtr p = MakeJoin(
      MakeNegate(Win(0, 2000), Win(1, 2000), 0, 0),
      MakeSelect(Win(2, 2000), {Predicate{1, CmpOp::kEq, Value{int64_t{1}}}}),
      0, 0);
  AnnotatePatterns(p.get());
  Catalog cat;
  for (int s = 0; s < 3; ++s) {
    StreamStats stats;
    stats.rate = 1.0;
    // Negation-attribute domain comparable to the window content, so
    // premature expirations are common but the answer is non-trivial.
    stats.columns[0].distinct = 2000;
    stats.columns[1].distinct = 5;
    stats.columns[1].value_freq[Value{int64_t{1}}] = 0.03;  // "ftp".
    cat.streams[s] = stats;
  }
  OptimizedPlan best = Optimize(*p, cat, ExecMode::kUpa);
  EXPECT_EQ(best.plan->kind, PlanOpKind::kNegate);
  EXPECT_NE(best.report.find("negation-pull-up"), std::string::npos);
  EXPECT_GT(best.options.premature_frequency, 0.0);
}

TEST(OptimizerTest, ReportsAllCandidates) {
  PlanPtr p = MakeJoin(MakeNegate(Win(0, 100), Win(1, 100), 0, 0),
                       Win(2, 100), 0, 0);
  AnnotatePatterns(p.get());
  OptimizedPlan best = Optimize(*p, SimpleCatalog(), ExecMode::kUpa);
  EXPECT_GE(best.candidates.size(), 2u);
  // Candidates are sorted by cost.
  for (size_t i = 1; i < best.candidates.size(); ++i) {
    EXPECT_LE(best.candidates[i - 1].cost, best.candidates[i].cost);
  }
}

TEST(OptimizerTest, FillsPrematureFrequencyForAutoStrategy) {
  PlanPtr p = MakeNegate(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(p.get());
  Catalog cat = SimpleCatalog();
  cat.streams[0].columns[0].distinct = 5;
  cat.streams[1].columns[0].distinct = 5;
  OptimizedPlan best = Optimize(*p, cat, ExecMode::kUpa);
  EXPECT_GT(best.options.premature_frequency, 0.0);
  // The optimized plan must still build and run.
  auto pipeline = BuildPipeline(*best.plan, ExecMode::kUpa, best.options);
  EXPECT_NE(pipeline, nullptr);
}

}  // namespace
}  // namespace upa
