#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "state/hash_buffer.h"
#include "state/indexed_buffer.h"
#include "state/list_buffer.h"
#include "state/partitioned_buffer.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::T;

// Parameterized over all buffer implementations: the StateBuffer contract
// must hold regardless of structure.
enum class BufKind { kList, kFifo, kPartitioned, kPartitionedMany, kHash, kIndexed };

std::unique_ptr<StateBuffer> MakeBuf(BufKind kind) {
  switch (kind) {
    case BufKind::kList:
      return std::make_unique<ListBuffer>();
    case BufKind::kFifo:
      return std::make_unique<FifoBuffer>();
    case BufKind::kPartitioned:
      return std::make_unique<PartitionedBuffer>(5, 100);
    case BufKind::kPartitionedMany:
      return std::make_unique<PartitionedBuffer>(64, 100);
    case BufKind::kHash:
      return std::make_unique<HashBuffer>(0, 16);
    case BufKind::kIndexed:
      return std::make_unique<IndexedBuffer>(0, 5, 100, 8);
  }
  return nullptr;
}

class BufferContractTest : public ::testing::TestWithParam<BufKind> {};

TEST_P(BufferContractTest, InsertExpireFifoOrder) {
  auto buf = MakeBuf(GetParam());
  for (int i = 1; i <= 50; ++i) {
    buf->Advance(i, nullptr);
    buf->Insert(T({i}, i, i + 100));
  }
  EXPECT_EQ(buf->LiveCount(), 50u);
  std::vector<Tuple> expired;
  buf->Advance(120, [&](const Tuple& t) { expired.push_back(t); });
  // Tuples 1..20 have exp 101..120 <= 120.
  EXPECT_EQ(expired.size(), 20u);
  EXPECT_EQ(buf->LiveCount(), 30u);
  for (const Tuple& t : expired) EXPECT_LE(t.exp, 120);
  buf->ForEachLive([](const Tuple& t) { EXPECT_GT(t.exp, 120); });
}

TEST_P(BufferContractTest, ExpireAllAtOnce) {
  auto buf = MakeBuf(GetParam());
  for (int i = 1; i <= 10; ++i) buf->Insert(T({i}, 0, i * 7));
  size_t count = 0;
  buf->Advance(1000, [&](const Tuple&) { ++count; });
  EXPECT_EQ(count, 10u);
  EXPECT_EQ(buf->LiveCount(), 0u);
  EXPECT_EQ(buf->PhysicalCount(), 0u);
}

TEST_P(BufferContractTest, EraseOneMatchByFieldsAndExp) {
  auto buf = MakeBuf(GetParam());
  buf->Insert(T({7, 1}, 0, 50));
  buf->Insert(T({7, 1}, 0, 60));  // Same fields, later exp.
  EXPECT_FALSE(buf->EraseOneMatch(T({7, 1}, 0, 55)));  // No exp match.
  EXPECT_TRUE(buf->EraseOneMatch(T({7, 1}, 0, 60)));
  EXPECT_EQ(buf->LiveCount(), 1u);
  buf->ForEachLive([](const Tuple& t) { EXPECT_EQ(t.exp, 50); });
  EXPECT_FALSE(buf->EraseOneMatch(T({7, 1}, 0, 60)));  // Already gone.
}

TEST_P(BufferContractTest, ForEachMatchFiltersByColumn) {
  auto buf = MakeBuf(GetParam());
  buf->Insert(T({1, 100}, 0, 50));
  buf->Insert(T({2, 200}, 0, 50));
  buf->Insert(T({1, 300}, 0, 60));
  int hits = 0;
  buf->ForEachMatch(0, Value{int64_t{1}}, [&](const Tuple& t) {
    ++hits;
    EXPECT_EQ(AsInt(t.fields[0]), 1);
  });
  EXPECT_EQ(hits, 2);
  // Non-key column probes must work on every structure.
  hits = 0;
  buf->ForEachMatch(1, Value{int64_t{200}}, [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST_P(BufferContractTest, MatchSkipsExpired) {
  auto buf = MakeBuf(GetParam());
  buf->Insert(T({5}, 0, 10));
  buf->Insert(T({5}, 0, 99));
  buf->Advance(10, nullptr);
  int hits = 0;
  buf->ForEachMatch(0, Value{int64_t{5}}, [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST_P(BufferContractTest, StateBytesTracksContent) {
  auto buf = MakeBuf(GetParam());
  const size_t empty = buf->StateBytes();
  buf->Insert(T({1, 2, 3}, 0, 10));
  EXPECT_GT(buf->StateBytes(), empty);
  buf->Advance(50, nullptr);
  EXPECT_EQ(buf->StateBytes(), empty);
}

TEST_P(BufferContractTest, Clear) {
  auto buf = MakeBuf(GetParam());
  for (int i = 0; i < 5; ++i) buf->Insert(T({i}, 0, 100));
  buf->Clear();
  EXPECT_EQ(buf->PhysicalCount(), 0u);
  size_t seen = 0;
  buf->ForEachLive([&](const Tuple&) { ++seen; });
  EXPECT_EQ(seen, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllBuffers, BufferContractTest,
                         ::testing::Values(BufKind::kList, BufKind::kFifo,
                                           BufKind::kPartitioned,
                                           BufKind::kPartitionedMany,
                                           BufKind::kHash, BufKind::kIndexed),
                         [](const ::testing::TestParamInfo<BufKind>& info) -> std::string {
                           switch (info.param) {
                             case BufKind::kList:
                               return "List";
                             case BufKind::kFifo:
                               return "Fifo";
                             case BufKind::kPartitioned:
                               return "Part5";
                             case BufKind::kPartitionedMany:
                               return "Part64";
                             case BufKind::kHash:
                               return "Hash";
                             case BufKind::kIndexed:
                               return "Indexed";
                           }
                           return "?";
                         });

// --- Lazy maintenance semantics (Section 2.3): expired tuples are hidden
// immediately but purged physically only at intervals. ---

class LazyBufferTest : public ::testing::TestWithParam<BufKind> {};

TEST_P(LazyBufferTest, LogicallyHiddenPhysicallyRetained) {
  auto buf = MakeBuf(GetParam());
  buf->SetLazy(50);
  for (int i = 1; i <= 10; ++i) buf->Insert(T({i}, 0, i + 10));
  buf->Advance(15, nullptr);  // Tuples 1..5 expired; purge not yet due.
  EXPECT_EQ(buf->LiveCount(), 5u);
  EXPECT_EQ(buf->PhysicalCount(), 10u);
  size_t live = 0;
  buf->ForEachLive([&](const Tuple& t) {
    ++live;
    EXPECT_TRUE(t.LiveAt(15));
  });
  EXPECT_EQ(live, 5u);
  buf->Advance(60, nullptr);  // Purge due; everything expired by now.
  EXPECT_EQ(buf->PhysicalCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LazyBuffers, LazyBufferTest,
                         ::testing::Values(BufKind::kList, BufKind::kFifo,
                                           BufKind::kPartitioned,
                                           BufKind::kHash, BufKind::kIndexed),
                         [](const ::testing::TestParamInfo<BufKind>& info) -> std::string {
                           switch (info.param) {
                             case BufKind::kList:
                               return "List";
                             case BufKind::kFifo:
                               return "Fifo";
                             case BufKind::kPartitioned:
                               return "Part";
                             case BufKind::kHash:
                               return "Hash";
                             case BufKind::kIndexed:
                               return "Indexed";
                             default:
                               return "?";
                           }
                         });

// --- Structure-specific behaviour. ---

TEST(PartitionedBufferTest, ExpirationOrderWithinAdvance) {
  PartitionedBuffer buf(10, 100);
  // Insert out of expiration order.
  buf.Insert(T({1}, 0, 30));
  buf.Insert(T({2}, 0, 10));
  buf.Insert(T({3}, 0, 20));
  std::vector<int64_t> order;
  buf.Advance(25, [&](const Tuple& t) { order.push_back(AsInt(t.fields[0])); });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // exp 10 before exp 20 (same partition span).
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(buf.LiveCount(), 1u);
}

TEST(PartitionedBufferTest, WrapAroundLongRun) {
  PartitionedBuffer buf(4, 40);
  size_t expired = 0;
  for (Time t = 1; t <= 1000; ++t) {
    buf.Advance(t, [&](const Tuple&) { ++expired; });
    buf.Insert(T({t}, t, t + 40));
  }
  // At t=1000 the live tuples are those with exp > 1000, i.e. ts > 960.
  EXPECT_EQ(buf.LiveCount(), 40u);
  EXPECT_EQ(expired, 960u);
}

TEST(PartitionedBufferTest, CollidingDistantExpirations) {
  // span covers 100/2 = 50; exps 10 and 110 share partition block parity.
  PartitionedBuffer buf(2, 100);
  buf.Insert(T({1}, 0, 10));
  buf.Insert(T({2}, 0, 110));
  std::vector<int64_t> gone;
  buf.Advance(10, [&](const Tuple& t) { gone.push_back(AsInt(t.fields[0])); });
  ASSERT_EQ(gone.size(), 1u);
  EXPECT_EQ(gone[0], 1);
  EXPECT_EQ(buf.LiveCount(), 1u);
}

TEST(PartitionedBufferTest, MorePartitionsMoreOverheadBytes) {
  PartitionedBuffer small(1, 100);
  PartitionedBuffer big(100, 100);
  EXPECT_GT(big.StateBytes(), small.StateBytes());
}

TEST(PartitionedBufferTest, LazyPurgeSweepsAllPartitions) {
  // Regression: a lazy purge must reclaim tuples that expired in blocks
  // older than the most recent clock step, not just the blocks touched
  // since the previous Advance call.
  PartitionedBuffer buf(8, 80);
  buf.SetLazy(40);
  for (Time t = 1; t <= 30; ++t) {
    buf.Advance(t, nullptr);
    buf.Insert(T({t}, t, t + 5));  // Expire quickly, across many blocks.
  }
  buf.Advance(100, nullptr);  // Purge due: everything has expired.
  EXPECT_EQ(buf.PhysicalCount(), 0u);
}

TEST(FifoBufferTest, PopsOnlyFromFront) {
  FifoBuffer buf;
  for (int i = 1; i <= 5; ++i) buf.Insert(T({i}, i, i + 10));
  std::vector<int64_t> gone;
  buf.Advance(13, [&](const Tuple& t) { gone.push_back(AsInt(t.fields[0])); });
  EXPECT_EQ(gone, (std::vector<int64_t>{1, 2, 3}));
}

TEST(HashBufferTest, KeyProbeTouchesOneBucket) {
  HashBuffer buf(0, 4);
  for (int i = 0; i < 100; ++i) buf.Insert(T({i % 10, i}, 0, 1000));
  int hits = 0;
  buf.ForEachMatch(0, Value{int64_t{3}}, [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 10);
}

TEST(IndexedBufferTest, KeyProbeVisitsOneGridColumn) {
  IndexedBuffer buf(0, 4, 100, 8);
  for (int i = 0; i < 200; ++i) buf.Insert(T({i % 10, i}, 0, 50 + i % 40));
  int hits = 0;
  buf.ForEachMatch(0, Value{int64_t{3}}, [&](const Tuple& t) {
    ++hits;
    EXPECT_EQ(AsInt(t.fields[0]), 3);
  });
  EXPECT_EQ(hits, 20);
}

TEST(IndexedBufferTest, ExpirationAcrossGridRows) {
  IndexedBuffer buf(0, 4, 40, 8);
  size_t expired = 0;
  for (Time t = 1; t <= 500; ++t) {
    buf.Advance(t, [&](const Tuple&) { ++expired; });
    buf.Insert(T({t % 7}, t, t + 40));
  }
  EXPECT_EQ(buf.LiveCount(), 40u);
  EXPECT_EQ(expired, 460u);
}

TEST(IndexedBufferTest, EraseOneMatchUsesKeyAndExpiration) {
  IndexedBuffer buf(0, 4, 100, 8);
  buf.Insert(T({5, 1}, 0, 30));
  buf.Insert(T({5, 1}, 0, 60));
  EXPECT_TRUE(buf.EraseOneMatch(T({5, 1}, 0, 30)));
  EXPECT_FALSE(buf.EraseOneMatch(T({5, 1}, 0, 30)));
  EXPECT_EQ(buf.LiveCount(), 1u);
}

TEST(BufferHelperTest, ForEachMatchKeyMultiColumn) {
  ListBuffer buf;
  buf.Insert(T({1, 2, 9}, 0, 100));
  buf.Insert(T({1, 3, 9}, 0, 100));
  buf.Insert(T({1, 2, 7}, 0, 100));
  int hits = 0;
  ForEachMatchKey(buf, {0, 1}, {Value{int64_t{1}}, Value{int64_t{2}}},
                  [&](const Tuple&) { ++hits; });
  EXPECT_EQ(hits, 2);
}

TEST(BufferDeathTest, LazyRequiresEmptyBuffer) {
  ListBuffer buf;
  buf.Insert(T({1}, 0, 10));
  EXPECT_DEATH(buf.SetLazy(5), "UPA_CHECK");
}

TEST(BufferDeathTest, LazyAdvanceRejectsCallback) {
  ListBuffer buf;
  buf.SetLazy(5);
  buf.Insert(T({1}, 0, 2));
  EXPECT_DEATH(buf.Advance(10, [](const Tuple&) {}), "UPA_CHECK");
}

}  // namespace
}  // namespace upa
