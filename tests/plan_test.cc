#include <gtest/gtest.h>

#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::IntSchema;

PlanPtr Win(int stream, Time size, int width = 2) {
  return MakeWindow(MakeStream(stream, IntSchema(width)), size);
}

// --- Pattern propagation: the five rules of Section 5.2. ---

TEST(PatternTest, LeafWindowIsWeakest) {
  PlanPtr p = Win(0, 100);
  AnnotatePatterns(p.get());
  EXPECT_EQ(p->pattern, UpdatePattern::kWeakest);
  EXPECT_EQ(p->child(0).pattern, UpdatePattern::kMonotonic);
}

TEST(PatternTest, Rule1UnaryPreservesPattern) {
  PlanPtr p = MakeSelect(Win(0, 100),
                         {Predicate{0, CmpOp::kEq, Value{int64_t{1}}}});
  AnnotatePatterns(p.get());
  EXPECT_EQ(p->pattern, UpdatePattern::kWeakest);

  PlanPtr q = MakeProject(MakeJoin(Win(0, 100), Win(1, 100), 0, 0), {0, 2});
  AnnotatePatterns(q.get());
  EXPECT_EQ(q->pattern, UpdatePattern::kWeak);
}

TEST(PatternTest, StatelessOverInfiniteStreamIsMonotonic) {
  PlanPtr p = MakeSelect(MakeStream(0, IntSchema(2)),
                         {Predicate{0, CmpOp::kEq, Value{int64_t{1}}}});
  AnnotatePatterns(p.get());
  EXPECT_EQ(p->pattern, UpdatePattern::kMonotonic);
}

TEST(PatternTest, Rule2UnionTakesMoreComplexInput) {
  PlanPtr wks = MakeUnion(Win(0, 100), Win(1, 100));
  AnnotatePatterns(wks.get());
  EXPECT_EQ(wks->pattern, UpdatePattern::kWeakest);

  PlanPtr wk = MakeUnion(
      MakeProject(MakeJoin(Win(0, 100), Win(1, 100), 0, 0), {0, 1}),
      MakeProject(Win(2, 100), {0, 1}));
  AnnotatePatterns(wk.get());
  EXPECT_EQ(wk->pattern, UpdatePattern::kWeak);

  PlanPtr str = MakeUnion(MakeNegate(Win(0, 100), Win(1, 100), 0, 0),
                          Win(2, 100));
  AnnotatePatterns(str.get());
  EXPECT_EQ(str->pattern, UpdatePattern::kStrict);
}

TEST(PatternTest, Rule3JoinAndDistinct) {
  PlanPtr join = MakeJoin(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(join.get());
  EXPECT_EQ(join->pattern, UpdatePattern::kWeak);

  PlanPtr distinct = MakeDistinct(Win(0, 100), {0});
  AnnotatePatterns(distinct.get());
  EXPECT_EQ(distinct->pattern, UpdatePattern::kWeak);

  // STR input forces STR output.
  PlanPtr join_str =
      MakeJoin(MakeNegate(Win(0, 100), Win(1, 100), 0, 0), Win(2, 100), 0, 0);
  AnnotatePatterns(join_str.get());
  EXPECT_EQ(join_str->pattern, UpdatePattern::kStrict);

  // A join of two unwindowed streams stays monotonic (Section 3.1).
  PlanPtr join_mono = MakeJoin(MakeStream(0, IntSchema(2)),
                               MakeStream(1, IntSchema(2)), 0, 0);
  AnnotatePatterns(join_mono.get());
  EXPECT_EQ(join_mono->pattern, UpdatePattern::kMonotonic);
}

TEST(PatternTest, Rule4GroupByAlwaysWeak) {
  PlanPtr over_window =
      MakeGroupBy(Win(0, 100), 0, AggKind::kSum, 1);
  AnnotatePatterns(over_window.get());
  EXPECT_EQ(over_window->pattern, UpdatePattern::kWeak);

  PlanPtr over_negation = MakeGroupBy(
      MakeNegate(Win(0, 100), Win(1, 100), 0, 0), 0, AggKind::kCount, -1);
  AnnotatePatterns(over_negation.get());
  EXPECT_EQ(over_negation->pattern, UpdatePattern::kWeak);
}

TEST(PatternTest, Rule5NegationAndRetroactiveRelation) {
  PlanPtr neg = MakeNegate(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(neg.get());
  EXPECT_EQ(neg->pattern, UpdatePattern::kStrict);

  PlanPtr rjoin = MakeJoin(Win(0, 100),
                           MakeRelation(5, IntSchema(2), /*retroactive=*/true),
                           0, 0);
  AnnotatePatterns(rjoin.get());
  EXPECT_EQ(rjoin->pattern, UpdatePattern::kStrict);
}

TEST(PatternTest, NrrJoinPreservesStreamPattern) {
  PlanPtr over_window =
      MakeJoin(Win(0, 100), MakeRelation(5, IntSchema(2), false), 0, 0);
  AnnotatePatterns(over_window.get());
  EXPECT_EQ(over_window->pattern, UpdatePattern::kWeakest);

  PlanPtr over_stream =
      MakeJoin(MakeStream(0, IntSchema(2)),
               MakeRelation(5, IntSchema(2), false), 0, 0);
  AnnotatePatterns(over_stream.get());
  EXPECT_EQ(over_stream->pattern, UpdatePattern::kMonotonic);
}

TEST(PatternTest, UnionOfUnequalWindowsIsWeak) {
  // Refinement of Rule 2 (see logical_plan.cc): generation order equals
  // expiration order across a merge-union only when both inputs expire
  // on the same schedule. With different window sizes, a tuple of the
  // shorter window expires before an earlier tuple of the longer one.
  PlanPtr p = MakeUnion(Win(0, 100), Win(1, 50));
  AnnotatePatterns(p.get());
  EXPECT_EQ(p->pattern, UpdatePattern::kWeak);

  // A stream (never expires) unioned with a window is equally non-FIFO.
  PlanPtr q = MakeUnion(MakeStream(0, IntSchema(2)), Win(1, 50));
  AnnotatePatterns(q.get());
  EXPECT_EQ(q->pattern, UpdatePattern::kWeak);

  // Selections do not disturb the expiration profile.
  PlanPtr r = MakeUnion(
      MakeSelect(Win(0, 100), {Predicate{0, CmpOp::kEq, Value{int64_t{1}}}}),
      Win(1, 100));
  AnnotatePatterns(r.get());
  EXPECT_EQ(r->pattern, UpdatePattern::kWeakest);
}

TEST(PatternTest, CountWindowIsStrict) {
  PlanPtr p = MakeCountWindow(MakeStream(0, IntSchema(2)), 50);
  AnnotatePatterns(p.get());
  EXPECT_EQ(p->pattern, UpdatePattern::kStrict);
}

// --- Figure 6: the two Query 5 rewritings annotate differently. ---

TEST(PatternTest, Figure6Annotations) {
  // Pull-up: negate(join(W1, sigma(W3)), W2): join edge is WK.
  PlanPtr pull_up = MakeNegate(
      MakeJoin(Win(0, 100), MakeSelect(Win(2, 100),
                                       {Predicate{1, CmpOp::kEq,
                                                  Value{int64_t{1}}}}),
               0, 0),
      Win(1, 100), 0, 0);
  AnnotatePatterns(pull_up.get());
  EXPECT_EQ(pull_up->pattern, UpdatePattern::kStrict);
  EXPECT_EQ(pull_up->child(0).pattern, UpdatePattern::kWeak);

  // Push-down: join(negate(W1, W2), sigma(W3)): the join sees STR input.
  PlanPtr push_down = MakeJoin(
      MakeNegate(Win(0, 100), Win(1, 100), 0, 0),
      MakeSelect(Win(2, 100), {Predicate{1, CmpOp::kEq, Value{int64_t{1}}}}),
      0, 0);
  AnnotatePatterns(push_down.get());
  EXPECT_EQ(push_down->pattern, UpdatePattern::kStrict);
  EXPECT_EQ(push_down->child(0).pattern, UpdatePattern::kStrict);
}

// --- Validation. ---

TEST(ValidateTest, GroupByMustBeRoot) {
  PlanPtr p = MakeSelect(MakeGroupBy(Win(0, 100), 0, AggKind::kSum, 1),
                         {Predicate{1, CmpOp::kGt, Value{2.0}}});
  AnnotatePatterns(p.get());
  EXPECT_FALSE(IsValidPlan(*p));
}

TEST(ValidateTest, RelationJoinRejectsStrictInput) {
  PlanPtr p = MakeJoin(MakeNegate(Win(0, 100), Win(1, 100), 0, 0),
                       MakeRelation(5, IntSchema(2), false), 0, 0);
  AnnotatePatterns(p.get());
  EXPECT_FALSE(IsValidPlan(*p));
}

TEST(ValidateTest, GoodPlansPass) {
  PlanPtr p = MakeJoin(Win(0, 100), Win(1, 50), 0, 1);
  AnnotatePatterns(p.get());
  EXPECT_TRUE(IsValidPlan(*p));
}

// --- Clone / ToString. ---

TEST(PlanNodeTest, CloneIsDeepAndEqualText) {
  PlanPtr p = MakeDistinct(
      MakeJoin(Win(0, 100), Win(1, 200), 0, 1), {0, 2});
  AnnotatePatterns(p.get());
  PlanPtr q = p->Clone();
  EXPECT_EQ(p->ToString(), q->ToString());
  q->cols = {0};
  EXPECT_NE(p->cols.size(), q->cols.size());  // Deep copy: p unaffected.
}

TEST(PlanNodeTest, ToStringShowsPatternAnnotations) {
  PlanPtr p = MakeNegate(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(p.get());
  const std::string s = p->ToString();
  EXPECT_NE(s.find("<STR>"), std::string::npos);
  EXPECT_NE(s.find("<WKS>"), std::string::npos);
}

// --- Planner structure choices. ---

TEST(PlannerTest, HelperQueries) {
  PlanPtr p = MakeJoin(Win(0, 100), Win(1, 500), 0, 1);
  AnnotatePatterns(p.get());
  EXPECT_EQ(MaxWindowSpan(*p), 500);
  EXPECT_EQ(RootKeyColumn(*p), 0);
  EXPECT_FALSE(ContainsNegation(*p));
  PlanPtr n = MakeNegate(Win(0, 100), Win(1, 100), 0, 0);
  EXPECT_TRUE(ContainsNegation(*n));
}

TEST(PlannerTest, BuildsAllModes) {
  PlanPtr p = MakeJoin(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(p.get());
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    auto pipeline = BuildPipeline(*p, mode);
    ASSERT_NE(pipeline, nullptr);
    EXPECT_EQ(pipeline->num_operators(), 3);  // Two windows + join.
  }
}

TEST(PlannerDeathTest, NrrJoinRejectedUnderNt) {
  PlanPtr p = MakeJoin(Win(0, 100), MakeRelation(5, IntSchema(2), false),
                       0, 0);
  AnnotatePatterns(p.get());
  EXPECT_DEATH(BuildPipeline(*p, ExecMode::kNegativeTuple), "UPA_CHECK");
}

}  // namespace
}  // namespace upa
