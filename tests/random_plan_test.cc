// Randomized property testing: generate random (valid) plan shapes over
// random traces and check, for every execution strategy, that the
// materialized view equals the reference evaluator's from-scratch answer
// at many checkpoints. This sweeps operator compositions that the
// hand-written integration tests do not enumerate. The generators live in
// random_plan_util.h, shared with the chaos differential suite.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "tests/random_plan_util.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::CheckAgainstReference;
using testing_util::RandomPlan;
using testing_util::RandomTrace;

class RandomPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPlanTest, AllStrategiesMatchReference) {
  Rng rng(GetParam());
  PlanPtr plan = RandomPlan(rng, static_cast<int>(1 + rng.NextBelow(3)));
  AnnotatePatterns(plan.get());
  ASSERT_TRUE(IsValidPlan(*plan)) << plan->ToString();
  const Trace trace = RandomTrace(rng, 150);
  SCOPED_TRACE(plan->ToString());
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    PlannerOptions options;
    options.num_partitions = static_cast<int>(1 + rng.NextBelow(12));
    ASSERT_GT(CheckAgainstReference(*plan, trace, mode, options,
                                    /*checkpoint_interval=*/17, {},
                                    /*drain=*/40),
              0);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // For plans containing a negation, also exercise the hybrid strategy.
  if (ContainsNegation(*plan)) {
    PlannerOptions hybrid;
    hybrid.str_strategy = StrStrategy::kNegativeTuples;
    ASSERT_GT(CheckAgainstReference(*plan, trace, ExecMode::kUpa, hybrid, 17,
                                    {}, 40),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace upa
