// Randomized property testing: generate random (valid) plan shapes over
// random traces and check, for every execution strategy, that the
// materialized view equals the reference evaluator's from-scratch answer
// at many checkpoints. This sweeps operator compositions that the
// hand-written integration tests do not enumerate.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::CheckAgainstReference;
using testing_util::IntSchema;

constexpr int kNumStreams = 3;

/// A single-column windowed source: project(window(stream)) down to the
/// key column, so that distinct/negation compositions compare exactly.
PlanPtr Source(Rng& rng) {
  const int stream = static_cast<int>(rng.NextBelow(kNumStreams));
  const Time window = rng.NextInRange(10, 60);
  PlanPtr p = MakeWindow(MakeStream(stream, IntSchema(2)), window);
  if (rng.NextBool(0.3)) {
    p = MakeSelect(std::move(p),
                   {Predicate{0, CmpOp::kLt,
                              Value{rng.NextInRange(2, 9)}}});
  }
  return MakeProject(std::move(p), {0});
}

/// Builds a random plan of bounded depth over single-column inputs.
PlanPtr RandomPlan(Rng& rng, int depth) {
  if (depth == 0) return Source(rng);
  switch (rng.NextBelow(6)) {
    case 0: {  // Union.
      return MakeUnion(RandomPlan(rng, depth - 1),
                       RandomPlan(rng, depth - 1));
    }
    case 1: {  // Join, projected back to one column.
      PlanPtr j = MakeJoin(RandomPlan(rng, depth - 1),
                           RandomPlan(rng, depth - 1), 0, 0);
      return MakeProject(std::move(j), {0});
    }
    case 2: {  // Distinct.
      return MakeDistinct(RandomPlan(rng, depth - 1), {0});
    }
    case 3: {  // Negation.
      return MakeNegate(RandomPlan(rng, depth - 1),
                        RandomPlan(rng, depth - 1), 0, 0);
    }
    case 4: {  // Selection.
      return MakeSelect(RandomPlan(rng, depth - 1),
                        {Predicate{0, CmpOp::kGe,
                                   Value{rng.NextInRange(0, 4)}}});
    }
    default: {  // Intersection.
      return MakeIntersect(RandomPlan(rng, depth - 1),
                           RandomPlan(rng, depth - 1));
    }
  }
}

Trace RandomTrace(Rng& rng, Time duration) {
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = kNumStreams;
  for (Time ts = 1; ts <= duration; ++ts) {
    for (int s = 0; s < kNumStreams; ++s) {
      if (rng.NextBool(0.2)) continue;  // Irregular arrivals.
      TraceEvent e;
      e.stream = s;
      e.tuple.ts = ts;
      e.tuple.fields = {Value{rng.NextInRange(0, 9)},
                        Value{rng.NextInRange(0, 99)}};
      trace.events.push_back(std::move(e));
    }
  }
  return trace;
}

class RandomPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPlanTest, AllStrategiesMatchReference) {
  Rng rng(GetParam());
  PlanPtr plan = RandomPlan(rng, static_cast<int>(1 + rng.NextBelow(3)));
  AnnotatePatterns(plan.get());
  ASSERT_TRUE(IsValidPlan(*plan)) << plan->ToString();
  const Trace trace = RandomTrace(rng, 150);
  SCOPED_TRACE(plan->ToString());
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    PlannerOptions options;
    options.num_partitions = static_cast<int>(1 + rng.NextBelow(12));
    ASSERT_GT(CheckAgainstReference(*plan, trace, mode, options,
                                    /*checkpoint_interval=*/17, {},
                                    /*drain=*/40),
              0);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // For plans containing a negation, also exercise the hybrid strategy.
  if (ContainsNegation(*plan)) {
    PlannerOptions hybrid;
    hybrid.str_strategy = StrStrategy::kNegativeTuples;
    ASSERT_GT(CheckAgainstReference(*plan, trace, ExecMode::kUpa, hybrid, 17,
                                    {}, 40),
              0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace upa
