// Network service layer tests (src/net).
//
// Three layers of attack:
//
//  1. The wire codec as a property: random messages of every type must
//     round-trip exactly; every strict prefix of a frame is kNeedMore;
//     any single bit flip, oversized length, trailing payload byte, or
//     unknown type must be rejected (CRC32C + exact-consumption
//     decoding), never decoded as a valid frame.
//
//  2. The pattern-aware subscription contract, differentially: for each
//     paper-shaped query (join, distinct, group-by, windowed select,
//     monotonic select, retroactive-relation join) a client-side mirror
//     fed only by the subscription stream must equal the server's
//     materialized view (Snapshot RPC) and the reference evaluator at
//     every barrier. Monotonic/WKS subscriptions must never carry a
//     negative tuple (Section 5.2: only STR result streams signal
//     deletions); the STR query must carry them.
//
//  3. The server runtime: handshake enforcement, protocol-version and
//     corrupt-frame rejection, HTTP /metrics hardening over a real
//     socket, slow-consumer policies, multi-client fan-out, idempotent
//     re-declaration, and subscription resets across an injected shard
//     kill with durability enabled.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"
#include "engine/engine.h"
#include "engine/fault.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "ref/reference.h"
#include "sql/catalog.h"
#include "state/serde.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace net {
namespace {

using testing_util::Canonical;
using testing_util::RowsToString;

namespace fs = std::filesystem;

// --- Random payload generators ----------------------------------------

Value RandomValue(Rng& rng) {
  switch (rng.NextBelow(3)) {
    case 0:
      return Value{static_cast<int64_t>(rng.Next())};
    case 1:
      return Value{rng.NextDouble() * 1e6 - 5e5};
    default: {
      std::string s;
      const size_t len = rng.NextBelow(13);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.NextBelow(26)));
      }
      return Value{std::move(s)};
    }
  }
}

Tuple RandomTuple(Rng& rng) {
  Tuple t;
  t.ts = static_cast<Time>(rng.NextBelow(100000));
  t.exp = rng.NextBool(0.3) ? kNeverExpires
                            : t.ts + static_cast<Time>(rng.NextBelow(1000));
  t.negative = rng.NextBool(0.2);
  const size_t n = rng.NextBelow(6);
  for (size_t i = 0; i < n; ++i) t.fields.push_back(RandomValue(rng));
  return t;
}

Schema RandomSchema(Rng& rng) {
  std::vector<Field> fields;
  const size_t n = rng.NextBelow(7);
  for (size_t i = 0; i < n; ++i) {
    fields.push_back(Field{"f" + std::to_string(i),
                           static_cast<ValueType>(rng.NextBelow(3))});
  }
  return Schema(std::move(fields));
}

std::vector<Tuple> RandomTuples(Rng& rng, size_t max) {
  std::vector<Tuple> out;
  const size_t n = rng.NextBelow(max + 1);
  for (size_t i = 0; i < n; ++i) out.push_back(RandomTuple(rng));
  return out;
}

/// A random message whose populated fields match `type`'s body grammar.
Message RandomMessage(MsgType type, Rng& rng) {
  Message m;
  m.type = type;
  m.req_id = rng.Next();
  m.version = static_cast<uint32_t>(rng.NextBelow(10));
  m.name = "n" + std::to_string(rng.NextBelow(1000));
  m.text = "t" + std::to_string(rng.Next());
  m.schema = RandomSchema(rng);
  m.flag = rng.NextBool(0.5);
  m.id = static_cast<int64_t>(rng.Next());
  m.shards = static_cast<uint32_t>(rng.NextBelow(16));
  m.pattern = static_cast<uint8_t>(rng.NextBelow(4));
  m.view_kind = static_cast<uint8_t>(rng.NextBelow(2));
  m.sub_id = rng.Next();
  m.time = static_cast<int64_t>(rng.NextBelow(1000000));
  m.token = rng.Next();
  m.seq = rng.Next();
  const size_t na = rng.NextBelow(5);
  for (size_t i = 0; i < na; ++i) m.acks.emplace_back(rng.Next(), rng.Next());
  const size_t nb = rng.NextBelow(5);
  for (size_t i = 0; i < nb; ++i) {
    m.batch.emplace_back(static_cast<uint32_t>(rng.NextBelow(4)),
                         RandomTuple(rng));
  }
  m.tuples = RandomTuples(rng, 6);
  return m;
}

const std::vector<MsgType>& AllTypes() {
  static const std::vector<MsgType> types = {
      MsgType::kHello,         MsgType::kHelloAck,
      MsgType::kError,         MsgType::kDeclareStream,
      MsgType::kDeclareRelation, MsgType::kDeclareAck,
      MsgType::kRegisterQuery, MsgType::kRegisterAck,
      MsgType::kIngestBatch,   MsgType::kIngestAck,
      MsgType::kAdvance,       MsgType::kAdvanceAck,
      MsgType::kFlush,         MsgType::kFlushAck,
      MsgType::kSnapshotReq,   MsgType::kSnapshotResp,
      MsgType::kSubscribe,     MsgType::kSubscribeAck,
      MsgType::kUnsubscribe,   MsgType::kUnsubscribeAck,
      MsgType::kSubData,       MsgType::kSubWatermark,
      MsgType::kSubReset,      MsgType::kSubDropped,
      MsgType::kPing,          MsgType::kPong,
      MsgType::kSqlExec,       MsgType::kSqlResult,
      MsgType::kResume,        MsgType::kResumeAck,
  };
  return types;
}

// --- 1. Codec properties ----------------------------------------------

TEST(NetProtocolTest, RandomMessagesRoundTripExactly) {
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    for (MsgType type : AllTypes()) {
      const Message m = RandomMessage(type, rng);
      const std::string frame = EncodeFrame(m);
      Message got;
      size_t consumed = 0;
      ASSERT_EQ(DecodeFrame(frame.data(), frame.size(), &got, &consumed),
                DecodeStatus::kOk)
          << MsgTypeName(type) << " seed=" << seed;
      EXPECT_EQ(consumed, frame.size());
      EXPECT_EQ(got.type, m.type);
      EXPECT_EQ(got.req_id, m.req_id);
      // The codec is deterministic, so re-encoding the decoded message
      // must reproduce the payload byte for byte -- this covers every
      // field the type's grammar carries.
      EXPECT_EQ(EncodePayload(got), EncodePayload(m))
          << MsgTypeName(type) << " seed=" << seed;
    }
  }
}

TEST(NetProtocolTest, EveryStrictPrefixNeedsMore) {
  Rng rng(7);
  const Message m = RandomMessage(MsgType::kIngestBatch, rng);
  const std::string frame = EncodeFrame(m);
  Message out;
  size_t consumed = 0;
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_EQ(DecodeFrame(frame.data(), len, &out, &consumed),
              DecodeStatus::kNeedMore)
        << "prefix " << len << "/" << frame.size();
  }
}

TEST(NetProtocolTest, ConcatenatedFramesDecodeSequentially) {
  Rng rng(11);
  std::string buf;
  std::vector<Message> sent;
  for (int i = 0; i < 8; ++i) {
    sent.push_back(RandomMessage(
        AllTypes()[rng.NextBelow(AllTypes().size())], rng));
    buf += EncodeFrame(sent.back());
  }
  size_t off = 0;
  for (const Message& want : sent) {
    Message got;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(buf.data() + off, buf.size() - off, &got,
                          &consumed),
              DecodeStatus::kOk);
    EXPECT_EQ(EncodePayload(got), EncodePayload(want));
    off += consumed;
  }
  EXPECT_EQ(off, buf.size());
}

TEST(NetProtocolTest, SingleBitFlipsNeverDecode) {
  Rng rng(13);
  for (MsgType type :
       {MsgType::kIngestBatch, MsgType::kSubscribeAck, MsgType::kHello}) {
    const Message m = RandomMessage(type, rng);
    const std::string frame = EncodeFrame(m);
    for (size_t byte = 0; byte < frame.size(); ++byte) {
      std::string bad = frame;
      bad[byte] = static_cast<char>(bad[byte] ^ (1u << (byte % 8)));
      Message out;
      size_t consumed = 0;
      // A flip may land in the length field and turn the status into
      // kNeedMore or kTooLarge; what it must never do is decode.
      EXPECT_NE(DecodeFrame(bad.data(), bad.size(), &out, &consumed),
                DecodeStatus::kOk)
          << MsgTypeName(type) << " flipped byte " << byte;
    }
  }
}

TEST(NetProtocolTest, OversizedLengthIsRejectedBeforeAllocation) {
  std::string frame;
  serde::PutU32(&frame, kMagic);
  serde::PutU32(&frame, kMaxFrameBytes + 1);
  serde::PutU32(&frame, 0);
  Message out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &out, &consumed),
            DecodeStatus::kTooLarge);
}

TEST(NetProtocolTest, TrailingPayloadBytesAreCorruption) {
  Message m;
  m.type = MsgType::kPing;
  m.req_id = 9;
  std::string payload = EncodePayload(m);
  payload.push_back('x');  // One stray byte after a valid body.
  std::string frame;
  serde::PutU32(&frame, kMagic);
  serde::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  serde::PutU32(&frame,
                MaskCrc32c(Crc32c(payload.data(), payload.size())));
  frame += payload;
  Message out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &out, &consumed),
            DecodeStatus::kCorrupt);
}

TEST(NetProtocolTest, UnknownMessageTypeIsCorruption) {
  std::string payload;
  serde::PutU8(&payload, 200);  // No such MsgType.
  serde::PutU64(&payload, 1);
  std::string frame;
  serde::PutU32(&frame, kMagic);
  serde::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  serde::PutU32(&frame,
                MaskCrc32c(Crc32c(payload.data(), payload.size())));
  frame += payload;
  Message out;
  size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(frame.data(), frame.size(), &out, &consumed),
            DecodeStatus::kCorrupt);
}

// --- Shared fixtures ---------------------------------------------------

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           ("upa_net_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// In-process engine + server + one connected client over loopback.
struct Wire {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<Server> server;
  Client client;

  explicit Wire(EngineOptions eopts = {}, ServerOptions sopts = {}) {
    engine = std::make_unique<Engine>(eopts);
    sopts.port = 0;
    server = std::make_unique<Server>(engine.get(), sopts);
    std::string err;
    if (!server->Start(&err)) ADD_FAILURE() << "server start: " << err;
    if (!client.Connect("127.0.0.1", server->port(), &err)) {
      ADD_FAILURE() << "connect: " << err;
    }
  }

  ~Wire() {
    client.Close();
    server->Stop();
    engine->Stop();
  }
};

Trace NetTrace(Time duration) {
  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = duration;
  cfg.num_sources = 40;  // Dense keys keep joins and distincts busy.
  return GenerateLblTrace(cfg);
}

Schema MetaSchema() {
  return Schema({Field{"key", ValueType::kInt}});
}

/// Replays `trace` over `client` in whole-timestamp groups, flushing and
/// three-way comparing (mirror == Snapshot RPC == oracle) every
/// `barrier_every` time units. With `relation_updates`, deterministic
/// inserts/deletes on the retroactive relation "meta" are interleaved,
/// exercising STR deltas (negative tuples) end to end.
void ReplayAndCompare(Client& client, const std::string& name,
                      SubscriptionMirror* sub, ReferenceEvaluator* ref,
                      const std::set<int>& oracle_streams,
                      const int64_t remote_id[2], const int local_id[2],
                      const Trace& trace, Time barrier_every,
                      int64_t meta_remote = -1, int meta_local = -1) {
  std::string err;
  std::vector<std::pair<uint32_t, Tuple>> batch;
  std::vector<int64_t> meta_keys;
  Time next_barrier = barrier_every;
  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    if (meta_remote >= 0) {
      // Deterministic relation churn: insert key ts%40 every 3 ticks,
      // delete the oldest live key every 7 ticks.
      if (ts % 3 == 0) {
        Tuple u;
        u.ts = ts;
        u.exp = kNeverExpires;
        u.fields = {Value{static_cast<int64_t>(ts % 40)}};
        meta_keys.push_back(ts % 40);
        batch.emplace_back(static_cast<uint32_t>(meta_remote), u);
        if (ref != nullptr && oracle_streams.count(meta_local) > 0) {
          ref->Observe(meta_local, u);
        }
      }
      if (ts % 7 == 0 && !meta_keys.empty()) {
        Tuple u;
        u.ts = ts;
        u.exp = kNeverExpires;
        u.negative = true;
        u.fields = {Value{meta_keys.front()}};
        meta_keys.erase(meta_keys.begin());
        batch.emplace_back(static_cast<uint32_t>(meta_remote), u);
        if (ref != nullptr && oracle_streams.count(meta_local) > 0) {
          ref->Observe(meta_local, u);
        }
      }
    }
    while (i < n && trace.events[i].tuple.ts == ts) {
      const TraceEvent& e = trace.events[i];
      batch.emplace_back(static_cast<uint32_t>(remote_id[e.stream]),
                         e.tuple);
      if (ref != nullptr && oracle_streams.count(local_id[e.stream]) > 0) {
        ref->Observe(local_id[e.stream], e.tuple);
      }
      ++i;
    }
    if (batch.size() >= 256 || ts >= next_barrier || i == n) {
      ASSERT_TRUE(client.IngestBatch(batch, &err)) << err;
      batch.clear();
    }
    if (ts >= next_barrier || i == n) {
      while (next_barrier <= ts) next_barrier += barrier_every;
      ASSERT_TRUE(client.Flush(&err)) << err;
      std::vector<Tuple> snap;
      Time at = 0;
      ASSERT_TRUE(client.Snapshot(name, &snap, &at, &err)) << err;
      const auto mirror_rows = Canonical(sub->Rows());
      const auto snap_rows = Canonical(snap);
      ASSERT_EQ(mirror_rows, snap_rows)
          << name << " at t=" << at << "\nmirror:\n"
          << RowsToString(mirror_rows) << "view:\n"
          << RowsToString(snap_rows);
      if (ref != nullptr) {
        const auto want = Canonical(ref->EvalAt(at));
        ASSERT_EQ(snap_rows, want)
            << name << " at t=" << at << "\nengine:\n"
            << RowsToString(snap_rows) << "oracle:\n"
            << RowsToString(want);
      }
    }
  }
}

struct DiffCase {
  const char* name;
  const char* sql;
  UpdatePattern pattern;
  bool relation = false;
};

/// The paper-shaped query suite: every update pattern and both view
/// delta kinds are represented.
const std::vector<DiffCase>& DiffCases() {
  static const std::vector<DiffCase> cases = {
      {"q1-join",
       "SELECT link0.src_ip FROM link0 [RANGE 60], link1 [RANGE 60] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2",
       UpdatePattern::kWeak},
      {"q2-distinct", "SELECT DISTINCT src_ip FROM link0 [RANGE 60]",
       UpdatePattern::kWeak},
      {"q3-group",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 60] "
       "GROUP BY protocol",
       UpdatePattern::kWeak},
      {"q4-window", "SELECT src_ip FROM link0 [RANGE 60] WHERE protocol = 2",
       UpdatePattern::kWeakest},
      {"q5-mono", "SELECT src_ip FROM link0 WHERE protocol = 2",
       UpdatePattern::kMonotonic},
      {"q6-str",
       "SELECT link0.src_ip FROM link0 [RANGE 60], meta "
       "WHERE link0.src_ip = meta.key",
       UpdatePattern::kStrict, /*relation=*/true},
  };
  return cases;
}

class WireDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WireDifferentialTest, SubscriberMatchesViewAndOracle) {
  const DiffCase& c = DiffCases()[GetParam()];
  EngineOptions eopts;
  eopts.default_shards = 2;
  eopts.check_invariants = true;
  Wire w(eopts);
  std::string err;

  const int64_t remote_id[2] = {
      w.client.DeclareStream("link0", LblSchema(), &err),
      w.client.DeclareStream("link1", LblSchema(), &err)};
  ASSERT_GE(remote_id[0], 0) << err;
  ASSERT_GE(remote_id[1], 0) << err;
  int64_t meta_remote = -1;
  if (c.relation) {
    meta_remote = w.client.DeclareRelation("meta", MetaSchema(),
                                           /*retroactive=*/true, &err);
    ASSERT_GE(meta_remote, 0) << err;
  }

  ClientQueryInfo info;
  ASSERT_TRUE(w.client.RegisterQuery(c.name, c.sql, 0, &info, &err)) << err;
  EXPECT_EQ(info.pattern, c.pattern) << c.name;

  SubscriptionMirror* sub = w.client.Subscribe(c.name, &err);
  ASSERT_NE(sub, nullptr) << err;
  EXPECT_EQ(sub->pattern(), c.pattern);

  // Identical local catalog for the oracle.
  SourceCatalog catalog;
  const int local_id[2] = {catalog.DeclareStream("link0", LblSchema()),
                           catalog.DeclareStream("link1", LblSchema())};
  int meta_local = -1;
  if (c.relation) {
    meta_local = catalog.DeclareRelation("meta", MetaSchema(),
                                         /*retroactive=*/true);
  }
  const ParseResult p = catalog.Compile(c.sql);
  ASSERT_TRUE(p.ok()) << p.error;
  std::set<int> streams;
  const std::function<void(const PlanNode&)> collect =
      [&streams, &collect](const PlanNode& n) {
        if (n.kind == PlanOpKind::kStream ||
            n.kind == PlanOpKind::kRelation) {
          streams.insert(n.stream_id);
        }
        for (const auto& ch : n.children) collect(*ch);
      };
  collect(*p.plan);
  ReferenceEvaluator ref(p.plan.get());

  const Trace trace = NetTrace(300);
  ReplayAndCompare(w.client, c.name, sub, &ref, streams, remote_id,
                   local_id, trace, /*barrier_every=*/50, meta_remote,
                   meta_local);

  // Section 5.2 pins: only STR result streams carry deletions.
  if (c.pattern == UpdatePattern::kMonotonic ||
      c.pattern == UpdatePattern::kWeakest) {
    EXPECT_EQ(sub->negatives_applied(), 0u)
        << c.name << ": a " << PatternName(c.pattern)
        << " subscription transmitted negative tuples";
  }
  if (c.pattern == UpdatePattern::kStrict) {
    EXPECT_GT(sub->negatives_applied(), 0u)
        << c.name << ": the STR differential never exercised a deletion";
  }
  EXPECT_GT(sub->deltas_applied(), 0u);
  EXPECT_TRUE(w.client.Unsubscribe(sub, &err)) << err;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, WireDifferentialTest,
                         ::testing::Range<size_t>(0, DiffCases().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           std::string n = DiffCases()[info.param].name;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

// --- 3. Server runtime -------------------------------------------------

namespace raw {

/// Plain blocking TCP connection for protocol-violation tests.
struct Conn {
  int fd = -1;
  explicit Conn(int port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      ::close(fd);
      fd = -1;
    }
  }
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
  bool Send(const std::string& bytes) const {
    return fd >= 0 &&
           ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
  }
  /// Reads until EOF or `limit` bytes.
  std::string ReadAll(size_t limit = 1 << 20) const {
    std::string out;
    char buf[4096];
    while (out.size() < limit) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }
};

}  // namespace raw

TEST(NetServerTest, HandshakeIsRequiredBeforeAnyRequest) {
  Wire w;
  raw::Conn conn(w.server->port());
  ASSERT_GE(conn.fd, 0);
  Message ping;
  ping.type = MsgType::kPing;
  ping.req_id = 1;
  ASSERT_TRUE(conn.Send(EncodeFrame(ping)));
  const std::string reply = conn.ReadAll();  // Server answers then closes.
  Message m;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(reply.data(), reply.size(), &m, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(m.type, MsgType::kError);
  EXPECT_NE(m.text.find("handshake"), std::string::npos) << m.text;
}

TEST(NetServerTest, ProtocolVersionMismatchIsRejected) {
  Wire w;
  raw::Conn conn(w.server->port());
  ASSERT_GE(conn.fd, 0);
  Message hello;
  hello.type = MsgType::kHello;
  hello.req_id = 1;
  hello.version = kProtocolVersion + 41;
  ASSERT_TRUE(conn.Send(EncodeFrame(hello)));
  const std::string reply = conn.ReadAll();
  Message m;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(reply.data(), reply.size(), &m, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(m.type, MsgType::kError);
  EXPECT_NE(m.text.find("version"), std::string::npos) << m.text;
}

TEST(NetServerTest, CorruptFrameClosesTheSession) {
  Wire w;
  raw::Conn conn(w.server->port());
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(conn.Send("this is definitely not a UPAN frame......"));
  const std::string reply = conn.ReadAll();
  Message m;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(reply.data(), reply.size(), &m, &consumed),
            DecodeStatus::kOk);
  EXPECT_EQ(m.type, MsgType::kError);
  EXPECT_GE(w.server->Stats().protocol_errors, 1u);
}

TEST(NetServerTest, MetricsEndpointServesAndHardens) {
  ServerOptions sopts;
  sopts.metrics_port = 0;  // Ephemeral HTTP listener alongside binary.
  Wire w({}, sopts);
  ASSERT_GE(w.server->metrics_port(), 0);

  const auto http = [&](const std::string& request) {
    raw::Conn conn(w.server->metrics_port());
    EXPECT_GE(conn.fd, 0);
    EXPECT_TRUE(conn.Send(request));
    return conn.ReadAll();
  };

  const std::string ok = http("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(ok.find("200"), std::string::npos) << ok.substr(0, 120);
  EXPECT_NE(ok.find("upa_net_sessions_active"), std::string::npos);
  EXPECT_NE(http("GET /nope HTTP/1.1\r\n\r\n").find("404"),
            std::string::npos);
  EXPECT_NE(http("POST /metrics HTTP/1.1\r\n\r\n").find("405"),
            std::string::npos);
  EXPECT_NE(http("garbage\r\n\r\n").find("400"), std::string::npos);
}

TEST(NetServerTest, DeclarationsAndRegistrationAreIdempotent) {
  Wire w;
  std::string err;
  const int64_t id1 = w.client.DeclareStream("link0", LblSchema(), &err);
  ASSERT_GE(id1, 0) << err;
  // Same shape -> same id (a reconnecting client must not error out).
  EXPECT_EQ(w.client.DeclareStream("link0", LblSchema(), &err), id1);
  // Different shape -> rejected.
  EXPECT_LT(w.client.DeclareStream("link0", MetaSchema(), &err), 0);
  EXPECT_NE(err.find("different shape"), std::string::npos) << err;
  // Stream redeclared as a relation -> rejected.
  EXPECT_LT(w.client.DeclareRelation("link0", LblSchema(), true, &err), 0);

  const char* sql = "SELECT DISTINCT src_ip FROM link0 [RANGE 60]";
  ClientQueryInfo a, b;
  ASSERT_TRUE(w.client.RegisterQuery("q", sql, 0, &a, &err)) << err;
  ASSERT_TRUE(w.client.RegisterQuery("q", sql, 0, &b, &err)) << err;
  EXPECT_EQ(a.shards, b.shards);
  EXPECT_EQ(a.pattern, b.pattern);
  EXPECT_FALSE(w.client.RegisterQuery(
      "q", "SELECT src_ip FROM link0 [RANGE 60]", 0, nullptr, &err));
  EXPECT_NE(err.find("different SQL"), std::string::npos) << err;
}

TEST(NetServerTest, UnsubscribeDetachesFromTheEngine) {
  Wire w;
  std::string err;
  ASSERT_GE(w.client.DeclareStream("link0", LblSchema(), &err), 0) << err;
  ASSERT_TRUE(w.client.RegisterQuery(
      "q", "SELECT DISTINCT src_ip FROM link0 [RANGE 60]", 0, nullptr,
      &err))
      << err;
  SubscriptionMirror* sub = w.client.Subscribe("q", &err);
  ASSERT_NE(sub, nullptr) << err;
  auto subscribers = [&] {
    for (const QueryMetrics& qm : w.engine->Metrics().queries) {
      if (qm.name == "q") return qm.subscribers;
    }
    return uint64_t{0};
  };
  EXPECT_EQ(subscribers(), 1u);
  ASSERT_TRUE(w.client.Unsubscribe(sub, &err)) << err;
  EXPECT_EQ(subscribers(), 0u);
}

TEST(NetServerTest, SlowConsumerDropPolicyDropsAndRecovers) {
  ServerOptions sopts;
  sopts.slow_consumer = SlowConsumerPolicy::kDropSubscription;
  sopts.send_cap_bytes = 512;  // Any real delta batch crosses this.
  EngineOptions eopts;
  eopts.default_shards = 1;
  Wire w(eopts, sopts);
  std::string err;
  const int64_t link0 = w.client.DeclareStream("link0", LblSchema(), &err);
  ASSERT_GE(link0, 0) << err;
  ASSERT_TRUE(w.client.RegisterQuery(
      "q", "SELECT src_ip FROM link0", 0, nullptr, &err))
      << err;
  SubscriptionMirror* sub = w.client.Subscribe("q", &err);
  ASSERT_NE(sub, nullptr) << err;

  const Trace trace = NetTrace(400);
  std::vector<std::pair<uint32_t, Tuple>> batch;
  for (const TraceEvent& e : trace.events) {
    if (e.stream != 0) continue;
    batch.emplace_back(static_cast<uint32_t>(link0), e.tuple);
  }
  ASSERT_TRUE(w.client.IngestBatch(batch, &err)) << err;
  ASSERT_TRUE(w.client.Flush(&err)) << err;
  // The drop notice is pushed from the emitting thread; give the poll
  // thread a few rounds to reap and deliver it.
  for (int i = 0; i < 100 && !sub->dropped(); ++i) {
    ASSERT_TRUE(w.client.PollEvents(50, &err)) << err;
  }
  EXPECT_TRUE(sub->dropped());
  EXPECT_GE(w.server->Stats().slow_drops, 1u);

  // The session survives the drop: control traffic still works, and a
  // re-subscribe resynchronizes through a fresh snapshot.
  ASSERT_TRUE(w.client.Ping(&err)) << err;
  SubscriptionMirror* again = w.client.Subscribe("q", &err);
  ASSERT_NE(again, nullptr) << err;
  std::vector<Tuple> snap;
  ASSERT_TRUE(w.client.Snapshot("q", &snap, nullptr, &err)) << err;
  EXPECT_EQ(Canonical(again->Rows()), Canonical(snap));
}

TEST(NetServerTest, BlockPolicyIsLossless) {
  ServerOptions sopts;
  sopts.slow_consumer = SlowConsumerPolicy::kBlock;
  sopts.send_cap_bytes = 4096;  // Force the emitters to wait on the writer.
  EngineOptions eopts;
  eopts.default_shards = 2;
  Wire w(eopts, sopts);
  std::string err;
  const int64_t link0 = w.client.DeclareStream("link0", LblSchema(), &err);
  ASSERT_GE(link0, 0) << err;
  ASSERT_TRUE(w.client.RegisterQuery(
      "q", "SELECT src_ip FROM link0 [RANGE 60]", 0, nullptr, &err))
      << err;
  SubscriptionMirror* sub = w.client.Subscribe("q", &err);
  ASSERT_NE(sub, nullptr) << err;
  const int64_t remote_id[2] = {link0, link0};
  const int local_id[2] = {0, 0};
  Trace trace = NetTrace(300);
  trace.events.erase(
      std::remove_if(trace.events.begin(), trace.events.end(),
                     [](const TraceEvent& e) { return e.stream != 0; }),
      trace.events.end());
  // No oracle here -- the property is that backpressure loses nothing:
  // mirror == view at every barrier despite the tiny send cap.
  ReplayAndCompare(w.client, "q", sub, nullptr, {}, remote_id, local_id,
                   trace, /*barrier_every=*/40);
  EXPECT_FALSE(sub->dropped());
}

TEST(NetServerTest, MultipleClientsSeeTheSameBarrierState) {
  EngineOptions eopts;
  eopts.default_shards = 2;
  Wire w(eopts);
  std::string err;
  const int64_t link0 = w.client.DeclareStream("link0", LblSchema(), &err);
  ASSERT_GE(link0, 0) << err;
  ASSERT_TRUE(w.client.RegisterQuery(
      "q", "SELECT DISTINCT src_ip FROM link0 [RANGE 60]", 0, nullptr,
      &err))
      << err;
  SubscriptionMirror* sub1 = w.client.Subscribe("q", &err);
  ASSERT_NE(sub1, nullptr) << err;

  Client client2;
  ASSERT_TRUE(client2.Connect("127.0.0.1", w.server->port(), &err)) << err;
  SubscriptionMirror* sub2 = client2.Subscribe("q", &err);
  ASSERT_NE(sub2, nullptr) << err;

  const Trace trace = NetTrace(200);
  std::vector<std::pair<uint32_t, Tuple>> batch;
  Time last = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.stream != 0) continue;
    batch.emplace_back(static_cast<uint32_t>(link0), e.tuple);
    last = e.tuple.ts;
  }
  ASSERT_TRUE(w.client.IngestBatch(batch, &err)) << err;
  ASSERT_TRUE(w.client.Flush(&err)) << err;  // Client 1 is now current.

  // Client 2 never flushed; its watermark arrives as a push. Drain until
  // it catches up to the same barrier.
  for (int i = 0; i < 200 && sub2->watermark() < last; ++i) {
    ASSERT_TRUE(client2.PollEvents(50, &err)) << err;
  }
  EXPECT_GE(sub2->watermark(), last);
  EXPECT_EQ(Canonical(sub1->Rows()), Canonical(sub2->Rows()));

  // Dropping one client's subscription must not disturb the other's.
  ASSERT_TRUE(client2.Unsubscribe(sub2, &err)) << err;
  std::vector<Tuple> snap;
  ASSERT_TRUE(w.client.Snapshot("q", &snap, nullptr, &err)) << err;
  EXPECT_EQ(Canonical(sub1->Rows()), Canonical(snap));
  client2.Close();
}

TEST(NetServerTest, ShardKillWithDurabilityResetsAndResynchronizes) {
  TempDir dir("killsub");
  // One scheduled kill: shard 0 of the query dies mid-trace; the barrier
  // path restarts it from the recovery log, detects that the replica the
  // subscription sink was attached to is gone, and pushes a kSubReset
  // with a fresh snapshot. The mirror must resynchronize and the final
  // three-way differential must still hold -- with the WAL on, so the
  // networked ingest path and the durability layer compose.
  std::vector<FaultEvent> schedule;
  FaultEvent kill;
  kill.kind = FaultKind::kKillShard;
  kill.query = "q";
  kill.shard = 0;
  kill.at_count = 120;
  schedule.push_back(kill);
  FaultInjector faults(std::move(schedule));

  EngineOptions eopts;
  eopts.default_shards = 2;
  eopts.check_invariants = true;
  eopts.durability.dir = dir.str();
  eopts.fault_injector = &faults;
  Wire w(eopts);
  std::string err;

  const int64_t remote_id[2] = {
      w.client.DeclareStream("link0", LblSchema(), &err),
      w.client.DeclareStream("link1", LblSchema(), &err)};
  ASSERT_GE(remote_id[0], 0) << err;
  ASSERT_GE(remote_id[1], 0) << err;
  const char* sql =
      "SELECT link0.src_ip FROM link0 [RANGE 60], link1 [RANGE 60] "
      "WHERE link0.src_ip = link1.src_ip";
  ASSERT_TRUE(w.client.RegisterQuery("q", sql, 0, nullptr, &err)) << err;
  SubscriptionMirror* sub = w.client.Subscribe("q", &err);
  ASSERT_NE(sub, nullptr) << err;

  SourceCatalog catalog;
  const int local_id[2] = {catalog.DeclareStream("link0", LblSchema()),
                           catalog.DeclareStream("link1", LblSchema())};
  const ParseResult p = catalog.Compile(sql);
  ASSERT_TRUE(p.ok()) << p.error;
  ReferenceEvaluator ref(p.plan.get());

  const Trace trace = NetTrace(240);
  ReplayAndCompare(w.client, "q", sub, &ref, {local_id[0], local_id[1]},
                   remote_id, local_id, trace, /*barrier_every=*/40);

  EXPECT_GE(sub->resets_applied(), 1u)
      << "the scheduled shard kill never forced a subscription reset";
  uint64_t restarts = 0;
  for (const QueryMetrics& qm : w.engine->Metrics().queries) {
    if (qm.name == "q") restarts = qm.restarts;
  }
  EXPECT_GE(restarts, 1u);
}

// --- 4. Resilient sessions: reconnect, resume, heartbeats --------------

namespace raw {

/// Minimal loopback listener for fake-server tests.
struct Listener {
  int fd = -1;
  int port = 0;
  Listener() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0 &&
        ::listen(fd, 1) == 0) {
      socklen_t len = sizeof(addr);
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
      port = ntohs(addr.sin_port);
    }
  }
  ~Listener() {
    if (fd >= 0) ::close(fd);
  }
};

/// Blocking read of one decoded frame off `fd` (fails the test on EOF).
Message ReadMsg(int fd) {
  std::string buf;
  Message m;
  for (;;) {
    size_t consumed = 0;
    const DecodeStatus st = DecodeFrame(buf.data(), buf.size(), &m, &consumed);
    if (st == DecodeStatus::kOk) return m;
    EXPECT_EQ(st, DecodeStatus::kNeedMore);
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      ADD_FAILURE() << "connection closed while awaiting a frame";
      return m;
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

/// Reads frames until one carries `req_id` (dispatching nothing);
/// returns it. Replay pushes (req_id 0) are collected into `pushes`.
Message ReadResponse(int fd, uint64_t req_id,
                     std::vector<Message>* pushes = nullptr) {
  std::string buf;
  for (;;) {
    Message m;
    size_t consumed = 0;
    const DecodeStatus st = DecodeFrame(buf.data(), buf.size(), &m, &consumed);
    if (st == DecodeStatus::kOk) {
      buf.erase(0, consumed);
      if (m.req_id == req_id) return m;
      if (m.req_id == 0 && pushes != nullptr) pushes->push_back(std::move(m));
      continue;
    }
    EXPECT_EQ(st, DecodeStatus::kNeedMore);
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      ADD_FAILURE() << "connection closed while awaiting req " << req_id;
      return Message{};
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

/// v3 handshake on a raw connection; returns the issued session token.
uint64_t Handshake(const Conn& conn) {
  Message hello;
  hello.type = MsgType::kHello;
  hello.req_id = 1;
  hello.version = kProtocolVersion;
  EXPECT_TRUE(conn.Send(EncodeFrame(hello)));
  const Message ack = ReadResponse(conn.fd, 1);
  EXPECT_EQ(ack.type, MsgType::kHelloAck);
  return ack.token;
}

}  // namespace raw

// Satellite: the client's frame-read timeout is a whole-frame deadline.
// A peer trickling bytes slower than the frame but faster than the old
// per-poll timeout used to pin PollEvents for the whole trickle; now the
// residual budget shrinks across partial reads and the call returns on
// schedule.
TEST(NetClientTest, ReadFrameTimeoutIsAWholeFrameDeadline) {
  raw::Listener listener;
  ASSERT_GT(listener.port, 0);
  std::thread fake_server([&listener] {
    const int fd = ::accept(listener.fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    const Message hello = raw::ReadMsg(fd);
    Message ack;
    ack.type = MsgType::kHelloAck;
    ack.req_id = hello.req_id;
    ack.version = kProtocolVersion;
    ack.name = "trickler";
    [[maybe_unused]] ssize_t sent;
    const std::string ack_frame = EncodeFrame(ack);
    sent = ::send(fd, ack_frame.data(), ack_frame.size(), MSG_NOSIGNAL);
    // Trickle a push frame one byte per 100ms: each byte lands inside
    // the client's 200ms window, but the whole frame takes ~2s.
    Message push;
    push.type = MsgType::kSubWatermark;
    push.sub_id = 1;
    push.seq = 1;
    push.time = 1;
    const std::string frame = EncodeFrame(push);
    for (size_t i = 0; i < frame.size() && i < 15; ++i) {
      if (::send(fd, frame.data() + i, 1, MSG_NOSIGNAL) != 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    ::close(fd);
  });

  Client client;
  std::string err;
  ASSERT_TRUE(client.Connect("127.0.0.1", listener.port, &err)) << err;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(client.PollEvents(200, &err)) << err;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  // Old behavior: ~1.7s (the trickle keeps resetting the window). The
  // bound leaves slack for CI scheduling noise while still catching a
  // rearming timeout.
  EXPECT_LT(elapsed, 1000) << "partial reads rearmed the poll timeout";
  client.Close();
  fake_server.join();
}

/// Wire variant with resumable sessions (tests tune ring/heartbeat).
ServerOptions ResumableOptions(size_t ring_bytes = 1u << 20,
                               int heartbeat_ms = 0,
                               int heartbeat_timeout_ms = 0) {
  ServerOptions sopts;
  sopts.session_lease_ms = 10000;
  sopts.replay_ring_bytes = ring_bytes;
  sopts.heartbeat_ms = heartbeat_ms;
  sopts.heartbeat_timeout_ms = heartbeat_timeout_ms;
  return sopts;
}

/// Declares link0, registers the monotonic `q`, subscribes, and returns
/// the mirror.
SubscriptionMirror* SetupMonoSub(Wire& w) {
  std::string err;
  const int64_t link0 = w.client.DeclareStream("link0", LblSchema(), &err);
  EXPECT_GE(link0, 0) << err;
  EXPECT_TRUE(w.client.RegisterQuery(
      "q", "SELECT src_ip FROM link0 WHERE protocol = 2", 0, nullptr, &err))
      << err;
  SubscriptionMirror* sub = w.client.Subscribe("q", &err);
  EXPECT_NE(sub, nullptr) << err;
  return sub;
}

std::vector<std::pair<uint32_t, Tuple>> TraceBatch(const Trace& trace,
                                                   uint32_t stream_id,
                                                   size_t begin, size_t end) {
  std::vector<std::pair<uint32_t, Tuple>> batch;
  for (size_t i = begin; i < end && i < trace.events.size(); ++i) {
    if (trace.events[i].stream != 0) continue;
    batch.emplace_back(stream_id, trace.events[i].tuple);
  }
  return batch;
}

TEST(NetResumeTest, ResumeReplaysDeltasBufferedWhileDisconnected) {
  EngineOptions eopts;
  eopts.default_shards = 1;
  Wire w(eopts, ResumableOptions());
  std::string err;
  SubscriptionMirror* sub = SetupMonoSub(w);
  ASSERT_NE(sub, nullptr);
  EXPECT_NE(w.client.token(), 0u) << "lease on, so a token must be issued";

  Client feeder;  // Keeps the engine fed while the subscriber is gone.
  ASSERT_TRUE(feeder.Connect("127.0.0.1", w.server->port(), &err)) << err;

  const Trace trace = NetTrace(200);
  const size_t half = trace.events.size() / 2;
  ASSERT_TRUE(feeder.IngestBatch(TraceBatch(trace, 0, 0, half), &err)) << err;
  ASSERT_TRUE(w.client.Flush(&err)) << err;  // Mirror current; seqs acked.
  const uint64_t seq_before = sub->last_seq();
  EXPECT_GT(seq_before, 0u);

  w.client.Disconnect();
  ASSERT_TRUE(feeder.IngestBatch(TraceBatch(trace, 0, half,
                                            trace.events.size()), &err))
      << err;
  ASSERT_TRUE(feeder.Flush(&err));  // Deltas + watermark land in the ring.

  ReconnectPolicy policy;
  policy.enabled = true;
  w.client.set_reconnect(policy);
  // Any request triggers reconnect-with-resume; the replayed suffix is
  // applied before the resume ack, so the mirror is current immediately.
  ASSERT_TRUE(w.client.Ping(&err)) << err;

  const ClientStats cs = w.client.stats();
  EXPECT_EQ(cs.reconnects, 1u);
  EXPECT_EQ(cs.resumes, 1u);
  EXPECT_EQ(cs.resume_replays, 1u);
  EXPECT_EQ(cs.resume_snapshots, 0u);
  EXPECT_EQ(cs.resume_lost, 0u);
  EXPECT_GT(sub->last_seq(), seq_before);
  EXPECT_FALSE(sub->dropped());
  EXPECT_EQ(sub->resets_applied(), 0u) << "replay must not resort to resets";

  std::vector<Tuple> snap;
  ASSERT_TRUE(w.client.Snapshot("q", &snap, nullptr, &err)) << err;
  EXPECT_EQ(Canonical(sub->Rows()), Canonical(snap));

  const ServerStats ss = w.server->Stats();
  EXPECT_EQ(ss.resumes, 1u);
  EXPECT_EQ(ss.resume_replays, 1u);
  EXPECT_EQ(ss.resume_snapshots, 0u);
  EXPECT_EQ(ss.detached_sessions, 0u);
  feeder.Close();
}

TEST(NetResumeTest, RingOverrunFallsBackToSnapshotCatchUp) {
  EngineOptions eopts;
  eopts.default_shards = 1;
  // A 256-byte budget cannot hold any real delta frame: every resume
  // that is not fully caught up must take the snapshot path.
  Wire w(eopts, ResumableOptions(/*ring_bytes=*/256));
  std::string err;
  SubscriptionMirror* sub = SetupMonoSub(w);
  ASSERT_NE(sub, nullptr);

  Client feeder;
  ASSERT_TRUE(feeder.Connect("127.0.0.1", w.server->port(), &err)) << err;
  const Trace trace = NetTrace(200);
  const size_t half = trace.events.size() / 2;
  ASSERT_TRUE(feeder.IngestBatch(TraceBatch(trace, 0, 0, half), &err)) << err;
  ASSERT_TRUE(w.client.Flush(&err)) << err;

  w.client.Disconnect();
  ASSERT_TRUE(feeder.IngestBatch(TraceBatch(trace, 0, half,
                                            trace.events.size()), &err))
      << err;
  ASSERT_TRUE(feeder.Flush(&err));

  ReconnectPolicy policy;
  policy.enabled = true;
  w.client.set_reconnect(policy);
  ASSERT_TRUE(w.client.Ping(&err)) << err;

  const ClientStats cs = w.client.stats();
  EXPECT_EQ(cs.resumes, 1u);
  EXPECT_EQ(cs.resume_replays, 0u);
  EXPECT_EQ(cs.resume_snapshots, 1u);
  EXPECT_EQ(cs.resume_lost, 0u);
  EXPECT_GE(sub->resets_applied(), 1u)
      << "the overrun fallback must arrive as a kSubReset snapshot";
  EXPECT_FALSE(sub->dropped());

  std::vector<Tuple> snap;
  ASSERT_TRUE(w.client.Snapshot("q", &snap, nullptr, &err)) << err;
  EXPECT_EQ(Canonical(sub->Rows()), Canonical(snap));

  const ServerStats ss = w.server->Stats();
  EXPECT_EQ(ss.resume_snapshots, 1u);
  EXPECT_GT(ss.replay_ring_overruns, 0u)
      << "the tiny ring never overran, so the fallback was not exercised";
  feeder.Close();
}

TEST(NetResumeTest, StaleTokenAndMidSessionResumesAreRejected) {
  Wire w({}, ResumableOptions());
  std::string err;
  ASSERT_NE(SetupMonoSub(w), nullptr);

  // Unknown token: rejected, session stays usable.
  raw::Conn conn(w.server->port());
  ASSERT_GE(conn.fd, 0);
  raw::Handshake(conn);
  Message resume;
  resume.type = MsgType::kResume;
  resume.req_id = 2;
  resume.token = 0xdeadbeefdeadbeefULL;
  resume.acks.emplace_back(1, 0);
  ASSERT_TRUE(conn.Send(EncodeFrame(resume)));
  Message ack = raw::ReadResponse(conn.fd, 2);
  EXPECT_EQ(ack.type, MsgType::kResumeAck);
  EXPECT_FALSE(ack.flag);
  EXPECT_NE(ack.text.find("token"), std::string::npos) << ack.text;

  // A session that already subscribed cannot resume into another one
  // (that would leak its own engine subscriptions).
  Message subscribe;
  subscribe.type = MsgType::kSubscribe;
  subscribe.req_id = 3;
  subscribe.name = "q";
  ASSERT_TRUE(conn.Send(EncodeFrame(subscribe)));
  const Message sub_ack = raw::ReadResponse(conn.fd, 3);
  ASSERT_EQ(sub_ack.type, MsgType::kSubscribeAck);
  resume.req_id = 4;
  resume.token = w.client.token();
  ASSERT_TRUE(conn.Send(EncodeFrame(resume)));
  ack = raw::ReadResponse(conn.fd, 4);
  EXPECT_EQ(ack.type, MsgType::kResumeAck);
  EXPECT_FALSE(ack.flag);
  EXPECT_NE(ack.text.find("precede"), std::string::npos) << ack.text;

  EXPECT_GE(w.server->Stats().resume_rejects, 2u);
  // The original client was never disturbed.
  ASSERT_TRUE(w.client.Ping(&err)) << err;
}

TEST(NetResumeTest, ATokenResumesAtMostOnce) {
  EngineOptions eopts;
  eopts.default_shards = 1;
  Wire w(eopts, ResumableOptions());
  std::string err;
  SubscriptionMirror* sub = SetupMonoSub(w);
  ASSERT_NE(sub, nullptr);
  const uint64_t token = w.client.token();
  const uint64_t sub_id = sub->sub_id();
  const uint64_t last_seq = sub->last_seq();
  w.client.Disconnect();

  // First resume wins (even racing the server's own notice of the
  // disconnect: a live zombie with the token is force-detached).
  raw::Conn first(w.server->port());
  ASSERT_GE(first.fd, 0);
  raw::Handshake(first);
  Message resume;
  resume.type = MsgType::kResume;
  resume.req_id = 2;
  resume.token = token;
  resume.acks.emplace_back(sub_id, last_seq);
  ASSERT_TRUE(first.Send(EncodeFrame(resume)));
  Message ack = raw::ReadResponse(first.fd, 2);
  EXPECT_EQ(ack.type, MsgType::kResumeAck);
  EXPECT_TRUE(ack.flag) << ack.text;
  ASSERT_EQ(ack.acks.size(), 1u);
  EXPECT_EQ(ack.acks[0].first, sub_id);
  EXPECT_EQ(ack.acks[0].second, kResumeReplayed);

  // Second resume with the consumed token must be rejected.
  raw::Conn second(w.server->port());
  ASSERT_GE(second.fd, 0);
  raw::Handshake(second);
  ASSERT_TRUE(second.Send(EncodeFrame(resume)));
  ack = raw::ReadResponse(second.fd, 2);
  EXPECT_EQ(ack.type, MsgType::kResumeAck);
  EXPECT_FALSE(ack.flag);
  EXPECT_GE(w.server->Stats().resume_rejects, 1u);
}

TEST(NetResumeTest, LeaseExpiryDropsTheSessionAndTheClientReportsIt) {
  EngineOptions eopts;
  eopts.default_shards = 1;
  ServerOptions sopts = ResumableOptions();
  sopts.session_lease_ms = 50;  // Expires within one housekeeping round.
  Wire w(eopts, sopts);
  std::string err;
  SubscriptionMirror* sub = SetupMonoSub(w);
  ASSERT_NE(sub, nullptr);

  w.client.Disconnect();
  // Housekeeping runs each poll round (<=100ms); wait out lease + reap.
  for (int i = 0; i < 100 && w.server->Stats().leases_expired == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(w.server->Stats().leases_expired, 1u);

  ReconnectPolicy policy;
  policy.enabled = true;
  w.client.set_reconnect(policy);
  // The reconnect succeeds; the resume does not. The connection is
  // fresh and usable, and the lost subscription is reported, not
  // silently resurrected empty.
  ASSERT_TRUE(w.client.Ping(&err)) << err;
  const ClientStats cs = w.client.stats();
  EXPECT_EQ(cs.reconnects, 1u);
  EXPECT_EQ(cs.resumes, 0u);
  EXPECT_EQ(cs.resume_lost, 1u);
  EXPECT_TRUE(sub->dropped());
  EXPECT_GE(w.server->Stats().resume_rejects, 1u);
  EXPECT_EQ(w.server->Stats().subscriptions, 0u)
      << "the reaped session leaked an engine subscription";
}

TEST(NetResumeTest, HeartbeatTimeoutReapsASilentPeerWhoThenResumes) {
  EngineOptions eopts;
  eopts.default_shards = 1;
  Wire w(eopts, ResumableOptions(/*ring_bytes=*/1u << 20,
                                 /*heartbeat_ms=*/50,
                                 /*heartbeat_timeout_ms=*/200));
  std::string err;

  // The silent subscriber: a second client that stops reading entirely.
  Client quiet;
  ASSERT_TRUE(quiet.Connect("127.0.0.1", w.server->port(), &err)) << err;
  const int64_t link0 = w.client.DeclareStream("link0", LblSchema(), &err);
  ASSERT_GE(link0, 0) << err;
  ASSERT_TRUE(w.client.RegisterQuery(
      "q", "SELECT src_ip FROM link0 WHERE protocol = 2", 0, nullptr, &err))
      << err;
  SubscriptionMirror* sub = quiet.Subscribe("q", &err);
  ASSERT_NE(sub, nullptr) << err;

  // Deltas in flight while the peer is silent: traffic lands in its
  // ring; heartbeats go unanswered; the server reaps the socket but
  // keeps the session resumable under the lease.
  const Trace trace = NetTrace(150);
  ASSERT_TRUE(w.client.IngestBatch(
      TraceBatch(trace, static_cast<uint32_t>(link0), 0,
                 trace.events.size()), &err))
      << err;
  ASSERT_TRUE(w.client.Flush(&err)) << err;
  for (int i = 0; i < 60 && w.server->Stats().heartbeat_timeouts == 0; ++i) {
    // Keep the driving client chatty so only `quiet` goes silent.
    ASSERT_TRUE(w.client.Ping(&err)) << err;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(w.server->Stats().heartbeat_timeouts, 1u);
  EXPECT_GE(w.server->Stats().detached_sessions, 1u);

  // The reaped peer comes back: reconnect, resume, replay -- nothing
  // was lost even though the server gave up its socket.
  ReconnectPolicy policy;
  policy.enabled = true;
  quiet.set_reconnect(policy);
  ASSERT_TRUE(quiet.Ping(&err)) << err;
  const ClientStats cs = quiet.stats();
  EXPECT_EQ(cs.resumes, 1u);
  EXPECT_EQ(cs.resume_lost, 0u);
  EXPECT_FALSE(sub->dropped());
  ASSERT_TRUE(quiet.Flush(&err)) << err;
  std::vector<Tuple> snap;
  ASSERT_TRUE(quiet.Snapshot("q", &snap, nullptr, &err)) << err;
  EXPECT_EQ(Canonical(sub->Rows()), Canonical(snap));
  quiet.Close();
}

TEST(NetResumeTest, ResumptionMetricsAreExported) {
  ServerOptions sopts = ResumableOptions();
  sopts.metrics_port = 0;
  Wire w({}, sopts);
  ASSERT_GE(w.server->metrics_port(), 0);
  raw::Conn conn(w.server->metrics_port());
  ASSERT_GE(conn.fd, 0);
  ASSERT_TRUE(conn.Send("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"));
  const std::string body = conn.ReadAll();
  for (const char* series :
       {"upa_net_resumes_total", "upa_net_resume_replays_total",
        "upa_net_resume_snapshots_total", "upa_net_resume_rejects_total",
        "upa_net_leases_expired_total", "upa_net_heartbeat_timeouts_total",
        "upa_net_replay_ring_overruns_total", "upa_net_replay_ring_bytes",
        "upa_net_detached_sessions"}) {
    EXPECT_NE(body.find(series), std::string::npos) << series;
  }
}

}  // namespace
}  // namespace net
}  // namespace upa
