#include <cstdio>
#include <map>

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/lbl_generator.h"
#include "workload/trace.h"

namespace upa {
namespace {

TEST(LblGeneratorTest, OneTuplePerLinkPerTimeUnit) {
  LblTraceConfig cfg;
  cfg.num_links = 3;
  cfg.duration = 100;
  const Trace trace = GenerateLblTrace(cfg);
  EXPECT_EQ(trace.events.size(), 300u);
  EXPECT_EQ(trace.num_streams, 3);
  // Timestamps are non-decreasing and each unit carries one tuple/link.
  std::map<Time, std::map<int, int>> per_unit;
  Time prev = 0;
  for (const TraceEvent& e : trace.events) {
    EXPECT_GE(e.tuple.ts, prev);
    prev = e.tuple.ts;
    ++per_unit[e.tuple.ts][e.stream];
  }
  for (const auto& [ts, links] : per_unit) {
    EXPECT_EQ(links.size(), 3u);
    for (const auto& [link, count] : links) EXPECT_EQ(count, 1);
  }
}

TEST(LblGeneratorTest, ProtocolMixMakesTelnetTenTimesFtp) {
  LblTraceConfig cfg;
  cfg.num_links = 1;
  cfg.duration = 50000;
  const Trace trace = GenerateLblTrace(cfg);
  int ftp = 0;
  int telnet = 0;
  for (const TraceEvent& e : trace.events) {
    const int64_t proto = AsInt(e.tuple.fields[kColProtocol]);
    ftp += proto == kProtoFtp ? 1 : 0;
    telnet += proto == kProtoTelnet ? 1 : 0;
  }
  const double ratio = static_cast<double>(telnet) / ftp;
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(LblGeneratorTest, SourcesAreZipfSkewed) {
  LblTraceConfig cfg;
  cfg.num_links = 1;
  cfg.duration = 20000;
  cfg.num_sources = 500;
  cfg.source_zipf = 1.0;
  const Trace trace = GenerateLblTrace(cfg);
  std::map<int64_t, int> counts;
  for (const TraceEvent& e : trace.events) {
    ++counts[AsInt(e.tuple.fields[kColSrcIp])];
  }
  // Source 0 (most popular Zipf rank) dominates any mid-rank source.
  EXPECT_GT(counts[0], 10 * std::max(counts[250], 1));
}

TEST(LblGeneratorTest, DestinationsEncodeLink) {
  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 100;
  const Trace trace = GenerateLblTrace(cfg);
  for (const TraceEvent& e : trace.events) {
    EXPECT_EQ(AsInt(e.tuple.fields[kColDstIp]) >> 16, e.stream);
  }
}

TEST(LblGeneratorTest, DeterministicForSeed) {
  LblTraceConfig cfg;
  cfg.duration = 200;
  const Trace a = GenerateLblTrace(cfg);
  const Trace b = GenerateLblTrace(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_TRUE(a.events[i].tuple.FieldsEqual(b.events[i].tuple));
  }
}

TEST(TraceCsvTest, RoundTrip) {
  LblTraceConfig cfg;
  cfg.duration = 50;
  cfg.num_links = 2;
  const Trace trace = GenerateLblTrace(cfg);
  const std::string path = ::testing::TempDir() + "/upa_trace_test.csv";
  ASSERT_TRUE(WriteTraceCsv(trace, path));
  Trace loaded;
  ASSERT_TRUE(ReadTraceCsv(path, LblSchema(), &loaded));
  ASSERT_EQ(loaded.events.size(), trace.events.size());
  EXPECT_EQ(loaded.num_streams, trace.num_streams);
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(loaded.events[i].stream, trace.events[i].stream);
    EXPECT_EQ(loaded.events[i].tuple.ts, trace.events[i].tuple.ts);
    EXPECT_TRUE(loaded.events[i].tuple.FieldsEqual(trace.events[i].tuple));
  }
  std::remove(path.c_str());
}

TEST(TraceCsvTest, ReadRejectsMalformedRows) {
  const std::string path = ::testing::TempDir() + "/upa_trace_bad.csv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fprintf(f, "ts,stream,duration\n1,0\n");  // Too few cells.
  std::fclose(f);
  Trace out;
  EXPECT_FALSE(ReadTraceCsv(
      path, Schema({Field{"duration", ValueType::kInt}}), &out));
  std::remove(path.c_str());
}

TEST(TraceCsvTest, MissingFileFails) {
  Trace out;
  EXPECT_FALSE(ReadTraceCsv("/nonexistent/nope.csv", LblSchema(), &out));
}

}  // namespace
}  // namespace upa
