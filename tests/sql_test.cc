#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/catalog.h"
#include "sql/parser.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace {

using testing_util::CheckAgainstReference;
using testing_util::IntSchema;

std::map<std::string, SourceDecl> TrafficSources() {
  std::map<std::string, SourceDecl> sources;
  sources["link0"] = SourceDecl{0, LblSchema(), SourceKind::kStream};
  sources["link1"] = SourceDecl{1, LblSchema(), SourceKind::kStream};
  Schema names({Field{"sym", ValueType::kInt},
                Field{"company", ValueType::kString}});
  sources["symbols"] = SourceDecl{9, names, SourceKind::kNrr};
  sources["symbols_retro"] = SourceDecl{9, names, SourceKind::kRelation};
  return sources;
}

PlanPtr MustParse(const std::string& text) {
  ParseResult r = ParseQuery(text, TrafficSources());
  EXPECT_TRUE(r.ok()) << text << "\nerror: " << r.error;
  return std::move(r.plan);
}

std::string MustFail(const std::string& text) {
  ParseResult r = ParseQuery(text, TrafficSources());
  EXPECT_FALSE(r.ok()) << text << "\nparsed:\n"
                       << (r.plan ? r.plan->ToString() : "");
  return r.error;
}

// --- Happy paths: plan shapes. ---

TEST(SqlTest, SelectStarOverWindow) {
  PlanPtr p = MustParse("SELECT * FROM link0 [RANGE 100]");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kWindow);
  EXPECT_EQ(p->pattern, UpdatePattern::kWeakest);
}

TEST(SqlTest, SelectColumnsWithPredicate) {
  PlanPtr p = MustParse(
      "SELECT src_ip, payload FROM link0 [RANGE 100] WHERE protocol = 1 AND "
      "payload >= 1000");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kProject);
  EXPECT_EQ(p->schema.num_fields(), 2);
  EXPECT_EQ(p->child(0).kind, PlanOpKind::kSelect);
  EXPECT_EQ(p->child(0).preds.size(), 2u);
}

TEST(SqlTest, DistinctProjection) {
  PlanPtr p = MustParse("SELECT DISTINCT src_ip FROM link0 [RANGE 500]");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kDistinct);
  EXPECT_EQ(p->schema.num_fields(), 1);
  EXPECT_EQ(p->pattern, UpdatePattern::kWeak);
}

TEST(SqlTest, JoinFromTwoWindows) {
  PlanPtr p = MustParse(
      "SELECT link0.src_ip FROM link0 [RANGE 100], link1 [RANGE 200] "
      "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 1");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kProject);
  const PlanNode& join = p->child(0);
  EXPECT_EQ(join.kind, PlanOpKind::kJoin);
  // The single-source predicate was pushed below the join.
  EXPECT_EQ(join.child(0).kind, PlanOpKind::kSelect);
  EXPECT_EQ(join.child(1).kind, PlanOpKind::kWindow);
}

TEST(SqlTest, CountWindow) {
  PlanPtr p = MustParse("SELECT * FROM link0 [ROWS 50]");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kCountWindow);
  EXPECT_EQ(p->count, 50u);
  EXPECT_EQ(p->pattern, UpdatePattern::kStrict);
}

TEST(SqlTest, GroupByAggregate) {
  PlanPtr p = MustParse(
      "SELECT protocol, SUM(payload) FROM link0 [RANGE 100] GROUP BY "
      "protocol");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kGroupBy);
  EXPECT_EQ(p->agg, AggKind::kSum);
  EXPECT_EQ(p->group_col, kColProtocol);
  EXPECT_EQ(p->agg_col, kColPayload);
}

TEST(SqlTest, AggregateWithoutGroupBy) {
  PlanPtr p = MustParse("SELECT COUNT(*) FROM link0 [RANGE 100]");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kGroupBy);
  EXPECT_EQ(p->group_col, -1);
}

TEST(SqlTest, UnionExceptIntersect) {
  PlanPtr u = MustParse(
      "SELECT src_ip FROM link0 [RANGE 100] UNION SELECT src_ip FROM link1 "
      "[RANGE 100]");
  EXPECT_EQ(u->kind, PlanOpKind::kUnion);

  PlanPtr e = MustParse(
      "SELECT src_ip FROM link0 [RANGE 100] EXCEPT SELECT src_ip FROM link1 "
      "[RANGE 100]");
  EXPECT_EQ(e->kind, PlanOpKind::kNegate);
  EXPECT_EQ(e->pattern, UpdatePattern::kStrict);

  PlanPtr i = MustParse(
      "SELECT src_ip FROM link0 [RANGE 100] INTERSECT SELECT src_ip FROM "
      "link1 [RANGE 100]");
  EXPECT_EQ(i->kind, PlanOpKind::kIntersect);
}

TEST(SqlTest, NrrJoin) {
  PlanPtr p = MustParse(
      "SELECT * FROM link0 [RANGE 100], symbols WHERE src_ip = sym");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind, PlanOpKind::kJoin);
  EXPECT_EQ(p->child(1).kind, PlanOpKind::kRelation);
  EXPECT_FALSE(p->child(1).retroactive);
  EXPECT_EQ(p->pattern, UpdatePattern::kWeakest);  // Rule 1 for NRR joins.
}

TEST(SqlTest, RetroactiveRelationJoinIsStrict) {
  PlanPtr p = MustParse(
      "SELECT * FROM link0 [RANGE 100], symbols_retro WHERE src_ip = sym");
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(p->child(1).retroactive);
  EXPECT_EQ(p->pattern, UpdatePattern::kStrict);
}

TEST(SqlTest, StringLiteralPredicate) {
  PlanPtr p = MustParse(
      "SELECT * FROM link0 [RANGE 10], symbols WHERE src_ip = sym AND "
      "company = 'Acme'");
  ASSERT_NE(p, nullptr);
  // Table-side predicate stays above the join.
  EXPECT_EQ(p->kind, PlanOpKind::kSelect);
}

TEST(SqlTest, CaseInsensitiveKeywords) {
  PlanPtr p = MustParse("select distinct src_ip from link0 [range 100]");
  EXPECT_EQ(p->kind, PlanOpKind::kDistinct);
}

// --- Errors (each must be caught, never aborted on). ---

TEST(SqlTest, Errors) {
  EXPECT_NE(MustFail("SELECT").find("column or aggregate"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM nope [RANGE 10]").find("unknown source"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT zap FROM link0 [RANGE 10]")
                .find("unknown column"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT src_ip FROM link0 [RANGE 10], link1 [RANGE 10] "
                     "WHERE link0.src_ip = link1.src_ip")
                .find("ambiguous"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM link0 [RANGE 10], link1 [RANGE 10]")
                .find("join equality"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM symbols").find("relation"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM symbols [RANGE 5], link0 [RANGE 5] "
                     "WHERE sym = src_ip")
                .find("window"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM link0 [RANGE 10] WHERE protocol = 'x'")
                .find("string literal"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT src_ip FROM link0 [RANGE 10] GROUP BY src_ip")
                .find("aggregate"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM link0 [RANGE 10] EXCEPT SELECT * FROM "
                     "link1 [RANGE 10]")
                .find("single-column"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM link0 [RANGE 0]").find("positive"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM link0 [RANGE 10] trailing")
                .find("trailing"),
            std::string::npos);
  EXPECT_NE(MustFail("SELECT * FROM link0 [RANGE 10] WHERE protocol ~ 3")
                .find("unexpected character"),
            std::string::npos);
}

// --- Error spans: byte offsets + caret context goldens. ---

struct SpanCase {
  const char* sql;
  const char* error;   ///< Exact error message.
  size_t offset;       ///< Exact byte offset of the offending token.
  const char* caret;   ///< Exact CaretContext golden.
};

TEST(SqlSpanTest, MalformedStatementsCarryExactOffsetsAndCarets) {
  const SpanCase cases[] = {
      {"SELEKT * FROM link0 [RANGE 10]", "expected SELECT", 0,
       "SELEKT * FROM link0 [RANGE 10]\n"
       "^~~~"},
      {"SELECT * FORM link0 [RANGE 10]", "expected FROM", 9,
       "SELECT * FORM link0 [RANGE 10]\n"
       "         ^~~~"},
      {"SELECT * FROM nope [RANGE 10]", "unknown source 'nope'", 14,
       "SELECT * FROM nope [RANGE 10]\n"
       "              ^~~~"},
      // Column resolution runs after the parse; the span must still
      // anchor at the name, not wherever the cursor finished.
      {"SELECT zap FROM link0 [RANGE 10]", "unknown column 'zap'", 7,
       "SELECT zap FROM link0 [RANGE 10]\n"
       "       ^~~~"},
      {"SELECT * FROM link0 [RANGE -5]",
       "RANGE requires a positive integer", 27,
       "SELECT * FROM link0 [RANGE -5]\n"
       "                           ^~~~"},
      {"SELECT * FROM link0 [RANGE 10] WHERE protocol ~ 3",
       "unexpected character '~'", 46,
       "SELECT * FROM link0 [RANGE 10] WHERE protocol ~ 3\n"
       "                                              ^~~~"},
      {"SELECT * FROM link0 [RANGE 10] trailing",
       "trailing input after query", 31,
       "SELECT * FROM link0 [RANGE 10] trailing\n"
       "                               ^~~~"},
      {"SELECT src_ip FROM link0 [RANGE 10], link1 [RANGE 10] "
       "WHERE link0.src_ip = link1.src_ip",
       "ambiguous column 'src_ip' (qualify with the source name)", 7,
       "SELECT src_ip FROM link0 [RANGE 10], link1 [RANGE 10] "
       "WHERE link0.src_ip = link1.src_ip\n"
       "       ^~~~"},
  };
  for (const SpanCase& c : cases) {
    ParseResult r = ParseQuery(c.sql, TrafficSources());
    ASSERT_FALSE(r.ok()) << c.sql;
    EXPECT_EQ(r.error, c.error) << c.sql;
    EXPECT_EQ(r.error_offset, c.offset) << c.sql;
    EXPECT_EQ(CaretContext(c.sql, r.error_offset), c.caret) << c.sql;
  }
}

TEST(SqlSpanTest, CaretContextEdgeCases) {
  // No offset -> no context.
  EXPECT_EQ(CaretContext("SELECT", ParseResult::kNoOffset), "");
  // Offset past the end clamps to the end of the last line.
  EXPECT_EQ(CaretContext("ab", 99), "ab\n  ^~~~");
  // Multi-line input excerpts only the offending line, and the caret
  // column is relative to that line.
  EXPECT_EQ(CaretContext("line one\nbad here", 9 + 4),
            "bad here\n    ^~~~");
  // Tabs flatten to spaces so the caret column stays aligned.
  EXPECT_EQ(CaretContext("\tx", 1), " x\n ^~~~");
}

TEST(SqlSpanTest, WellFormedQueriesReportNoOffset) {
  ParseResult r = ParseQuery("SELECT * FROM link0 [RANGE 10]",
                             TrafficSources());
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.error_offset, ParseResult::kNoOffset);
}

// --- SourceCatalog: declaration error paths. ---

TEST(SourceCatalogTest, DuplicateNameIsRejectedAndOriginalUnchanged) {
  SourceCatalog cat;
  const int id = cat.DeclareStream("s", IntSchema(2));
  ASSERT_GE(id, 0);
  // Same name again -- any kind, any schema -- must fail without
  // touching the original declaration.
  EXPECT_EQ(cat.DeclareStream("s", IntSchema(3)), -1);
  EXPECT_EQ(cat.DeclareRelation("s", IntSchema(2), true), -1);
  const SourceDecl* d = cat.Find("s");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->stream_id, id);
  EXPECT_EQ(d->kind, SourceKind::kStream);
  EXPECT_EQ(d->schema.num_fields(), 2);
}

TEST(SourceCatalogTest, DuplicateExplicitIdIsRejected) {
  SourceCatalog cat;
  ASSERT_EQ(cat.Declare("a", SourceDecl{7, IntSchema(1),
                                        SourceKind::kStream}), 7);
  // A second source may not reuse stream id 7 under a different name.
  EXPECT_EQ(cat.Declare("b", SourceDecl{7, IntSchema(1),
                                        SourceKind::kStream}), -1);
  EXPECT_EQ(cat.Find("b"), nullptr);
  // Auto-assigned ids skip past explicit ones instead of colliding.
  const int next = cat.DeclareStream("c", IntSchema(1));
  EXPECT_GE(next, 0);
  EXPECT_NE(next, 7);
}

TEST(SourceCatalogTest, CompileResolvesOnlyDeclaredSources) {
  SourceCatalog cat;
  ASSERT_GE(cat.DeclareStream("s", IntSchema(2)), 0);
  ParseResult ok = cat.Compile("SELECT * FROM s [RANGE 10]");
  EXPECT_TRUE(ok.ok()) << ok.error;
  ParseResult bad = cat.Compile("SELECT * FROM t [RANGE 10]");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("unknown source 't'"), std::string::npos);
  EXPECT_EQ(bad.error_offset, 14u);
}

TEST(SourceCatalogTest, SchemaMismatchSurfacesAtCompileTime) {
  // The catalog pins the schema at declaration; a query written against
  // different columns fails to compile (there is no silent coercion).
  SourceCatalog cat;
  Schema s({Field{"a", ValueType::kInt}, Field{"b", ValueType::kString}});
  ASSERT_GE(cat.DeclareStream("s", s), 0);
  ParseResult r = cat.Compile("SELECT missing FROM s [RANGE 10]");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error.find("unknown column 'missing'"), std::string::npos);
  // Type checks also bind against the declared schema.
  ParseResult t = cat.Compile("SELECT * FROM s [RANGE 10] WHERE b = 3");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.error.find("string column"), std::string::npos);
}

// --- Parsed queries execute correctly end to end. ---

TEST(SqlTest, ParsedQueryMatchesReference) {
  std::map<std::string, SourceDecl> sources;
  sources["a"] = SourceDecl{0, IntSchema(2), SourceKind::kStream};
  sources["b"] = SourceDecl{1, IntSchema(2), SourceKind::kStream};
  ParseResult r = ParseQuery(
      "SELECT a.c0 FROM a [RANGE 25], b [RANGE 40] WHERE a.c0 = b.c0 AND "
      "a.c1 < 500",
      sources);
  ASSERT_TRUE(r.ok()) << r.error;

  Rng rng(99);
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = 2;
  for (Time ts = 1; ts <= 200; ++ts) {
    for (int s = 0; s < 2; ++s) {
      TraceEvent e;
      e.stream = s;
      e.tuple.ts = ts;
      e.tuple.fields = {Value{rng.NextInRange(0, 5)},
                        Value{rng.NextInRange(0, 999)}};
      trace.events.push_back(std::move(e));
    }
  }
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    EXPECT_GT(CheckAgainstReference(*r.plan, trace, mode, {}, 20, {}, 50), 0);
  }
}

// --- Robustness: no input may crash or abort the parser. ---

TEST(SqlFuzzTest, RandomTokenSoupNeverAborts) {
  const std::vector<std::string> vocab = {
      "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",      "DISTINCT",
      "UNION",  "EXCEPT", "RANGE",  "ROWS",   "AND",     "SUM",
      "COUNT",  "link0",  "link1",  "symbols", "src_ip", "protocol",
      "(",      ")",      "[",      "]",      ",",       ".",
      "*",      "=",      "<",      ">=",     "7",       "3.5",
      "'x'",    "zzz"};
  const auto sources = TrafficSources();
  Rng rng(2025);
  int parsed_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string text;
    const size_t len = 1 + rng.NextBelow(14);
    for (size_t i = 0; i < len; ++i) {
      text += vocab[rng.NextBelow(vocab.size())];
      text += " ";
    }
    const ParseResult r = ParseQuery(text, sources);
    if (r.ok()) {
      ++parsed_ok;
      // Whatever parses must be a valid, annotated plan.
      EXPECT_TRUE(IsValidPlan(*r.plan)) << text;
    } else {
      EXPECT_FALSE(r.error.empty()) << text;
    }
  }
  // The soup occasionally forms a valid query; mostly it must not.
  EXPECT_LT(parsed_ok, 3000);
}

TEST(SqlFuzzTest, MutatedValidQueriesNeverAbort) {
  const std::string base =
      "SELECT link0.src_ip FROM link0 [RANGE 100], link1 [RANGE 200] "
      "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 1";
  const auto sources = TrafficSources();
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = base;
    // Random single-character deletions, duplications, substitutions.
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const size_t pos = rng.NextBelow(text.size());
      switch (rng.NextBelow(3)) {
        case 0:
          text.erase(pos, 1);
          break;
        case 1:
          text.insert(pos, 1, text[pos]);
          break;
        default:
          text[pos] = static_cast<char>('!' + rng.NextBelow(90));
          break;
      }
    }
    const ParseResult r = ParseQuery(text, sources);
    if (!r.ok()) EXPECT_FALSE(r.error.empty());
  }
}

}  // namespace
}  // namespace upa
