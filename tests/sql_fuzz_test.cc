// Fuzzing the full SQL front door: seeded random and mutated query
// strings are thrown at SourceCatalog::Compile, which must never crash or
// abort -- garbage gets an error message, and anything that *does* parse
// must round-trip through plan validation and pipeline construction and
// survive executing a small trace in every execution strategy. Under
// ASan/UBSan (scripts/ci.sh) this doubles as a memory-safety check of the
// parser -> catalog -> planner -> executor chain.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/catalog.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using net::Client;
using testing_util::IntSchema;

constexpr int kStreams = 3;

/// Streams-only catalog: s0..s2, two int columns each.
SourceCatalog MakeCatalog() {
  SourceCatalog catalog;
  for (int i = 0; i < kStreams; ++i) {
    EXPECT_EQ(catalog.DeclareStream("s" + std::to_string(i), IntSchema(2)), i);
  }
  return catalog;
}

/// A plan that parsed must also build and run. Executes a small trace
/// through every strategy; the value of the results is irrelevant here,
/// only that nothing crashes, aborts, or trips a sanitizer.
void ExerciseParsedPlan(const PlanPtr& plan, const std::string& text) {
  ASSERT_TRUE(IsValidPlan(*plan)) << text << "\n" << plan->ToString();
  Rng rng(11);
  for (ExecMode mode :
       {ExecMode::kNegativeTuple, ExecMode::kDirect, ExecMode::kUpa}) {
    std::unique_ptr<Pipeline> pipeline = BuildPipeline(*plan, mode, {});
    ASSERT_NE(pipeline, nullptr) << text;
    for (Time ts = 1; ts <= 30; ++ts) {
      pipeline->Tick(ts);
      for (int s = 0; s < kStreams; ++s) {
        if (!pipeline->HasStream(s)) continue;
        Tuple t = testing_util::T(
            {static_cast<int64_t>(rng.NextInRange(0, 9)),
             static_cast<int64_t>(rng.NextInRange(0, 99))},
            ts);
        pipeline->Ingest(s, t);
      }
    }
    pipeline->Tick(200);  // Expire everything windowed.
    (void)pipeline->view().Snapshot();
  }
}

/// Grammar-directed random query: biased toward well-formed text so a
/// healthy fraction of iterations reach the execution half of the fuzz.
std::string RandomQuery(Rng& rng) {
  const auto src = [&](int id) {
    return "s" + std::to_string(id) + " [RANGE " +
           std::to_string(rng.NextInRange(5, 80)) + "]";
  };
  const auto where = [&](const std::string& col) {
    return " WHERE " + col +
           (rng.NextBool(0.5) ? " >= " : " < ") +
           std::to_string(rng.NextInRange(0, 9));
  };
  const int a = static_cast<int>(rng.NextBelow(kStreams));
  // Distinct from `a`: the dialect only allows column-column comparisons
  // across two different sources.
  const int b = (a + 1 + static_cast<int>(rng.NextBelow(kStreams - 1))) %
                kStreams;
  switch (rng.NextBelow(6)) {
    case 0:
      return "SELECT * FROM " + src(a) +
             (rng.NextBool(0.5) ? where("c0") : "");
    case 1:
      return "SELECT DISTINCT c0 FROM " + src(a);
    case 2:  // Self-or-cross join on the key column.
      return "SELECT s" + std::to_string(a) + ".c0 FROM " + src(a) + ", " +
             src(b) + " WHERE s" + std::to_string(a) + ".c0 = s" +
             std::to_string(b) + ".c0";
    case 3: {  // Set operation over matching single-column sides.
      const std::string op = rng.NextBool(0.5)
                                 ? (rng.NextBool(0.5) ? "UNION" : "INTERSECT")
                                 : "EXCEPT";
      return "SELECT c0 FROM " + src(a) + " " + op + " SELECT c0 FROM " +
             src(b);
    }
    case 4:
      return "SELECT c0, SUM(c1) FROM " + src(a) + " GROUP BY c0";
    default:
      return "SELECT c1 FROM " + src(a) + where("c1");
  }
}

TEST(SqlCatalogFuzzTest, RandomQueriesRoundTripThroughThePipeline) {
  const SourceCatalog catalog = MakeCatalog();
  Rng rng(31337);
  int executed = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const std::string text = RandomQuery(rng);
    const ParseResult r = catalog.Compile(text);
    ASSERT_TRUE(r.ok()) << text << "\nerror: " << r.error;
    ExerciseParsedPlan(r.plan, text);
    if (::testing::Test::HasFatalFailure()) return;
    ++executed;
  }
  EXPECT_EQ(executed, 300);
}

TEST(SqlCatalogFuzzTest, MutatedQueriesNeverCrashAndValidOnesStillRun) {
  const SourceCatalog catalog = MakeCatalog();
  Rng rng(417);
  int still_valid = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = RandomQuery(rng);
    const int edits = 1 + static_cast<int>(rng.NextBelow(5));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const size_t pos = rng.NextBelow(text.size());
      switch (rng.NextBelow(4)) {
        case 0:
          text.erase(pos, 1);
          break;
        case 1:
          text.insert(pos, 1, text[pos]);
          break;
        case 2:
          text[pos] = static_cast<char>('!' + rng.NextBelow(90));
          break;
        default:  // Splice in a random chunk of another query.
          text.insert(pos, RandomQuery(rng).substr(0, rng.NextBelow(12)));
          break;
      }
    }
    const ParseResult r = catalog.Compile(text);
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty()) << text;
      continue;
    }
    // A mutation that still parses must still yield a runnable plan.
    ++still_valid;
    ASSERT_TRUE(IsValidPlan(*r.plan)) << text;
    if (still_valid <= 40) {  // Executing all of them would dominate runtime.
      ExerciseParsedPlan(r.plan, text);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GT(still_valid, 0);
}

TEST(SqlCatalogFuzzTest, HostileInputsGetErrorsNotCrashes) {
  const SourceCatalog catalog = MakeCatalog();
  std::vector<std::string> hostile = {
      "",
      " ",
      "\n\t\r",
      "SELECT",
      "SELECT * FROM",
      "SELECT * FROM s0 [RANGE 9999999999999999999999]",
      "SELECT * FROM s0 [RANGE -5]",
      "SELECT * FROM s0 [RANGE 10]]]]",
      "SELECT ((((((((((c0)))))))))) FROM s0 [RANGE 10]",
      "SELECT * FROM s0 [RANGE 10] WHERE c0 = 'unterminated",
      std::string(64 * 1024, '('),
      std::string("SELECT \0 FROM s0", 16),
      "SELECT * FROM s0 [RANGE 10] UNION",
      "SELECT c0 FROM s0 [RANGE 10] GROUP BY",
  };
  for (const std::string& text : hostile) {
    const ParseResult r = catalog.Compile(text);
    if (!r.ok()) {
      EXPECT_FALSE(r.error.empty());
    }
  }
}

// --- Session-path fuzz: random statements against a live server -------

/// Random session statement, biased toward well-formed forms so DDL,
/// registration, subscription, and introspection all get real coverage;
/// query names cycle through a small pool so duplicate-register and
/// unregister-missing error paths fire constantly.
std::string RandomSessionStatement(Rng& rng, int* fresh) {
  const auto qname = [&] { return "q" + std::to_string(rng.NextBelow(8)); };
  switch (rng.NextBelow(12)) {
    case 0:
      return "CREATE STREAM fz" + std::to_string((*fresh)++) + " (a INT)";
    case 1:
      return "CREATE RELATION fr" + std::to_string((*fresh)++) +
             " (a INT) RETROACTIVE";
    case 2:
    case 3:
      return "REGISTER QUERY " + qname() + " AS " + RandomQuery(rng);
    case 4:
      return "UNREGISTER QUERY " + qname();
    case 5:
      return "SUBSCRIBE " + qname();
    case 6:
      return "UNSUBSCRIBE " + qname();
    case 7:
      return rng.NextBool(0.5) ? "SHOW QUERIES" : "SHOW STREAMS";
    case 8:
      return "EXPLAIN " + RandomQuery(rng);
    case 9:
      return rng.NextBool(0.5) ? "TOKENIZE " + RandomQuery(rng)
                               : "VALIDATE " + RandomQuery(rng);
    default: {  // Mutated garbage: must get an error, never a hang.
      std::string text = "REGISTER QUERY " + qname() + " AS " +
                         RandomQuery(rng);
      const int edits = 1 + static_cast<int>(rng.NextBelow(6));
      for (int e = 0; e < edits && !text.empty(); ++e) {
        const size_t pos = rng.NextBelow(text.size());
        switch (rng.NextBelow(3)) {
          case 0:
            text.erase(pos, 1);
            break;
          case 1:
            text.insert(pos, 1, text[pos]);
            break;
          default:
            text[pos] = static_cast<char>('!' + rng.NextBelow(90));
            break;
        }
      }
      return text;
    }
  }
}

/// Two concurrent sessions fuzz the full wire path -- statement parser,
/// SqlSession, the engine's online catalog/registry, and the server's
/// subscription sweep -- while one of them also ingests. The server must
/// never crash, no statement may wedge the catalog's RW lock, and the
/// engine must still register and flush afterwards. Run under TSan in
/// scripts/ci.sh, this is the "DDL is online" fuzz oracle.
TEST(SqlSessionFuzzTest, ConcurrentSessionStatementsNeverWedgeTheServer) {
  EngineOptions eopts;
  eopts.default_shards = 2;
  auto engine = std::make_unique<Engine>(eopts);
  for (int i = 0; i < kStreams; ++i) {
    ASSERT_EQ(engine->DeclareStream("s" + std::to_string(i), IntSchema(2)),
              i);
  }
  net::ServerOptions sopts;
  sopts.port = 0;
  sopts.enable_sql = true;
  net::Server server(engine.get(), sopts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;
  const int port = server.port();

  std::atomic<int> transport_failures{0};
  const auto session = [&](uint64_t seed, bool ingests) {
    Client client;
    std::string cerr;
    if (!client.Connect("127.0.0.1", port, &cerr)) {
      ADD_FAILURE() << "connect: " << cerr;
      return;
    }
    Rng rng(seed);
    int fresh = static_cast<int>(seed) * 1000;
    Time ts = 1;
    for (int iter = 0; iter < 400; ++iter) {
      const std::string stmt = RandomSessionStatement(rng, &fresh);
      net::SqlExecResult r;
      // False means the transport died -- garbage statements must come
      // back as in-band errors on a healthy connection.
      if (!client.SqlExec(stmt, &r, &cerr)) {
        ADD_FAILURE() << "connection died on: " << stmt << "\n" << cerr;
        transport_failures.fetch_add(1);
        return;
      }
      if (!r.ok) EXPECT_FALSE(r.error.empty()) << stmt;
      if (ingests && iter % 7 == 0) {
        std::vector<std::pair<uint32_t, Tuple>> batch;
        for (int s = 0; s < kStreams; ++s) {
          batch.emplace_back(
              static_cast<uint32_t>(s),
              testing_util::T({static_cast<int64_t>(rng.NextInRange(0, 9)),
                               static_cast<int64_t>(rng.NextInRange(0, 99))},
                              ts));
        }
        ++ts;
        if (!client.IngestBatch(batch, &cerr)) {
          ADD_FAILURE() << "ingest died: " << cerr;
          transport_failures.fetch_add(1);
          return;
        }
        if (iter % 49 == 0 && !client.Flush(&cerr)) {
          ADD_FAILURE() << "flush died: " << cerr;
          transport_failures.fetch_add(1);
          return;
        }
      }
    }
    client.Close();
  };

  std::thread a([&] { session(1, /*ingests=*/true); });
  std::thread b([&] { session(2, /*ingests=*/false); });
  a.join();
  b.join();
  ASSERT_EQ(transport_failures.load(), 0);

  // The catalog and registry must still be fully usable: a fresh session
  // can declare, register, subscribe, and barrier.
  Client after;
  ASSERT_TRUE(after.Connect("127.0.0.1", port, &err)) << err;
  net::SqlExecResult r;
  ASSERT_TRUE(after.SqlExec("CREATE STREAM post (a INT, b INT)", &r, &err))
      << err;
  EXPECT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(after.SqlExec(
                  "REGISTER QUERY post_q AS SELECT DISTINCT c0 FROM "
                  "s0 [RANGE 10]",
                  &r, &err))
      << err;
  EXPECT_TRUE(r.ok) << r.error;
  ASSERT_TRUE(after.SqlExec("SUBSCRIBE post_q", &r, &err)) << err;
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.mirror, nullptr);
  ASSERT_TRUE(after.Flush(&err)) << err;
  after.Close();
  server.Stop();
  engine->Stop();
}

}  // namespace
}  // namespace upa
