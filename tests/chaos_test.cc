// Property-based differential chaos testing of the engine's robustness
// layer. Each seed deterministically derives a random plan, a random
// trace, and a random fault schedule (shard kills, allocation failures,
// batch delays). The engine runs the trace three ways:
//
//   1. under the fault schedule, with supervision + recovery on,
//   2. fault-free, same configuration,
//   3. through the reference evaluator (the from-scratch oracle).
//
// All three final result sets must be identical: a mid-run shard kill is
// recovered by rebuilding the replica from the window-bounded ingest log,
// and neither delays nor degradation may change what a query answers.
// Restart and degradation events must additionally be visible through
// EngineMetrics and its Prometheus exposition. Every third seed
// additionally arms heavy-light state partitioning, so kills land while
// replicas hold promoted per-key state (see RunChaosEngine).

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "engine/engine.h"
#include "engine/fault.h"
#include "ref/reference.h"
#include "tests/random_plan_util.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::Canonical;
using testing_util::RandomPlan;
using testing_util::RandomTrace;
using testing_util::RowsToString;

constexpr int kShards = 2;
constexpr Time kDrain = 40;

/// One seed's world: plan, trace, and which trace events the plan reads.
/// Plan and trace are pure functions of the Rng stream, so rebuilding the
/// scenario from the seed reproduces it exactly for every run.
struct Scenario {
  PlanPtr plan;
  Trace trace;
  std::set<int> streams;     ///< Stream leaves of the plan.
  uint64_t plan_events = 0;  ///< Trace events on those streams.
};

Scenario BuildScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.plan = RandomPlan(rng, static_cast<int>(1 + rng.NextBelow(2)));
  AnnotatePatterns(s.plan.get());
  s.trace = RandomTrace(rng, 120);
  const std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    if (n.kind == PlanOpKind::kStream) s.streams.insert(n.stream_id);
    for (const auto& c : n.children) collect(*c);
  };
  collect(*s.plan);
  for (const TraceEvent& e : s.trace.events) {
    if (s.streams.count(e.stream) > 0) ++s.plan_events;
  }
  return s;
}

EngineOptions ChaosOptions(FaultInjector* faults) {
  EngineOptions opts;
  opts.default_shards = kShards;
  opts.queue_capacity = 64;
  opts.max_batch = 8;
  opts.supervise = true;
  opts.watchdog_interval_ms = 2;
  opts.stall_timeout_ms = 50;
  opts.check_invariants = true;
  opts.fault_injector = faults;
  return opts;
}

struct RunResult {
  std::vector<std::vector<Value>> rows;
  EngineMetrics metrics;
};

/// Runs the seed's scenario through an engine (optionally faulted) and
/// returns the final view at trace-end + drain plus the metrics then.
/// Every third seed runs with heavy-light partitioning armed (DESIGN.md
/// Section 16) at a threshold low enough that promotions happen within
/// the random windows' short epochs -- so shard kills land mid-epoch and
/// recovery must rebuild a cold sketch with identical results. The
/// faulted and fault-free runs share the seed, hence the configuration.
RunResult RunChaosEngine(uint64_t seed, FaultInjector* faults) {
  Scenario s = BuildScenario(seed);
  Engine engine(ChaosOptions(faults));
  QueryOptions qopts;
  qopts.planner.heavy_threshold = seed % 3 == 0 ? 2 : 0;
  const RegisterResult r = engine.RegisterPlan("q", std::move(s.plan), qopts);
  EXPECT_TRUE(r.ok) << r.error;
  engine.IngestTrace(s.trace);
  engine.AdvanceTo(s.trace.LastTs() + kDrain);
  std::vector<Tuple> view;
  EXPECT_TRUE(engine.Snapshot("q", &view));
  RunResult out;
  out.rows = Canonical(view);
  out.metrics = engine.Metrics();  // After the snapshot barrier: every
                                   // scheduled crash has been recovered.
  engine.Stop();
  return out;
}

std::vector<std::vector<Value>> OracleRows(uint64_t seed) {
  const Scenario s = BuildScenario(seed);
  ReferenceEvaluator ref(s.plan.get());
  for (const TraceEvent& e : s.trace.events) {
    if (s.streams.count(e.stream) > 0) ref.Observe(e.stream, e.tuple);
  }
  return Canonical(ref.EvalAt(s.trace.LastTs() + kDrain));
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, FaultedRunMatchesFaultFreeRunAndOracle) {
  const uint64_t seed = GetParam();
  const Scenario s = BuildScenario(seed);
  ASSERT_TRUE(IsValidPlan(*s.plan)) << s.plan->ToString();
  SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + s.plan->ToString());

  // Worker-side faults only (kill/alloc/delay): these must be invisible
  // in the results. Ingest-side faults (drop/duplicate) change the
  // delivered input by design and are covered by ChaosIngestFaultTest.
  FaultInjector faults(FaultInjector::RandomSchedule(
      seed, {"q"}, kShards, s.plan_events / (kShards * 2) + 2,
      /*ingest_faults=*/false));

  const RunResult faulty = RunChaosEngine(seed, &faults);
  if (::testing::Test::HasFailure()) return;
  const RunResult clean = RunChaosEngine(seed, nullptr);
  const auto oracle = OracleRows(seed);

  EXPECT_EQ(faulty.rows, clean.rows)
      << "faulted:\n"
      << RowsToString(faulty.rows) << "fault-free:\n"
      << RowsToString(clean.rows);
  EXPECT_EQ(clean.rows, oracle) << "fault-free:\n"
                                << RowsToString(clean.rows) << "oracle:\n"
                                << RowsToString(oracle);

  // Every kill that fired was recovered before the final snapshot could
  // complete (a dead worker cannot ack the snapshot barrier), so the
  // restart counter must match the injector exactly.
  const uint64_t kills = faults.fired(FaultKind::kKillShard) +
                         faults.fired(FaultKind::kAllocFail);
  ASSERT_EQ(faulty.metrics.queries.size(), 1u);
  EXPECT_EQ(faulty.metrics.queries[0].restarts, kills);

  // Robustness counters are part of the exposition surface.
  const std::string prom = faulty.metrics.ToPrometheus();
  EXPECT_NE(prom.find("upa_query_restarts_total"), std::string::npos);
  EXPECT_NE(prom.find("upa_query_degraded"), std::string::npos);
  EXPECT_NE(prom.find("upa_query_degrade_events_total"), std::string::npos);
  EXPECT_NE(prom.find("upa_query_stall_events_total"), std::string::npos);
  if (kills > 0) {
    EXPECT_NE(prom.find("upa_query_restarts_total{query=\"q\"} " +
                        std::to_string(kills)),
              std::string::npos)
        << prom;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Range<uint64_t>(1, 101));

// Equal-timestamp reordering is a legal perturbation of the paper's model
// (tuples of one instant are unordered), so a reorder-only schedule must
// leave results identical too.
TEST(ChaosIngestFaultTest, ReorderPreservesResults) {
  const uint64_t seed = 4242;
  const Scenario s = BuildScenario(seed);
  std::vector<FaultEvent> schedule;
  for (uint64_t at = 3; at < s.trace.events.size(); at += 17) {
    FaultEvent e;
    e.kind = FaultKind::kReorderIngest;
    e.at_count = at;
    schedule.push_back(e);
  }
  FaultInjector faults(std::move(schedule));
  const RunResult reordered = RunChaosEngine(seed, &faults);
  const RunResult clean = RunChaosEngine(seed, nullptr);
  EXPECT_GT(faults.fired(FaultKind::kReorderIngest), 0u);
  EXPECT_EQ(reordered.rows, clean.rows)
      << "reordered:\n"
      << RowsToString(reordered.rows) << "clean:\n"
      << RowsToString(clean.rows);
}

// Drop/duplicate faults change the delivered input on purpose; the
// contract is that the engine survives them and the loss/duplication is
// bounded by what the injector reports.
TEST(ChaosIngestFaultTest, DropAndDuplicateAreCountedNotFatal) {
  const uint64_t seed = 777;
  const Scenario s = BuildScenario(seed);
  std::vector<FaultEvent> schedule;
  for (uint64_t at = 5; at < s.trace.events.size(); at += 13) {
    FaultEvent e;
    e.kind = at % 2 == 0 ? FaultKind::kDropIngest : FaultKind::kDuplicateIngest;
    e.at_count = at;
    schedule.push_back(e);
  }
  FaultInjector faults(std::move(schedule));
  const RunResult run = RunChaosEngine(seed, &faults);
  const uint64_t drops = faults.fired(FaultKind::kDropIngest);
  const uint64_t dups = faults.fired(FaultKind::kDuplicateIngest);
  EXPECT_GT(drops + dups, 0u);
  ASSERT_EQ(run.metrics.queries.size(), 1u);
  const QueryMetrics& q = run.metrics.queries[0];
  // Drop/duplicate faults hit Ingest calls for *any* stream, so the
  // per-query delta is bounded by (not necessarily equal to) the
  // injector's totals.
  EXPECT_GE(q.enqueued + drops, s.plan_events);
  EXPECT_LE(q.enqueued, s.plan_events + dups);
}

// Overload degradation, deterministically: a one-shot kDelayBatch fault
// parks the worker for its second batch, so the queue can be filled past
// the high watermark with no race (the worker cannot pop while inside its
// scheduled sleep). PollSupervisor must then degrade the query, and
// revert it once the queue drains -- without losing a single result.
TEST(ChaosDegradeTest, WatermarkDegradesAndRecoversWithoutLoss) {
  FaultEvent park;
  park.kind = FaultKind::kDelayBatch;
  park.at_count = 2;      // Second PopBatch: after the priming tuple.
  park.param = 1500;      // ms; the fill + poll below take well under this.
  FaultInjector faults({park});

  EngineOptions opts;
  opts.default_shards = 1;
  opts.queue_capacity = 16;
  opts.max_batch = 4;
  opts.batch_size = 1;     // The fill below counts queue *items*: batched
                           // ingest would coalesce them and never trip
                           // the watermark. Pin the per-tuple path.
  opts.supervise = false;  // Drive PollSupervisor by hand.
  opts.check_invariants = true;
  opts.fault_injector = &faults;
  Engine engine(opts);

  PlanPtr plan = MakeWindow(MakeStream(0, testing_util::IntSchema(2)), 50);
  AnnotatePatterns(plan.get());
  const RegisterResult r = engine.RegisterPlan("q", std::move(plan));
  ASSERT_TRUE(r.ok) << r.error;

  // Prime one tuple and wait until the worker has processed it -- its
  // next loop iteration then sleeps in the injected delay.
  engine.Ingest(0, testing_util::T({0, 0}, /*ts=*/1));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.Metrics().queries[0].processed < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "worker never processed the priming tuple";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Fill past the high watermark (14/16 > 0.75) while the worker sleeps.
  for (int i = 0; i < 14; ++i) {
    engine.Ingest(0, testing_util::T({i % 5, i}, /*ts=*/2));
  }
  engine.PollSupervisor();
  EngineMetrics m = engine.Metrics();
  ASSERT_EQ(m.queries.size(), 1u);
  EXPECT_TRUE(m.queries[0].degraded);
  EXPECT_GE(m.queries[0].degrade_events, 1u);
  EXPECT_NE(m.ToPrometheus().find("upa_query_degraded{query=\"q\"} 1"),
            std::string::npos)
      << m.ToPrometheus();

  // Drain (the barrier waits out the injected sleep); the supervisor must
  // revert the query, and every tuple must have made it into the view.
  engine.Flush();
  engine.PollSupervisor();
  m = engine.Metrics();
  EXPECT_FALSE(m.queries[0].degraded);
  EXPECT_NE(m.ToPrometheus().find("upa_query_degraded{query=\"q\"} 0"),
            std::string::npos);
  std::vector<Tuple> view;
  ASSERT_TRUE(engine.Snapshot("q", &view));
  EXPECT_EQ(view.size(), 15u);  // Window 50 >> clock 2: nothing expired.
  engine.Stop();
}

}  // namespace
}  // namespace upa
