// Differential testing of the durability layer: WAL + pattern-aware
// checkpoints + crash recovery (src/engine/durability/).
//
// The core property is the kill-restart differential: for each seed a
// random SQL workload runs three ways --
//
//   1. durably, uninterrupted, start to finish;
//   2. durably, checkpointed at a random point, killed abruptly at a
//      random later point (the WAL's active segment is left unsealed,
//      byte-for-byte what a process crash leaves), recovered with
//      Engine::StartFromCheckpoint, and continued to the finish;
//   3. through the reference evaluator (the from-scratch oracle).
//
// All three final result sets must be identical for every query.
//
// The corruption suites then attack the on-disk state directly: torn WAL
// tails, mid-segment bit flips, segments with a destroyed magic, corrupt
// and truncated checkpoint files, an injected torn write inside a live
// engine, and the total-loss case where every checkpoint is corrupt after
// WAL GC. The contract under attack is always the same: recovery must
// detect the damage (CRC/magic/digest validation), degrade to the longest
// valid prefix of the original run -- never a gapped or corrupted state --
// and keep the engine functional. No input in this file may crash the
// engine or make it emit rows the oracle would not.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/durability/checkpoint.h"
#include "engine/durability/wal.h"
#include "engine/engine.h"
#include "engine/fault.h"
#include "ref/reference.h"
#include "sql/catalog.h"
#include "tests/random_plan_util.h"
#include "tests/test_util.h"

namespace upa {
namespace {

namespace fs = std::filesystem;

using testing_util::Canonical;
using testing_util::IntSchema;
using testing_util::RandomTrace;
using testing_util::RowsToString;

constexpr int kNumStreams = 3;  // Matches RandomTrace's stream fan.
constexpr Time kDrain = 40;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::path(::testing::TempDir()) /
           ("upa_recovery_" + tag + "_" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// --- Seeded SQL workloads ---------------------------------------------

struct QuerySpec {
  std::string name;
  std::string sql;
};

struct SqlScenario {
  std::vector<QuerySpec> queries;
  Trace trace;
};

std::string RandomSql(Rng& rng) {
  const int sn = static_cast<int>(rng.NextBelow(kNumStreams));
  const std::string src = "s" + std::to_string(sn);
  const auto window = [&rng] {
    return " [RANGE " + std::to_string(20 + 20 * rng.NextBelow(4)) + "]";
  };
  switch (rng.NextBelow(5)) {
    case 0:
      return "SELECT * FROM " + src + window();
    case 1:
      return "SELECT DISTINCT c0 FROM " + src + window();
    case 2:
      return "SELECT c0 FROM " + src + window() + " WHERE c0 < " +
             std::to_string(rng.NextInRange(2, 8));
    case 3: {
      const std::string other = "s" + std::to_string((sn + 1) % kNumStreams);
      return "SELECT " + src + ".c0 FROM " + src + window() + ", " + other +
             window() + " WHERE " + src + ".c0 = " + other + ".c0";
    }
    default:
      return "SELECT c0, COUNT(*) FROM " + src + window() + " GROUP BY c0";
  }
}

SqlScenario BuildScenario(uint64_t seed) {
  Rng rng(seed);
  SqlScenario s;
  const int queries = 1 + static_cast<int>(rng.NextBelow(2));
  for (int i = 0; i < queries; ++i) {
    s.queries.push_back({"q" + std::to_string(i), RandomSql(rng)});
  }
  s.trace = RandomTrace(rng, 120);
  return s;
}

/// `heavy_threshold` >= 0 pins the heavy-light knob engine-wide
/// (DESIGN.md Section 16); -1 defers to UPA_HEAVY_THRESHOLD (the CI env
/// variant). Every third KillRecoverTest seed runs with it armed so the
/// abrupt kill and the checkpoint barrier land while replicas hold
/// promoted per-key state. Heavy/light membership is deliberately absent
/// from checkpoints -- a recovered replica restarts with a cold sketch --
/// and the differential below proves that is invisible in results.
EngineOptions DurableOptions(const std::string& dir,
                             int heavy_threshold = -1) {
  EngineOptions opts;
  opts.default_shards = 2;
  opts.check_invariants = true;
  opts.heavy_threshold = heavy_threshold;
  opts.durability.dir = dir;
  opts.durability.wal_segment_bytes = 4096;  // Exercise segment rotation.
  return opts;
}

void DeclareAll(Engine* engine) {
  for (int i = 0; i < kNumStreams; ++i) {
    ASSERT_NE(engine->DeclareStream("s" + std::to_string(i), IntSchema(2)), -1);
  }
}

/// Oracle: compiles `sql` against an identical catalog, observes the first
/// `event_limit` trace events (those on the plan's streams), and evaluates
/// at `at`. Recovery of a damaged log must always land on such a prefix.
std::vector<std::vector<Value>> OracleRows(const std::string& sql,
                                           const Trace& trace,
                                           size_t event_limit, Time at) {
  SourceCatalog catalog;
  for (int i = 0; i < kNumStreams; ++i) {
    catalog.DeclareStream("s" + std::to_string(i), IntSchema(2));
  }
  const ParseResult p = catalog.Compile(sql);
  EXPECT_TRUE(p.ok()) << sql << ": " << p.error;
  if (!p.ok()) return {};
  std::set<int> streams;
  const std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    if (n.kind == PlanOpKind::kStream) streams.insert(n.stream_id);
    for (const auto& c : n.children) collect(*c);
  };
  collect(*p.plan);
  ReferenceEvaluator ref(p.plan.get());
  const size_t n = std::min(event_limit, trace.events.size());
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = trace.events[i];
    if (streams.count(e.stream) > 0) ref.Observe(e.stream, e.tuple);
  }
  return Canonical(ref.EvalAt(at));
}

// --- The kill-restart differential ------------------------------------

class KillRecoverTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KillRecoverTest, RecoveredRunMatchesUninterruptedRunAndOracle) {
  const uint64_t seed = GetParam();
  const SqlScenario s = BuildScenario(seed);
  const size_t n = s.trace.events.size();
  ASSERT_GT(n, 0u);
  // Checkpoint and kill points come from a separate Rng stream so the
  // scenario itself stays a pure function of the seed.
  Rng pick(seed * 0x9E3779B97F4A7C15ull + 1);
  const size_t kill_at = static_cast<size_t>(pick.NextBelow(n + 1));
  const size_t ckpt_at = static_cast<size_t>(pick.NextBelow(kill_at + 1));
  std::string workload = "seed=" + std::to_string(seed) +
                         " kill_at=" + std::to_string(kill_at) +
                         " ckpt_at=" + std::to_string(ckpt_at);
  for (const QuerySpec& q : s.queries) workload += "; " + q.sql;
  SCOPED_TRACE(workload);
  const Time final_t = s.trace.LastTs() + kDrain;
  const int heavy = seed % 3 == 0 ? 2 : -1;

  // Run 1: durable and uninterrupted.
  std::vector<std::vector<std::vector<Value>>> want;
  TempDir dir_full("full" + std::to_string(seed));
  {
    Engine engine(DurableOptions(dir_full.str(), heavy));
    DeclareAll(&engine);
    if (::testing::Test::HasFatalFailure()) return;
    for (const QuerySpec& q : s.queries) {
      const RegisterResult r = engine.RegisterSql(q.name, q.sql);
      ASSERT_TRUE(r.ok) << q.sql << ": " << r.error;
    }
    engine.IngestTrace(s.trace);
    engine.AdvanceTo(final_t);
    for (const QuerySpec& q : s.queries) {
      std::vector<Tuple> rows;
      ASSERT_TRUE(engine.Snapshot(q.name, &rows)) << q.name;
      want.push_back(Canonical(rows));
    }
    engine.Stop();
  }

  // Run 2: checkpoint at ckpt_at, die abruptly at kill_at. seal_on_close
  // leaves the active WAL segment exactly as a process crash would.
  TempDir dir_kill("kill" + std::to_string(seed));
  bool checkpointed = false;
  {
    EngineOptions opts = DurableOptions(dir_kill.str(), heavy);
    opts.durability.seal_on_close = false;
    Engine engine(opts);
    DeclareAll(&engine);
    if (::testing::Test::HasFatalFailure()) return;
    for (const QuerySpec& q : s.queries) {
      ASSERT_TRUE(engine.RegisterSql(q.name, q.sql).ok) << q.sql;
    }
    for (size_t i = 0; i < kill_at; ++i) {
      if (i == ckpt_at) {
        std::string err;
        checkpointed = engine.Checkpoint(&err);
        EXPECT_TRUE(checkpointed) << err;
      }
      engine.Ingest(s.trace.events[i].stream, s.trace.events[i].tuple);
    }
    engine.Stop();
  }

  // Recover and finish the run.
  durability::RecoveryReport rep;
  std::unique_ptr<Engine> engine = Engine::StartFromCheckpoint(
      dir_kill.str(), DurableOptions(dir_kill.str(), heavy), &rep);
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(rep.attempted);
  EXPECT_FALSE(rep.data_loss) << rep.note;
  EXPECT_FALSE(rep.wal_gap) << rep.note;
  EXPECT_EQ(rep.corrupt_checkpoints_skipped, 0u) << rep.note;
  EXPECT_EQ(rep.digest_mismatches, 0u) << rep.note;
  EXPECT_EQ(rep.queries_restored, s.queries.size()) << rep.note;
  EXPECT_EQ(rep.sources_restored, static_cast<uint64_t>(kNumStreams))
      << rep.note;
  if (checkpointed) {
    EXPECT_TRUE(rep.recovered_from_checkpoint) << rep.note;
    EXPECT_EQ(rep.checkpoint_id, 1u);
  }
  for (size_t i = kill_at; i < n; ++i) {
    engine->Ingest(s.trace.events[i].stream, s.trace.events[i].tuple);
  }
  engine->AdvanceTo(final_t);

  for (size_t qi = 0; qi < s.queries.size(); ++qi) {
    const QuerySpec& q = s.queries[qi];
    std::vector<Tuple> rows;
    ASSERT_TRUE(engine->Snapshot(q.name, &rows)) << q.name;
    const auto got = Canonical(rows);
    EXPECT_EQ(got, want[qi])
        << q.sql << " seed=" << seed << " kill_at=" << kill_at
        << " ckpt_at=" << ckpt_at << "\nrecovered:\n"
        << RowsToString(got) << "uninterrupted:\n"
        << RowsToString(want[qi]);
    const auto oracle = OracleRows(q.sql, s.trace, n, final_t);
    EXPECT_EQ(got, oracle) << q.sql << " seed=" << seed << "\nrecovered:\n"
                           << RowsToString(got) << "oracle:\n"
                           << RowsToString(oracle);
  }

  const EngineMetrics m = engine->Metrics();
  EXPECT_TRUE(m.durability.enabled);
  EXPECT_TRUE(m.durability.recovered);
  EXPECT_FALSE(m.durability.wal_failed);
  const std::string prom = m.ToPrometheus();
  EXPECT_NE(prom.find("upa_recovery_recovered 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("upa_checkpoint_wal_records_total"), std::string::npos);
  engine->Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KillRecoverTest,
                         ::testing::Range<uint64_t>(1, 101));

// --- Corruption suites ------------------------------------------------

/// The corruption tests all use one fixed workload: a plain windowed
/// select, whose view at any clock is exactly the live window contents, so
/// the engine/oracle comparison is valid at any event prefix (not just at
/// timestamp boundaries).
struct World {
  std::string sql = "SELECT * FROM s0 [RANGE 40]";
  Trace trace;
};

World BuildWorld() {
  Rng rng(7);
  World w;
  w.trace = RandomTrace(rng, 120);
  return w;
}

/// Runs a durable engine over the whole trace, checkpointing before the
/// event indices in `ckpt_at` (an index == trace size checkpoints after
/// the final event), then stops. With seal=false the WAL is left as a
/// crash would leave it.
void RunWorld(const std::string& dir, const World& w, size_t segment_bytes,
              int keep, std::vector<size_t> ckpt_at, bool seal) {
  EngineOptions opts = DurableOptions(dir);
  opts.durability.wal_segment_bytes = segment_bytes;
  opts.durability.keep_checkpoints = keep;
  opts.durability.seal_on_close = seal;
  Engine engine(opts);
  DeclareAll(&engine);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(engine.RegisterSql("q0", w.sql).ok);
  size_t ci = 0;
  for (size_t i = 0; i < w.trace.events.size(); ++i) {
    for (; ci < ckpt_at.size() && ckpt_at[ci] == i; ++ci) {
      std::string err;
      ASSERT_TRUE(engine.Checkpoint(&err)) << err;
    }
    engine.Ingest(w.trace.events[i].stream, w.trace.events[i].tuple);
  }
  for (; ci < ckpt_at.size(); ++ci) {
    std::string err;
    ASSERT_TRUE(engine.Checkpoint(&err)) << err;
  }
  engine.Stop();
}

std::vector<fs::path> WalFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(dir / "wal")) {
    files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

void FlipByte(const fs::path& p, std::uintmax_t offset) {
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << p;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

void CopyDir(const fs::path& from, const fs::path& to) {
  fs::copy(from, to,
           fs::copy_options::recursive | fs::copy_options::overwrite_existing);
}

/// Asserts that a recovered engine serves exactly the oracle view over the
/// first `rep.wal_ingest_replayed` trace events at the recovered clock.
void ExpectPrefixState(Engine* engine, const World& w,
                       const durability::RecoveryReport& rep) {
  if (rep.queries_restored == 0) {
    EXPECT_EQ(rep.wal_ingest_replayed, 0u) << rep.note;
    return;
  }
  std::vector<Tuple> rows;
  ASSERT_TRUE(engine->Snapshot("q0", &rows));
  const auto got = Canonical(rows);
  const Time at = std::max<Time>(rep.clock, 0);
  const auto oracle = OracleRows(
      w.sql, w.trace, static_cast<size_t>(rep.wal_ingest_replayed), at);
  EXPECT_EQ(got, oracle) << "replayed=" << rep.wal_ingest_replayed
                         << " clock=" << rep.clock << "\nrecovered:\n"
                         << RowsToString(got) << "oracle:\n"
                         << RowsToString(oracle);
}

TEST(CorruptionTest, TruncatedWalTailRecoversTheLongestValidPrefix) {
  const World w = BuildWorld();
  TempDir base("trunc_base");
  RunWorld(base.str(), w, 1 << 20, 2, {}, /*seal=*/false);
  if (::testing::Test::HasFatalFailure()) return;
  const std::vector<fs::path> wal = WalFiles(base.path);
  ASSERT_EQ(wal.size(), 1u);  // One big unsealed segment.
  const std::uintmax_t full = fs::file_size(wal[0]);
  for (const double frac : {0.85, 0.55, 0.25}) {
    SCOPED_TRACE(frac);
    TempDir dir("trunc" + std::to_string(static_cast<int>(frac * 100)));
    CopyDir(base.path, dir.path);
    fs::resize_file(dir.path / "wal" / wal[0].filename(),
                    static_cast<std::uintmax_t>(full * frac));
    durability::RecoveryReport rep;
    std::unique_ptr<Engine> engine =
        Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
    EXPECT_FALSE(rep.data_loss) << rep.note;
    EXPECT_FALSE(rep.wal_gap) << rep.note;  // Nothing beyond the torn tail.
    EXPECT_GT(rep.wal_ingest_replayed, 0u);
    EXPECT_LT(rep.wal_ingest_replayed, w.trace.events.size());
    ExpectPrefixState(engine.get(), w, rep);
    engine->Stop();
  }
}

TEST(CorruptionTest, MidSegmentBitFlipSkipsBackToLastValidRecord) {
  const World w = BuildWorld();
  TempDir base("flip_base");
  RunWorld(base.str(), w, 512, 2, {}, /*seal=*/false);
  if (::testing::Test::HasFatalFailure()) return;
  const std::vector<fs::path> wal = WalFiles(base.path);
  ASSERT_GE(wal.size(), 4u);  // Plenty of sealed segments to damage.

  TempDir dir("flip");
  CopyDir(base.path, dir.path);
  const fs::path victim = dir.path / "wal" / wal[1].filename();
  FlipByte(victim, fs::file_size(victim) / 2);  // Past the segment magic.
  if (::testing::Test::HasFatalFailure()) return;
  durability::RecoveryReport rep;
  std::unique_ptr<Engine> engine =
      Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
  EXPECT_GE(rep.wal_corrupt_frames, 1u) << rep.note;
  // Valid records exist in later segments but sit beyond the hole; they
  // must be treated as lost, not replayed around the gap.
  EXPECT_TRUE(rep.wal_gap) << rep.note;
  EXPECT_FALSE(rep.data_loss) << rep.note;
  EXPECT_GT(rep.wal_ingest_replayed, 0u);
  EXPECT_LT(rep.wal_ingest_replayed, w.trace.events.size());
  ExpectPrefixState(engine.get(), w, rep);
  const std::string prom = engine->Metrics().ToPrometheus();
  EXPECT_NE(prom.find("upa_recovery_wal_gap 1"), std::string::npos) << prom;
  engine->Stop();
}

TEST(CorruptionTest, DestroyedSegmentMagicSkipsTheWholeSegment) {
  const World w = BuildWorld();
  TempDir base("magic_base");
  RunWorld(base.str(), w, 512, 2, {}, /*seal=*/false);
  if (::testing::Test::HasFatalFailure()) return;
  const std::vector<fs::path> wal = WalFiles(base.path);
  ASSERT_GE(wal.size(), 4u);

  TempDir dir("magic");
  CopyDir(base.path, dir.path);
  FlipByte(dir.path / "wal" / wal[1].filename(), 3);  // Inside the magic.
  if (::testing::Test::HasFatalFailure()) return;
  durability::RecoveryReport rep;
  std::unique_ptr<Engine> engine =
      Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
  EXPECT_GE(rep.wal_corrupt_segments, 1u) << rep.note;
  EXPECT_TRUE(rep.wal_gap) << rep.note;
  EXPECT_FALSE(rep.data_loss) << rep.note;
  ExpectPrefixState(engine.get(), w, rep);
  engine->Stop();
}

TEST(CorruptionTest, CorruptNewestCheckpointFallsBackToTheOlderOne) {
  const World w = BuildWorld();
  const size_t n = w.trace.events.size();
  const Time final_t = w.trace.LastTs() + kDrain;
  // Variant 0 flips a byte mid-file; variant 1 truncates the file.
  for (const int variant : {0, 1}) {
    SCOPED_TRACE(variant);
    TempDir dir("ckptfb" + std::to_string(variant));
    RunWorld(dir.str(), w, 1 << 20, 2, {n / 3, 2 * n / 3}, /*seal=*/true);
    if (::testing::Test::HasFatalFailure()) return;
    const auto ckpts = durability::ListCheckpoints(dir.str());
    ASSERT_EQ(ckpts.size(), 2u);
    ASSERT_EQ(ckpts[0].first, 2u);  // Newest first.
    if (variant == 0) {
      FlipByte(ckpts[0].second, fs::file_size(ckpts[0].second) / 2);
    } else {
      fs::resize_file(ckpts[0].second, fs::file_size(ckpts[0].second) / 2);
    }
    if (::testing::Test::HasFatalFailure()) return;

    durability::RecoveryReport rep;
    std::unique_ptr<Engine> engine =
        Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
    EXPECT_TRUE(rep.recovered_from_checkpoint) << rep.note;
    EXPECT_EQ(rep.checkpoint_id, 1u) << rep.note;
    EXPECT_EQ(rep.corrupt_checkpoints_skipped, 1u) << rep.note;
    EXPECT_FALSE(rep.data_loss) << rep.note;
    EXPECT_FALSE(rep.wal_gap) << rep.note;
    // The WAL suffix past the surviving checkpoint covers the whole run:
    // falling back must not cost a single tuple.
    engine->AdvanceTo(final_t);
    std::vector<Tuple> rows;
    ASSERT_TRUE(engine->Snapshot("q0", &rows));
    EXPECT_EQ(Canonical(rows), OracleRows(w.sql, w.trace, n, final_t));
    const std::string prom = engine->Metrics().ToPrometheus();
    EXPECT_NE(prom.find("upa_recovery_corrupt_checkpoints_skipped 1"),
              std::string::npos)
        << prom;
    engine->Stop();
  }
}

TEST(CorruptionTest, InjectedTornWalWriteDegradesToUndurableNotWrong) {
  const World w = BuildWorld();
  const Time final_t = w.trace.LastTs() + kDrain;
  FaultEvent tear;
  tear.kind = FaultKind::kTornWalWrite;
  tear.at_count = 30;  // 3 declares + 1 register + 25 ingests survive.
  tear.param = 9;
  FaultInjector faults({tear});
  TempDir dir("torn");
  {
    EngineOptions opts = DurableOptions(dir.str());
    opts.durability.seal_on_close = false;
    opts.fault_injector = &faults;
    Engine engine(opts);
    DeclareAll(&engine);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(engine.RegisterSql("q0", w.sql).ok);
    engine.IngestTrace(w.trace);
    engine.AdvanceTo(final_t);
    // The live engine lost its WAL mid-run but must keep answering, in
    // full, and say so in its metrics.
    std::vector<Tuple> rows;
    ASSERT_TRUE(engine.Snapshot("q0", &rows));
    EXPECT_EQ(Canonical(rows),
              OracleRows(w.sql, w.trace, w.trace.events.size(), final_t));
    const EngineMetrics m = engine.Metrics();
    EXPECT_TRUE(m.durability.wal_failed);
    EXPECT_EQ(m.durability.wal_torn_writes, 1u);
    EXPECT_NE(m.ToPrometheus().find("upa_checkpoint_wal_failed 1"),
              std::string::npos);
    engine.Stop();
  }
  EXPECT_EQ(faults.fired(FaultKind::kTornWalWrite), 1u);

  // On disk the torn frame ends the log: recovery replays exactly the
  // records before it.
  durability::RecoveryReport rep;
  std::unique_ptr<Engine> engine =
      Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
  EXPECT_FALSE(rep.wal_gap) << rep.note;
  EXPECT_FALSE(rep.data_loss) << rep.note;
  EXPECT_GE(rep.wal_corrupt_frames, 1u) << rep.note;
  EXPECT_EQ(rep.wal_ingest_replayed,
            tear.at_count - 1 - kNumStreams - 1);  // Declares + register.
  ExpectPrefixState(engine.get(), w, rep);
  engine->Stop();
}

TEST(CorruptionTest, CheckpointAfterTornWalWriteIsStillSelfContained) {
  // A checkpoint does not depend on the WAL being alive: the manifest
  // persists the retained tuples themselves, so a checkpoint taken after
  // the writer failed recovers the full barrier state even though the WAL
  // ends at the torn frame.
  const World w = BuildWorld();
  const Time final_t = w.trace.LastTs() + kDrain;
  FaultEvent tear;
  tear.kind = FaultKind::kTornWalWrite;
  tear.at_count = 30;
  FaultInjector faults({tear});
  TempDir dir("torn_ckpt");
  {
    EngineOptions opts = DurableOptions(dir.str());
    opts.durability.seal_on_close = false;
    opts.fault_injector = &faults;
    Engine engine(opts);
    DeclareAll(&engine);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(engine.RegisterSql("q0", w.sql).ok);
    engine.IngestTrace(w.trace);
    engine.AdvanceTo(final_t);
    EXPECT_TRUE(engine.Metrics().durability.wal_failed);
    std::string err;
    EXPECT_TRUE(engine.Checkpoint(&err)) << err;
    engine.Stop();
  }
  durability::RecoveryReport rep;
  std::unique_ptr<Engine> engine =
      Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
  EXPECT_TRUE(rep.recovered_from_checkpoint) << rep.note;
  EXPECT_EQ(rep.digest_mismatches, 0u) << rep.note;
  EXPECT_EQ(rep.clock, final_t);
  std::vector<Tuple> rows;
  ASSERT_TRUE(engine->Snapshot("q0", &rows));
  EXPECT_EQ(Canonical(rows),
            OracleRows(w.sql, w.trace, w.trace.events.size(), final_t));
  engine->Stop();
}

TEST(CorruptionTest, EveryCheckpointCorruptAfterWalGcIsDataLossNotACrash) {
  const World w = BuildWorld();
  const size_t n = w.trace.events.size();
  TempDir dir("loss");
  // Tiny segments + keep_checkpoints=1 + a single late checkpoint: the
  // checkpoint's WAL GC deletes the early segments, so once that one
  // checkpoint file is damaged there is no path back to sequence 1.
  RunWorld(dir.str(), w, 256, /*keep=*/1, {n}, /*seal=*/true);
  if (::testing::Test::HasFatalFailure()) return;
  const auto ckpts = durability::ListCheckpoints(dir.str());
  ASSERT_EQ(ckpts.size(), 1u);
  FlipByte(ckpts[0].second, fs::file_size(ckpts[0].second) / 2);
  if (::testing::Test::HasFatalFailure()) return;

  durability::RecoveryReport rep;
  std::unique_ptr<Engine> engine =
      Engine::StartFromCheckpoint(dir.str(), DurableOptions(dir.str()), &rep);
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(rep.data_loss) << rep.note;
  EXPECT_FALSE(rep.recovered_from_checkpoint);
  EXPECT_EQ(rep.corrupt_checkpoints_skipped, 1u);
  // Sequence 1 is gone: nothing is replayable, and the surviving tail
  // records must NOT be applied as if they were the whole history.
  EXPECT_EQ(rep.wal_records_replayed, 0u) << rep.note;
  EXPECT_TRUE(rep.wal_gap) << rep.note;
  EXPECT_EQ(rep.queries_restored, 0u);

  // Declared empty, the engine must still be fully functional.
  DeclareAll(engine.get());
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(engine->RegisterSql("q0", w.sql).ok);
  const size_t replay = std::min<size_t>(n, 40);
  for (size_t i = 0; i < replay; ++i) {
    engine->Ingest(w.trace.events[i].stream, w.trace.events[i].tuple);
  }
  const Time at = w.trace.events[replay - 1].tuple.ts;
  std::vector<Tuple> rows;
  ASSERT_TRUE(engine->Snapshot("q0", &rows));
  EXPECT_EQ(Canonical(rows), OracleRows(w.sql, w.trace, replay, at));
  const std::string prom = engine->Metrics().ToPrometheus();
  EXPECT_NE(prom.find("upa_recovery_data_loss 1"), std::string::npos) << prom;
  engine->Stop();
}

}  // namespace
}  // namespace upa
