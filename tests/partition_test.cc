// Unit tests of the partitionability analysis: which plans may be sharded,
// on which base columns, and why the rest fall back to a single shard.

#include <gtest/gtest.h>

#include "core/partition.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::IntSchema;

PartitionScheme Analyze(const PlanPtr& plan) {
  AnnotatePatterns(plan.get());
  return AnalyzePartitionability(*plan);
}

TEST(PartitionTest, StatelessPlanPartitionsOnDefaultColumn) {
  PlanPtr plan = MakeProject(
      MakeSelect(MakeWindow(MakeStream(0, IntSchema(2)), 30),
                 {Predicate{0, CmpOp::kLt, Value{int64_t{5}}}}),
      {1, 0});
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);  // Unconstrained: column 0.
}

TEST(PartitionTest, JoinConstrainsBothStreamsToJoinKey) {
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, IntSchema(3)), 20),
                          MakeWindow(MakeStream(1, IntSchema(3)), 45), 2, 1);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 2);
  EXPECT_EQ(s.stream_key_cols.at(1), 1);
}

TEST(PartitionTest, JoinKeyTracedThroughProjection) {
  // Projection reorders columns; the join key must be traced through it.
  PlanPtr plan = MakeJoin(
      MakeProject(MakeWindow(MakeStream(0, IntSchema(3)), 20), {2, 0}),
      MakeWindow(MakeStream(1, IntSchema(2)), 20), 0, 0);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 2);  // Output col 0 = base col 2.
  EXPECT_EQ(s.stream_key_cols.at(1), 0);
}

TEST(PartitionTest, SelfJoinSharesOneConstraint) {
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 20),
                          MakeWindow(MakeStream(0, IntSchema(2)), 20), 0, 0);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);
}

TEST(PartitionTest, SelfJoinOnDifferentColumnsFallsBack) {
  // The same stream would need two partition columns at once.
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 20),
                          MakeWindow(MakeStream(0, IntSchema(2)), 20), 0, 1);
  const PartitionScheme s = Analyze(plan);
  EXPECT_FALSE(s.partitionable);
  EXPECT_NE(s.reason.find("stream 0"), std::string::npos) << s.reason;
}

TEST(PartitionTest, DistinctOverJoinAgreesOnJoinKey) {
  // Distinct key {0} coincides with the join attribute: partitionable.
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 25),
                           MakeWindow(MakeStream(1, IntSchema(2)), 40), 0, 0),
                  {0}),
      {0});
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);
  EXPECT_EQ(s.stream_key_cols.at(1), 0);
}

TEST(PartitionTest, DistinctKeyDisjointFromJoinKeyFallsBack) {
  // Distinct on the payload column (1), join on column 0: the distinct
  // state would need co-location by a non-join column.
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 25),
                           MakeWindow(MakeStream(1, IntSchema(2)), 40), 0, 0),
                  {1}),
      {0});
  const PartitionScheme s = Analyze(plan);
  EXPECT_FALSE(s.partitionable);
}

TEST(PartitionTest, DistinctBacktracksAcrossKeyColumns) {
  // Key {1, 0}: column 1 of the join output is a left payload column (not
  // the join key) but column 0 is; the analysis must try both.
  PlanPtr plan = MakeDistinct(
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 25),
               MakeWindow(MakeStream(1, IntSchema(2)), 40), 0, 0),
      {1, 0});
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);
  EXPECT_EQ(s.stream_key_cols.at(1), 0);
}

TEST(PartitionTest, NegationConstrainsBothSides) {
  PlanPtr plan = MakeNegate(
      MakeWindow(MakeStream(0, IntSchema(3)), 30),
      MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 20), {0}), 1, 0);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 1);
  EXPECT_EQ(s.stream_key_cols.at(1), 0);
}

TEST(PartitionTest, GroupByPartitionsOnGroupColumn) {
  PlanPtr plan = MakeGroupBy(MakeWindow(MakeStream(0, IntSchema(2)), 30), 1,
                             AggKind::kSum, 0);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 1);
}

TEST(PartitionTest, SingleGroupAggregateFallsBack) {
  PlanPtr plan = MakeGroupBy(MakeWindow(MakeStream(0, IntSchema(2)), 30), -1,
                             AggKind::kCount, -1);
  const PartitionScheme s = Analyze(plan);
  EXPECT_FALSE(s.partitionable);
  EXPECT_NE(s.reason.find("single-group"), std::string::npos) << s.reason;
}

TEST(PartitionTest, CountWindowFallsBack) {
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeCountWindow(MakeStream(0, IntSchema(2)), 20), {0}),
      {0});
  const PartitionScheme s = Analyze(plan);
  EXPECT_FALSE(s.partitionable);
  EXPECT_NE(s.reason.find("count-based"), std::string::npos) << s.reason;
}

TEST(PartitionTest, UnionPassesConstraintPositionally) {
  PlanPtr plan = MakeDistinct(
      MakeUnion(MakeWindow(MakeStream(0, IntSchema(2)), 15),
                MakeWindow(MakeStream(1, IntSchema(2)), 35)),
      {1});
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 1);
  EXPECT_EQ(s.stream_key_cols.at(1), 1);
}

TEST(PartitionTest, IntersectionPicksCommonColumn) {
  PlanPtr plan = MakeIntersect(
      MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 20), {0}),
      MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 30), {0}));
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);
  EXPECT_EQ(s.stream_key_cols.at(1), 0);
}

TEST(PartitionTest, RelationJoinPartitionsUpdateStream) {
  PlanPtr plan =
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 30),
               MakeRelation(9, IntSchema(2), /*retroactive=*/false), 0, 1);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);
  EXPECT_EQ(s.stream_key_cols.at(9), 1);
}

TEST(PartitionTest, NegationAboveJoinTracksNegationAttribute) {
  // Query 5 (pull-up) shape: negation above a join, all on column 0.
  PlanPtr plan = MakeNegate(
      MakeJoin(MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 25), {0}),
               MakeSelect(MakeWindow(MakeStream(2, IntSchema(2)), 25),
                          {Predicate{1, CmpOp::kLt, Value{int64_t{500}}}}),
               0, 0),
      MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 25), {0}), 0, 0);
  const PartitionScheme s = Analyze(plan);
  ASSERT_TRUE(s.partitionable) << s.reason;
  EXPECT_EQ(s.stream_key_cols.at(0), 0);
  EXPECT_EQ(s.stream_key_cols.at(1), 0);
  EXPECT_EQ(s.stream_key_cols.at(2), 0);
}

}  // namespace
}  // namespace upa
