// Hand-computed cases for the reference evaluator itself: the oracle must
// be independently trustworthy before it can anchor the integration tests.

#include <gtest/gtest.h>

#include "ref/reference.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::Canonical;
using testing_util::IntSchema;
using testing_util::T;

TEST(ReferenceTest, WindowContents) {
  PlanPtr plan = MakeWindow(MakeStream(0, IntSchema(1)), 10);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({1}, 1));
  ref.Observe(0, T({2}, 5));
  ref.Observe(0, T({3}, 12));
  // At t=11: tuple ts=1 expired (1 + 10 <= 11); ts=5, 12 not arrived? 12>11.
  EXPECT_EQ(ref.EvalAt(11).size(), 1u);
  EXPECT_EQ(ref.EvalAt(12).size(), 2u);
  EXPECT_EQ(ref.EvalAt(100).size(), 0u);
}

TEST(ReferenceTest, CountWindowKeepsNewest) {
  PlanPtr plan = MakeCountWindow(MakeStream(0, IntSchema(1)), 2);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  for (int i = 1; i <= 5; ++i) ref.Observe(0, T({i}, i));
  const auto rows = Canonical(ref.EvalAt(5));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(AsInt(rows[0][0]), 4);
  EXPECT_EQ(AsInt(rows[1][0]), 5);
}

TEST(ReferenceTest, JoinPairs) {
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 10),
                          MakeWindow(MakeStream(1, IntSchema(2)), 10), 0, 0);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({1, 10}, 1));
  ref.Observe(1, T({1, 20}, 2));
  ref.Observe(1, T({1, 30}, 3));
  ref.Observe(1, T({2, 40}, 3));
  const auto rows = Canonical(ref.EvalAt(5));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(AsInt(rows[0][3]), 20);
  EXPECT_EQ(AsInt(rows[1][3]), 30);
}

TEST(ReferenceTest, NegationEquation1) {
  PlanPtr plan = MakeNegate(MakeWindow(MakeStream(0, IntSchema(1)), 10),
                            MakeWindow(MakeStream(1, IntSchema(1)), 10), 0,
                            0);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({7}, 1));
  ref.Observe(0, T({7}, 2));
  ref.Observe(0, T({7}, 3));
  ref.Observe(1, T({7}, 4));
  // v1=3, v2=1 -> 2 results.
  EXPECT_EQ(ref.EvalAt(5).size(), 2u);
  // After the W2 tuple expires (4+10=14): v2=0, but W1 ts=1..3 expire at
  // 11..13, so at t=13 only ts=3 remains -> 0 results (v2 still 1 at 13).
  EXPECT_EQ(ref.EvalAt(13).size(), 0u);
}

TEST(ReferenceTest, GroupByAggregates) {
  PlanPtr plan = MakeGroupBy(MakeWindow(MakeStream(0, IntSchema(2)), 10), 0,
                             AggKind::kAvg, 1);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({1, 10}, 1));
  ref.Observe(0, T({1, 20}, 2));
  ref.Observe(0, T({2, 99}, 2));
  const auto rows = Canonical(ref.EvalAt(3));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(AsDouble(rows[0][1]), 15.0);
  EXPECT_DOUBLE_EQ(AsDouble(rows[1][1]), 99.0);
  // Empty groups vanish.
  EXPECT_EQ(ref.EvalAt(50).size(), 0u);
}

TEST(ReferenceTest, DistinctOneRowPerKey) {
  PlanPtr plan =
      MakeDistinct(MakeWindow(MakeStream(0, IntSchema(2)), 10), {0});
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({1, 10}, 1));
  ref.Observe(0, T({1, 20}, 2));
  ref.Observe(0, T({2, 30}, 2));
  EXPECT_EQ(ref.EvalAt(3).size(), 2u);
}

TEST(ReferenceTest, NrrJoinReflectsStateAtGenerationTime) {
  // The Section 4.1 litmus test: deleting a symbol must not delete
  // previously generated results; adding one must not join old arrivals.
  PlanPtr plan =
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(1)), 100),
               MakeRelation(9, IntSchema(2), /*retroactive=*/false), 0, 0);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(9, T({1, 100}, 0));   // Row (1, 100) present from t=0.
  ref.Observe(0, T({1}, 5));        // Joins with (1, 100).
  Tuple del = T({1, 100}, 10);
  del.negative = true;
  ref.Observe(9, del);              // Row deleted at t=10.
  ref.Observe(9, T({2, 200}, 12));  // New row (2, 200) at t=12.
  ref.Observe(0, T({2}, 15));       // Joins with (2, 200).
  ref.Observe(0, T({1}, 20));       // No longer joins with anything.

  const auto rows = Canonical(ref.EvalAt(25));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(AsInt(rows[0][2]), 100);  // Old result survives the delete.
  EXPECT_EQ(AsInt(rows[1][2]), 200);
}

TEST(ReferenceTest, RetroactiveJoinReflectsCurrentState) {
  PlanPtr plan =
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(1)), 100),
               MakeRelation(9, IntSchema(2), /*retroactive=*/true), 0, 0);
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(9, T({1, 100}, 0));
  ref.Observe(0, T({1}, 5));
  Tuple del = T({1, 100}, 10);
  del.negative = true;
  ref.Observe(9, del);
  // Retroactive: after the delete the old result is gone too.
  EXPECT_EQ(ref.EvalAt(9).size(), 1u);
  EXPECT_EQ(ref.EvalAt(11).size(), 0u);
}

TEST(ReferenceTest, ProjectAndSelectCompose) {
  PlanPtr plan = MakeProject(
      MakeSelect(MakeWindow(MakeStream(0, IntSchema(3)), 10),
                 {Predicate{2, CmpOp::kGt, Value{int64_t{5}}}}),
      {1});
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({1, 10, 9}, 1));
  ref.Observe(0, T({2, 20, 3}, 1));
  const auto rows = Canonical(ref.EvalAt(2));
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 1u);
  EXPECT_EQ(AsInt(rows[0][0]), 10);
}

TEST(ReferenceTest, IntersectPairCount) {
  PlanPtr plan = MakeIntersect(MakeWindow(MakeStream(0, IntSchema(1)), 10),
                               MakeWindow(MakeStream(1, IntSchema(1)), 10));
  AnnotatePatterns(plan.get());
  ReferenceEvaluator ref(plan.get());
  ref.Observe(0, T({5}, 1));
  ref.Observe(0, T({5}, 2));
  ref.Observe(1, T({5}, 3));
  ref.Observe(1, T({6}, 3));
  EXPECT_EQ(ref.EvalAt(4).size(), 2u);  // 2 left copies x 1 right copy.
}

}  // namespace
}  // namespace upa
