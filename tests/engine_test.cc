// Engine runtime tests. The core property is determinism: for each of the
// five paper queries, a multi-shard concurrent run must produce a final
// (and per-checkpoint) view identical as a multiset to a 1-shard run and
// to the reference oracle. Plus: multi-query fan-out over one shared
// trace, bounded-queue backpressure (block = lossless, drop = counted),
// SQL registration, and the per-query metrics snapshot.

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "engine/bounded_queue.h"
#include "engine/engine.h"
#include "ref/reference.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace {

using testing_util::Canonical;
using testing_util::RowsToString;

Trace TestTrace(int links, Time duration) {
  LblTraceConfig cfg;
  cfg.num_links = links;
  cfg.duration = duration;
  cfg.num_sources = 40;  // Dense keys: joins and negations stay busy.
  return GenerateLblTrace(cfg);
}

void CollectStreams(const PlanNode& n, std::set<int>* out) {
  if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
    out->insert(n.stream_id);
  }
  for (const auto& c : n.children) CollectStreams(*c, out);
}

// --- The five paper queries over the LBL schema. ---

constexpr Time kWindow = 60;

PlanPtr Query1() {  // Join of selections on the source address.
  auto side = [](int link) {
    return MakeSelect(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                      {Predicate{kColProtocol, CmpOp::kEq,
                                 Value{int64_t{kProtoTelnet}}}});
  };
  return MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
}

PlanPtr Query2() {  // Distinct source addresses on one link.
  return MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, LblSchema()), kWindow),
                  {kColSrcIp}),
      {0});
}

PlanPtr Query3() {  // Negation of two links on the source address.
  auto src = [](int link) {
    return MakeProject(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                       {kColSrcIp});
  };
  return MakeNegate(src(0), src(1), 0, 0);
}

PlanPtr Query4() {  // Join of per-link distinct source addresses.
  auto side = [](int link) {
    return MakeDistinct(
        MakeProject(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                    {kColSrcIp}),
        {0});
  };
  return MakeJoin(side(0), side(1), 0, 0);
}

PlanPtr Query5() {  // Negation above a join (Figure 6 pull-up shape).
  return MakeNegate(
      MakeJoin(MakeProject(MakeWindow(MakeStream(0, LblSchema()), kWindow),
                           {kColSrcIp}),
               MakeSelect(MakeWindow(MakeStream(2, LblSchema()), kWindow),
                          {Predicate{kColProtocol, CmpOp::kEq,
                                     Value{int64_t{kProtoTelnet}}}}),
               0, kColSrcIp),
      MakeProject(MakeWindow(MakeStream(1, LblSchema()), kWindow), {0}), 0,
      0);
}

struct PaperQuery {
  std::string name;
  PlanPtr (*make)();
  /// Columns to compare on (empty = all): negation which-duplicate
  /// tie-breaking is unspecified, so STR plans with payload columns
  /// compare projected onto the negation attribute.
  std::vector<int> compare_cols;
  int links;
};

std::vector<PaperQuery> PaperQueries() {
  std::vector<PaperQuery> qs;
  qs.push_back({"q1", &Query1, {}, 2});
  qs.push_back({"q2", &Query2, {}, 1});
  qs.push_back({"q3", &Query3, {}, 2});
  qs.push_back({"q4", &Query4, {}, 2});
  qs.push_back({"q5", &Query5, {0}, 3});
  return qs;
}

/// Replays `trace` through an engine running `plan` on `shards` shards,
/// comparing the merged view against `oracle` rows at every checkpoint.
/// Returns the final (post-drain) canonical view.
std::vector<std::vector<Value>> RunEngine(
    const PaperQuery& pq, const Trace& trace, int shards,
    const ReferenceEvaluator* oracle = nullptr) {
  PlanPtr plan = pq.make();
  AnnotatePatterns(plan.get());
  std::set<int> streams;
  CollectStreams(*plan, &streams);

  EngineOptions opts;
  opts.default_shards = shards;
  opts.queue_capacity = 256;
  opts.max_batch = 32;
  Engine engine(opts);
  const RegisterResult reg = engine.RegisterPlan(pq.name, std::move(plan));
  EXPECT_TRUE(reg.ok) << reg.error;
  if (shards > 1) {
    EXPECT_TRUE(reg.partitioned) << pq.name << ": " << reg.partition_note;
    EXPECT_EQ(reg.shards, shards);
  }

  const Time checkpoint_every = 75;
  Time next_checkpoint = checkpoint_every;
  std::vector<Tuple> view;
  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    while (i < n && trace.events[i].tuple.ts == ts) {
      engine.Ingest(trace.events[i].stream, trace.events[i].tuple);
      ++i;
    }
    if (oracle != nullptr && ts >= next_checkpoint) {
      next_checkpoint = ts + checkpoint_every;
      EXPECT_TRUE(engine.Snapshot(pq.name, &view, ts));
      const auto got = Canonical(view, pq.compare_cols);
      const auto want = Canonical(oracle->EvalAt(ts), pq.compare_cols);
      EXPECT_EQ(got, want) << pq.name << " shards=" << shards
                           << " at t=" << ts << "\nengine:\n"
                           << RowsToString(got) << "oracle:\n"
                           << RowsToString(want);
    }
  }
  // Drain: tick well past the last expiration and take the final view.
  const Time final_ts = trace.LastTs() + 2 * kWindow;
  EXPECT_TRUE(engine.Snapshot(pq.name, &view, final_ts));
  // The merged per-shard stats must account for every routed tuple.
  engine.Stop();
  PipelineStats stats;
  EXPECT_TRUE(engine.Stats(pq.name, &stats));
  uint64_t expected = 0;
  for (const TraceEvent& e : trace.events) {
    expected += streams.count(e.stream) > 0 ? 1 : 0;
  }
  EXPECT_EQ(stats.ingested, expected) << pq.name << " shards=" << shards;
  return Canonical(view, pq.compare_cols);
}

class EngineDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineDeterminismTest, PaperQueryMatchesOneShardAndOracle) {
  const int index = GetParam();
  const PaperQuery pq = std::move(PaperQueries()[static_cast<size_t>(index)]);
  const Trace trace = TestTrace(pq.links, 400);

  PlanPtr oracle_plan = pq.make();
  AnnotatePatterns(oracle_plan.get());
  std::set<int> streams;
  CollectStreams(*oracle_plan, &streams);
  ReferenceEvaluator oracle(oracle_plan.get());
  for (const TraceEvent& e : trace.events) {
    if (streams.count(e.stream) > 0) oracle.Observe(e.stream, e.tuple);
  }

  const auto sharded = RunEngine(pq, trace, 4, &oracle);
  const auto single = RunEngine(pq, trace, 1, &oracle);
  EXPECT_EQ(sharded, single) << pq.name << ": 4-shard vs 1-shard";
  const Time final_ts = trace.LastTs() + 2 * kWindow;
  const auto want = Canonical(oracle.EvalAt(final_ts), pq.compare_cols);
  EXPECT_EQ(sharded, want) << pq.name << ": 4-shard vs oracle at drain";
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, EngineDeterminismTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return PaperQueries()[static_cast<size_t>(
                                                     info.param)]
                               .name;
                         });

TEST(EngineTest, ThreeQueriesShareOneTrace) {
  // One engine, one shared LBL trace, three concurrent queries (the
  // acceptance scenario). Each query's merged view must match its own
  // reference oracle.
  const Trace trace = TestTrace(3, 300);
  EngineOptions opts;
  opts.default_shards = 4;
  Engine engine(opts);

  std::vector<PaperQuery> qs = PaperQueries();
  std::vector<std::unique_ptr<PlanNode>> oracle_plans;
  std::vector<std::unique_ptr<ReferenceEvaluator>> oracles;
  std::vector<std::set<int>> streams;
  const int picks[] = {0, 1, 2};  // Q1, Q2, Q3.
  for (int p : picks) {
    PlanPtr plan = qs[static_cast<size_t>(p)].make();
    AnnotatePatterns(plan.get());
    const RegisterResult reg =
        engine.RegisterPlan(qs[static_cast<size_t>(p)].name, std::move(plan));
    ASSERT_TRUE(reg.ok) << reg.error;
    PlanPtr oplan = qs[static_cast<size_t>(p)].make();
    AnnotatePatterns(oplan.get());
    streams.emplace_back();
    CollectStreams(*oplan, &streams.back());
    oracles.push_back(std::make_unique<ReferenceEvaluator>(oplan.get()));
    oracle_plans.push_back(std::move(oplan));
  }

  for (const TraceEvent& e : trace.events) {
    engine.Ingest(e.stream, e.tuple);
    for (size_t q = 0; q < oracles.size(); ++q) {
      if (streams[q].count(e.stream) > 0) {
        oracles[q]->Observe(e.stream, e.tuple);
      }
    }
  }
  const Time final_ts = trace.LastTs() + 2 * kWindow;
  for (size_t q = 0; q < oracles.size(); ++q) {
    const PaperQuery& pq = qs[static_cast<size_t>(picks[q])];
    std::vector<Tuple> view;
    ASSERT_TRUE(engine.Snapshot(pq.name, &view, final_ts));
    EXPECT_EQ(Canonical(view, pq.compare_cols),
              Canonical(oracles[q]->EvalAt(final_ts), pq.compare_cols))
        << pq.name;
  }

  const EngineMetrics m = engine.Metrics();
  ASSERT_EQ(m.queries.size(), 3u);
  for (const QueryMetrics& qm : m.queries) {
    EXPECT_EQ(qm.shards, 4);
    EXPECT_TRUE(qm.partitioned);
    EXPECT_GT(qm.enqueued, 0u);
    EXPECT_EQ(qm.processed, qm.enqueued);  // Post-barrier: all drained.
    EXPECT_EQ(qm.dropped, 0u);
    EXPECT_EQ(qm.queue_depth, 0u);
    EXPECT_EQ(qm.stats.ingested, qm.enqueued);
    EXPECT_EQ(qm.per_shard.size(), 4u);
  }
  EXPECT_FALSE(m.ToString().empty());
}

TEST(EngineTest, RegisterSqlThroughCatalog) {
  Engine engine;
  ASSERT_EQ(engine.catalog()->DeclareStream("link0", LblSchema()), 0);
  ASSERT_EQ(engine.catalog()->DeclareStream("link1", LblSchema()), 1);

  const RegisterResult bad =
      engine.RegisterSql("broken", "SELECT nope FROM nowhere");
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());

  QueryOptions qopts;
  qopts.shards = 2;
  const RegisterResult reg = engine.RegisterSql(
      "telnet_join",
      "SELECT * FROM link0 [RANGE 60], link1 [RANGE 60] "
      "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
      "link1.protocol = 2",
      qopts);
  ASSERT_TRUE(reg.ok) << reg.error;
  EXPECT_EQ(reg.shards, 2);
  EXPECT_TRUE(reg.partitioned) << reg.partition_note;

  const RegisterResult dup = engine.RegisterSql(
      "telnet_join", "SELECT src_ip FROM link0 [RANGE 10]");
  EXPECT_FALSE(dup.ok);

  const Trace trace = TestTrace(2, 200);
  engine.IngestTrace(trace);
  engine.Flush();
  PipelineStats stats;
  ASSERT_TRUE(engine.Stats("telnet_join", &stats));
  EXPECT_EQ(stats.ingested, trace.events.size());
}

TEST(EngineTest, SingleShardFallbackForUnpartitionablePlan) {
  // Count windows cannot shard; the engine must fall back to one shard
  // even when four were requested, and say why.
  Engine engine(EngineOptions{.default_shards = 4});
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeCountWindow(MakeStream(0, LblSchema()), 20),
                  {kColSrcIp}),
      {0});
  AnnotatePatterns(plan.get());
  const RegisterResult reg = engine.RegisterPlan("rows", std::move(plan));
  ASSERT_TRUE(reg.ok) << reg.error;
  EXPECT_EQ(reg.shards, 1);
  EXPECT_FALSE(reg.partitioned);
  EXPECT_NE(reg.partition_note.find("count-based"), std::string::npos)
      << reg.partition_note;
}

// --- Backpressure. ---

std::unique_ptr<Pipeline> TinyPipeline() {
  PlanPtr plan = MakeWindow(MakeStream(0, testing_util::IntSchema(2)), 50);
  AnnotatePatterns(plan.get());
  return BuildPipeline(*plan, ExecMode::kUpa, {});
}

TEST(BackpressureTest, BlockPolicyLosesNothing) {
  // A full bounded queue must *block* the producer, not shed tuples: with
  // the worker gated, exactly `capacity` pushes land and the producer
  // stalls; after release every tuple is processed.
  constexpr size_t kCapacity = 4;
  constexpr int kTuples = 50;
  ShardExecutor shard(0, TinyPipeline(), kCapacity, /*max_batch=*/8,
                      BackpressurePolicy::kBlock);
  shard.Start();

  std::promise<void> entered_promise;
  std::promise<void> gate_promise;
  std::shared_future<void> gate(gate_promise.get_future());
  shard.EnqueueControl(0, [&entered_promise, gate](Pipeline&) {
    entered_promise.set_value();
    gate.wait();
  });
  entered_promise.get_future().wait();  // Worker is now gated, queue empty.

  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < kTuples; ++i) {
      Tuple t;
      t.ts = i + 1;
      t.fields = {Value{int64_t{i}}, Value{int64_t{0}}};
      shard.Enqueue(0, t);
      pushed.fetch_add(1);
    }
  });

  // The producer fills the queue and must then stall at exactly capacity.
  for (int spin = 0; spin < 500 && pushed.load() < int(kCapacity); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(pushed.load(), int(kCapacity));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(pushed.load(), int(kCapacity)) << "producer was not blocked";
  EXPECT_EQ(shard.queue_depth(), kCapacity);

  gate_promise.set_value();
  producer.join();
  shard.Stop();
  EXPECT_EQ(shard.processed(), uint64_t{kTuples}) << "tuples were lost";
  EXPECT_EQ(shard.dropped(), 0u);
}

TEST(BackpressureTest, DropPolicyCountsSheddedTuples) {
  constexpr size_t kCapacity = 4;
  constexpr int kTuples = 50;
  ShardExecutor shard(0, TinyPipeline(), kCapacity, /*max_batch=*/8,
                      BackpressurePolicy::kDropNewest);
  shard.Start();

  std::promise<void> entered_promise;
  std::promise<void> gate_promise;
  std::shared_future<void> gate(gate_promise.get_future());
  shard.EnqueueControl(0, [&entered_promise, gate](Pipeline&) {
    entered_promise.set_value();
    gate.wait();
  });
  entered_promise.get_future().wait();

  int accepted = 0;
  for (int i = 0; i < kTuples; ++i) {
    Tuple t;
    t.ts = i + 1;
    t.fields = {Value{int64_t{i}}, Value{int64_t{0}}};
    accepted += shard.Enqueue(0, t) ? 1 : 0;
  }
  EXPECT_EQ(accepted, int(kCapacity));
  EXPECT_EQ(shard.dropped(), uint64_t{kTuples - kCapacity});

  gate_promise.set_value();
  shard.Stop();
  EXPECT_EQ(shard.processed(), uint64_t{kCapacity});
}

// --- BoundedQueue drop accounting. ---

TEST(BoundedQueueTest, PushAfterCloseCountsAsDropped) {
  // Pin the shutdown-race accounting: a Push that loses against Close()
  // rejects the tuple just like a capacity shed, so it must increment the
  // drop counter -- under either policy. (This was once uncounted, which
  // made the enqueued/processed/dropped ledger leak during shutdown.)
  for (BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDropNewest}) {
    BoundedQueue<int> q(4, policy);
    ASSERT_TRUE(q.Push(1));
    q.Close();
    EXPECT_FALSE(q.Push(2));
    EXPECT_FALSE(q.Push(3));
    EXPECT_EQ(q.dropped(), 2u);
    // The pre-close item is still drainable; the post-close ones are not.
    std::vector<int> batch;
    EXPECT_EQ(q.PopBatch(&batch, 16), 1u);
    EXPECT_EQ(batch[0], 1);
    EXPECT_EQ(q.PopBatch(&batch, 16), 0u);
  }
}

TEST(BoundedQueueTest, ConcurrentCloseNeverLosesARejectionSilently) {
  // Every Push outcome must be accounted for: accepted pushes are
  // drainable, rejected pushes are counted. Race many producers against
  // Close() and check the ledger balances exactly.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  BoundedQueue<int> q(8, BackpressurePolicy::kDropNewest);
  std::atomic<int> accepted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (q.PopBatch(&batch, 16) > 0) {
    }
  });
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Push(i)) accepted.fetch_add(1);
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  q.Close();
  for (std::thread& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(accepted.load() + static_cast<int>(q.dropped()),
            kProducers * kPerProducer);
}

// --- Snapshot vs crashed shards: the barrier contract. ---

PlanPtr TinyWindowPlan() {
  PlanPtr plan = MakeWindow(MakeStream(0, testing_util::IntSchema(1)), 100);
  AnnotatePatterns(plan.get());
  return plan;
}

TEST(EngineCrashBarrierTest, SnapshotOnUnrecoverableCrashFailsPromptly) {
  // With no watchdog and no recovery log, a crashed shard can never ack a
  // barrier control. The documented contract is a prompt false -- not a
  // hang, not a view with silently missing shards.
  FaultEvent kill;
  kill.kind = FaultKind::kKillShard;
  kill.query = "q";
  kill.at_count = 5;
  FaultInjector faults({kill});
  EngineOptions opts;
  opts.supervise = false;
  opts.recover = false;
  opts.fault_injector = &faults;
  Engine engine(opts);
  ASSERT_TRUE(engine.RegisterPlan("q", TinyWindowPlan()).ok);
  for (int i = 1; i <= 10; ++i) {
    engine.Ingest(0, testing_util::T({i}, i));
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<Tuple> rows;
  EXPECT_FALSE(engine.Snapshot("q", &rows));
  EXPECT_TRUE(rows.empty());
  EXPECT_FALSE(engine.Flush());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30));
  EXPECT_EQ(faults.fired(FaultKind::kKillShard), 1u);
  EXPECT_TRUE(engine.Metrics().queries[0].per_shard[0].crashed);
  engine.Stop();
}

TEST(EngineCrashBarrierTest, SnapshotRestartsRecoverableCrashInline) {
  // The watchdog is configured so slow it will never run; the snapshot
  // barrier itself must restart the crashed shard (racing the watchdog is
  // safe, restarts are serialized per shard) and then answer in full.
  FaultEvent kill;
  kill.kind = FaultKind::kKillShard;
  kill.query = "q";
  kill.at_count = 5;
  FaultInjector faults({kill});
  EngineOptions opts;
  opts.supervise = true;
  opts.watchdog_interval_ms = 600000;
  opts.fault_injector = &faults;
  Engine engine(opts);
  ASSERT_TRUE(engine.RegisterPlan("q", TinyWindowPlan()).ok);
  for (int i = 1; i <= 10; ++i) {
    engine.Ingest(0, testing_util::T({i}, i));
  }
  std::vector<Tuple> rows;
  ASSERT_TRUE(engine.Snapshot("q", &rows));
  EXPECT_EQ(rows.size(), 10u);  // Replica rebuilt, nothing lost.
  EXPECT_EQ(faults.fired(FaultKind::kKillShard), 1u);
  const EngineMetrics m = engine.Metrics();
  EXPECT_EQ(m.queries[0].restarts, 1u);
  EXPECT_FALSE(m.queries[0].per_shard[0].crashed);
  engine.Stop();
}

// --- The /metrics endpoint answers garbage with errors, not crashes. ---

std::string Render() { return "upa_build_info 1\n"; }

TEST(MetricsHttpTest, WellFormedGetIsServed) {
  const std::string resp =
      HandleMetricsRequest("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", Render);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos) << resp;
  EXPECT_NE(resp.find("upa_build_info 1"), std::string::npos) << resp;
  // Root path and query strings are accepted too.
  EXPECT_NE(HandleMetricsRequest("GET / HTTP/1.0\r\n\r\n", Render)
                .find("200 OK"),
            std::string::npos);
  EXPECT_NE(HandleMetricsRequest("GET /metrics?debug=1 HTTP/1.1\r\n\r\n",
                                 Render)
                .find("200 OK"),
            std::string::npos);
}

TEST(MetricsHttpTest, HeadOmitsTheBody) {
  const std::string resp =
      HandleMetricsRequest("HEAD /metrics HTTP/1.1\r\n\r\n", Render);
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_EQ(resp.find("upa_build_info"), std::string::npos) << resp;
}

TEST(MetricsHttpTest, MalformedRequestsGet400) {
  const std::vector<std::string> malformed = {
      "",
      "\r\n",
      "GET",
      "GET /metrics",                    // No HTTP version.
      "GET  HTTP/1.1",                   // No target.
      "get /metrics HTTP/1.1",           // Lowercase method token.
      "GET /metrics SPDY/3",             // Not an HTTP version.
      "\x16\x03\x01\x02stray TLS bytes",  // TLS handshake on a plain port.
      std::string("GET /\0metrics HTTP/1.1", 22),  // Embedded NUL.
      std::string(10000, 'A'),           // Oversized request line.
  };
  for (const std::string& req : malformed) {
    const std::string resp = HandleMetricsRequest(req, Render);
    EXPECT_NE(resp.find("HTTP/1.1 400"), std::string::npos)
        << "request: " << req.substr(0, 60) << "\nresponse: " << resp;
    EXPECT_EQ(resp.find("upa_build_info"), std::string::npos);
  }
}

TEST(MetricsHttpTest, WrongMethodAndPathGetProperErrors) {
  EXPECT_NE(HandleMetricsRequest("POST /metrics HTTP/1.1\r\n\r\n", Render)
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(HandleMetricsRequest("DELETE / HTTP/1.1\r\n\r\n", Render)
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(HandleMetricsRequest("GET /favicon.ico HTTP/1.1\r\n\r\n", Render)
                .find("HTTP/1.1 404"),
            std::string::npos);
}

}  // namespace
}  // namespace upa
