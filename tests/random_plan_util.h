#ifndef UPA_TESTS_RANDOM_PLAN_UTIL_H_
#define UPA_TESTS_RANDOM_PLAN_UTIL_H_

// Random plan/trace generators shared by the property-based suites
// (random_plan_test and the chaos differential tests). Both the plan and
// the trace are deterministic functions of an Rng, so a seed identifies a
// scenario exactly — the chaos tests rebuild the same plan for their
// faulty run, their fault-free run, and the oracle.

#include <utility>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "tests/test_util.h"
#include "workload/trace.h"

namespace upa {
namespace testing_util {

inline constexpr int kRandomPlanStreams = 3;

/// A single-column windowed source: project(window(stream)) down to the
/// key column, so that distinct/negation compositions compare exactly.
/// Keeping every edge single-column also makes equal-timestamp arrivals
/// interchangeable (full-tuple distinct keys), which the chaos reorder
/// fault relies on.
inline PlanPtr RandomSource(Rng& rng) {
  const int stream = static_cast<int>(rng.NextBelow(kRandomPlanStreams));
  const Time window = rng.NextInRange(10, 60);
  PlanPtr p = MakeWindow(MakeStream(stream, IntSchema(2)), window);
  if (rng.NextBool(0.3)) {
    p = MakeSelect(std::move(p),
                   {Predicate{0, CmpOp::kLt, Value{rng.NextInRange(2, 9)}}});
  }
  return MakeProject(std::move(p), {0});
}

/// Builds a random plan of bounded depth over single-column inputs.
inline PlanPtr RandomPlan(Rng& rng, int depth) {
  if (depth == 0) return RandomSource(rng);
  switch (rng.NextBelow(6)) {
    case 0: {  // Union.
      return MakeUnion(RandomPlan(rng, depth - 1), RandomPlan(rng, depth - 1));
    }
    case 1: {  // Join, projected back to one column.
      PlanPtr j = MakeJoin(RandomPlan(rng, depth - 1),
                           RandomPlan(rng, depth - 1), 0, 0);
      return MakeProject(std::move(j), {0});
    }
    case 2: {  // Distinct.
      return MakeDistinct(RandomPlan(rng, depth - 1), {0});
    }
    case 3: {  // Negation.
      return MakeNegate(RandomPlan(rng, depth - 1), RandomPlan(rng, depth - 1),
                        0, 0);
    }
    case 4: {  // Selection.
      return MakeSelect(RandomPlan(rng, depth - 1),
                        {Predicate{0, CmpOp::kGe, Value{rng.NextInRange(0, 4)}}});
    }
    default: {  // Intersection.
      return MakeIntersect(RandomPlan(rng, depth - 1),
                           RandomPlan(rng, depth - 1));
    }
  }
}

inline Trace RandomTrace(Rng& rng, Time duration) {
  Trace trace;
  trace.schema = IntSchema(2);
  trace.num_streams = kRandomPlanStreams;
  for (Time ts = 1; ts <= duration; ++ts) {
    for (int s = 0; s < kRandomPlanStreams; ++s) {
      if (rng.NextBool(0.2)) continue;  // Irregular arrivals.
      TraceEvent e;
      e.stream = s;
      e.tuple.ts = ts;
      e.tuple.fields = {Value{rng.NextInRange(0, 9)},
                        Value{rng.NextInRange(0, 99)}};
      trace.events.push_back(std::move(e));
    }
  }
  return trace;
}

}  // namespace testing_util
}  // namespace upa

#endif  // UPA_TESTS_RANDOM_PLAN_UTIL_H_
