#include <set>

#include <gtest/gtest.h>

#include "common/key.h"
#include "common/rng.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "common/value.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::T;

TEST(ValueTest, TypeOf) {
  EXPECT_EQ(TypeOf(Value{int64_t{3}}), ValueType::kInt);
  EXPECT_EQ(TypeOf(Value{2.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("x")}), ValueType::kString);
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(AsInt(Value{int64_t{42}}), 42);
  EXPECT_DOUBLE_EQ(AsDouble(Value{1.5}), 1.5);
  EXPECT_EQ(AsString(Value{std::string("abc")}), "abc");
  EXPECT_DOUBLE_EQ(AsNumeric(Value{int64_t{7}}), 7.0);
  EXPECT_DOUBLE_EQ(AsNumeric(Value{7.5}), 7.5);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(ToString(Value{int64_t{5}}), "5");
  EXPECT_EQ(ToString(Value{std::string("ip")}), "ip");
}

TEST(ValueTest, HashDistributes) {
  std::set<uint64_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) hashes.insert(HashValue(Value{i}));
  EXPECT_EQ(hashes.size(), 1000u);  // No collisions on small ints.
}

TEST(ValueTest, HashStringsAndDoubles) {
  EXPECT_NE(HashValue(Value{std::string("a")}),
            HashValue(Value{std::string("b")}));
  EXPECT_NE(HashValue(Value{1.0}), HashValue(Value{2.0}));
}

TEST(SchemaTest, IndexOf) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_fields(), 2);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("zz"), -1);
  EXPECT_EQ(s.MustIndexOf("a"), 0);
}

TEST(SchemaTest, ConcatRenamesCollisions) {
  Schema l({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
  Schema r({{"b", ValueType::kInt}, {"c", ValueType::kInt}});
  Schema j = Schema::Concat(l, r);
  EXPECT_EQ(j.num_fields(), 4);
  EXPECT_EQ(j.field(2).name, "b_r");
  EXPECT_EQ(j.field(3).name, "c");
}

TEST(SchemaTest, Project) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt},
            {"c", ValueType::kInt}});
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.num_fields(), 2);
  EXPECT_EQ(p.field(0).name, "c");
  EXPECT_EQ(p.field(1).name, "a");
}

TEST(TupleTest, Liveness) {
  Tuple t = T({1}, /*ts=*/10, /*exp=*/20);
  EXPECT_TRUE(t.LiveAt(19));
  EXPECT_FALSE(t.LiveAt(20));  // Expires exactly at exp.
  EXPECT_TRUE(T({1}).LiveAt(1'000'000'000));  // Never expires.
}

TEST(TupleTest, AsNegativePreservesIdentity) {
  Tuple t = T({1, 2}, 5, 15);
  Tuple n = t.AsNegative();
  EXPECT_TRUE(n.negative);
  EXPECT_TRUE(n.FieldsEqual(t));
  EXPECT_EQ(n.exp, t.exp);
}

TEST(TupleTest, FieldsEqualIgnoresTimestamps) {
  EXPECT_TRUE(T({1, 2}, 1, 5).FieldsEqual(T({1, 2}, 9, 99)));
  EXPECT_FALSE(T({1, 2}).FieldsEqual(T({1, 3})));
}

TEST(KeyTest, ExtractAndEquals) {
  Tuple t = T({10, 20, 30});
  Key k = ExtractKey(t, {2, 0});
  ASSERT_EQ(k.size(), 2u);
  EXPECT_EQ(AsInt(k[0]), 30);
  EXPECT_TRUE(KeyEquals(t, {2, 0}, k));
  EXPECT_FALSE(KeyEquals(T({10, 20, 31}), {2, 0}, k));
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, UniformWhenSZero) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 1500);
    EXPECT_LT(c, 2500);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(4);
  ZipfSampler zipf(1000, 1.2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 50000 / 100);  // Head rank dominates.
}

}  // namespace
}  // namespace upa
