# Driven by ctest (see tests/CMakeLists.txt): run one small filtered
# benchmark with JSON output directed at a scratch dir, then validate
# the emitted file against the upa.bench.v1 schema.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    UPA_BENCH_JSON_DIR=${WORK_DIR}
    UPA_BENCH_SAMPLE_INTERVAL=1
    ${BENCH_BIN} --benchmark_filter=BM_Q1_Ftp/2000/
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_q1_join failed with ${bench_rc}")
endif()

if(NOT EXISTS "${WORK_DIR}/BENCH_q1_join.json")
  message(FATAL_ERROR "bench run did not write BENCH_q1_join.json")
endif()

execute_process(
  COMMAND ${PYTHON} ${REPORT} validate ${WORK_DIR}/BENCH_q1_join.json
  RESULT_VARIABLE validate_rc)
if(NOT validate_rc EQUAL 0)
  message(FATAL_ERROR "schema validation failed with ${validate_rc}")
endif()
