// Tests for the observability subsystem (src/obs): histogram percentile
// math, metric registry concurrency, Prometheus rendering, the trace
// ring buffer, and end-to-end pipeline phase attribution with the
// sampling profiler forced to measure every event.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/pipeline.h"
#include "exec/view.h"
#include "obs/metrics.h"
#include "obs/op_profile.h"
#include "obs/trace.h"
#include "ops/join.h"
#include "ops/window.h"
#include "state/list_buffer.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::IntSchema;
using testing_util::T;

TEST(HistogramTest, EmptySnapshot) {
  obs::Histogram h;
  const auto s = h.Snap();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleSampleIsExact) {
  obs::Histogram h;
  h.Record(1234);
  const auto s = h.Snap();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 1234u);
  EXPECT_EQ(s.max, 1234u);
  // Clamping to [min, max] makes single-sample quantiles exact.
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1234.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 1234.0);
  EXPECT_DOUBLE_EQ(s.Percentile(99), 1234.0);
}

TEST(HistogramTest, ZeroLandsInBucketZero) {
  obs::Histogram h;
  h.Record(0);
  const auto s = h.Snap();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(HistogramTest, OverflowBucketClampsToMax) {
  obs::Histogram h;
  h.Record(UINT64_MAX);  // Bit width 64: the overflow bucket.
  const auto s = h.Snap();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[64], 1u);
  EXPECT_EQ(s.max, UINT64_MAX);
  EXPECT_DOUBLE_EQ(s.Percentile(99),
                   static_cast<double>(UINT64_MAX));
}

TEST(HistogramTest, UniformQuantilesWithinOneOctaveAndMonotone) {
  obs::Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const auto s = h.Snap();
  EXPECT_EQ(s.count, 1000u);
  const double p50 = s.Percentile(50);
  const double p95 = s.Percentile(95);
  const double p99 = s.Percentile(99);
  // Log-scale buckets bound the relative error by a factor of two.
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_GE(p95, 475.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_DOUBLE_EQ(s.Mean(), 500.5);
}

TEST(HistogramTest, MergeSumsAndCombinesExtremes) {
  obs::Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(4000);
  auto sa = a.Snap();
  const auto sb = b.Snap();
  sa.Merge(sb);
  EXPECT_EQ(sa.count, 4u);
  EXPECT_EQ(sa.sum, 4035u);
  EXPECT_EQ(sa.min, 5u);
  EXPECT_EQ(sa.max, 4000u);

  obs::Histogram empty;
  auto se = empty.Snap();
  se.Merge(sb);  // Merging into empty adopts the other's extremes.
  EXPECT_EQ(se.min, 5u);
  EXPECT_EQ(se.max, 4000u);
  auto sb2 = b.Snap();
  sb2.Merge(empty.Snap());  // Merging an empty is a no-op.
  EXPECT_EQ(sb2.count, 2u);
  EXPECT_EQ(sb2.min, 5u);
}

TEST(MetricsRegistryTest, CounterGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("events_total");
  c.Add();
  c.Add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.GetCounter("events_total"), &c);  // Stable reference.

  obs::Gauge& g = reg.GetGauge("depth");
  g.Set(7);
  g.Add(-2);
  EXPECT_EQ(g.value(), 5);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdates) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Get-or-create races on the same names on purpose; updates are
      // lock-free afterwards.
      obs::Counter& c = reg.GetCounter("shared_total");
      obs::Histogram& h = reg.GetHistogram("shared_ns");
      for (int i = 0; i < kPerThread; ++i) {
        c.Add();
        h.Record(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared_total").value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.GetHistogram("shared_ns").Snap().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, PrometheusRendering) {
  obs::MetricsRegistry reg;
  reg.GetCounter("upa_events_total").Add(3);
  reg.GetGauge("upa_depth{query=\"q1\"}").Set(9);
  reg.GetHistogram("upa_latency_ns").Record(100);
  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE upa_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("upa_events_total 3"), std::string::npos);
  EXPECT_NE(text.find("upa_depth{query=\"q1\"} 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE upa_latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("upa_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("upa_latency_ns_count 1"), std::string::npos);
}

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer& tr = obs::Tracer::Global();
  tr.Disable();
  tr.Clear();
  EXPECT_FALSE(tr.enabled());
  tr.RecordComplete("ignored", "upa", 0, 10);
  tr.RecordInstant("ignored", "upa");
  EXPECT_EQ(tr.size(), 0u);
}

TEST(TracerTest, RingKeepsMostRecentAndCountsOverwrites) {
  obs::Tracer& tr = obs::Tracer::Global();
  tr.Enable(/*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    tr.RecordComplete("ev" + std::to_string(i), "upa",
                      static_cast<uint64_t>(i) * 1000, 10);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.overwritten(), 2u);
  const std::string json = tr.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ev0\""), std::string::npos);  // Overwritten.
  EXPECT_EQ(json.find("\"ev1\""), std::string::npos);  // Overwritten.
  // Oldest retained event first.
  EXPECT_LT(json.find("\"ev2\""), json.find("\"ev5\""));
  tr.Disable();
}

TEST(TracerTest, ExportWritesFile) {
  obs::Tracer& tr = obs::Tracer::Global();
  tr.Enable(16);
  { obs::TraceScope scope("scoped_work"); }
  const std::string path = ::testing::TempDir() + "/upa_trace_test.json";
  ASSERT_TRUE(tr.ExportChromeTrace(path));
  tr.Disable();
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("scoped_work"), std::string::npos);
  EXPECT_NE(content.find("\"ph\":\"X\""), std::string::npos);
}

std::unique_ptr<Pipeline> ProfiledJoinPipeline() {
  auto pp = std::make_unique<Pipeline>();
  Pipeline& p = *pp;
  const int w0 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, /*nt=*/false), {});
  const int w1 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 10, /*nt=*/false), {});
  p.AddOperator(std::make_unique<JoinOp>(
                    IntSchema(2), IntSchema(2), 0, 0,
                    std::make_unique<ListBuffer>(),
                    std::make_unique<ListBuffer>(), /*time_expiration=*/true),
                {w0, w1});
  p.BindStream(0, w0, 0);
  p.BindStream(1, w1, 0);
  p.SetView(std::make_unique<BufferView>(std::make_unique<ListBuffer>(),
                                         /*time_expiration=*/true));
  obs::ProfilerOptions popts;
  popts.sample_interval = 1;  // Measure every event: exact counts below.
  popts.state_poll_every = 1;
  p.EnableProfiling(popts);
  return pp;
}

TEST(PipelineProfilerTest, EndToEndPhaseAttribution) {
  auto pipeline = ProfiledJoinPipeline();
  Pipeline& p = *pipeline;
  const int kArrivals = 200;
  Time now = 0;
  for (int i = 0; i < kArrivals; ++i) {
    ++now;
    p.Tick(now);
    // Same key both links: every arrival pair joins.
    p.Ingest(i % 2, T({1, i}, now));
  }
  ASSERT_TRUE(p.profiling());
  const obs::ProfileSnapshot snap = p.profiler()->Snapshot();

  // Topology: two windows, the join, plus the implicit view.
  ASSERT_EQ(snap.ops.size(), 4u);
  EXPECT_EQ(snap.ops[2].name, "join");
  EXPECT_EQ(snap.ops.back().name, "view");

  // With sample_interval=1 the sampled counts are the exact totals.
  EXPECT_EQ(snap.phases.ingests, static_cast<uint64_t>(kArrivals));
  EXPECT_EQ(snap.phases.sampled_ingests, static_cast<uint64_t>(kArrivals));
  EXPECT_EQ(snap.phases.ticks, snap.phases.sampled_ticks);
  EXPECT_GT(snap.phases.ticks, 0u);

  // Every arrival reaches exactly one window, which forwards it to the
  // join; the join emits result tuples into the view.
  EXPECT_EQ(snap.ops[0].c.tuples_in + snap.ops[1].c.tuples_in,
            static_cast<uint64_t>(kArrivals));
  EXPECT_EQ(snap.ops[2].c.tuples_in, static_cast<uint64_t>(kArrivals));
  EXPECT_GT(snap.ops[2].c.emitted, 0u);
  EXPECT_EQ(snap.ops[3].c.tuples_in, snap.ops[2].c.emitted);

  // All three paper phases saw time: processing on arrivals, insertion
  // in the join state and view, expiration in windows/join/view.
  EXPECT_GT(snap.phases.processing_ns, 0.0);
  EXPECT_GT(snap.phases.insertion_ns, 0.0);
  EXPECT_GT(snap.phases.expiration_ns, 0.0);
  EXPECT_GT(snap.ops[2].c.insert_calls, 0u);

  // Per-op phase estimates sum to the pipeline-level breakdown.
  double proc = 0, ins = 0, exp = 0;
  for (const obs::OpSnapshot& o : snap.ops) {
    proc += o.processing_ns;
    ins += o.insertion_ns;
    exp += o.expiration_ns;
  }
  EXPECT_DOUBLE_EQ(proc, snap.phases.processing_ns);
  EXPECT_DOUBLE_EQ(ins, snap.phases.insertion_ns);
  EXPECT_DOUBLE_EQ(exp, snap.phases.expiration_ns);

  // State polling ran (poll_every=1): the join reported bytes.
  EXPECT_GT(snap.ops[2].c.state_bytes, 0u);

  // Histograms recorded per-call latencies.
  EXPECT_GT(snap.ops[2].process_ns_hist.count, 0u);
  EXPECT_GE(snap.ops[2].process_ns_hist.Percentile(99),
            snap.ops[2].process_ns_hist.Percentile(50));

  // The rendered table mentions every operator.
  const std::string table = snap.ToString();
  EXPECT_NE(table.find("join"), std::string::npos);
  EXPECT_NE(table.find("view"), std::string::npos);
}

TEST(PipelineProfilerTest, UnprofiledPipelineReportsNothing) {
  auto pp = std::make_unique<Pipeline>();
  Pipeline& p = *pp;
  const int w0 = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(1), 10, false), {});
  p.BindStream(0, w0, 0);
  p.SetView(std::make_unique<BufferView>(std::make_unique<ListBuffer>(),
                                         true));
  EXPECT_FALSE(p.profiling());
  EXPECT_EQ(p.profiler(), nullptr);
  p.Tick(1);
  p.Ingest(0, T({1}, 1));
  EXPECT_EQ(p.view().Size(), 1u);
}

}  // namespace
}  // namespace upa
