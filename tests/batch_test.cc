// Batch-vs-tuple differential tests for the batched ingest path
// (DESIGN.md Section 15). Batching is an execution strategy, not a
// semantics: for every batch size the engine must produce results,
// digests, and operator counters byte-identical to the per-tuple
// oracle (EngineOptions::batch_size = 1), which is itself pinned to
// the reference evaluator. Two suites:
//
//   * BatchDifferentialTest -- the five paper queries replayed at
//     batch_size in {7, 64} against the batch_size=1 run and the
//     reference oracle, comparing canonical rows and RowsDigest at
//     every snapshot barrier (checkpoints land mid-batch, so these
//     exercise the flush-on-barrier path) plus the final PipelineStats.
//   * BatchChaosTest -- 100 seeds of random plan + random trace
//     (the chaos_test corpus, minus fault injection: crashes force the
//     per-tuple fallback, which chaos_test already covers) at
//     batch_size in {1, 7, 64}; all runs must agree with the oracle.
//
// Both suites arm the update-pattern invariant checker, so a batched
// run that violated an operator's Section 5.2 expiration contract
// aborts rather than merely diffing.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "engine/engine.h"
#include "ref/reference.h"
#include "state/serde.h"
#include "tests/random_plan_util.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace {

using testing_util::Canonical;
using testing_util::RandomPlan;
using testing_util::RandomTrace;
using testing_util::RowsToString;

constexpr Time kWindow = 60;

void CollectStreams(const PlanNode& n, std::set<int>* out) {
  if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
    out->insert(n.stream_id);
  }
  for (const auto& c : n.children) CollectStreams(*c, out);
}

// --- The five paper queries over the LBL schema (engine_test shapes). ---

PlanPtr Query1() {  // Join of selections on the source address.
  auto side = [](int link) {
    return MakeSelect(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                      {Predicate{kColProtocol, CmpOp::kEq,
                                 Value{int64_t{kProtoTelnet}}}});
  };
  return MakeJoin(side(0), side(1), kColSrcIp, kColSrcIp);
}

PlanPtr Query2() {  // Distinct source addresses on one link.
  return MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, LblSchema()), kWindow),
                  {kColSrcIp}),
      {0});
}

PlanPtr Query3() {  // Negation of two links on the source address.
  auto src = [](int link) {
    return MakeProject(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                       {kColSrcIp});
  };
  return MakeNegate(src(0), src(1), 0, 0);
}

PlanPtr Query4() {  // Join of per-link distinct source addresses.
  auto side = [](int link) {
    return MakeDistinct(
        MakeProject(MakeWindow(MakeStream(link, LblSchema()), kWindow),
                    {kColSrcIp}),
        {0});
  };
  return MakeJoin(side(0), side(1), 0, 0);
}

PlanPtr Query5() {  // Negation above a join (Figure 6 pull-up shape).
  return MakeNegate(
      MakeJoin(MakeProject(MakeWindow(MakeStream(0, LblSchema()), kWindow),
                           {kColSrcIp}),
               MakeSelect(MakeWindow(MakeStream(2, LblSchema()), kWindow),
                          {Predicate{kColProtocol, CmpOp::kEq,
                                     Value{int64_t{kProtoTelnet}}}}),
               0, kColSrcIp),
      MakeProject(MakeWindow(MakeStream(1, LblSchema()), kWindow), {0}), 0,
      0);
}

struct PaperQuery {
  std::string name;
  PlanPtr (*make)();
  std::vector<int> compare_cols;  ///< Empty = all (see engine_test.cc).
  int links;
};

std::vector<PaperQuery> PaperQueries() {
  std::vector<PaperQuery> qs;
  qs.push_back({"q1", &Query1, {}, 2});
  qs.push_back({"q2", &Query2, {}, 1});
  qs.push_back({"q3", &Query3, {}, 2});
  qs.push_back({"q4", &Query4, {}, 2});
  qs.push_back({"q5", &Query5, {0}, 3});
  return qs;
}

/// Everything one replay observes. Two runs of the same query + trace at
/// different batch sizes must compare equal on every field.
struct RunRecord {
  /// Canonical rows at each periodic snapshot, then the drain snapshot.
  std::vector<std::vector<std::vector<Value>>> checkpoints;
  /// serde::RowsDigest of the raw view at the same instants. Redundant
  /// with the row comparison, but pins the acceptance criterion ("digests
  /// byte-identical at every tested batch size") on the exact helper the
  /// recovery layer trusts.
  std::vector<uint64_t> digests;
  PipelineStats stats;
};

/// Replays `trace` through an engine running `pq` on `shards` shards with
/// the given batch size, snapshotting every `checkpoint_every` ticks.
RunRecord RunAtBatchSize(const PaperQuery& pq, const Trace& trace, int shards,
                         size_t batch_size) {
  PlanPtr plan = pq.make();
  AnnotatePatterns(plan.get());

  EngineOptions opts;
  opts.default_shards = shards;
  opts.queue_capacity = 256;
  opts.max_batch = 32;
  opts.batch_size = batch_size;
  opts.check_invariants = true;
  Engine engine(opts);
  const RegisterResult reg = engine.RegisterPlan(pq.name, std::move(plan));
  EXPECT_TRUE(reg.ok) << reg.error;

  RunRecord rec;
  const Time checkpoint_every = 75;
  Time next_checkpoint = checkpoint_every;
  std::vector<Tuple> view;
  auto snapshot_at = [&](Time ts) {
    EXPECT_TRUE(engine.Snapshot(pq.name, &view, ts));
    rec.checkpoints.push_back(Canonical(view, pq.compare_cols));
    rec.digests.push_back(serde::RowsDigest(view));
  };

  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    while (i < n && trace.events[i].tuple.ts == ts) {
      engine.Ingest(trace.events[i].stream, trace.events[i].tuple);
      ++i;
    }
    if (ts >= next_checkpoint) {
      next_checkpoint = ts + checkpoint_every;
      snapshot_at(ts);
    }
  }
  snapshot_at(trace.LastTs() + 2 * kWindow);  // Drain.
  engine.Stop();
  EXPECT_TRUE(engine.Stats(pq.name, &rec.stats));
  return rec;
}

void ExpectSameRun(const PaperQuery& pq, size_t batch_size,
                   const RunRecord& got, const RunRecord& want) {
  ASSERT_EQ(got.checkpoints.size(), want.checkpoints.size());
  for (size_t c = 0; c < got.checkpoints.size(); ++c) {
    EXPECT_EQ(got.checkpoints[c], want.checkpoints[c])
        << pq.name << " batch=" << batch_size << " checkpoint " << c
        << "\nbatched:\n"
        << RowsToString(got.checkpoints[c]) << "per-tuple:\n"
        << RowsToString(want.checkpoints[c]);
    EXPECT_EQ(got.digests[c], want.digests[c])
        << pq.name << " batch=" << batch_size << " checkpoint " << c;
  }
  // Operator counters, not just results: a batched run that delivered
  // extra (later-cancelled) tuples would diff here even with equal views.
  EXPECT_EQ(got.stats.ingested, want.stats.ingested) << pq.name;
  EXPECT_EQ(got.stats.delivered, want.stats.delivered)
      << pq.name << " batch=" << batch_size;
  EXPECT_EQ(got.stats.negatives_delivered, want.stats.negatives_delivered)
      << pq.name << " batch=" << batch_size;
  EXPECT_EQ(got.stats.results_pos, want.stats.results_pos)
      << pq.name << " batch=" << batch_size;
  EXPECT_EQ(got.stats.results_neg, want.stats.results_neg)
      << pq.name << " batch=" << batch_size;
}

class BatchDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchDifferentialTest, PaperQueryMatchesPerTupleOracle) {
  const PaperQuery pq =
      std::move(PaperQueries()[static_cast<size_t>(GetParam())]);
  LblTraceConfig cfg;
  cfg.num_links = pq.links;
  cfg.duration = 300;
  cfg.num_sources = 40;
  const Trace trace = GenerateLblTrace(cfg);

  // Reference oracle for the final view (the per-tuple engine run is
  // already pinned to the oracle per-checkpoint by engine_test).
  PlanPtr oracle_plan = pq.make();
  AnnotatePatterns(oracle_plan.get());
  std::set<int> streams;
  CollectStreams(*oracle_plan, &streams);
  ReferenceEvaluator oracle(oracle_plan.get());
  for (const TraceEvent& e : trace.events) {
    if (streams.count(e.stream) > 0) oracle.Observe(e.stream, e.tuple);
  }

  for (int shards : {1, 2}) {
    const RunRecord base = RunAtBatchSize(pq, trace, shards, 1);
    ASSERT_FALSE(base.checkpoints.empty());
    ASSERT_GT(base.stats.ingested, 0u);  // The diff must cover real work.
    EXPECT_EQ(base.checkpoints.back(),
              Canonical(oracle.EvalAt(trace.LastTs() + 2 * kWindow),
                        pq.compare_cols))
        << pq.name << " shards=" << shards << ": per-tuple vs oracle";
    for (size_t batch : {size_t{7}, size_t{64}}) {
      const RunRecord got = RunAtBatchSize(pq, trace, shards, batch);
      ExpectSameRun(pq, batch, got, base);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, BatchDifferentialTest,
                         ::testing::Range(0, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return PaperQueries()[static_cast<size_t>(
                                                     info.param)]
                               .name;
                         });

// --- Random-plan sweep: the chaos corpus without faults. ---

constexpr Time kDrain = 40;

struct Scenario {
  PlanPtr plan;
  Trace trace;
  std::set<int> streams;
};

Scenario BuildScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.plan = RandomPlan(rng, static_cast<int>(1 + rng.NextBelow(2)));
  AnnotatePatterns(s.plan.get());
  s.trace = RandomTrace(rng, 120);
  const std::function<void(const PlanNode&)> collect = [&](const PlanNode& n) {
    if (n.kind == PlanOpKind::kStream) s.streams.insert(n.stream_id);
    for (const auto& c : n.children) collect(*c);
  };
  collect(*s.plan);
  return s;
}

std::vector<std::vector<Value>> RunScenario(uint64_t seed, size_t batch_size) {
  Scenario s = BuildScenario(seed);
  EngineOptions opts;
  opts.default_shards = 2;
  opts.queue_capacity = 64;
  opts.max_batch = 8;
  opts.batch_size = batch_size;
  opts.check_invariants = true;
  Engine engine(opts);
  const RegisterResult r = engine.RegisterPlan("q", std::move(s.plan));
  EXPECT_TRUE(r.ok) << r.error;
  engine.IngestTrace(s.trace);
  engine.AdvanceTo(s.trace.LastTs() + kDrain);
  std::vector<Tuple> view;
  EXPECT_TRUE(engine.Snapshot("q", &view));
  engine.Stop();
  return Canonical(view);
}

class BatchChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchChaosTest, RandomPlanAgreesAcrossBatchSizes) {
  const uint64_t seed = GetParam();
  const Scenario s = BuildScenario(seed);
  ASSERT_TRUE(IsValidPlan(*s.plan)) << s.plan->ToString();
  SCOPED_TRACE("seed=" + std::to_string(seed) + "\n" + s.plan->ToString());

  ReferenceEvaluator ref(s.plan.get());
  for (const TraceEvent& e : s.trace.events) {
    if (s.streams.count(e.stream) > 0) ref.Observe(e.stream, e.tuple);
  }
  const auto oracle = Canonical(ref.EvalAt(s.trace.LastTs() + kDrain));

  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
    const auto rows = RunScenario(seed, batch);
    EXPECT_EQ(rows, oracle)
        << "batch=" << batch << "\nengine:\n"
        << RowsToString(rows) << "oracle:\n"
        << RowsToString(oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchChaosTest,
                         ::testing::Range<uint64_t>(1, 101));

}  // namespace
}  // namespace upa
