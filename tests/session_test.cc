// SQL session layer tests (src/sql/session + the kSqlExec wire path):
//
//   1. Statement-dialect parser: every form round-trips, every error
//      carries an exact byte offset (goldens).
//   2. SqlSession against an in-process engine: DDL, registration with
//      rebased error offsets + caret context, introspection statements,
//      and the EXPLAIN golden (per-operator Section 5.2 patterns +
//      Section 5.4.1 cost estimates).
//   3. Over the wire: text-SQL registration/subscription is
//      differentially equal to the programmatic protocol path and to the
//      reference oracle on the paper's query suite.
//   4. Online DDL: a session registering/unregistering queries must not
//      stall another session's ingest or subscription watermarks
//      (the catalog is RW-locked, not stop-the-world).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "net/client.h"
#include "net/server.h"
#include "ref/reference.h"
#include "sql/catalog.h"
#include "sql/session/session.h"
#include "sql/session/statement.h"
#include "tests/test_util.h"
#include "workload/lbl_generator.h"

namespace upa {
namespace {

using net::Client;
using net::ServerOptions;
using net::SqlExecResult;
using net::SubscriptionMirror;
using sqlsession::ParseStatement;
using sqlsession::SqlResult;
using sqlsession::SqlSession;
using sqlsession::Statement;
using sqlsession::StatementKind;
using sqlsession::StatementParse;
using testing_util::Canonical;
using testing_util::RowsToString;

// --- 1. Statement parser ----------------------------------------------

TEST(StatementParseTest, CreateForms) {
  StatementParse r =
      ParseStatement("CREATE STREAM s (a INT, b DOUBLE, c STRING)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kCreateStream);
  EXPECT_EQ(r.stmt.name, "s");
  ASSERT_EQ(r.stmt.schema.num_fields(), 3);
  EXPECT_EQ(r.stmt.schema.field(0).name, "a");
  EXPECT_EQ(r.stmt.schema.field(0).type, ValueType::kInt);
  EXPECT_EQ(r.stmt.schema.field(1).type, ValueType::kDouble);
  EXPECT_EQ(r.stmt.schema.field(2).type, ValueType::kString);

  // Case-insensitive keywords, a trailing ';', RETROACTIVE.
  r = ParseStatement("create relation r (k int) retroactive;");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kCreateRelation);
  EXPECT_EQ(r.stmt.name, "r");
  EXPECT_TRUE(r.stmt.retroactive);

  r = ParseStatement("CREATE RELATION nrr (k INT)");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_FALSE(r.stmt.retroactive);
}

TEST(StatementParseTest, QueryAndSubscriptionForms) {
  // The embedded query is sliced verbatim; sql_offset anchors it inside
  // the statement so error offsets can be rebased for caret rendering.
  StatementParse r =
      ParseStatement("register query q7 as SELECT a FROM s;");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kRegisterQuery);
  EXPECT_EQ(r.stmt.name, "q7");
  EXPECT_EQ(r.stmt.sql, "SELECT a FROM s");
  EXPECT_EQ(r.stmt.sql_offset, 21u);

  r = ParseStatement("UNREGISTER QUERY q7");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kUnregisterQuery);
  EXPECT_EQ(r.stmt.name, "q7");

  r = ParseStatement("SUBSCRIBE q7");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kSubscribe);
  r = ParseStatement("UNSUBSCRIBE q7");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kUnsubscribe);

  EXPECT_EQ(ParseStatement("SHOW STREAMS").stmt.kind,
            StatementKind::kShowStreams);
  EXPECT_EQ(ParseStatement("SHOW QUERIES").stmt.kind,
            StatementKind::kShowQueries);
  EXPECT_EQ(ParseStatement("show metrics").stmt.kind,
            StatementKind::kShowMetrics);

  r = ParseStatement("EXPLAIN  SELECT * FROM s [RANGE 5]");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.stmt.kind, StatementKind::kExplain);
  EXPECT_EQ(r.stmt.sql, "SELECT * FROM s [RANGE 5]");
  EXPECT_EQ(r.stmt.sql_offset, 9u);
  EXPECT_EQ(ParseStatement("TOKENIZE SELECT 1").stmt.kind,
            StatementKind::kTokenize);
  EXPECT_EQ(ParseStatement("VALIDATE SELECT 1").stmt.kind,
            StatementKind::kValidate);
}

TEST(StatementParseTest, ErrorOffsetsAreExact) {
  const struct {
    const char* text;
    const char* error;
    size_t offset;
  } cases[] = {
      {"", "empty statement", 0},
      {"   ;", "empty statement", 0},
      {"CREATE TABLE t (a INT)", "expected STREAM or RELATION after CREATE",
       7},
      {"CREATE STREAM (a INT)", "expected a source name", 14},
      {"CREATE STREAM s a INT", "expected ( to start the column list", 16},
      {"CREATE STREAM s (a BLOB)",
       "expected a column type (INT, DOUBLE, or STRING)", 19},
      {"CREATE STREAM s (a INT, a INT)", "duplicate column 'a'", 26},
      {"CREATE STREAM s (a INT) EXTRA",
       "trailing input after CREATE statement", 24},
      {"CREATE RELATION r (a INT) RETRO",
       "expected RETROACTIVE or end of statement", 26},
      {"REGISTER q AS SELECT 1", "expected QUERY after REGISTER", 9},
      {"REGISTER QUERY q SELECT 1", "expected AS after the query name", 17},
      {"REGISTER QUERY q AS", "expected a query after AS", 19},
      {"UNREGISTER QUERY", "expected a query name", 16},
      {"SUBSCRIBE", "expected a query name after SUBSCRIBE", 9},
      {"SHOW TABLES", "expected STREAMS, QUERIES, or METRICS after SHOW", 5},
      {"FROB x", "unknown statement 'FROB'", 0},
      {"TOKENIZE", "expected a query after TOKENIZE", 8},
  };
  for (const auto& c : cases) {
    StatementParse r = ParseStatement(c.text);
    ASSERT_FALSE(r.ok()) << c.text;
    EXPECT_EQ(r.error, c.error) << c.text;
    EXPECT_EQ(r.error_offset, c.offset) << c.text;
  }
}

// --- 2. SqlSession against an in-process engine -----------------------

TEST(SqlSessionTest, DdlAndIntrospection) {
  Engine engine;
  SqlSession s(&engine);

  SqlResult r = s.Execute(
      "CREATE STREAM link0 (duration INT, protocol INT, payload INT, "
      "src_ip INT, dst_ip INT)");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.text, "created stream link0 (id 0)");

  r = s.Execute("CREATE RELATION meta (key INT) RETROACTIVE");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.text, "created retroactive relation meta (id 1)");

  // Duplicate names fail without clobbering the original.
  r = s.Execute("CREATE STREAM link0 (x INT)");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error, "source 'link0' is already declared");
  ASSERT_NE(engine.catalog()->Find("link0"), nullptr);
  EXPECT_EQ(engine.catalog()->Find("link0")->schema.num_fields(), 5);

  r = s.Execute("SHOW STREAMS");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("link0  stream  id=0"), std::string::npos) << r.text;
  EXPECT_NE(r.text.find("meta  retroactive relation  id=1"),
            std::string::npos)
      << r.text;

  r = s.Execute("VALIDATE SELECT COUNT(*) FROM link0 [RANGE 100]");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.text, "valid (root pattern WK)");

  r = s.Execute("TOKENIZE SELECT src_ip FROM link0");
  ASSERT_TRUE(r.ok) << r.error;
  // Token offsets are relative to the embedded query, DuckDB-style.
  EXPECT_NE(r.text.find("0  identifier  SELECT"), std::string::npos)
      << r.text;
}

TEST(SqlSessionTest, RegisterErrorsRebaseOffsetsOntoTheStatement) {
  Engine engine;
  SqlSession s(&engine);
  ASSERT_TRUE(s.Execute("CREATE STREAM s (a INT, b INT)").ok);

  const std::string stmt = "REGISTER QUERY q AS SELECT zap FROM s [RANGE 5]";
  SqlResult r = s.Execute(stmt);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown column 'zap'");
  // 'zap' sits at offset 7 of the embedded query, which starts at
  // offset 20 of the statement.
  EXPECT_EQ(r.error_offset, 27u);
  EXPECT_EQ(r.context,
            "REGISTER QUERY q AS SELECT zap FROM s [RANGE 5]\n"
            "                           ^~~~");
}

TEST(SqlSessionTest, RegistrationSubscriptionLifecycle) {
  Engine engine;
  SqlSession s(&engine);
  ASSERT_TRUE(s.Execute("CREATE STREAM s (a INT, b INT)").ok);

  SqlResult r =
      s.Execute("REGISTER QUERY q AS SELECT DISTINCT a FROM s [RANGE 10]");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("registered query q"), std::string::npos) << r.text;
  ASSERT_NE(engine.FindQuery("q"), nullptr);

  r = s.Execute("SHOW QUERIES");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("q  pattern=WK"), std::string::npos) << r.text;

  // SUBSCRIBE validates here but the transport owns the channel: the
  // session returns an action marker instead of attaching anything.
  r = s.Execute("SUBSCRIBE q");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.action, SqlResult::Action::kSubscribe);
  EXPECT_EQ(r.action_query, "q");

  r = s.Execute("SUBSCRIBE nope");
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error, "no query named 'nope' is registered");

  r = s.Execute("UNREGISTER QUERY q");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.action, SqlResult::Action::kUnregistered);
  EXPECT_EQ(engine.FindQuery("q"), nullptr);

  r = s.Execute("UNREGISTER QUERY q");
  ASSERT_FALSE(r.ok);
}

TEST(SqlSessionTest, ExplainGolden) {
  Engine engine;
  SqlSession s(&engine);
  ASSERT_TRUE(s.Execute(
                   "CREATE STREAM link0 (duration INT, protocol INT, "
                   "payload INT, src_ip INT, dst_ip INT)")
                  .ok);

  // Pin the full EXPLAIN rendering: operator tree with Section 5.2
  // update patterns and cost-model estimates per node, then the
  // Section 5.4.1 per-mode totals with the winner marked.
  SqlResult r = s.Execute(
      "EXPLAIN SELECT protocol, SUM(payload) FROM link0 [RANGE 100] "
      "GROUP BY protocol");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.text,
            "plan:\n"
            "  group-by   <WK>  rate=2 size=100\n"
            "    window [100]   <WKS>  rate=1 size=100\n"
            "      stream S0   <MONO>  rate=1 size=1e+12\n"
            "cost (per unit time, Section 5.4.1):\n"
            "  NT     = 21.3\n"
            "  DIRECT = 118\n"
            "  UPA    = 19.3   (chosen)\n"
            "premature deletion frequency: 0\n");

  // A retroactive-relation join: the NT strategy cannot run NRR-free
  // plans with relation leaves under negative tuples when the plan
  // carries an NRR join, and EXPLAIN must say so instead of pricing it.
  ASSERT_TRUE(s.Execute("CREATE RELATION nrr (key INT)").ok);
  r = s.Execute(
      "EXPLAIN SELECT link0.src_ip FROM link0 [RANGE 10], nrr "
      "WHERE link0.src_ip = nrr.key");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_NE(r.text.find("NT     = n/a (NRR join)"), std::string::npos)
      << r.text;
  EXPECT_NE(r.text.find("(chosen)"), std::string::npos) << r.text;
}

// --- 3. Over the wire: differential against programmatic + oracle -----

/// In-process engine + SQL-enabled server + one connected client.
struct SqlWire {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<net::Server> server;
  Client client;

  explicit SqlWire(EngineOptions eopts = {}) {
    engine = std::make_unique<Engine>(eopts);
    ServerOptions sopts;
    sopts.port = 0;
    sopts.enable_sql = true;
    server = std::make_unique<net::Server>(engine.get(), sopts);
    std::string err;
    if (!server->Start(&err)) ADD_FAILURE() << "server start: " << err;
    if (!client.Connect("127.0.0.1", server->port(), &err)) {
      ADD_FAILURE() << "connect: " << err;
    }
  }

  ~SqlWire() {
    client.Close();
    server->Stop();
    engine->Stop();
  }

  /// Executes one statement that is expected to succeed.
  SqlExecResult MustSql(const std::string& stmt) {
    SqlExecResult r;
    std::string err;
    EXPECT_TRUE(client.SqlExec(stmt, &r, &err)) << stmt << ": " << err;
    EXPECT_TRUE(r.ok) << stmt << ": " << r.error << "\n" << r.context;
    return r;
  }
};

const char* kCreateLink0 =
    "CREATE STREAM link0 (duration INT, protocol INT, payload INT, "
    "src_ip INT, dst_ip INT)";
const char* kCreateLink1 =
    "CREATE STREAM link1 (duration INT, protocol INT, payload INT, "
    "src_ip INT, dst_ip INT)";

struct SqlDiffCase {
  const char* name;
  const char* sql;
  bool relation = false;
};

/// The paper's query shapes (Q1-Q5 plus the STR relation join), all
/// registered through the text-SQL session path.
const std::vector<SqlDiffCase>& SqlDiffCases() {
  static const std::vector<SqlDiffCase> cases = {
      {"q1_join",
       "SELECT link0.src_ip FROM link0 [RANGE 60], link1 [RANGE 60] "
       "WHERE link0.src_ip = link1.src_ip AND link0.protocol = 2 AND "
       "link1.protocol = 2"},
      {"q2_distinct", "SELECT DISTINCT src_ip FROM link0 [RANGE 60]"},
      {"q3_group",
       "SELECT protocol, SUM(payload) FROM link1 [RANGE 60] "
       "GROUP BY protocol"},
      {"q4_window",
       "SELECT src_ip FROM link0 [RANGE 60] WHERE protocol = 2"},
      {"q5_mono", "SELECT src_ip FROM link0 WHERE protocol = 2"},
      {"q6_str",
       "SELECT link0.src_ip FROM link0 [RANGE 60], meta "
       "WHERE link0.src_ip = meta.key",
       /*relation=*/true},
  };
  return cases;
}

class SqlWireDifferentialTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SqlWireDifferentialTest, SqlPathMatchesProgrammaticAndOracle) {
  const SqlDiffCase& c = SqlDiffCases()[GetParam()];
  EngineOptions eopts;
  eopts.default_shards = 2;
  eopts.check_invariants = true;
  SqlWire w(eopts);
  std::string err;

  // DDL through the text path.
  w.MustSql(kCreateLink0);
  w.MustSql(kCreateLink1);
  int64_t meta_remote = -1;
  if (c.relation) {
    w.MustSql("CREATE RELATION meta (key INT) RETROACTIVE");
    const SourceDecl* meta = w.engine->catalog()->Find("meta");
    ASSERT_NE(meta, nullptr);
    meta_remote = meta->stream_id;
  }
  const SourceDecl* l0 = w.engine->catalog()->Find("link0");
  const SourceDecl* l1 = w.engine->catalog()->Find("link1");
  ASSERT_NE(l0, nullptr);
  ASSERT_NE(l1, nullptr);
  const int64_t remote_id[2] = {l0->stream_id, l1->stream_id};

  // Register + subscribe through the text path...
  w.MustSql(std::string("REGISTER QUERY ") + c.name + " AS " + c.sql);
  SqlExecResult sub = w.MustSql(std::string("SUBSCRIBE ") + c.name);
  ASSERT_NE(sub.mirror, nullptr);
  EXPECT_EQ(sub.mirror->query(), c.name);

  // ...and the same plan programmatically, as the control arm.
  const std::string prog = std::string(c.name) + "_prog";
  ASSERT_TRUE(w.client.RegisterQuery(prog, c.sql, 0, nullptr, &err)) << err;
  SubscriptionMirror* prog_sub = w.client.Subscribe(prog, &err);
  ASSERT_NE(prog_sub, nullptr) << err;
  EXPECT_EQ(sub.mirror->pattern(), prog_sub->pattern());

  // Identical local catalog for the from-scratch oracle (Definition 1).
  SourceCatalog catalog;
  const int local_id[2] = {catalog.DeclareStream("link0", LblSchema()),
                           catalog.DeclareStream("link1", LblSchema())};
  int meta_local = -1;
  if (c.relation) {
    meta_local = catalog.DeclareRelation(
        "meta", Schema({Field{"key", ValueType::kInt}}), true);
  }
  const ParseResult p = catalog.Compile(c.sql);
  ASSERT_TRUE(p.ok()) << p.error;
  std::set<int> streams;
  const std::function<void(const PlanNode&)> collect =
      [&streams, &collect](const PlanNode& n) {
        if (n.kind == PlanOpKind::kStream || n.kind == PlanOpKind::kRelation) {
          streams.insert(n.stream_id);
        }
        for (const auto& ch : n.children) collect(*ch);
      };
  collect(*p.plan);
  ReferenceEvaluator ref(p.plan.get());

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 240;
  cfg.num_sources = 40;
  const Trace trace = GenerateLblTrace(cfg);

  // Replay in whole-timestamp groups with deterministic relation churn,
  // comparing all four views at every barrier.
  std::vector<std::pair<uint32_t, Tuple>> batch;
  std::vector<int64_t> meta_keys;
  const Time barrier_every = 60;
  Time next_barrier = barrier_every;
  size_t i = 0;
  const size_t n = trace.events.size();
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    if (meta_remote >= 0) {
      if (ts % 3 == 0) {
        Tuple u;
        u.ts = ts;
        u.exp = kNeverExpires;
        u.fields = {Value{static_cast<int64_t>(ts % 40)}};
        meta_keys.push_back(ts % 40);
        batch.emplace_back(static_cast<uint32_t>(meta_remote), u);
        if (streams.count(meta_local) > 0) ref.Observe(meta_local, u);
      }
      if (ts % 7 == 0 && !meta_keys.empty()) {
        Tuple u;
        u.ts = ts;
        u.exp = kNeverExpires;
        u.negative = true;
        u.fields = {Value{meta_keys.front()}};
        meta_keys.erase(meta_keys.begin());
        batch.emplace_back(static_cast<uint32_t>(meta_remote), u);
        if (streams.count(meta_local) > 0) ref.Observe(meta_local, u);
      }
    }
    while (i < n && trace.events[i].tuple.ts == ts) {
      const TraceEvent& e = trace.events[i];
      batch.emplace_back(static_cast<uint32_t>(remote_id[e.stream]), e.tuple);
      if (streams.count(local_id[e.stream]) > 0) {
        ref.Observe(local_id[e.stream], e.tuple);
      }
      ++i;
    }
    if (batch.size() >= 256 || ts >= next_barrier || i == n) {
      ASSERT_TRUE(w.client.IngestBatch(batch, &err)) << err;
      batch.clear();
    }
    if (ts >= next_barrier || i == n) {
      while (next_barrier <= ts) next_barrier += barrier_every;
      ASSERT_TRUE(w.client.Flush(&err)) << err;
      std::vector<Tuple> snap;
      Time at = 0;
      ASSERT_TRUE(w.client.Snapshot(c.name, &snap, &at, &err)) << err;
      const auto sql_rows = Canonical(sub.mirror->Rows());
      const auto prog_rows = Canonical(prog_sub->Rows());
      const auto snap_rows = Canonical(snap);
      const auto want = Canonical(ref.EvalAt(at));
      ASSERT_EQ(sql_rows, prog_rows)
          << c.name << " at t=" << at << "\nsql-session:\n"
          << RowsToString(sql_rows) << "programmatic:\n"
          << RowsToString(prog_rows);
      ASSERT_EQ(sql_rows, snap_rows) << c.name << " at t=" << at;
      ASSERT_EQ(snap_rows, want)
          << c.name << " at t=" << at << "\nengine:\n"
          << RowsToString(snap_rows) << "oracle:\n"
          << RowsToString(want);
    }
  }
  EXPECT_GT(sub.mirror->deltas_applied(), 0u) << c.name;

  // Text-path teardown: UNSUBSCRIBE drops the channel (the server's
  // kSubDropped push marks the mirror), UNREGISTER sweeps the query.
  w.MustSql(std::string("UNSUBSCRIBE ") + c.name);
  ASSERT_TRUE(w.client.PollEvents(200, &err)) << err;
  EXPECT_TRUE(sub.mirror->dropped());
  w.MustSql(std::string("UNREGISTER QUERY ") + c.name);
  EXPECT_EQ(w.engine->FindQuery(c.name), nullptr);
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, SqlWireDifferentialTest,
                         ::testing::Range<size_t>(0, SqlDiffCases().size()),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return SqlDiffCases()[info.param].name;
                         });

TEST(SqlWireTest, SqlIsRejectedUnlessEnabled) {
  EngineOptions eopts;
  auto engine = std::make_unique<Engine>(eopts);
  ServerOptions sopts;
  sopts.port = 0;  // enable_sql stays false.
  net::Server server(engine.get(), sopts);
  std::string err;
  ASSERT_TRUE(server.Start(&err)) << err;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &err)) << err;
  SqlExecResult r;
  EXPECT_FALSE(client.SqlExec("SHOW STREAMS", &r, &err));
  EXPECT_NE(err.find("disabled"), std::string::npos) << err;
  client.Close();
  server.Stop();
  engine->Stop();
}

TEST(SqlWireTest, StatementErrorsCarryCaretContextOverTheWire) {
  SqlWire w;
  std::string err;
  SqlExecResult r;
  ASSERT_TRUE(w.client.SqlExec("SELEC bogus", &r, &err)) << err;
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown statement 'SELEC'");
  EXPECT_EQ(r.error_offset, 0);
  EXPECT_EQ(r.context,
            "SELEC bogus\n"
            "^~~~");
  // The session survives a bad statement.
  w.MustSql("SHOW STREAMS");
}

TEST(SqlWireTest, UnregisterFromAnotherSessionDropsSubscribers) {
  SqlWire w;
  std::string err;
  w.MustSql("CREATE STREAM s (a INT, b INT)");
  w.MustSql("REGISTER QUERY q AS SELECT DISTINCT a FROM s [RANGE 10]");
  SqlExecResult sub = w.MustSql("SUBSCRIBE q");
  ASSERT_NE(sub.mirror, nullptr);

  // A second session unregisters the query; the first session's mirror
  // must be swept (kSubDropped), not wedged.
  Client other;
  ASSERT_TRUE(other.Connect("127.0.0.1", w.server->port(), &err)) << err;
  SqlExecResult r;
  ASSERT_TRUE(other.SqlExec("UNREGISTER QUERY q", &r, &err)) << err;
  EXPECT_TRUE(r.ok) << r.error;
  other.Close();

  ASSERT_TRUE(w.client.PollEvents(500, &err)) << err;
  EXPECT_TRUE(sub.mirror->dropped());
}

// --- 4. Online DDL: registration must not stall ingest ----------------

TEST(SqlWireTest, ConcurrentDdlDoesNotStallWatermarks) {
  EngineOptions eopts;
  eopts.default_shards = 2;
  SqlWire w(eopts);
  std::string err;

  w.MustSql(kCreateLink0);
  w.MustSql(kCreateLink1);
  w.MustSql(
      "REGISTER QUERY keep AS SELECT protocol, SUM(payload) "
      "FROM link1 [RANGE 60] GROUP BY protocol");
  SqlExecResult sub = w.MustSql("SUBSCRIBE keep");
  ASSERT_NE(sub.mirror, nullptr);
  const SourceDecl* l0 = w.engine->catalog()->Find("link0");
  const SourceDecl* l1 = w.engine->catalog()->Find("link1");
  const int64_t remote_id[2] = {l0->stream_id, l1->stream_id};

  // Session B churns registrations while session A streams: DDL takes
  // the catalog/registry writer side, so if it stopped the world, A's
  // barriers below would stall behind it.
  std::atomic<bool> stop{false};
  std::atomic<int> churned{0};
  std::thread ddl([&]() {
    Client b;
    std::string berr;
    ASSERT_TRUE(b.Connect("127.0.0.1", w.server->port(), &berr)) << berr;
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string name = "churn_" + std::to_string(i++);
      SqlExecResult r;
      ASSERT_TRUE(b.SqlExec("REGISTER QUERY " + name +
                                " AS SELECT src_ip FROM link0 [RANGE 30]",
                            &r, &berr))
          << berr;
      EXPECT_TRUE(r.ok) << r.error;
      ASSERT_TRUE(b.SqlExec("UNREGISTER QUERY " + name, &r, &berr)) << berr;
      EXPECT_TRUE(r.ok) << r.error;
      churned.fetch_add(1, std::memory_order_relaxed);
    }
    b.Close();
  });

  LblTraceConfig cfg;
  cfg.num_links = 2;
  cfg.duration = 600;
  cfg.num_sources = 40;
  const Trace trace = GenerateLblTrace(cfg);

  Time last_watermark = -1;
  int barriers = 0;
  std::vector<std::pair<uint32_t, Tuple>> batch;
  size_t i = 0;
  const size_t n = trace.events.size();
  Time next_barrier = 50;
  while (i < n) {
    const Time ts = trace.events[i].tuple.ts;
    while (i < n && trace.events[i].tuple.ts == ts) {
      const TraceEvent& e = trace.events[i];
      batch.emplace_back(static_cast<uint32_t>(remote_id[e.stream]), e.tuple);
      ++i;
    }
    if (batch.size() >= 256 || ts >= next_barrier || i == n) {
      ASSERT_TRUE(w.client.IngestBatch(batch, &err)) << err;
      batch.clear();
    }
    if (ts >= next_barrier || i == n) {
      while (next_barrier <= ts) next_barrier += 50;
      ASSERT_TRUE(w.client.Flush(&err)) << err;
      // The watermark must advance at every single barrier: a stalled
      // shard (blocked behind DDL) would freeze it.
      EXPECT_GT(sub.mirror->watermark(), last_watermark)
          << "watermark stalled at barrier " << barriers;
      last_watermark = sub.mirror->watermark();
      ++barriers;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  ddl.join();

  EXPECT_GE(barriers, 12);
  EXPECT_GT(churned.load(), 0) << "the DDL session never got a turn";

  // Final sanity: the surviving subscription still equals the engine
  // view after all that churn.
  std::vector<Tuple> snap;
  ASSERT_TRUE(w.client.Snapshot("keep", &snap, nullptr, &err)) << err;
  EXPECT_EQ(Canonical(sub.mirror->Rows()), Canonical(snap));
}

}  // namespace
}  // namespace upa
