#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/pipeline.h"
#include "exec/view.h"
#include "ops/distinct.h"
#include "ops/groupby.h"
#include "ops/intersect.h"
#include "ops/join.h"
#include "ops/negation.h"
#include "ops/predicate.h"
#include "ops/relation_join.h"
#include "ops/stateless.h"
#include "ops/window.h"
#include "state/list_buffer.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::IntSchema;
using testing_util::T;

std::unique_ptr<StateBuffer> List() { return std::make_unique<ListBuffer>(); }

std::vector<Tuple> Drain(Operator& op, int port, const Tuple& t) {
  std::vector<Tuple> out;
  VectorEmitter e(&out);
  op.Process(port, t, e);
  return out;
}

std::vector<Tuple> Advance(Operator& op, Time now) {
  std::vector<Tuple> out;
  VectorEmitter e(&out);
  op.AdvanceTime(now, e);
  return out;
}

// --- Predicates / selection / projection / union. ---

TEST(PredicateTest, AllComparators) {
  const Tuple t = T({5});
  EXPECT_TRUE((Predicate{0, CmpOp::kEq, Value{int64_t{5}}}).Eval(t));
  EXPECT_TRUE((Predicate{0, CmpOp::kNe, Value{int64_t{4}}}).Eval(t));
  EXPECT_TRUE((Predicate{0, CmpOp::kLt, Value{int64_t{6}}}).Eval(t));
  EXPECT_TRUE((Predicate{0, CmpOp::kLe, Value{int64_t{5}}}).Eval(t));
  EXPECT_TRUE((Predicate{0, CmpOp::kGt, Value{int64_t{4}}}).Eval(t));
  EXPECT_TRUE((Predicate{0, CmpOp::kGe, Value{int64_t{5}}}).Eval(t));
  EXPECT_FALSE((Predicate{0, CmpOp::kLt, Value{int64_t{5}}}).Eval(t));
}

TEST(SelectOpTest, FiltersPositivesAndNegatives) {
  SelectOp op(IntSchema(2), {Predicate{0, CmpOp::kEq, Value{int64_t{1}}}});
  EXPECT_EQ(Drain(op, 0, T({1, 7})).size(), 1u);
  EXPECT_EQ(Drain(op, 0, T({2, 7})).size(), 0u);
  Tuple neg = T({1, 7});
  neg.negative = true;
  auto out = Drain(op, 0, neg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
}

TEST(ProjectOpTest, ReordersColumns) {
  ProjectOp op(IntSchema(3), {2, 0});
  auto out = Drain(op, 0, T({10, 20, 30}, 5, 9));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0].fields[0]), 30);
  EXPECT_EQ(AsInt(out[0].fields[1]), 10);
  EXPECT_EQ(out[0].ts, 5);
  EXPECT_EQ(out[0].exp, 9);
}

TEST(UnionOpTest, ForwardsBothPorts) {
  UnionOp op(IntSchema(1));
  EXPECT_EQ(Drain(op, 0, T({1})).size(), 1u);
  EXPECT_EQ(Drain(op, 1, T({2})).size(), 1u);
}

// --- Windows. ---

TEST(TimeWindowOpTest, StampsExpiration) {
  TimeWindowOp op(IntSchema(1), 100, /*materialize=*/false);
  auto out = Drain(op, 0, T({1}, 42));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].exp, 142);
  EXPECT_EQ(Advance(op, 200).size(), 0u);  // Direct: no negatives.
}

TEST(TimeWindowOpTest, MaterializedEmitsNegatives) {
  TimeWindowOp op(IntSchema(1), 10, /*materialize=*/true);
  Drain(op, 0, T({1}, 1));
  Drain(op, 0, T({2}, 5));
  auto out = Advance(op, 11);  // Tuple 1 expires at 11.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
  EXPECT_EQ(AsInt(out[0].fields[0]), 1);
  EXPECT_EQ(out[0].exp, 11);
  EXPECT_EQ(op.StateTuples(), 1u);
}

TEST(CountWindowOpTest, EvictsOldestWithNegative) {
  CountWindowOp op(IntSchema(1), 2);
  EXPECT_EQ(Drain(op, 0, T({1}, 1)).size(), 1u);
  EXPECT_EQ(Drain(op, 0, T({2}, 2)).size(), 1u);
  auto out = Drain(op, 0, T({3}, 3));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].negative);
  EXPECT_EQ(AsInt(out[0].fields[0]), 1);
  EXPECT_FALSE(out[1].negative);
}

// --- Join. ---

TEST(JoinOpTest, ProbesOtherSide) {
  JoinOp op(IntSchema(2), IntSchema(2), 0, 0, List(), List(), true);
  EXPECT_EQ(Drain(op, 0, T({1, 10}, 1, 50)).size(), 0u);
  auto out = Drain(op, 1, T({1, 20}, 2, 60));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].fields.size(), 4u);
  EXPECT_EQ(AsInt(out[0].fields[1]), 10);
  EXPECT_EQ(AsInt(out[0].fields[3]), 20);
  EXPECT_EQ(out[0].exp, 50);  // min of the constituents.
  EXPECT_EQ(out[0].ts, 2);    // Generation time.
}

TEST(JoinOpTest, ExpiredTuplesDoNotJoin) {
  JoinOp op(IntSchema(1), IntSchema(1), 0, 0, List(), List(), true);
  Drain(op, 0, T({1}, 1, 10));
  Advance(op, 10);
  EXPECT_EQ(Drain(op, 1, T({1}, 10, 30)).size(), 0u);
}

TEST(JoinOpTest, NegativeInputUndoesResults) {
  JoinOp op(IntSchema(1), IntSchema(1), 0, 0, List(), List(), false);
  Drain(op, 0, T({1}, 1, 50));
  Drain(op, 1, T({1}, 2, 60));
  Drain(op, 1, T({1}, 3, 70));
  Tuple neg = T({1}, 1, 50);
  neg.negative = true;
  auto out = Drain(op, 0, neg);
  ASSERT_EQ(out.size(), 2u);  // One negative per prior result.
  EXPECT_TRUE(out[0].negative && out[1].negative);
  EXPECT_EQ(out[0].exp, 50);  // Matches the original result's exp.
  // The tuple is gone: a new right arrival finds nothing on the left.
  EXPECT_EQ(Drain(op, 1, T({1}, 4, 80)).size(), 0u);
}

TEST(JoinOpTest, LazyBuffersSkipExpiredDuringProbe) {
  auto l = List();
  auto r = List();
  l->SetLazy(100);
  r->SetLazy(100);
  JoinOp op(IntSchema(1), IntSchema(1), 0, 0, std::move(l), std::move(r),
            true);
  Drain(op, 0, T({1}, 1, 10));
  Advance(op, 20);  // Logically expired, physically retained.
  EXPECT_EQ(Drain(op, 1, T({1}, 20, 40)).size(), 0u);
}

// --- Intersection. ---

TEST(IntersectOpTest, PairSemantics) {
  IntersectOp op(IntSchema(1), List(), List(), true);
  Drain(op, 0, T({1}, 1, 50));
  Drain(op, 0, T({1}, 2, 60));
  auto out = Drain(op, 1, T({1}, 3, 70));
  EXPECT_EQ(out.size(), 2u);  // Matches both left copies.
  EXPECT_EQ(Drain(op, 1, T({2}, 4, 70)).size(), 0u);
}

// --- Duplicate elimination. ---

TEST(DistinctOpTest, EmitsFirstOccurrenceOnly) {
  DistinctOp op(IntSchema(2), {0}, List(), List(), true);
  EXPECT_EQ(Drain(op, 0, T({1, 10}, 1, 100)).size(), 1u);
  EXPECT_EQ(Drain(op, 0, T({1, 20}, 2, 101)).size(), 0u);
  EXPECT_EQ(Drain(op, 0, T({2, 30}, 3, 102)).size(), 1u);
}

TEST(DistinctOpTest, PromotesReplacementOnExpiry) {
  DistinctOp op(IntSchema(2), {0}, List(), List(), true);
  Drain(op, 0, T({7, 1}, 1, 10));
  Drain(op, 0, T({7, 2}, 5, 15));  // Duplicate, survives longer.
  auto out = Advance(op, 10);      // First tuple expires.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].negative);
  EXPECT_EQ(AsInt(out[0].fields[1]), 2);
  EXPECT_EQ(out[0].exp, 15);
  // After the replacement also expires, nothing is re-emitted.
  EXPECT_EQ(Advance(op, 15).size(), 0u);
}

TEST(DistinctOpTest, NegativeModeEmitsDeletionAndReplacement) {
  DistinctOp op(IntSchema(2), {0}, List(), List(), false);
  Drain(op, 0, T({7, 1}, 1, 10));
  Drain(op, 0, T({7, 2}, 5, 15));
  Tuple neg = T({7, 1}, 1, 10);
  neg.negative = true;
  auto out = Drain(op, 0, neg);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].negative);   // Old representative deleted...
  EXPECT_FALSE(out[1].negative);  // ...replacement appended.
  EXPECT_EQ(AsInt(out[1].fields[1]), 2);
}

TEST(DeltaDistinctOpTest, Figure2Behaviour) {
  // Reproduces the paper's Figure 2: when the x-result expires, a newer
  // x-tuple replaces it on the output stream.
  DeltaDistinctOp op(IntSchema(2), {0}, List());
  EXPECT_EQ(Drain(op, 0, T({7, 1}, 1, 10)).size(), 1u);   // x enters.
  EXPECT_EQ(Drain(op, 0, T({8, 5}, 2, 11)).size(), 1u);   // y enters.
  EXPECT_EQ(Drain(op, 0, T({7, 2}, 5, 15)).size(), 0u);   // x dup -> aux.
  auto out = Advance(op, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0].fields[0]), 7);
  EXPECT_EQ(AsInt(out[0].fields[1]), 2);
}

TEST(DeltaDistinctOpTest, AuxKeepsLatestExpiring) {
  DeltaDistinctOp op(IntSchema(2), {0}, List());
  Drain(op, 0, T({7, 1}, 1, 10));
  Drain(op, 0, T({7, 2}, 2, 30));  // Later exp -> kept.
  Drain(op, 0, T({7, 3}, 3, 20));  // Earlier exp -> ignored.
  auto out = Advance(op, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0].fields[1]), 2);
}

TEST(DeltaDistinctOpTest, ExpiredAuxNotPromoted) {
  DeltaDistinctOp op(IntSchema(2), {0}, List());
  Drain(op, 0, T({7, 1}, 1, 20));
  Drain(op, 0, T({7, 2}, 2, 10));  // Earlier exp than the output tuple.
  EXPECT_EQ(Advance(op, 20).size(), 0u);
}

TEST(DeltaDistinctOpTest, StateIsBoundedByOutput) {
  DeltaDistinctOp op(IntSchema(1), {0}, List());
  for (int i = 0; i < 100; ++i) {
    Drain(op, 0, T({i % 5}, i, i + 1000));
  }
  // 5 distinct keys: at most 5 output + 5 aux tuples.
  EXPECT_LE(op.StateTuples(), 10u);
}

TEST(DeltaDistinctDeathTest, RejectsNegatives) {
  DeltaDistinctOp op(IntSchema(1), {0}, List());
  Tuple neg = T({1});
  neg.negative = true;
  std::vector<Tuple> out;
  VectorEmitter e(&out);
  EXPECT_DEATH(op.Process(0, neg, e), "UPA_CHECK");
}

// --- Group-by. ---

TEST(GroupByOpTest, IncrementalSumWithExpiration) {
  GroupByOp op(IntSchema(2), 0, AggKind::kSum, 1, List(), true);
  auto out = Drain(op, 0, T({1, 10}, 1, 5));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 10.0);
  out = Drain(op, 0, T({1, 7}, 2, 8));
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 17.0);
  out = Advance(op, 5);  // First tuple expires.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 7.0);
  EXPECT_EQ(AsInt(out[0].fields[2]), 1);
  out = Advance(op, 8);  // Group empties.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0].fields[2]), 0);
}

TEST(GroupByOpTest, MinMaxSupportDeletion) {
  GroupByOp op(IntSchema(2), 0, AggKind::kMax, 1, List(), true);
  Drain(op, 0, T({1, 50}, 1, 5));
  auto out = Drain(op, 0, T({1, 20}, 2, 9));
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 50.0);
  out = Advance(op, 5);  // The max leaves the window.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 20.0);
}

TEST(GroupByOpTest, SingleGroupAggregation) {
  GroupByOp op(IntSchema(1), -1, AggKind::kCount, -1, List(), true);
  Drain(op, 0, T({5}, 1, 10));
  auto out = Drain(op, 0, T({6}, 2, 11));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 2.0);
}

TEST(GroupByOpTest, NegativeTupleDecrements) {
  GroupByOp op(IntSchema(2), 0, AggKind::kAvg, 1, List(), false);
  Drain(op, 0, T({1, 10}, 1, 50));
  Drain(op, 0, T({1, 20}, 2, 60));
  Tuple neg = T({1, 10}, 1, 50);
  neg.negative = true;
  auto out = Drain(op, 0, neg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(AsDouble(out[0].fields[1]), 20.0);
}

// --- Negation. ---

TEST(NegationOpTest, Equation1Counts) {
  NegationOp op(IntSchema(1), 0, 0, List(), List(), true, false);
  // Two left tuples with value 1 -> both in the answer.
  EXPECT_EQ(Drain(op, 0, T({1}, 1, 100)).size(), 1u);
  EXPECT_EQ(Drain(op, 0, T({1}, 2, 101)).size(), 1u);
  // Right arrival with value 1 -> one result evicted via negative tuple.
  auto out = Drain(op, 1, T({1}, 3, 102));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
  EXPECT_EQ(out[0].exp, 100);  // The oldest left tuple leaves first.
  EXPECT_EQ(op.premature_negatives(), 1u);
}

TEST(NegationOpTest, RightExpiryReadmits) {
  NegationOp op(IntSchema(1), 0, 0, List(), List(), true, false);
  Drain(op, 0, T({1}, 1, 100));
  Drain(op, 1, T({1}, 2, 10));  // Evicts the answer tuple.
  auto out = Advance(op, 10);   // Right tuple expires -> readmit.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].negative);
  EXPECT_EQ(out[0].exp, 100);
}

TEST(NegationOpTest, LeftExpirySilentUnderDirect) {
  NegationOp op(IntSchema(1), 0, 0, List(), List(), true, false);
  Drain(op, 0, T({1}, 1, 10));
  EXPECT_EQ(Advance(op, 10).size(), 0u);  // exp timestamps handle it.
}

TEST(NegationOpTest, LeftExpiryEmitsNegativeUnderNt) {
  NegationOp op(IntSchema(1), 0, 0, List(), List(), true, true);
  Drain(op, 0, T({1}, 1, 10));
  auto out = Advance(op, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
  EXPECT_EQ(op.premature_negatives(), 0u);  // Natural, not premature.
}

TEST(NegationOpTest, DifferentAttributePositions) {
  // Left value in column 1, right value in column 0.
  NegationOp op(IntSchema(2), 1, 0, List(), List(), true, false);
  EXPECT_EQ(Drain(op, 0, T({9, 5}, 1, 100)).size(), 1u);
  auto out = Drain(op, 1, T({5}, 2, 100));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
}

TEST(NegationOpTest, NonAnswerExpiryCanShrinkAnswer) {
  // The Section 2.1 case analysis composes: an expiration of a left tuple
  // that is NOT in the answer can still force an answer member out, when
  // the multiplicity drop makes the answer over-full.
  NegationOp op(IntSchema(2), 0, 0, List(), List(), true, false);
  Drain(op, 0, T({1, 100}, 1, 50));   // a enters the answer.
  Drain(op, 1, T({1, 0}, 2, 200));    // v2=1 evicts a (negative tuple).
  auto out = Drain(op, 0, T({1, 101}, 3, 10));  // b: v1=2 > v2=1.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].negative);
  // The readmitted tuple is the latest-expiring live candidate: a (exp 50
  // beats b's exp 10); the paper's tie-breaking here is a free choice.
  EXPECT_EQ(AsInt(out[0].fields[1]), 100);
  // b (not in the answer) expires -> v1=1, v2=1 -> target 0, so a must
  // leave the answer prematurely even though a itself is still live.
  out = Advance(op, 10);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
  EXPECT_EQ(AsInt(out[0].fields[1]), 100);
  // Right expires at 200, but by then a (exp 50) is gone: no readmission.
  EXPECT_EQ(Advance(op, 200).size(), 0u);
}

// --- Relation joins. ---

TEST(NrrJoinOpTest, NonRetroactiveUpdates) {
  NrrJoinOp op(IntSchema(2), IntSchema(2), 0, 0, List());
  // Insert a table row (port 1): silent.
  EXPECT_EQ(Drain(op, 1, T({1, 111})).size(), 0u);
  // Stream arrival joins against current table.
  auto out = Drain(op, 0, T({1, 5}, 10, 60));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(AsInt(out[0].fields[3]), 111);
  EXPECT_EQ(out[0].exp, 60);  // Stream-side expiration only.
  // Delete the row: silent, affects only future arrivals.
  Tuple del = T({1, 111});
  del.negative = true;
  EXPECT_EQ(Drain(op, 1, del).size(), 0u);
  EXPECT_EQ(Drain(op, 0, T({1, 6}, 11, 61)).size(), 0u);
}

// --- Operators composed into a pipeline satisfy their Section 5.2
// --- update-pattern contract (checker aborts on violation).

TEST(OpPipelineInvariantTest, WindowedDistinctSignalsDeletionsExactlyAtExp) {
  // window -> distinct is WK (Section 5.2's Figure 2 example): replacement
  // promotions may carry *earlier* expirations than results already
  // emitted, so the output is not FIFO -- but every deletion must still be
  // signalled exactly in the tick that crosses the tuple's exp. The armed
  // kPredictable checker aborts the test otherwise.
  Pipeline p;
  const int w = p.AddOperator(
      std::make_unique<TimeWindowOp>(IntSchema(2), 15, /*materialize=*/true),
      {});
  p.AddOperator(
      std::make_unique<DistinctOp>(IntSchema(2), std::vector<int>{0}, List(),
                                   List(), /*time_expiration=*/false),
      {w});
  p.BindStream(0, w, 0);
  p.SetView(std::make_unique<BufferView>(List(), /*time_expiration=*/false));
  p.EnableInvariantChecks(PatternInvariant::kPredictable);
  Rng rng(5);
  for (Time ts = 1; ts <= 60; ++ts) {
    p.Tick(ts);
    p.Ingest(0, T({static_cast<int64_t>(rng.NextBelow(4)),
                   static_cast<int64_t>(ts)},
                  ts));
  }
  p.Tick(100);  // Drain: every remaining result is deleted on time.
  EXPECT_GT(p.stats().results_neg, 0u);
  EXPECT_EQ(p.view().Size(), 0u);
}

TEST(RelJoinOpTest, RetroactiveInsertAndDelete) {
  RelJoinOp op(IntSchema(2), IntSchema(2), 0, 0, List(), List(), true);
  Drain(op, 0, T({1, 5}, 10, 60));  // No matches yet.
  // Retroactive insert probes the stored window.
  auto out = Drain(op, 1, T({1, 111}, 20));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].negative);
  EXPECT_EQ(AsInt(out[0].fields[1]), 5);
  // Retroactive delete undoes prior results with negatives.
  Tuple del = T({1, 111}, 30);
  del.negative = true;
  out = Drain(op, 1, del);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].negative);
}

}  // namespace
}  // namespace upa
