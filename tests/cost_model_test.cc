#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/logical_plan.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::IntSchema;

Catalog TwoLinkCatalog(double rate = 1.0, double distinct_src = 100) {
  Catalog cat;
  for (int s = 0; s < 3; ++s) {
    StreamStats stats;
    stats.rate = rate;
    stats.columns[0].distinct = distinct_src;  // src-like key column.
    stats.columns[1].distinct = 5;             // protocol-like column.
    stats.columns[1].value_freq[Value{int64_t{1}}] = 0.03;  // "ftp"
    stats.columns[1].value_freq[Value{int64_t{2}}] = 0.30;  // "telnet"
    cat.streams[s] = stats;
  }
  return cat;
}

PlanPtr Win(int stream, Time size) {
  return MakeWindow(MakeStream(stream, IntSchema(2)), size);
}

TEST(EstimateTest, WindowSizeIsRateTimesSpan) {
  Catalog cat = TwoLinkCatalog(2.0);
  PlanPtr p = Win(0, 500);
  AnnotatePatterns(p.get());
  const NodeEstimate e = EstimateNode(*p, cat);
  EXPECT_DOUBLE_EQ(e.rate, 2.0);
  EXPECT_DOUBLE_EQ(e.size, 1000.0);
}

TEST(EstimateTest, SelectUsesValueFrequencies) {
  Catalog cat = TwoLinkCatalog();
  PlanPtr ftp = MakeSelect(Win(0, 1000),
                           {Predicate{1, CmpOp::kEq, Value{int64_t{1}}}});
  PlanPtr telnet = MakeSelect(Win(0, 1000),
                              {Predicate{1, CmpOp::kEq, Value{int64_t{2}}}});
  AnnotatePatterns(ftp.get());
  AnnotatePatterns(telnet.get());
  const NodeEstimate ef = EstimateNode(*ftp, cat);
  const NodeEstimate et = EstimateNode(*telnet, cat);
  EXPECT_NEAR(ef.rate, 0.03, 1e-9);
  EXPECT_NEAR(et.rate, 0.30, 1e-9);
  EXPECT_NEAR(et.size / ef.size, 10.0, 1e-6);  // telnet ~10x ftp.
}

TEST(EstimateTest, JoinCardinality) {
  Catalog cat = TwoLinkCatalog(1.0, 100);
  PlanPtr p = MakeJoin(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(p.get());
  const NodeEstimate e = EstimateNode(*p, cat);
  // |W1 join W2| = N1*N2/d = 100*100/100.
  EXPECT_DOUBLE_EQ(e.size, 100.0);
  EXPECT_DOUBLE_EQ(e.rate, 2.0);  // (1*100 + 1*100)/100.
}

TEST(EstimateTest, DistinctCapsAtKeyDomain) {
  Catalog cat = TwoLinkCatalog(1.0, 50);
  PlanPtr p = MakeDistinct(Win(0, 1000), {0});
  AnnotatePatterns(p.get());
  const NodeEstimate e = EstimateNode(*p, cat);
  EXPECT_DOUBLE_EQ(e.size, 50.0);
}

TEST(EstimateTest, NegationPrematureRateDependsOnOverlap) {
  Catalog overlap_full = TwoLinkCatalog(1.0, 100);
  Catalog overlap_none = TwoLinkCatalog(1.0, 100);
  overlap_none.value_overlap[{{0, 0}, {1, 0}}] = 0.0;
  PlanPtr p = MakeNegate(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(p.get());
  const NodeEstimate full = EstimateNode(*p, overlap_full);
  const NodeEstimate none = EstimateNode(*p, overlap_none);
  EXPECT_GT(full.premature_rate, 0.0);
  EXPECT_DOUBLE_EQ(none.premature_rate, 0.0);
  EXPECT_GT(EstimatePrematureFrequency(*p, overlap_full),
            EstimatePrematureFrequency(*p, overlap_none));
  // With disjoint domains nothing is ever covered: full-size output.
  EXPECT_GT(none.size, full.size);
}

TEST(CostTest, DirectDegradesWithWindowSize) {
  Catalog cat = TwoLinkCatalog();
  PlanPtr small = MakeJoin(Win(0, 100), Win(1, 100), 0, 0);
  PlanPtr large = MakeJoin(Win(0, 10000), Win(1, 10000), 0, 0);
  AnnotatePatterns(small.get());
  AnnotatePatterns(large.get());
  const double cs = EstimatePlanCost(*small, cat, ExecMode::kDirect, {}).total;
  const double cl = EstimatePlanCost(*large, cat, ExecMode::kDirect, {}).total;
  // DIRECT's sequential scans scale with state size.
  EXPECT_GT(cl / cs, 20.0);
}

TEST(CostTest, UpaBeatsDirectAndNtOnJoinQuery) {
  // Moderate join fan-out (the Query 1 regime): the result view is about
  // the size of the inputs.
  Catalog cat = TwoLinkCatalog(1.0, 5000);
  PlanPtr p = MakeJoin(Win(0, 5000), Win(1, 5000), 0, 0);
  AnnotatePatterns(p.get());
  const double upa = EstimatePlanCost(*p, cat, ExecMode::kUpa, {}).total;
  const double direct = EstimatePlanCost(*p, cat, ExecMode::kDirect, {}).total;
  const double nt =
      EstimatePlanCost(*p, cat, ExecMode::kNegativeTuple, {}).total;
  EXPECT_LT(upa, direct);
  EXPECT_LT(upa, nt);
}

TEST(CostTest, MorePartitionsCheaperMaintenance) {
  Catalog cat = TwoLinkCatalog();
  PlanPtr p = MakeJoin(Win(0, 5000), Win(1, 5000), 0, 0);
  AnnotatePatterns(p.get());
  PlannerOptions p1;
  p1.num_partitions = 1;
  PlannerOptions p100;
  p100.num_partitions = 100;
  EXPECT_GT(EstimatePlanCost(*p, cat, ExecMode::kUpa, p1).total,
            EstimatePlanCost(*p, cat, ExecMode::kUpa, p100).total);
}

TEST(CostTest, GroupByCostIndependentOfNegatives) {
  // Rule 4's flip side: group-by absorbs expirations at 2*lambda*C in
  // either strategy; the cost model reflects the 2x factor.
  Catalog cat = TwoLinkCatalog();
  PlanPtr p = MakeGroupBy(Win(0, 1000), 0, AggKind::kSum, 1);
  AnnotatePatterns(p.get());
  const double upa = EstimatePlanCost(*p, cat, ExecMode::kUpa, {}).total;
  EXPECT_GT(upa, 0.0);
}

TEST(CostTest, HeavyThresholdDiscountsSkewedJoinProbes) {
  // Zipf-like src column: two heavy hitters carry 60% of the probes.
  Catalog cat = TwoLinkCatalog(1.0, 100);
  for (int s = 0; s < 2; ++s) {
    cat.streams[s].columns[0].value_freq[Value{int64_t{1}}] = 0.40;
    cat.streams[s].columns[0].value_freq[Value{int64_t{2}}] = 0.20;
  }
  PlanPtr p = MakeJoin(Win(0, 1000), Win(1, 1000), 0, 0);
  AnnotatePatterns(p.get());

  PlannerOptions off;  // Default: heavy_threshold resolves to disabled.
  PlannerOptions zero;
  zero.heavy_threshold = 0;
  PlannerOptions on;
  on.heavy_threshold = 8;

  for (ExecMode mode :
       {ExecMode::kUpa, ExecMode::kDirect, ExecMode::kNegativeTuple}) {
    const double c_off = EstimatePlanCost(*p, cat, mode, off).total;
    const double c_zero = EstimatePlanCost(*p, cat, mode, zero).total;
    const double c_on = EstimatePlanCost(*p, cat, mode, on).total;
    // <= 0 is the oracle path and must price identically to the default
    // regardless of UPA_HEAVY_THRESHOLD in the environment (EXPLAIN
    // transcripts are golden-filed under the CI env variant).
    EXPECT_DOUBLE_EQ(c_off, c_zero) << ExecModeName(mode);
    // Materialized heavy keys shrink the effective probed state: with
    // 60% of probes hitting per-key copies the probe term drops.
    EXPECT_LT(c_on, c_off) << ExecModeName(mode);
  }
}

TEST(CostTest, HeavyThresholdIsNeutralWithoutSkew) {
  // Uniform key column whose per-key mass stays below the promotion
  // rule: the factor must be exactly 1 (no phantom discount at zipf 0).
  Catalog cat = TwoLinkCatalog(1.0, 1000);
  PlanPtr p = MakeJoin(Win(0, 100), Win(1, 100), 0, 0);
  AnnotatePatterns(p.get());
  PlannerOptions on;
  on.heavy_threshold = 8;
  EXPECT_DOUBLE_EQ(EstimatePlanCost(*p, cat, ExecMode::kUpa, on).total,
                   EstimatePlanCost(*p, cat, ExecMode::kUpa, {}).total);
}

TEST(CostTest, HeavyThresholdDiscountsDistinctReplacement) {
  // Single-key classic distinct under DIRECT: replacement scans of the
  // stored input shrink when the key is skewed.
  Catalog cat = TwoLinkCatalog(1.0, 50);
  cat.streams[0].columns[0].value_freq[Value{int64_t{1}}] = 0.50;
  PlanPtr p = MakeDistinct(Win(0, 1000), {0});
  AnnotatePatterns(p.get());
  PlannerOptions on;
  on.heavy_threshold = 8;
  EXPECT_LT(EstimatePlanCost(*p, cat, ExecMode::kDirect, on).total,
            EstimatePlanCost(*p, cat, ExecMode::kDirect, {}).total);
}

TEST(CostTest, PrematureFrequencyFeedsStrategyChoice) {
  // A fast W2 relative to the value domain: most answer deletions are
  // caused by W2 arrivals (Section 5.4.3's "majority of deletions occur
  // via negative tuples" regime).
  Catalog cat = TwoLinkCatalog(1.0, 1000);
  cat.streams[1].rate = 5.0;
  PlanPtr p = MakeNegate(Win(0, 1000), Win(1, 1000), 0, 0);
  AnnotatePatterns(p.get());
  const double freq = EstimatePrematureFrequency(*p, cat);
  EXPECT_GT(freq, 0.5);

  Catalog disjoint = TwoLinkCatalog(1.0, 1000);
  disjoint.value_overlap[{{0, 0}, {1, 0}}] = 0.0;
  EXPECT_DOUBLE_EQ(EstimatePrematureFrequency(*p, disjoint), 0.0);
}

}  // namespace
}  // namespace upa
