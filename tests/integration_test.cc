// End-to-end semantic tests: every plan shape is executed under every
// execution strategy (NT / DIRECT / UPA, plus UPA's hybrid negative-tuple
// strategy) and its materialized view is compared, at frequent
// checkpoints, against the from-scratch reference evaluator implementing
// Definitions 1 and 2. This is the repository's core correctness
// property: all three strategies must compute identical answers.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/logical_plan.h"
#include "core/physical_planner.h"
#include "tests/test_util.h"

namespace upa {
namespace {

using testing_util::CheckAgainstReference;
using testing_util::IntSchema;

/// A mode under test: execution strategy plus planner options.
struct ModeCase {
  std::string name;
  ExecMode mode;
  PlannerOptions options;
};

std::vector<ModeCase> AllModes() {
  PlannerOptions few_partitions;
  few_partitions.num_partitions = 1;
  PlannerOptions hybrid;
  hybrid.str_strategy = StrStrategy::kNegativeTuples;
  PlannerOptions indexed;
  indexed.index_probed_state = true;
  indexed.index_buckets = 4;
  return {
      {"NT", ExecMode::kNegativeTuple, {}},
      {"DIRECT", ExecMode::kDirect, {}},
      {"UPA", ExecMode::kUpa, {}},
      {"UPA_P1", ExecMode::kUpa, few_partitions},
      {"UPA_HYBRID", ExecMode::kUpa, hybrid},
      {"UPA_INDEXED", ExecMode::kUpa, indexed},
  };
}

class ModeTest : public ::testing::TestWithParam<ModeCase> {
 protected:
  ExecMode mode() const { return GetParam().mode; }
  const PlannerOptions& options() const { return GetParam().options; }
  bool nt() const { return mode() == ExecMode::kNegativeTuple; }
};

/// Random multi-stream trace: one tuple per stream per time unit, integer
/// fields (key in column 0 drawn from [0, key_range), payload in column 1).
Trace RandomTrace(int num_streams, Time duration, int64_t key_range,
                  uint64_t seed, int width = 2) {
  Rng rng(seed);
  Trace trace;
  trace.schema = IntSchema(width);
  trace.num_streams = num_streams;
  for (Time ts = 1; ts <= duration; ++ts) {
    for (int s = 0; s < num_streams; ++s) {
      TraceEvent e;
      e.stream = s;
      e.tuple.ts = ts;
      e.tuple.fields.emplace_back(rng.NextInRange(0, key_range - 1));
      for (int c = 1; c < width; ++c) {
        e.tuple.fields.emplace_back(rng.NextInRange(0, 999));
      }
      trace.events.push_back(std::move(e));
    }
  }
  return trace;
}

TEST_P(ModeTest, SelectProjectOverWindow) {
  PlanPtr plan = MakeProject(
      MakeSelect(MakeWindow(MakeStream(0, IntSchema(2)), 30),
                 {Predicate{0, CmpOp::kLt, Value{int64_t{5}}}}),
      {1, 0});
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(1, 300, 10, 101);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 20, {},
                                  /*drain=*/60),
            0);
}

TEST_P(ModeTest, UnionOfWindows) {
  PlanPtr plan = MakeUnion(MakeWindow(MakeStream(0, IntSchema(2)), 25),
                           MakeWindow(MakeStream(1, IntSchema(2)), 40));
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 200, 8, 102);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 20, {},
                                  /*drain=*/80),
            0);
}

TEST_P(ModeTest, SelfUnionTwoWindowSizes) {
  // One base stream referenced twice with different window sizes: both
  // ingress bindings receive each arrival (and, per the Rule 2
  // refinement, the union is weak non-monotonic).
  PlanPtr plan = MakeUnion(MakeWindow(MakeStream(0, IntSchema(2)), 15),
                           MakeWindow(MakeStream(0, IntSchema(2)), 35));
  AnnotatePatterns(plan.get());
  EXPECT_EQ(plan->pattern, UpdatePattern::kWeak);
  const Trace trace = RandomTrace(1, 200, 6, 131);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 20, {},
                                  /*drain=*/50),
            0);
}

TEST_P(ModeTest, SelfJoinSameStream) {
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 20),
                          MakeWindow(MakeStream(0, IntSchema(2)), 20), 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(1, 200, 4, 132);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 20, {},
                                  /*drain=*/50),
            0);
}

TEST_P(ModeTest, JoinWindowsOfDifferentSizes) {
  PlanPtr plan = MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 20),
                          MakeWindow(MakeStream(1, IntSchema(2)), 45), 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 250, 6, 103);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {},
                                  /*drain=*/90),
            0);
}

TEST_P(ModeTest, Query1JoinOfSelections) {
  // The paper's Query 1 shape: selections over two windows, then a join.
  auto side = [](int stream) {
    return MakeSelect(MakeWindow(MakeStream(stream, IntSchema(3)), 30),
                      {Predicate{2, CmpOp::kLt, Value{int64_t{300}}}});
  };
  PlanPtr plan = MakeJoin(side(0), side(1), 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 250, 5, 104, /*width=*/3);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {},
                                  /*drain=*/60),
            0);
}

TEST_P(ModeTest, DistinctSingleKey) {
  // The paper's Query 2 shape: distinct source addresses on one link.
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 35), {0}), {0});
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(1, 300, 7, 105);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {},
                                  /*drain=*/70),
            0);
}

TEST_P(ModeTest, DistinctPairKey) {
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeWindow(MakeStream(0, IntSchema(3)), 30), {0, 1}),
      {0, 1});
  AnnotatePatterns(plan.get());
  Trace trace = RandomTrace(1, 250, 4, 106, /*width=*/3);
  // Shrink payload range so pairs repeat.
  for (TraceEvent& e : trace.events) {
    e.tuple.fields[1] = Value{AsInt(e.tuple.fields[1]) % 3};
  }
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {},
                                  /*drain=*/60),
            0);
}

TEST_P(ModeTest, DistinctOverJoin) {
  // Weak non-monotonic input to duplicate elimination: exercises the
  // delta operator's latest-expiring auxiliary state under UPA.
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 25),
                           MakeWindow(MakeStream(1, IntSchema(2)), 40), 0, 0),
                  {0}),
      {0});
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 220, 5, 107);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {},
                                  /*drain=*/80),
            0);
}

class GroupByModeTest
    : public ::testing::TestWithParam<std::tuple<ModeCase, AggKind>> {};

TEST_P(GroupByModeTest, AgainstReference) {
  const ModeCase& mc = std::get<0>(GetParam());
  const AggKind agg = std::get<1>(GetParam());
  PlanPtr plan = MakeGroupBy(MakeWindow(MakeStream(0, IntSchema(2)), 30), 0,
                             agg, 1);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(1, 300, 6, 108);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mc.mode, mc.options, 20, {},
                                  /*drain=*/60),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    Aggregates, GroupByModeTest,
    ::testing::Combine(::testing::ValuesIn(AllModes()),
                       ::testing::Values(AggKind::kCount, AggKind::kSum,
                                         AggKind::kAvg, AggKind::kMin,
                                         AggKind::kMax)),
    [](const ::testing::TestParamInfo<std::tuple<ModeCase, AggKind>>& info)
        -> std::string {
      return std::get<0>(info.param).name + "_" +
             AggName(std::get<1>(info.param));
    });

TEST_P(ModeTest, GroupByOverJoin) {
  PlanPtr plan = MakeGroupBy(
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 20),
               MakeWindow(MakeStream(1, IntSchema(2)), 30), 0, 0),
      0, AggKind::kCount, -1);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 200, 5, 109);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {},
                                  /*drain=*/60),
            0);
}

TEST_P(ModeTest, NegationQuery3) {
  // The paper's Query 3: negation of two links on the source address.
  // Inputs are projected to the negation attribute so that multiset
  // comparison is exact (which duplicate the engine keeps is free).
  PlanPtr plan =
      MakeNegate(MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 30), {0}),
                 MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 30), {0}),
                 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 300, 6, 110);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {},
                                  /*drain=*/70),
            0);
}

TEST_P(ModeTest, NegationDisjointDomains) {
  // Disjoint negation domains: no premature expirations at all
  // (Section 5.3.2's boundary case).
  PlanPtr plan =
      MakeNegate(MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 25), {0}),
                 MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 25), {0}),
                 0, 0);
  AnnotatePatterns(plan.get());
  Trace trace = RandomTrace(2, 200, 5, 111);
  for (TraceEvent& e : trace.events) {
    if (e.stream == 1) {
      e.tuple.fields[0] = Value{AsInt(e.tuple.fields[0]) + 1000};
    }
  }
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {},
                                  /*drain=*/50),
            0);
}

TEST_P(ModeTest, NegationDifferentSchemas) {
  // Left attribute in column 1 of a 3-wide schema, right in column 0 of a
  // 1-wide schema; compared projected onto the negation attribute.
  PlanPtr plan = MakeNegate(
      MakeWindow(MakeStream(0, IntSchema(3)), 30),
      MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 20), {0}), 1, 0);
  AnnotatePatterns(plan.get());
  Trace trace = RandomTrace(2, 220, 5, 112, /*width=*/3);
  // Make column 1 of stream 0 the key-like attribute.
  for (TraceEvent& e : trace.events) {
    if (e.stream == 0) {
      e.tuple.fields[1] = Value{AsInt(e.tuple.fields[1]) % 5};
    }
  }
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {1},
                                  /*drain=*/60),
            0);
}

TEST_P(ModeTest, Query5PullUpRewriting) {
  // Figure 6 left: negation above the join.
  PlanPtr plan = MakeNegate(
      MakeJoin(MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 25), {0}),
               MakeSelect(MakeWindow(MakeStream(2, IntSchema(2)), 25),
                          {Predicate{1, CmpOp::kLt, Value{int64_t{500}}}}),
               0, 0),
      MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 25), {0}), 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(3, 220, 6, 113);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {0},
                                  /*drain=*/50),
            0);
}

TEST_P(ModeTest, Query5PushDownRewriting) {
  // Figure 6 right: negation below the join (join consumes STR input).
  PlanPtr plan = MakeJoin(
      MakeNegate(MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 25), {0}),
                 MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 25), {0}),
                 0, 0),
      MakeSelect(MakeWindow(MakeStream(2, IntSchema(2)), 25),
                 {Predicate{1, CmpOp::kLt, Value{int64_t{500}}}}),
      0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(3, 220, 6, 114);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {0},
                                  /*drain=*/50),
            0);
}

TEST_P(ModeTest, IntersectionPairSemantics) {
  PlanPtr plan = MakeIntersect(
      MakeProject(MakeWindow(MakeStream(0, IntSchema(2)), 20), {0}),
      MakeProject(MakeWindow(MakeStream(1, IntSchema(2)), 30), {0}));
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 200, 4, 115);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {},
                                  /*drain=*/60),
            0);
}

// --- Relations (Section 4.1). The relation's update stream is id 9. ---

Trace WithRelationUpdates(Trace trace, int rel_stream, int64_t key_range,
                          uint64_t seed) {
  // Interleave relation inserts/deletes: roughly one update per 4 time
  // units; deletes always target a currently live row.
  Rng rng(seed);
  std::vector<Tuple> live;
  Trace out;
  out.schema = trace.schema;
  out.num_streams = trace.num_streams + 1;
  Time last_ts = 0;
  for (TraceEvent& e : trace.events) {
    if (e.tuple.ts != last_ts) {
      last_ts = e.tuple.ts;
      if (rng.NextBool(0.25)) {
        TraceEvent u;
        u.stream = rel_stream;
        u.tuple.ts = last_ts;
        if (!live.empty() && rng.NextBool(0.4)) {
          const size_t idx = rng.NextBelow(live.size());
          u.tuple = live[idx].AsNegative();
          u.tuple.ts = last_ts;
          live.erase(live.begin() + static_cast<long>(idx));
        } else {
          u.tuple.fields = {Value{rng.NextInRange(0, key_range - 1)},
                            Value{rng.NextInRange(100, 199)}};
          live.push_back(u.tuple);
        }
        out.events.push_back(std::move(u));
      }
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

TEST_P(ModeTest, NrrJoin) {
  if (nt()) GTEST_SKIP() << "NRR joins cannot run under NT (Section 5.4.2)";
  PlanPtr plan =
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 30),
               MakeRelation(9, IntSchema(2), /*retroactive=*/false), 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace =
      WithRelationUpdates(RandomTrace(1, 250, 5, 116), 9, 5, 117);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {},
                                  /*drain=*/60),
            0);
}

TEST_P(ModeTest, RetroactiveRelationJoin) {
  PlanPtr plan =
      MakeJoin(MakeWindow(MakeStream(0, IntSchema(2)), 30),
               MakeRelation(9, IntSchema(2), /*retroactive=*/true), 0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace =
      WithRelationUpdates(RandomTrace(1, 250, 5, 118), 9, 5, 119);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {},
                                  /*drain=*/60),
            0);
}

// --- Count-based windows (Section 7 extension). ---

TEST_P(ModeTest, JoinOverCountWindows) {
  PlanPtr plan = MakeJoin(MakeCountWindow(MakeStream(0, IntSchema(2)), 15),
                          MakeCountWindow(MakeStream(1, IntSchema(2)), 25),
                          0, 0);
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(2, 200, 5, 120);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 15, {}),
            0);
}

TEST_P(ModeTest, DistinctOverCountWindow) {
  PlanPtr plan = MakeDistinct(
      MakeProject(MakeCountWindow(MakeStream(0, IntSchema(2)), 20), {0}),
      {0});
  AnnotatePatterns(plan.get());
  const Trace trace = RandomTrace(1, 200, 6, 121);
  EXPECT_GT(CheckAgainstReference(*plan, trace, mode(), options(), 10, {}),
            0);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ModeTest, ::testing::ValuesIn(AllModes()),
    [](const ::testing::TestParamInfo<ModeCase>& info) -> std::string {
      return info.param.name;
    });

}  // namespace
}  // namespace upa
