#!/usr/bin/env python3
"""Replaces the RESULTS_* placeholders in EXPERIMENTS.md with formatted
tables extracted from bench_output.txt. Idempotent only on a fresh
template; intended to be run once per regeneration:

    scripts/format_results.py is used as a library here.
"""
import re
import sys

sys.path.insert(0, "scripts")
import format_results  # noqa: E402

FAMS = {
    "RESULTS_E1": ["BM_Q1_Ftp", "BM_Q1_Telnet"],
    "RESULTS_E2": ["BM_Q2_DistinctSources", "BM_Q2_DistinctPairs"],
    "RESULTS_E3": ["BM_Q3_ModeSweep", "BM_Q3_StrStrategy"],
    "RESULTS_E4": ["BM_Q4"],
    "RESULTS_E5": ["BM_Q5"],
    "RESULTS_E6": ["BM_Partitions"],
    "RESULTS_E7": ["BM_DupelimMemory"],
    "RESULTS_E8": ["BM_LazyInterval"],
    "RESULTS_E9": ["BM_IndexedState"],
}


def tables(path):
    """Returns {family: formatted table string} from the raw bench file."""
    import io
    from contextlib import redirect_stdout

    buf = io.StringIO()
    with redirect_stdout(buf):
        format_results.main(path)
    out = {}
    current = None
    for line in buf.getvalue().splitlines():
        if line.startswith("### "):
            current = line[4:]
            out[current] = []
        elif current is not None:
            out[current].append(line)
    return {k: "\n".join(v).rstrip() for k, v in out.items()}


def main():
    bench = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    t = tables(bench)
    with open("EXPERIMENTS.md") as f:
        text = f.read()
    for placeholder, fams in FAMS.items():
        blocks = []
        for fam in fams:
            if fam in t:
                blocks.append("```\n" + fam + "\n" + t[fam] + "\n```")
            else:
                blocks.append("```\n" + fam + ": (not present in " + bench +
                              ")\n```")
        text = text.replace(placeholder, "\n\n".join(blocks))
    # Cost-model validation is plain text, not benchmark rows.
    cost = []
    keep = False
    with open(bench, errors="replace") as f:
        for line in f:
            if line.startswith("=== bench_cost_model"):
                keep = True
                continue
            if keep and line.startswith("==="):
                break
            if keep and (line.startswith("==") or "est. cost" in line or
                         "argmin" in line):
                cost.append(line.rstrip())
    text = text.replace("RESULTS_COST", "```\n" + "\n".join(cost) + "\n```")
    with open("EXPERIMENTS.md", "w") as f:
        f.write(text)
    print("EXPERIMENTS.md filled.")


if __name__ == "__main__":
    main()
