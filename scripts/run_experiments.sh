#!/usr/bin/env bash
# Regenerates every experiment of EXPERIMENTS.md through the JSON bench
# harness: each benchmark binary writes bench/results/BENCH_<name>.json
# (schema upa.bench.v1, per-run counters plus the Section 6.1 phase
# breakdown), then bench_report.py validates the files and rewrites the
# marked tables in EXPERIMENTS.md from them.
#
# Environment knobs (see bench/bench_json.h):
#   UPA_BENCH_PROFILE=0          disable the sampling profiler
#   UPA_BENCH_SAMPLE_INTERVAL=N  profiler sampling stride (default 251)
#   UPA_TRACE_OUT=trace.json     also capture a Chrome trace
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . && cmake --build build -j "$(nproc)"

OUT=bench/results
mkdir -p "$OUT"
for b in build/bench/bench_*; do
  [[ -f "$b" && -x "$b" ]] || continue
  echo "=== $(basename "$b") ==="
  UPA_BENCH_JSON_DIR="$OUT" "$b"
done

python3 scripts/bench_report.py validate "$OUT"/BENCH_*.json
python3 scripts/bench_report.py render --json-dir "$OUT"
