#!/usr/bin/env bash
# Regenerates every experiment of EXPERIMENTS.md (one benchmark binary per
# paper table/figure) and captures the raw rows into bench_output.txt.
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja && cmake --build build || exit 1
: > bench_output.txt
for b in build/bench/bench_*; do
  echo "=== $(basename "$b") ===" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done
