#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite. This is the
# exact sequence CI runs; keep it green before merging.
#
# Usage:
#   scripts/ci.sh                 # release-with-asserts build + ctest
#   UPA_TSAN=1 scripts/ci.sh     # same, under ThreadSanitizer (catches
#                                 # engine races; slower)
#
# The build directory is build/ (or build-tsan/ under UPA_TSAN=1) so a
# sanitizer run does not clobber the regular build cache.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ "${UPA_TSAN:-0}" == "1" ]]; then
  BUILD_DIR=build-tsan
  CMAKE_ARGS+=(-DUPA_TSAN=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
