#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then a smoke
# benchmark whose JSON output is schema-validated and diffed against the
# committed baseline. This is the exact sequence CI runs; keep it green
# before merging.
#
# Usage:
#   scripts/ci.sh                 # release-with-asserts build + ctest
#   UPA_TSAN=1 scripts/ci.sh     # same, under ThreadSanitizer (catches
#                                 # engine races; slower; skips the
#                                 # smoke bench -- its timings would be
#                                 # meaningless under the sanitizer)
#   UPA_ASAN=1 scripts/ci.sh     # same, under AddressSanitizer + UBSan
#                                 # (catches the memory bugs the chaos
#                                 # and fuzz suites are built to shake
#                                 # out; also skips the smoke bench)
#
# The build directory is build/ (build-tsan/ under UPA_TSAN=1, build-asan/
# under UPA_ASAN=1) so a sanitizer run does not clobber the regular build
# cache.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZED=0
CMAKE_ARGS=()
if [[ "${UPA_TSAN:-0}" == "1" && "${UPA_ASAN:-0}" == "1" ]]; then
  echo "ci.sh: UPA_TSAN and UPA_ASAN are mutually exclusive" >&2
  exit 1
fi
if [[ "${UPA_TSAN:-0}" == "1" ]]; then
  BUILD_DIR=build-tsan
  SANITIZED=1
  CMAKE_ARGS+=(-DUPA_TSAN=ON)
fi
if [[ "${UPA_ASAN:-0}" == "1" ]]; then
  BUILD_DIR=build-asan
  SANITIZED=1
  CMAKE_ARGS+=(-DUPA_ASAN=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Recovery suite: the kill-restart differential and the WAL/checkpoint
# corruption tests get a dedicated serial pass under the ASan config --
# they hammer the filesystem (truncations, bit-flips, torn writes), and
# running them alone under ASan+UBSan is the gate that recovery never
# reads freed or uninitialized state while degrading to a valid prefix.
if [[ "${UPA_ASAN:-0}" == "1" ]]; then
  echo "ci.sh: ASan build -- re-running the recovery suite serially"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'KillRecoverTest|CorruptionTest' -j 1
fi

# Smoke bench: one small Query 1 run through the JSON harness. Validates
# the upa.bench.v1 schema and fails on a >2x regression of ms_per_1k
# against the committed baseline (bench/baselines/BENCH_q1_smoke.json).
# The 2x threshold is deliberately loose: it tolerates machine-to-machine
# variance while still catching an accidental O(n) -> O(n^2).
if [[ "$SANITIZED" == "1" ]]; then
  echo "ci.sh: sanitizer build -- skipping the smoke bench (timings unusable)"
  exit 0
fi

SMOKE_DIR="$BUILD_DIR/bench_smoke"
rm -rf "$SMOKE_DIR" && mkdir -p "$SMOKE_DIR"
UPA_BENCH_JSON_DIR="$SMOKE_DIR" \
  "$BUILD_DIR/bench/bench_q1_join" --benchmark_filter='BM_Q1_Ftp/5000/'
python3 scripts/bench_report.py validate "$SMOKE_DIR/BENCH_q1_join.json"
python3 scripts/bench_report.py diff \
  bench/baselines/BENCH_q1_smoke.json "$SMOKE_DIR/BENCH_q1_join.json" \
  --threshold 2.0
