#!/usr/bin/env bash
# Tier-1 gate: configure, build, run the full test suite, then a smoke
# benchmark whose JSON output is schema-validated and diffed against the
# committed baseline. This is the exact sequence CI runs; keep it green
# before merging.
#
# Usage:
#   scripts/ci.sh                 # release-with-asserts build + ctest
#   UPA_TSAN=1 scripts/ci.sh     # same, under ThreadSanitizer (catches
#                                 # engine races; slower; skips the
#                                 # smoke bench -- its timings would be
#                                 # meaningless under the sanitizer)
#   UPA_ASAN=1 scripts/ci.sh     # same, under AddressSanitizer + UBSan
#                                 # (catches the memory bugs the chaos
#                                 # and fuzz suites are built to shake
#                                 # out; also skips the smoke bench)
#
# The build directory is build/ (build-tsan/ under UPA_TSAN=1, build-asan/
# under UPA_ASAN=1) so a sanitizer run does not clobber the regular build
# cache.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
SANITIZED=0
CMAKE_ARGS=()
if [[ "${UPA_TSAN:-0}" == "1" && "${UPA_ASAN:-0}" == "1" ]]; then
  echo "ci.sh: UPA_TSAN and UPA_ASAN are mutually exclusive" >&2
  exit 1
fi
if [[ "${UPA_TSAN:-0}" == "1" ]]; then
  BUILD_DIR=build-tsan
  SANITIZED=1
  CMAKE_ARGS+=(-DUPA_TSAN=ON)
fi
if [[ "${UPA_ASAN:-0}" == "1" ]]; then
  BUILD_DIR=build-asan
  SANITIZED=1
  CMAKE_ARGS+=(-DUPA_ASAN=ON)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Batched-ingest variant: the same suite with UPA_BATCH=64, which flips
# every engine constructed with the default batch_size=0 onto the
# batched execution path (DESIGN.md Section 15); tests that depend on
# per-tuple queue granularity pin batch_size=1 explicitly. Alongside the
# fixed-seed differential suite (batch_test), this catches divergence
# between the two execution strategies anywhere in the tier-1 surface.
echo "ci.sh: tier-1 under UPA_BATCH=64"
UPA_BATCH=64 ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# Heavy-light variant: the same suite with UPA_HEAVY_THRESHOLD=8, which
# wraps every scan-probed per-key buffer in the heavy-light decorator
# (DESIGN.md Section 16) for engines built with the default
# heavy_threshold=-1; tests that pin the oracle path set the knob to 0
# explicitly. Alongside the Zipf differential battery (skew_test), this
# catches any result divergence introduced by promotion/demotion across
# the whole tier-1 surface.
echo "ci.sh: tier-1 under UPA_HEAVY_THRESHOLD=8"
UPA_HEAVY_THRESHOLD=8 ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -j "$(nproc)"

# Recovery suite: the kill-restart differential and the WAL/checkpoint
# corruption tests get a dedicated serial pass under the ASan config --
# they hammer the filesystem (truncations, bit-flips, torn writes), and
# running them alone under ASan+UBSan is the gate that recovery never
# reads freed or uninitialized state while degrading to a valid prefix.
if [[ "${UPA_ASAN:-0}" == "1" ]]; then
  echo "ci.sh: ASan build -- re-running the recovery suite serially"
  ctest --test-dir "$BUILD_DIR" --output-on-failure \
    -R 'KillRecoverTest|CorruptionTest' -j 1
fi

# Loopback smoke: a real engine_server process on an ephemeral port, a
# real engine_client driving the LBL workload over TCP with --check (the
# client exits nonzero if any barrier's subscriber mirror, Snapshot RPC,
# or reference-oracle state disagree, or if a monotonic/WKS subscription
# ever carries a negative tuple). Also pins the strict flag parsing:
# unknown flags must be rejected with a nonzero exit.
echo "ci.sh: loopback smoke"
if "$BUILD_DIR/examples/engine_server" --bogus-flag >/dev/null 2>&1; then
  echo "ci.sh: engine_server accepted an unknown flag" >&2
  exit 1
fi
if "$BUILD_DIR/examples/engine_client" --port >/dev/null 2>&1; then
  echo "ci.sh: engine_client accepted a malformed flag" >&2
  exit 1
fi
SMOKE_LOG="$BUILD_DIR/net_smoke_server.log"
"$BUILD_DIR/examples/engine_server" --port 0 --serve-seconds 120 \
  >"$SMOKE_LOG" 2>&1 &
SERVER_PID=$!
trap 'kill -TERM "$SERVER_PID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$SMOKE_LOG" | head -n1)
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "ci.sh: engine_server never reported its port" >&2
  cat "$SMOKE_LOG" >&2
  exit 1
fi
"$BUILD_DIR/examples/engine_client" --port "$PORT" --duration 2000 --check
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
trap - EXIT
grep -q "graceful shutdown complete" "$SMOKE_LOG" || {
  echo "ci.sh: engine_server did not shut down gracefully" >&2
  cat "$SMOKE_LOG" >&2
  exit 1
}

# Fault-socket soak: a fixed slice of the seeded network chaos
# differential (tests/net_chaos_test.cc), run serially on top of the
# full-suite pass above. Every seed pushes a faulted, reconnecting
# subscriber through the deterministic FaultProxy (injected RSTs,
# stalls, split/coalesced frames) and requires the faulted mirror, a
# clean mirror, the Snapshot RPC and the reference oracle to agree,
# with the resume/replay/snapshot accounting balancing exactly. The
# fixed seeds cover both the ring-replay and the snapshot-fallback
# resume paths; under UPA_TSAN=1 this same stage puts the client's
# reconnect machinery and the server's writer/adoption paths under the
# race detector.
echo "ci.sh: fault-socket soak (fixed seeds)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j 1 \
  -R 'NetChaosSoak|Seeds/NetChaosTest\..*/(2|6|11|24|41)$'

# SQL session smoke: a --sql engine_server on an ephemeral port, driven
# by the upa_sql shell with a scripted DDL + register + introspection +
# subscribe exchange. The transcript (including the EXPLAIN cost table)
# is diffed against the committed expected output, so any drift in the
# session dialect, the EXPLAIN format, or the wire path fails CI. A
# second invocation pins the error path: a malformed statement must
# produce a caret diagnostic and a nonzero exit without disturbing the
# server.
echo "ci.sh: SQL session smoke"
SQL_LOG="$BUILD_DIR/sql_smoke_server.log"
"$BUILD_DIR/examples/engine_server" --port 0 --sql --serve-seconds 120 \
  >"$SQL_LOG" 2>&1 &
SQL_PID=$!
trap 'kill -TERM "$SQL_PID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "$SQL_LOG" | head -n1)
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "ci.sh: --sql engine_server never reported its port" >&2
  cat "$SQL_LOG" >&2
  exit 1
fi
SQL_OUT="$BUILD_DIR/sql_smoke_out.txt"
"$BUILD_DIR/examples/upa_sql" --port "$PORT" \
  -e "CREATE STREAM link0 (duration INT, protocol INT, payload INT, src_ip INT, dst_ip INT)" \
  -e "CREATE RELATION meta (key INT) RETROACTIVE" \
  -e "REGISTER QUERY total AS SELECT COUNT(*) FROM link0 [RANGE 100]" \
  -e "SHOW STREAMS" \
  -e "SHOW QUERIES" \
  -e "EXPLAIN SELECT COUNT(*) FROM link0 [RANGE 100]" \
  -e "SUBSCRIBE total" \
  -e "UNSUBSCRIBE total" \
  -e "UNREGISTER QUERY total" \
  >"$SQL_OUT"
diff scripts/sql_smoke_expected.txt "$SQL_OUT" || {
  echo "ci.sh: SQL session transcript drifted from the expected output" >&2
  exit 1
}
SQL_ERR_OUT="$BUILD_DIR/sql_smoke_err.txt"
if "$BUILD_DIR/examples/upa_sql" --port "$PORT" -e "SELEC bogus" \
  >"$SQL_ERR_OUT"; then
  echo "ci.sh: upa_sql exited 0 on a malformed statement" >&2
  exit 1
fi
grep -q '^\^~~~' "$SQL_ERR_OUT" || {
  echo "ci.sh: malformed statement produced no caret diagnostic" >&2
  cat "$SQL_ERR_OUT" >&2
  exit 1
}
kill -TERM "$SQL_PID"
wait "$SQL_PID" || true
trap - EXIT

# Smoke bench: one small Query 1 run through the JSON harness. Validates
# the upa.bench.v1 schema and fails on a >2x regression of ms_per_1k
# against the committed baseline (bench/baselines/BENCH_q1_smoke.json).
# The 2x threshold is deliberately loose: it tolerates machine-to-machine
# variance while still catching an accidental O(n) -> O(n^2).
if [[ "$SANITIZED" == "1" ]]; then
  echo "ci.sh: sanitizer build -- skipping the smoke bench (timings unusable)"
  exit 0
fi

SMOKE_DIR="$BUILD_DIR/bench_smoke"
rm -rf "$SMOKE_DIR" && mkdir -p "$SMOKE_DIR"
UPA_BENCH_JSON_DIR="$SMOKE_DIR" \
  "$BUILD_DIR/bench/bench_q1_join" --benchmark_filter='BM_Q1_Ftp/5000/'
python3 scripts/bench_report.py validate "$SMOKE_DIR/BENCH_q1_join.json"
python3 scripts/bench_report.py diff \
  bench/baselines/BENCH_q1_smoke.json "$SMOKE_DIR/BENCH_q1_join.json" \
  --threshold 2.0
