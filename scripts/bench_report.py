#!/usr/bin/env python3
"""Consume BENCH_*.json files emitted by the bench harness (bench/bench_json.h).

Subcommands:

  validate FILE...
      Structurally check each file against the upa.bench.v1 schema.
      Exit 1 on the first violation, printing what and where.

  render [--json-dir DIR] [--doc EXPERIMENTS.md] [--check]
      Regenerate every marked table in the doc from the BENCH_*.json
      files in DIR. Tables are delimited by marker comments:

        <!-- BENCH_TABLE bench=q1_join family=BM_Q1_Ftp cols=ms_per_1k,results,state_KB -->
        ```
        ... replaced ...
        ```
        <!-- /BENCH_TABLE -->

      `bench` names the BENCH_<bench>.json file, `family` filters its
      runs, `cols` picks counter/phase columns. With --check, exit 1 if
      the doc would change (CI drift detection) instead of rewriting.

  diff BASELINE CURRENT [--threshold 2.0] [--metric ms_per_1k]
      Compare two result files run-by-run (matched on name+label) and
      exit 1 if any run regressed by more than the threshold ratio.
      Runs missing from either side are reported but not fatal.

No third-party dependencies; stdlib only.
"""

import argparse
import json
import os
import re
import sys

SCHEMA = "upa.bench.v1"

# Display name and formatting per known column. Unknown counters fall
# back to their raw key and %g formatting.
COLUMNS = {
    "ms_per_1k": ("ms/1k", "{:.3f}"),
    "results": ("results", "{:.0f}"),
    "state_KB": ("state_KB", "{:.0f}"),
    "state_tuples": ("state_tuples", "{:.0f}"),
    "neg_tuples": ("neg_tuples", "{:.0f}"),
    "tuples": ("tuples", "{:.0f}"),
    "estimated_cost": ("est_cost", "{:.1f}"),
    "agree": ("agree", "{:.0f}"),
    "ktuples_per_s": ("ktuples/s", "{:.1f}"),
    "shards": ("shards", "{:.0f}"),
    "ingested": ("ingested", "{:.0f}"),
    "wall_seconds": ("wall_s", "{:.3f}"),
    # Phase columns come from run["phases"] (paper Section 6.1 split).
    "proc_ms": ("proc_ms", "{:.3f}"),
    "ins_ms": ("ins_ms", "{:.3f}"),
    "exp_ms": ("exp_ms", "{:.3f}"),
    # Per-event ingest latency percentiles (replay measure_latency).
    "p50_us": ("p50_us", "{:.2f}"),
    "p99_us": ("p99_us", "{:.2f}"),
    # Heavy-light partitioning coverage (E14 skew sweep).
    "heavy_keys": ("heavy_keys", "{:.0f}"),
    "heavy_hits": ("heavy_hits", "{:.0f}"),
    "light_probes": ("light_probes", "{:.0f}"),
}
PHASE_KEYS = {
    "proc_ms": "processing_ms",
    "ins_ms": "insertion_ms",
    "exp_ms": "expiration_ms",
}


def fail(msg):
    print(f"bench_report: {msg}", file=sys.stderr)
    sys.exit(1)


# ---------------------------------------------------------------- validate


def check(cond, path, msg):
    if not cond:
        fail(f"{path}: schema violation: {msg}")


def validate_file(path):
    with open(path) as f:
        doc = json.load(f)
    check(doc.get("schema") == SCHEMA, path,
          f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    for key in ("bench", "git_sha", "timestamp"):
        check(isinstance(doc.get(key), str) and doc[key], path,
              f"missing string field {key!r}")
    cfg = doc.get("config")
    check(isinstance(cfg, dict), path, "missing config object")
    check(isinstance(cfg.get("profile"), int), path, "config.profile")
    check(isinstance(cfg.get("sample_interval"), int), path,
          "config.sample_interval")
    runs = doc.get("runs")
    check(isinstance(runs, list) and runs, path, "runs must be non-empty")
    for i, r in enumerate(runs):
        where = f"{path} runs[{i}]"
        check(isinstance(r.get("name"), str) and r["name"], where, "name")
        check(isinstance(r.get("family"), str) and r["family"], where,
              "family")
        check(isinstance(r.get("label"), str), where, "label")
        check(isinstance(r.get("args"), list), where, "args")
        check(isinstance(r.get("wall_seconds"), (int, float)), where,
              "wall_seconds")
        counters = r.get("counters")
        check(isinstance(counters, dict), where, "counters")
        for k, v in counters.items():
            check(isinstance(v, (int, float)), where,
                  f"counter {k!r} not numeric")
        if r.get("profiled"):
            phases = r.get("phases")
            check(isinstance(phases, dict), where, "profiled without phases")
            for k in ("processing_ms", "insertion_ms", "expiration_ms",
                      "ingests", "sampled_ingests", "ticks", "sampled_ticks"):
                check(isinstance(phases.get(k), (int, float)), where,
                      f"phases.{k}")
            for j, op in enumerate(r.get("ops", [])):
                opw = f"{where} ops[{j}]"
                check(isinstance(op.get("op"), str) and op["op"], opw, "op")
                for k in ("processing_ms", "insertion_ms", "expiration_ms",
                          "process_calls", "emitted", "state_bytes",
                          "p50_ns", "p95_ns", "p99_ns"):
                    check(isinstance(op.get(k), (int, float)), opw, k)
    return doc


def cmd_validate(args):
    for path in args.files:
        validate_file(path)
        print(f"{path}: OK")


# ------------------------------------------------------------------ render

MARKER = re.compile(
    r"<!--\s*BENCH_TABLE\s+(?P<attrs>[^>]*?)\s*-->\n"
    r"(?P<body>.*?)"
    r"<!--\s*/BENCH_TABLE\s*-->",
    re.DOTALL)


def parse_attrs(text):
    attrs = {}
    for m in re.finditer(r"(\w+)=([^\s]+)", text):
        attrs[m.group(1)] = m.group(2)
    return attrs


def cell_value(run, col):
    if col in PHASE_KEYS:
        return run.get("phases", {}).get(PHASE_KEYS[col])
    if col == "wall_seconds":
        return run.get("wall_seconds")
    return run.get("counters", {}).get(col)


def format_table(runs, cols):
    header = ["args", "label"] + [COLUMNS.get(c, (c,))[0] for c in cols]
    rows = []
    for r in runs:
        args = "/".join(str(a) for a in r.get("args", []))
        if not args:
            args = "-"
        row = [args, r.get("label") or "-"]
        for c in cols:
            v = cell_value(r, c)
            if v is None:
                row.append("-")
            else:
                fmt = COLUMNS.get(c, (c, "{:g}"))[1]
                row.append(fmt.format(v))
        rows.append(row)
    widths = [max(len(header[i]), *(len(row[i]) for row in rows))
              for i in range(len(header))]
    # Match the repo's historical table style: args and label wide and
    # right-aligned, numeric columns right-aligned.
    widths[0] = max(widths[0], 12)
    widths[1] = max(widths[1], 26)
    lines = ["  ".join(h.rjust(widths[i]) for i, h in enumerate(header))]
    for row in rows:
        lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def cmd_render(args):
    docs = {}

    def load(bench):
        if bench not in docs:
            path = os.path.join(args.json_dir, f"BENCH_{bench}.json")
            if not os.path.exists(path):
                fail(f"{path} not found (run the bench first, or pass "
                     f"--json-dir)")
            docs[bench] = validate_file(path)
        return docs[bench]

    with open(args.doc) as f:
        text = f.read()

    def replace(m):
        attrs = parse_attrs(m.group("attrs"))
        bench = attrs.get("bench")
        family = attrs.get("family")
        cols = (attrs.get("cols") or "ms_per_1k,results,state_KB").split(",")
        if not bench:
            fail(f"{args.doc}: BENCH_TABLE marker missing bench=")
        doc = load(bench)
        runs = [r for r in doc["runs"]
                if not family or r.get("family") == family]
        if not runs:
            fail(f"{args.doc}: no runs for bench={bench} family={family}")
        table = format_table(runs, cols)
        return (f"<!-- BENCH_TABLE {m.group('attrs')} -->\n"
                f"```\n{table}\n```\n"
                f"<!-- /BENCH_TABLE -->")

    new_text, n = MARKER.subn(replace, text)
    if n == 0:
        fail(f"{args.doc}: no BENCH_TABLE markers found")
    if args.check:
        if new_text != text:
            fail(f"{args.doc}: out of date with {args.json_dir}/BENCH_*.json "
                 f"(re-run: scripts/bench_report.py render)")
        print(f"{args.doc}: {n} tables up to date")
        return
    if new_text != text:
        with open(args.doc, "w") as f:
            f.write(new_text)
        print(f"{args.doc}: rewrote {n} tables from {args.json_dir}")
    else:
        print(f"{args.doc}: {n} tables already up to date")


# -------------------------------------------------------------------- diff


def run_key(r):
    return (r["name"], r.get("label", ""))


def cmd_diff(args):
    base = validate_file(args.baseline)
    cur = validate_file(args.current)
    base_runs = {run_key(r): r for r in base["runs"]}
    cur_runs = {run_key(r): r for r in cur["runs"]}
    regressions = []
    compared = 0
    for key, br in sorted(base_runs.items()):
        cr = cur_runs.get(key)
        name = f"{key[0]} [{key[1]}]"
        if cr is None:
            print(f"  MISSING in current: {name}")
            continue
        bv = cell_value(br, args.metric)
        cv = cell_value(cr, args.metric)
        if bv is None or cv is None:
            print(f"  SKIP (no {args.metric}): {name}")
            continue
        compared += 1
        ratio = cv / bv if bv > 0 else float("inf") if cv > 0 else 1.0
        status = "ok"
        if ratio > args.threshold:
            status = "REGRESSION"
            regressions.append((name, bv, cv, ratio))
        print(f"  {status:>10}  {name}: {args.metric} {bv:.4g} -> {cv:.4g} "
              f"(x{ratio:.2f})")
    for key in sorted(set(cur_runs) - set(base_runs)):
        print(f"  NEW in current: {key[0]} [{key[1]}]")
    if compared == 0:
        fail("no comparable runs between the two files")
    if regressions:
        fail(f"{len(regressions)} run(s) regressed beyond "
             f"x{args.threshold} on {args.metric}")
    print(f"diff: {compared} runs compared, none beyond x{args.threshold}")


# -------------------------------------------------------------------- main


def main():
    p = argparse.ArgumentParser(description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    v = sub.add_parser("validate", help="check files against the schema")
    v.add_argument("files", nargs="+")
    v.set_defaults(func=cmd_validate)

    r = sub.add_parser("render", help="regenerate marked tables in the doc")
    r.add_argument("--json-dir", default=".")
    r.add_argument("--doc", default="EXPERIMENTS.md")
    r.add_argument("--check", action="store_true",
                   help="exit 1 if the doc would change; don't rewrite")
    r.set_defaults(func=cmd_render)

    d = sub.add_parser("diff", help="compare two result files")
    d.add_argument("baseline")
    d.add_argument("current")
    d.add_argument("--threshold", type=float, default=2.0,
                   help="fail when current/baseline exceeds this ratio")
    d.add_argument("--metric", default="ms_per_1k")
    d.set_defaults(func=cmd_diff)

    args = p.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
