#!/usr/bin/env python3
"""Formats raw google-benchmark rows (bench_output.txt) into the compact
per-experiment tables embedded in EXPERIMENTS.md.

Usage: scripts/format_results.py bench_output.txt
Prints one markdown-ish table per benchmark family to stdout.
"""
import re
import sys
from collections import defaultdict

ROW = re.compile(
    r"^(?P<name>BM_\S+?)/(?P<args>[\d/]+)/iterations:1/manual_time\s+"
    r"(?P<time>[\d.e+]+) ns.*?ms_per_1k=(?P<ms>[\d.]+k?)")
COUNTER = re.compile(r"(\w+)=([\d.]+k?|[\d.e+]+)")


def expand(v: str) -> float:
    if v.endswith("k"):
        return float(v[:-1]) * 1000.0
    return float(v)


def main(path: str) -> None:
    families = defaultdict(list)
    label_re = re.compile(r"\b(NT|DIRECT|UPA[\w-]*|push-down/\S+|pull-up/\S+)\s*$")
    with open(path, errors="replace") as f:
        for line in f:
            m = ROW.match(line.strip())
            if not m:
                continue
            counters = dict(COUNTER.findall(line))
            label = label_re.search(line.strip())
            families[m.group("name")].append({
                "args": m.group("args"),
                "ms_per_1k": expand(m.group("ms")),
                "label": label.group(1) if label else "",
                "counters": counters,
            })
    for name, rows in families.items():
        print(f"### {name}")
        print(f"{'args':>14} {'label':>28} {'ms/1k':>12} "
              f"{'results':>9} {'state_KB':>10}")
        for r in rows:
            results = expand(r["counters"].get("results", "0"))
            state = expand(r["counters"].get("state_KB", "0"))
            print(f"{r['args']:>14} {r['label']:>28} "
                  f"{r['ms_per_1k']:>12.3f} {results:>9.0f} {state:>10.0f}")
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt")
