#include "ops/predicate.h"

#include "common/macros.h"

namespace upa {

namespace {
const char* CmpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}
}  // namespace

bool Predicate::Eval(const Tuple& t) const {
  UPA_DCHECK(col >= 0 && static_cast<size_t>(col) < t.fields.size());
  const Value& lhs = t.fields[static_cast<size_t>(col)];
  UPA_DCHECK(lhs.index() == rhs.index());
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

std::string Predicate::ToString() const {
  return "$" + std::to_string(col) + " " + CmpName(op) + " " +
         upa::ToString(rhs);
}

bool EvalAll(const std::vector<Predicate>& preds, const Tuple& t) {
  for (const Predicate& p : preds) {
    if (!p.Eval(t)) return false;
  }
  return true;
}

}  // namespace upa
