#include "ops/negation.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace upa {

NegationOp::NegationOp(Schema schema, int left_col, int right_col,
                       std::unique_ptr<StateBuffer> left_state,
                       std::unique_ptr<StateBuffer> right_state,
                       bool time_expiration, bool emit_expiration_negatives)
    : schema_(std::move(schema)),
      col_{left_col, right_col},
      time_expiration_(time_expiration),
      emit_expiration_negatives_(emit_expiration_negatives) {
  UPA_CHECK(left_col >= 0 && left_col < schema_.num_fields());
  UPA_CHECK(right_col >= 0);
  state_[0] = std::move(left_state);
  state_[1] = std::move(right_state);
  UPA_CHECK(state_[0] != nullptr && state_[1] != nullptr);
  // Negation must react to expirations immediately (Section 2.3).
  UPA_CHECK(!state_[0]->lazy() && !state_[1]->lazy());
}

void NegationOp::Reconcile(const Value& v, Emitter& out) {
  auto map_it = values_.find(v);
  if (map_it == values_.end()) return;
  PerValue& pv = map_it->second;
  const Time now = state_[0]->now();

  // Multiplicities are maintained incrementally (the Section 5.4.1 cost
  // model assumes counter maintenance, not per-event rescans); the common
  // case -- answer already at its Equation 1 target -- costs O(1) here.
  const int64_t v1 = static_cast<int64_t>(pv.w1.size());
  const int64_t target = std::max<int64_t>(v1 - pv.v2, 0);

  // Shrink: the oldest answer member leaves first, via a negative tuple
  // (premature expiration -- not caused by the sliding windows). Members
  // cluster towards the front (oldest entries), so the scan is short.
  while (pv.answer > target) {
    bool found = false;
    for (Entry& e : pv.w1) {
      if (e.in_answer) {
        e.in_answer = false;
        out.Emit(e.tuple.AsNegative());
        ++premature_negatives_;
        found = true;
        break;
      }
    }
    UPA_DCHECK(found);
    if (!found) break;
    --pv.answer;
  }
  // Grow: the latest-expiring live non-member enters.
  while (pv.answer < target) {
    Entry* best = nullptr;
    for (Entry& e : pv.w1) {
      if (e.in_answer || !e.tuple.LiveAt(now)) continue;
      if (best == nullptr || e.tuple.exp > best->tuple.exp ||
          (e.tuple.exp == best->tuple.exp && e.tuple.ts > best->tuple.ts)) {
        best = &e;
      }
    }
    if (best == nullptr) break;  // No live candidate (dying tuples mid-tick).
    best->in_answer = true;
    Tuple result = best->tuple;
    result.ts = now;
    out.Emit(result);
    ++pv.answer;
  }

  if (pv.w1.empty() && pv.v2 == 0) values_.erase(map_it);
}

void NegationOp::OnLeftGone(const Tuple& t, bool natural, Emitter& out) {
  auto map_it = values_.find(t.fields[static_cast<size_t>(col_[0])]);
  if (map_it == values_.end()) return;
  PerValue& pv = map_it->second;
  for (auto it = pv.w1.begin(); it != pv.w1.end(); ++it) {
    if (it->tuple.exp == t.exp && it->tuple.FieldsEqual(t)) {
      const bool was_in_answer = it->in_answer;
      pv.w1.erase(it);
      if (was_in_answer) {
        --pv.answer;
        if (!natural || emit_expiration_negatives_) {
          out.Emit(t.AsNegative());
        }
        if (!natural) ++premature_negatives_;
      }
      break;
    }
  }
  Reconcile(t.fields[static_cast<size_t>(col_[0])], out);
}

void NegationOp::OnRightGone(const Tuple& t, Emitter& out) {
  const Value& v = t.fields[static_cast<size_t>(col_[1])];
  auto map_it = values_.find(v);
  if (map_it == values_.end()) return;
  --map_it->second.v2;
  UPA_DCHECK(map_it->second.v2 >= 0);
  Reconcile(v, out);
}

void NegationOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  const Value& v =
      t.fields[static_cast<size_t>(port == 0 ? col_[0] : col_[1])];
  if (port == 0) {
    if (t.negative) {
      state_[0]->EraseOneMatch(t);
      // A negative tuple arriving exactly at its expiration time is a
      // window expiration relayed by the NT approach ("natural"); one
      // arriving earlier is a genuine premature deletion from an upstream
      // strict non-monotonic operator.
      const bool natural = t.exp <= state_[0]->now();
      OnLeftGone(t, natural, out);
      return;
    }
    {
      obs::InsertTimer insert_timer(profile_);
      state_[0]->Insert(t);
    }
    values_[v].w1.push_back(Entry{t, false});
    Reconcile(v, out);
    return;
  }
  if (t.negative) {
    state_[1]->EraseOneMatch(t);
    OnRightGone(t, out);
    return;
  }
  {
    obs::InsertTimer insert_timer(profile_);
    state_[1]->Insert(t);
  }
  ++values_[v].v2;
  Reconcile(v, out);
}

void NegationOp::AdvanceTime(Time now, Emitter& out) {
  if (!time_expiration_) {
    state_[0]->SetClock(now);
    state_[1]->SetClock(now);
    return;
  }
  // Expire W1 first so that Reconcile's liveness checks (driven by the
  // buffer clocks) cannot admit a tuple that dies at this very tick.
  std::vector<Tuple> gone1;
  state_[0]->Advance(now, [&gone1](const Tuple& t) { gone1.push_back(t); });
  for (const Tuple& t : gone1) OnLeftGone(t, /*natural=*/true, out);
  std::vector<Tuple> gone2;
  state_[1]->Advance(now, [&gone2](const Tuple& t) { gone2.push_back(t); });
  for (const Tuple& t : gone2) OnRightGone(t, out);
}

size_t NegationOp::StateBytes() const {
  // The per-value index mirrors the W1 buffer contents; count the index
  // skeleton (counters + flags) on top of the stored tuples.
  size_t index_bytes = values_.size() * (sizeof(Value) + sizeof(PerValue) + 32);
  for (const auto& [v, pv] : values_) {
    index_bytes += pv.w1.size() * (sizeof(Entry) + 16);
  }
  return state_[0]->StateBytes() + state_[1]->StateBytes() + index_bytes;
}

size_t NegationOp::StateTuples() const {
  return state_[0]->PhysicalCount() + state_[1]->PhysicalCount();
}

}  // namespace upa
