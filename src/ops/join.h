#ifndef UPA_OPS_JOIN_H_
#define UPA_OPS_JOIN_H_

#include <memory>
#include <string>

#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Sliding-window equi-join (Section 2.1): stores both inputs; each new
/// arrival is inserted into its state buffer and probes the other buffer
/// for matches, appending joined results to the output stream. A result
/// expires when either constituent does, so its expiration timestamp is
/// the minimum of the constituents' (Section 2.2), which makes the join
/// weak non-monotonic (Figure 5).
///
/// State maintenance:
///  - `time_expiration = true` (direct/UPA): AdvanceTime() lets the state
///    buffers expire old tuples themselves; the buffers may be lazy, in
///    which case expired tuples are skipped during probing.
///  - `time_expiration = false` (negative tuple approach): expirations
///    arrive as negative tuples. A negative tuple is removed from its
///    side's state and probes the other side, emitting a negative result
///    for every join result the deleted tuple participated in (Figure 3).
///    Negative tuples are handled this way in *both* modes -- under direct
///    execution they occur when the input is strict non-monotonic (e.g.
///    below is a negation).
class JoinOp : public Operator {
 public:
  JoinOp(const Schema& left, const Schema& right, int left_col, int right_col,
         std::unique_ptr<StateBuffer> left_state,
         std::unique_ptr<StateBuffer> right_state, bool time_expiration);

  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  /// AdvanceTime never emits (results carry exp timestamps), so the
  /// pipeline may defer the state sweep across a batch (DESIGN.md §15).
  bool SilentExpiration() const override { return true; }
  void AdvanceClock(Time now) override;
  /// Batched probe/insert: inserts the whole run into this side's state,
  /// then probes the other side in run order. Inserts emit nothing and
  /// the probes read only the other side, so the emitted sequence equals
  /// the sequential loop's. Runs containing deletions fall back.
  void ProcessBatch(int port, const Tuple* const* run, size_t n,
                    Emitter& out) override;
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "join"; }

  /// Join inputs are the buffers the planner is allowed to keep lazy
  /// (probes skip expired tuples), so they are the ones that can shed
  /// expiration work under overload.
  void SetDegraded(bool on) override {
    state_[0]->SetDegraded(on);
    state_[1]->SetDegraded(on);
  }

  void CollectHeavyLight(HeavyLightStats* out) const override {
    state_[0]->CollectHeavyLight(out);
    state_[1]->CollectHeavyLight(out);
  }

  int left_col() const { return col_[0]; }
  int right_col() const { return col_[1]; }

 private:
  /// Builds the (left, right)-ordered concatenation of the matched pair.
  Tuple Combine(int port, const Tuple& t, const Tuple& match) const;

  Schema schema_;
  int col_[2];
  int left_width_;
  int right_width_;
  std::unique_ptr<StateBuffer> state_[2];
  bool time_expiration_;
};

}  // namespace upa

#endif  // UPA_OPS_JOIN_H_
