#include "ops/relation_join.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace upa {

NrrJoinOp::NrrJoinOp(const Schema& stream_schema, const Schema& table_schema,
                     int stream_col, int table_col,
                     std::unique_ptr<StateBuffer> table)
    : schema_(Schema::Concat(stream_schema, table_schema)),
      stream_col_(stream_col),
      table_col_(table_col),
      table_(std::move(table)) {
  UPA_CHECK(stream_col_ >= 0 && stream_col_ < stream_schema.num_fields());
  UPA_CHECK(table_col_ >= 0 && table_col_ < table_schema.num_fields());
  UPA_CHECK(table_ != nullptr);
}

void NrrJoinOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  if (port == 1) {
    // Non-retroactive table maintenance: silent.
    UPA_CHECK(t.exp == kNeverExpires);
    if (t.negative) {
      table_->EraseOneMatch(t);
    } else {
      obs::InsertTimer insert_timer(profile_);
      table_->Insert(t);
    }
    return;
  }
  // Section 5.4.2: relations cannot undo results for deleted/updated rows,
  // so strict non-monotonic streaming input is a planning error.
  UPA_CHECK(!t.negative);
  table_->ForEachMatch(table_col_, t.fields[static_cast<size_t>(stream_col_)],
                       [&](const Tuple& row) {
                         Tuple result;
                         result.ts = t.ts;
                         result.exp = t.exp;  // Table rows never expire.
                         result.fields.reserve(t.fields.size() +
                                               row.fields.size());
                         result.fields.insert(result.fields.end(),
                                              t.fields.begin(),
                                              t.fields.end());
                         result.fields.insert(result.fields.end(),
                                              row.fields.begin(),
                                              row.fields.end());
                         out.Emit(result);
                       });
}

void NrrJoinOp::AdvanceTime(Time now, Emitter& out) {
  (void)out;
  table_->SetClock(now);
}

RelJoinOp::RelJoinOp(const Schema& stream_schema, const Schema& table_schema,
                     int stream_col, int table_col,
                     std::unique_ptr<StateBuffer> window_state,
                     std::unique_ptr<StateBuffer> table, bool time_expiration)
    : schema_(Schema::Concat(stream_schema, table_schema)),
      stream_col_(stream_col),
      table_col_(table_col),
      window_(std::move(window_state)),
      table_(std::move(table)),
      time_expiration_(time_expiration) {
  UPA_CHECK(stream_col_ >= 0 && stream_col_ < stream_schema.num_fields());
  UPA_CHECK(table_col_ >= 0 && table_col_ < table_schema.num_fields());
  UPA_CHECK(window_ != nullptr && table_ != nullptr);
}

Tuple RelJoinOp::Combine(const Tuple& stream_t, const Tuple& table_t,
                         bool negative, Time ts) const {
  Tuple result;
  result.ts = ts;
  result.exp = stream_t.exp;  // min(stream exp, never) == stream exp.
  result.negative = negative;
  result.fields.reserve(stream_t.fields.size() + table_t.fields.size());
  result.fields.insert(result.fields.end(), stream_t.fields.begin(),
                       stream_t.fields.end());
  result.fields.insert(result.fields.end(), table_t.fields.begin(),
                       table_t.fields.end());
  return result;
}

void RelJoinOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  if (port == 1) {
    UPA_CHECK(t.exp == kNeverExpires);
    if (t.negative) {
      // Retroactive deletion: undo every previously reported result that
      // contains this row (negative tuples on the output, Section 4.1).
      table_->EraseOneMatch(t);
      window_->ForEachMatch(
          stream_col_, t.fields[static_cast<size_t>(table_col_)],
          [&](const Tuple& w) { out.Emit(Combine(w, t, true, t.ts)); });
    } else {
      // Retroactive insertion: join with everything already in the window.
      {
        obs::InsertTimer insert_timer(profile_);
        table_->Insert(t);
      }
      window_->ForEachMatch(
          stream_col_, t.fields[static_cast<size_t>(table_col_)],
          [&](const Tuple& w) { out.Emit(Combine(w, t, false, t.ts)); });
    }
    return;
  }
  if (t.negative) {
    // Window expiration relayed as a negative tuple (NT maintenance).
    window_->EraseOneMatch(t);
    table_->ForEachMatch(table_col_,
                         t.fields[static_cast<size_t>(stream_col_)],
                         [&](const Tuple& row) {
                           out.Emit(Combine(t, row, true, t.ts));
                         });
    return;
  }
  {
    obs::InsertTimer insert_timer(profile_);
    window_->Insert(t);
  }
  table_->ForEachMatch(table_col_, t.fields[static_cast<size_t>(stream_col_)],
                       [&](const Tuple& row) {
                         out.Emit(Combine(t, row, false, t.ts));
                       });
}

void RelJoinOp::ProcessBatch(int port, const Tuple* const* run, size_t n,
                             Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  if (port == 1) {
    // Table deltas are signed and must apply in order.
    for (size_t i = 0; i < n; ++i) Process(port, *run[i], out);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (run[i]->negative) {
      for (size_t j = 0; j < n; ++j) Process(port, *run[j], out);
      return;
    }
  }
  {
    obs::InsertTimer insert_timer(profile_);
    for (size_t i = 0; i < n; ++i) window_->Insert(*run[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = *run[i];
    table_->ForEachMatch(table_col_,
                         t.fields[static_cast<size_t>(stream_col_)],
                         [&](const Tuple& row) {
                           out.Emit(Combine(t, row, false, t.ts));
                         });
  }
}

void RelJoinOp::AdvanceClock(Time now) {
  window_->SetClock(now);
  table_->SetClock(now);
}

void RelJoinOp::AdvanceTime(Time now, Emitter& out) {
  (void)out;
  if (time_expiration_) {
    window_->Advance(now, nullptr);
  } else {
    window_->SetClock(now);
  }
  table_->SetClock(now);
}

size_t RelJoinOp::StateBytes() const {
  return window_->StateBytes() + table_->StateBytes();
}

size_t RelJoinOp::StateTuples() const {
  return window_->PhysicalCount() + table_->PhysicalCount();
}

}  // namespace upa
