#include "ops/distinct.h"

#include <utility>

#include "common/macros.h"

namespace upa {

DistinctOp::DistinctOp(Schema schema, std::vector<int> key_cols,
                       std::unique_ptr<StateBuffer> input_state,
                       std::unique_ptr<StateBuffer> output_state,
                       bool time_expiration)
    : schema_(std::move(schema)),
      key_cols_(std::move(key_cols)),
      input_(std::move(input_state)),
      output_(std::move(output_state)),
      time_expiration_(time_expiration) {
  UPA_CHECK(!key_cols_.empty());
  for (int c : key_cols_) UPA_CHECK(c >= 0 && c < schema_.num_fields());
  UPA_CHECK(input_ != nullptr && output_ != nullptr);
  UPA_CHECK(!output_->lazy());  // The output must react to expirations.
}

bool DistinctOp::FindReplacement(const Key& key, const Tuple** found) const {
  const Tuple* best = nullptr;
  ForEachMatchKey(*input_, key_cols_, key, [&](const Tuple& t) {
    if (best == nullptr || t.exp > best->exp ||
        (t.exp == best->exp && t.ts > best->ts)) {
      best = &t;
    }
  });
  *found = best;
  return best != nullptr;
}

void DistinctOp::Replace(const Tuple& gone, Emitter& out) {
  const Tuple* repl = nullptr;
  if (FindReplacement(ExtractKey(gone, key_cols_), &repl)) {
    Tuple r = *repl;
    {
      obs::InsertTimer insert_timer(profile_);
      output_->Insert(r);
    }
    out.Emit(r);
  }
}

void DistinctOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  if (t.negative) {
    input_->EraseOneMatch(t);
    if (output_->EraseOneMatch(t)) {
      // The expired/deleted tuple was the output representative of its
      // key: signal its deletion and promote a live duplicate, if any.
      out.Emit(t);
      Replace(t, out);
    }
    return;
  }
  {
    obs::InsertTimer insert_timer(profile_);
    input_->Insert(t);
  }
  bool duplicate = false;
  ForEachMatchKey(*output_, key_cols_, ExtractKey(t, key_cols_),
                  [&duplicate](const Tuple&) { duplicate = true; });
  if (!duplicate) {
    {
      obs::InsertTimer insert_timer(profile_);
      output_->Insert(t);
    }
    out.Emit(t);
  }
}

void DistinctOp::AdvanceTime(Time now, Emitter& out) {
  if (!time_expiration_) {
    input_->SetClock(now);
    output_->SetClock(now);
    return;
  }
  // Advance the input first so replacement probes observe correct
  // liveness; collect expired output tuples, then replace outside the
  // buffer's expiration loop.
  input_->Advance(now, nullptr);
  std::vector<Tuple> expired;
  output_->Advance(now, [&expired](const Tuple& t) { expired.push_back(t); });
  for (const Tuple& gone : expired) Replace(gone, out);
}

size_t DistinctOp::StateBytes() const {
  return input_->StateBytes() + output_->StateBytes();
}

size_t DistinctOp::StateTuples() const {
  return input_->PhysicalCount() + output_->PhysicalCount();
}

DeltaDistinctOp::DeltaDistinctOp(Schema schema, std::vector<int> key_cols,
                                 std::unique_ptr<StateBuffer> output_state)
    : schema_(std::move(schema)),
      key_cols_(std::move(key_cols)),
      output_(std::move(output_state)) {
  UPA_CHECK(!key_cols_.empty());
  for (int c : key_cols_) UPA_CHECK(c >= 0 && c < schema_.num_fields());
  UPA_CHECK(output_ != nullptr);
  UPA_CHECK(!output_->lazy());
}

void DeltaDistinctOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  // delta-distinct is only planned over WKS/WK inputs, which by definition
  // produce no premature expirations.
  UPA_CHECK(!t.negative);
  Key key = ExtractKey(t, key_cols_);
  bool duplicate = false;
  ForEachMatchKey(*output_, key_cols_, key,
                  [&duplicate](const Tuple&) { duplicate = true; });
  if (!duplicate) {
    {
      obs::InsertTimer insert_timer(profile_);
      output_->Insert(t);
    }
    out.Emit(t);
    return;
  }
  // Keep the latest-expiring duplicate as the designated replacement.
  auto it = aux_.find(key);
  if (it == aux_.end()) {
    aux_bytes_ += EstimateTupleBytes(t);
    aux_.emplace(std::move(key), t);
  } else if (t.exp > it->second.exp ||
             (t.exp == it->second.exp && t.ts >= it->second.ts)) {
    aux_bytes_ -= EstimateTupleBytes(it->second);
    aux_bytes_ += EstimateTupleBytes(t);
    it->second = t;
  }
}

void DeltaDistinctOp::AdvanceTime(Time now, Emitter& out) {
  std::vector<Tuple> expired;
  output_->Advance(now, [&expired](const Tuple& t) { expired.push_back(t); });
  for (const Tuple& gone : expired) {
    const Key key = ExtractKey(gone, key_cols_);
    auto it = aux_.find(key);
    if (it == aux_.end()) continue;
    const Tuple promoted = it->second;
    aux_bytes_ -= EstimateTupleBytes(promoted);
    aux_.erase(it);
    if (promoted.LiveAt(now)) {
      {
        obs::InsertTimer insert_timer(profile_);
        output_->Insert(promoted);
      }
      out.Emit(promoted);
    }
  }
}

size_t DeltaDistinctOp::StateBytes() const {
  return output_->StateBytes() + aux_bytes_ +
         aux_.size() * (sizeof(Key) + 16);
}

size_t DeltaDistinctOp::StateTuples() const {
  return output_->PhysicalCount() + aux_.size();
}

}  // namespace upa
