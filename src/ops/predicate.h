#ifndef UPA_OPS_PREDICATE_H_
#define UPA_OPS_PREDICATE_H_

#include <string>
#include <vector>

#include "common/tuple.h"

namespace upa {

/// Comparison operator of a simple selection predicate.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// One conjunct of a selection condition: `column <op> constant`.
/// Predicates are structured (rather than opaque callables) so that the
/// optimizer can estimate selectivities and push selections around the plan
/// (Section 5.4.2's conventional rewrites).
struct Predicate {
  int col = 0;
  CmpOp op = CmpOp::kEq;
  Value rhs;

  bool Eval(const Tuple& t) const;
  std::string ToString() const;
};

/// Evaluates the conjunction of `preds` over `t` (empty = true).
bool EvalAll(const std::vector<Predicate>& preds, const Tuple& t);

}  // namespace upa

#endif  // UPA_OPS_PREDICATE_H_
