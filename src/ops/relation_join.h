#ifndef UPA_OPS_RELATION_JOIN_H_
#define UPA_OPS_RELATION_JOIN_H_

#include <memory>
#include <string>

#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Join of a stream/window with a non-retroactive relation (NRR), the
/// paper's NRR-join of Section 4.1.
///
/// An NRR is a table supporting arbitrary insertions, deletions and
/// updates whose updates do *not* affect previously arrived stream tuples:
/// only arrivals on the streaming input (port 0) probe the table and
/// produce results, reflecting the table state at the result's generation
/// timestamp (Definition 2). Table updates arrive on port 1 as positive
/// (insert) or negative (delete) tuples with exp = kNeverExpires and
/// produce no output -- so the streaming input need not be stored at all,
/// and the operator preserves its input's update pattern (monotonic over a
/// stream, weakest non-monotonic over a window; Rule 1).
///
/// Strict non-monotonic streaming input is rejected (Section 5.4.2: a join
/// involving a relation cannot process negative tuples, because the
/// matching table rows may have changed since the original result was
/// generated).
class NrrJoinOp : public Operator {
 public:
  /// `table` stores the relation rows (never-expiring; keyed probes).
  NrrJoinOp(const Schema& stream_schema, const Schema& table_schema,
            int stream_col, int table_col,
            std::unique_ptr<StateBuffer> table);

  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  /// Table maintenance is silent; AdvanceTime only moves the clock.
  bool SilentExpiration() const override { return true; }
  void AdvanceClock(Time now) override { table_->SetClock(now); }
  size_t StateBytes() const override { return table_->StateBytes(); }
  size_t StateTuples() const override { return table_->PhysicalCount(); }
  std::string Name() const override { return "nrr-join"; }

 private:
  Schema schema_;
  int stream_col_;
  int table_col_;
  std::unique_ptr<StateBuffer> table_;
};

/// Join of a sliding window with a *retroactive* relation, the paper's
/// R-join (Section 4.1): relation updates affect previously arrived stream
/// tuples, so by Definition 1 an insertion into the table probes the
/// current window and generates new results, and a deletion probes the
/// window and generates negative tuples undoing previously reported
/// results. The output is therefore always strict non-monotonic (Rule 5).
///
/// Port 0 is the windowed stream (stored); port 1 carries the relation
/// updates (positive = insert, negative = delete, exp = kNeverExpires).
class RelJoinOp : public Operator {
 public:
  RelJoinOp(const Schema& stream_schema, const Schema& table_schema,
            int stream_col, int table_col,
            std::unique_ptr<StateBuffer> window_state,
            std::unique_ptr<StateBuffer> table, bool time_expiration);

  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  /// Window/table state expires silently (results carry exp timestamps),
  /// so the pipeline may defer the window sweep across a batch.
  bool SilentExpiration() const override { return true; }
  void AdvanceClock(Time now) override;
  /// Batched stream-side probe/insert: inserts the run into the window,
  /// then probes the table in run order (probes read only the table, so
  /// the emitted sequence equals the sequential loop's). Table-delta and
  /// deletion runs fall back to the sequential path.
  void ProcessBatch(int port, const Tuple* const* run, size_t n,
                    Emitter& out) override;
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "rel-join"; }

  void SetDegraded(bool on) override { window_->SetDegraded(on); }

  void CollectHeavyLight(HeavyLightStats* out) const override {
    window_->CollectHeavyLight(out);
  }

 private:
  Tuple Combine(const Tuple& stream_t, const Tuple& table_t,
                bool negative, Time ts) const;

  Schema schema_;
  int stream_col_;
  int table_col_;
  std::unique_ptr<StateBuffer> window_;
  std::unique_ptr<StateBuffer> table_;
  bool time_expiration_;
};

}  // namespace upa

#endif  // UPA_OPS_RELATION_JOIN_H_
