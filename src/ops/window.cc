#include "ops/window.h"

#include <utility>

#include "common/macros.h"
#include "state/list_buffer.h"

namespace upa {

TimeWindowOp::TimeWindowOp(Schema schema, Time window_size, bool materialize)
    : schema_(std::move(schema)),
      window_size_(window_size),
      materialize_(materialize) {
  UPA_CHECK(window_size_ > 0);
  if (materialize_) {
    UPA_CHECK(window_size_ != kNeverExpires);
    state_ = std::make_unique<FifoBuffer>();
  }
}

void TimeWindowOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  UPA_CHECK(!t.negative);
  Tuple stamped = t;
  stamped.exp = window_size_ == kNeverExpires ? kNeverExpires
                                              : t.ts + window_size_;
  if (materialize_) {
    obs::InsertTimer insert_timer(profile_);
    state_->Insert(stamped);
  }
  out.Emit(stamped);
}

void TimeWindowOp::AdvanceTime(Time now, Emitter& out) {
  if (!materialize_) return;
  // Every expiration explicitly generates a negative tuple that propagates
  // through the plan (Section 2.3.1 / Figure 3).
  state_->Advance(now, [&out](const Tuple& expired) {
    out.Emit(expired.AsNegative());
  });
}

size_t TimeWindowOp::StateBytes() const {
  return materialize_ ? state_->StateBytes() : 0;
}

size_t TimeWindowOp::StateTuples() const {
  return materialize_ ? state_->PhysicalCount() : 0;
}

CountWindowOp::CountWindowOp(Schema schema, size_t count)
    : schema_(std::move(schema)), count_(count) {
  UPA_CHECK(count_ > 0);
}

void CountWindowOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  UPA_CHECK(!t.negative);
  Tuple stamped = t;
  stamped.exp = kNeverExpires;  // Unknown in advance; evicted by count.
  if (window_.size() == count_) {
    Tuple oldest = window_.front();
    window_.pop_front();
    bytes_ -= EstimateTupleBytes(oldest);
    out.Emit(oldest.AsNegative());
  }
  window_.push_back(stamped);
  bytes_ += EstimateTupleBytes(stamped);
  out.Emit(stamped);
}

void CountWindowOp::AdvanceTime(Time now, Emitter& out) {
  (void)now;
  (void)out;  // Count-based windows slide on arrivals, not on time.
}

size_t CountWindowOp::StateBytes() const { return bytes_; }

}  // namespace upa
