#ifndef UPA_OPS_OPERATOR_H_
#define UPA_OPS_OPERATOR_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "obs/op_profile.h"
#include "state/buffer.h"

namespace upa {

/// Receives the tuples (positive and negative) produced by an operator.
/// In a pipeline the emitter routes them to the parent operator or to the
/// materialized result view.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(const Tuple& t) = 0;
};

/// Emitter that appends to a vector; used by tests and by operators that
/// buffer their own output.
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(std::vector<Tuple>* out) : out_(out) {}
  void Emit(const Tuple& t) override { out_->push_back(t); }

 private:
  std::vector<Tuple>* out_;
};

/// A physical continuous-query operator (Section 2.1).
///
/// The execution contract mirrors the paper's processing model:
///
///  - Tuples are pushed in non-decreasing timestamp order and each tuple is
///    fully processed by the whole plan before the next one (Section 2).
///  - Before any tuple with timestamp `ts` is processed, the driver calls
///    AdvanceTime(ts) bottom-up through the plan. Operators advance their
///    local clocks (Section 2.3.2); under *direct* maintenance they also
///    purge expired state and may produce output (e.g. group-by emitting a
///    decreased aggregate, duplicate elimination promoting a replacement,
///    a negative-tuple-generating window ingress under the NT approach).
///  - Process() then handles the new tuple. Negative input tuples
///    (`t.negative`) signal explicit deletions and are matched against
///    state by (fields, exp).
class Operator {
 public:
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  /// Number of input ports (1 for unary, 2 for binary operators).
  virtual int num_inputs() const = 0;

  /// Schema of the tuples this operator emits.
  virtual const Schema& output_schema() const = 0;

  /// Handles one input tuple arriving on `port`.
  virtual void Process(int port, const Tuple& t, Emitter& out) = 0;

  /// Advances the operator's local clock to `now` (monotone), performing
  /// whatever expiration work the operator's maintenance policy requires.
  virtual void AdvanceTime(Time now, Emitter& out) = 0;

  /// Batched-execution contract (DESIGN.md Section 15). An operator is
  /// *silent* when AdvanceTime() never emits: it only moves local clocks
  /// and silently drops expired state. For silent operators the pipeline
  /// may run a batch in deferred-sweep mode -- AdvanceClock() per tick so
  /// liveness checks observe the current instant, one full AdvanceTime()
  /// at the batch boundary to do the physical purge. Operators whose
  /// AdvanceTime() can emit (materialized NT windows, duplicate
  /// elimination, group-by, negation) must return false and keep exact
  /// per-tick AdvanceTime() calls; their expirations are part of the
  /// result stream and may not be reordered against it.
  virtual bool SilentExpiration() const { return false; }

  /// Advances local clocks without physical expiration work. Called per
  /// tick, in place of AdvanceTime(), only when SilentExpiration() is
  /// true. The default is for operators with no time-dependent state.
  virtual void AdvanceClock(Time now) { (void)now; }

  /// Processes a run of tuples that arrived back to back on `port` at one
  /// timestamp with no intervening clock movement (`run[i]` borrows the
  /// caller's tuples). The default preserves tuple-at-a-time semantics
  /// exactly; overrides may reorganize internal work (e.g. a join
  /// inserting the whole run before probing it) only when the emitted
  /// sequence is provably identical to the sequential loop.
  virtual void ProcessBatch(int port, const Tuple* const* run, size_t n,
                            Emitter& out) {
    for (size_t i = 0; i < n; ++i) Process(port, *run[i], out);
  }

  /// Approximate bytes of operator state (all buffers and auxiliary
  /// structures).
  virtual size_t StateBytes() const { return 0; }

  /// Number of tuples currently held in operator state.
  virtual size_t StateTuples() const { return 0; }

  /// Short display name, e.g. "join", "delta-distinct".
  virtual std::string Name() const = 0;

  /// Overload degradation toggle (see StateBuffer::SetDegraded). Operators
  /// holding lazily maintained state forward the flag to those buffers;
  /// the default is a no-op because most operators must stay eager to
  /// observe expirations. Called on the shard worker thread at batch
  /// boundaries, never concurrently with Process/AdvanceTime.
  virtual void SetDegraded(bool on) { (void)on; }

  /// Accumulates heavy-light partitioning counters (DESIGN.md Section 16)
  /// from this operator's state buffers into `out`. Default: none.
  /// Called on the shard worker thread at publication barriers, never
  /// concurrently with Process/AdvanceTime.
  virtual void CollectHeavyLight(HeavyLightStats* out) const { (void)out; }

  /// Attaches the per-operator profile this operator reports into (set by
  /// Pipeline::EnableProfiling; null when the pipeline is unprofiled).
  /// Operators wrap their state-buffer insertions in
  /// `obs::InsertTimer timer(profile_);` so insertion cost is measured at
  /// the source and separable from processing (the paper's Section 6.1
  /// decomposition). The timer is inert unless the profiler marked the
  /// current event as sampled.
  void set_profile(obs::OpProfile* p) { profile_ = p; }

 protected:
  Operator() = default;

  obs::OpProfile* profile_ = nullptr;  ///< Borrowed; may be null.
};

}  // namespace upa

#endif  // UPA_OPS_OPERATOR_H_
