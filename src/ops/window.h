#ifndef UPA_OPS_WINDOW_H_
#define UPA_OPS_WINDOW_H_

#include <deque>
#include <memory>
#include <string>

#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Time-based sliding-window ingress: the leaf of every physical plan.
///
/// Every arriving tuple is stamped with its expiration timestamp
/// `exp = ts + window_size` (Section 2.2). What else happens depends on the
/// execution strategy:
///
///  - Direct approach (Section 2.3.2), used by DIRECT and UPA plans: the
///    window itself is not stored; downstream operators find expired state
///    through the `exp` timestamps.
///  - Negative tuple approach (Section 2.3.1), used by NT plans and by the
///    hybrid strategy above a negation: the window is materialized (FIFO,
///    since base windows expire in arrival order) and AdvanceTime() emits a
///    negative tuple for every expiration, which then propagates through
///    the plan.
///
/// A window_size of kNeverExpires models an unwindowed infinite stream.
class TimeWindowOp : public Operator {
 public:
  /// `materialize` selects the negative tuple approach.
  TimeWindowOp(Schema schema, Time window_size, bool materialize);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  /// Direct-approach windows store nothing and never emit on a tick;
  /// materialized (NT) windows emit expiration negatives and must keep
  /// exact per-tick AdvanceTime calls (DESIGN.md §15).
  bool SilentExpiration() const override { return !materialize_; }
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "window"; }

  Time window_size() const { return window_size_; }

 private:
  Schema schema_;
  Time window_size_;
  bool materialize_;
  std::unique_ptr<StateBuffer> state_;  // FIFO; only when materialize_.
};

/// Count-based sliding-window ingress (a Section 7 "future work" item,
/// implemented here as an extension): retains the N most recent tuples.
///
/// The expiration time of a count-based window tuple is not known on
/// arrival (it expires when the Nth later tuple arrives), so `exp` cannot
/// be stamped; instead the window materializes its content and emits a
/// negative tuple whenever an arrival evicts the oldest tuple. Downstream
/// processing therefore sees strict non-monotonic input and must run under
/// negative-tuple maintenance.
class CountWindowOp : public Operator {
 public:
  CountWindowOp(Schema schema, size_t count);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  /// Count windows slide on arrivals, never on time: ticks are no-ops.
  bool SilentExpiration() const override { return true; }
  size_t StateBytes() const override;
  size_t StateTuples() const override { return window_.size(); }
  std::string Name() const override { return "count-window"; }

  size_t count() const { return count_; }

 private:
  Schema schema_;
  size_t count_;
  std::deque<Tuple> window_;
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_OPS_WINDOW_H_
