#include "ops/groupby.h"

#include <utility>
#include <vector>

#include "common/macros.h"

namespace upa {

const Value GroupByOp::kSingleGroupLabel = Value{static_cast<int64_t>(0)};

std::string AggName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

namespace {
Schema MakeOutputSchema(const Schema& in, int group_col, AggKind agg,
                        int agg_col) {
  std::vector<Field> fields;
  if (group_col >= 0) {
    fields.push_back(in.field(group_col));
  } else {
    fields.push_back(Field{"group", ValueType::kInt});
  }
  const std::string agg_field =
      agg == AggKind::kCount ? "count_all"
                             : AggName(agg) + "_" + in.field(agg_col).name;
  fields.push_back(Field{agg_field, ValueType::kDouble});
  fields.push_back(Field{"count", ValueType::kInt});
  return Schema(std::move(fields));
}
}  // namespace

GroupByOp::GroupByOp(const Schema& input_schema, int group_col, AggKind agg,
                     int agg_col, std::unique_ptr<StateBuffer> input_state,
                     bool time_expiration)
    : schema_(MakeOutputSchema(input_schema, group_col, agg, agg_col)),
      group_col_(group_col),
      agg_(agg),
      agg_col_(agg_col),
      input_(std::move(input_state)),
      time_expiration_(time_expiration) {
  UPA_CHECK(group_col_ >= -1 && group_col_ < input_schema.num_fields());
  if (agg_ == AggKind::kCount) {
    agg_col_ = -1;
  } else {
    UPA_CHECK(agg_col_ >= 0 && agg_col_ < input_schema.num_fields());
    const ValueType vt = input_schema.field(agg_col_).type;
    UPA_CHECK(vt == ValueType::kInt || vt == ValueType::kDouble);
    agg_col_is_int_ = vt == ValueType::kInt;
  }
  UPA_CHECK(input_ != nullptr);
  UPA_CHECK(!input_->lazy());  // Aggregates must react to expirations.
}

const Value& GroupByOp::GroupLabelOf(const Tuple& t) const {
  if (group_col_ < 0) return kSingleGroupLabel;
  return t.fields[static_cast<size_t>(group_col_)];
}

double GroupByOp::CurrentAggregate(const Group& g) const {
  switch (agg_) {
    case AggKind::kCount:
      return static_cast<double>(g.count);
    case AggKind::kSum:
      return agg_col_is_int_ ? static_cast<double>(g.isum) : g.dsum;
    case AggKind::kAvg: {
      if (g.count == 0) return 0.0;
      const double sum = agg_col_is_int_ ? static_cast<double>(g.isum) : g.dsum;
      return sum / static_cast<double>(g.count);
    }
    case AggKind::kMin:
      return g.values.empty() ? 0.0 : AsNumeric(*g.values.begin());
    case AggKind::kMax:
      return g.values.empty() ? 0.0 : AsNumeric(*g.values.rbegin());
  }
  return 0.0;
}

void GroupByOp::ApplyDelta(const Tuple& t, int sign, Emitter& out) {
  Group& g = groups_[GroupLabelOf(t)];
  g.count += sign;
  UPA_DCHECK(g.count >= 0);
  if (agg_ != AggKind::kCount) {
    const Value& v = t.fields[static_cast<size_t>(agg_col_)];
    if (agg_ == AggKind::kSum || agg_ == AggKind::kAvg) {
      if (agg_col_is_int_) {
        g.isum += sign * AsInt(v);
      } else {
        g.dsum += sign * AsDouble(v);
      }
    } else {
      if (sign > 0) {
        g.values.insert(v);
      } else {
        auto it = g.values.find(v);
        UPA_DCHECK(it != g.values.end());
        g.values.erase(it);
      }
    }
  }
  // Report the updated result for this group; it replaces the previously
  // reported result (no negative tuples, Rule 4).
  Tuple result;
  result.ts = input_->now();
  result.exp = kNeverExpires;
  result.fields = {GroupLabelOf(t), Value{CurrentAggregate(g)}, Value{g.count}};
  out.Emit(result);
  if (g.count == 0) groups_.erase(GroupLabelOf(t));
}

void GroupByOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  if (t.negative) {
    // Explicit deletion (negative tuple approach, or STR input): remove
    // from state and report the decreased aggregate.
    const bool erased = input_->EraseOneMatch(t);
    UPA_DCHECK(erased);
    (void)erased;
    ApplyDelta(t, -1, out);
    return;
  }
  {
    obs::InsertTimer insert_timer(profile_);
    input_->Insert(t);
  }
  ApplyDelta(t, +1, out);
}

void GroupByOp::AdvanceTime(Time now, Emitter& out) {
  if (!time_expiration_) {
    input_->SetClock(now);
    return;
  }
  std::vector<Tuple> expired;
  input_->Advance(now, [&expired](const Tuple& t) { expired.push_back(t); });
  for (const Tuple& gone : expired) ApplyDelta(gone, -1, out);
}

size_t GroupByOp::StateBytes() const {
  size_t agg_bytes = groups_.size() * (sizeof(Value) + sizeof(Group) + 32);
  for (const auto& [label, g] : groups_) {
    agg_bytes += g.values.size() * (sizeof(Value) + 32);
  }
  return input_->StateBytes() + agg_bytes;
}

size_t GroupByOp::StateTuples() const { return input_->PhysicalCount(); }

}  // namespace upa
