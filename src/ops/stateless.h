#ifndef UPA_OPS_STATELESS_H_
#define UPA_OPS_STATELESS_H_

#include <string>
#include <vector>

#include "ops/operator.h"
#include "ops/predicate.h"

namespace upa {

/// Selection (Section 2.1): stateless, processes tuples on the fly,
/// dropping those that fail the conjunctive condition. Negative tuples are
/// filtered by the same condition: the deletion of a tuple that never
/// passed the filter must not reach downstream state.
///
/// Over a single window the operator is weakest non-monotonic (it neither
/// stores state nor reorders input), over an infinite stream it is
/// monotonic.
class SelectOp : public Operator {
 public:
  SelectOp(Schema schema, std::vector<Predicate> preds);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  bool SilentExpiration() const override { return true; }
  /// Batch-evaluated predicates: one virtual dispatch per run instead of
  /// one per tuple; emission order is the sequential order by definition.
  void ProcessBatch(int port, const Tuple* const* run, size_t n,
                    Emitter& out) override;
  std::string Name() const override { return "select"; }

  const std::vector<Predicate>& predicates() const { return preds_; }

 private:
  Schema schema_;
  std::vector<Predicate> preds_;
};

/// Projection (Section 2.1): stateless column pruning/reordering.
/// Duplicate-preserving (bag projection); compose with DistinctOp /
/// DeltaDistinctOp for set semantics.
class ProjectOp : public Operator {
 public:
  ProjectOp(const Schema& input_schema, std::vector<int> cols);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  bool SilentExpiration() const override { return true; }
  std::string Name() const override { return "project"; }

  const std::vector<int>& cols() const { return cols_; }

 private:
  Schema schema_;
  std::vector<int> cols_;
};

/// Non-blocking merge union (Section 2.1): propagates inputs up the plan.
/// Because the driver pushes tuples in global timestamp order and each
/// tuple is fully processed before the next, forwarding preserves arrival
/// order (the paper's merge requirement).
class UnionOp : public Operator {
 public:
  explicit UnionOp(Schema schema);

  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  bool SilentExpiration() const override { return true; }
  std::string Name() const override { return "union"; }

 private:
  Schema schema_;
};

}  // namespace upa

#endif  // UPA_OPS_STATELESS_H_
