#ifndef UPA_OPS_NEGATION_H_
#define UPA_OPS_NEGATION_H_

#include <list>
#include <map>
#include <memory>
#include <string>

#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Window negation (Section 2.1, Equation 1): with v1 and v2 the numbers
/// of live tuples with value v in the left (W1) and right (W2) inputs, the
/// answer contains max(v1 - v2, 0) tuples with value v drawn from W1.
///
/// Negation is the canonical strict non-monotonic operator: an arrival on
/// W2 can force a previously reported result out of the answer *before*
/// its window expiration, which is signalled downstream with a negative
/// tuple; conversely an expiration from W2 can add a W1 tuple to the
/// answer. The operator stores both inputs together with per-value
/// multiplicities (kept in an ordered map, matching the binary-searched
/// frequency counts of the Section 5.4.1 cost model).
///
/// Answer membership follows the paper's tie-breaking rules: when the
/// answer must shrink the *oldest* member leaves; when it may grow the
/// *youngest* (latest-expiring) live non-member enters.
///
/// `emit_expiration_negatives` distinguishes the two maintenance regimes:
///  - false (direct/UPA): only premature deletions emit negative tuples;
///    natural window expirations are left to downstream `exp` timestamps.
///  - true (negative tuple approach / hybrid above-negation execution,
///    Section 5.4.3): every removal from the answer emits a negative
///    tuple, so downstream state can be a hash table on the negation
///    attribute.
class NegationOp : public Operator {
 public:
  /// `left_col` / `right_col` are the negation attribute's positions in
  /// the two input schemas (they need not be equal: the output consists of
  /// W1 tuples, and W2 only contributes multiplicities of the attribute).
  NegationOp(Schema schema, int left_col, int right_col,
             std::unique_ptr<StateBuffer> left_state,
             std::unique_ptr<StateBuffer> right_state, bool time_expiration,
             bool emit_expiration_negatives);

  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "negation"; }

  int left_col() const { return col_[0]; }
  int right_col() const { return col_[1]; }

  /// Number of negative tuples this operator has emitted due to premature
  /// (non-window) expirations; exposed for the E3 crossover experiment.
  uint64_t premature_negatives() const { return premature_negatives_; }

 private:
  struct Entry {
    Tuple tuple;
    bool in_answer = false;
  };
  struct PerValue {
    std::list<Entry> w1;  // Live W1 tuples with this value, arrival order.
    int64_t v2 = 0;       // Live W2 multiplicity.
    int64_t answer = 0;   // Members of w1 currently in the answer.
  };

  void OnLeftGone(const Tuple& t, bool natural, Emitter& out);
  void OnRightGone(const Tuple& t, Emitter& out);

  /// Restores the Equation 1 invariant for `pv`, emitting the insertions
  /// and (negative-tuple) deletions this requires, then garbage-collects
  /// the map entry if it became empty.
  void Reconcile(const Value& v, Emitter& out);

  Schema schema_;
  int col_[2];
  std::unique_ptr<StateBuffer> state_[2];
  bool time_expiration_;
  bool emit_expiration_negatives_;
  std::map<Value, PerValue> values_;
  uint64_t premature_negatives_ = 0;
};

}  // namespace upa

#endif  // UPA_OPS_NEGATION_H_
