#ifndef UPA_OPS_GROUPBY_H_
#define UPA_OPS_GROUPBY_H_

#include <map>
#include <memory>
#include <set>
#include <string>

#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Supported incremental aggregate functions.
enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

std::string AggName(AggKind kind);

/// Group-by with a single aggregate (Section 2.1). Plain aggregation is
/// group-by with a single group (pass group_col = -1).
///
/// For each new input tuple the operator updates the aggregate of the
/// tuple's group and emits an updated result for that group; the new
/// result *replaces* the previously reported result for the group (Rule 4:
/// the output is weak non-monotonic and never contains negative tuples).
/// The input state must be maintained eagerly: expirations also change
/// aggregates and must be reported immediately.
///
/// Output schema: (group, agg, count). `count` is the number of live input
/// tuples in the group; a result with count = 0 means the group vanished
/// from the answer (relational GROUP BY drops empty groups), which lets
/// the GroupArrayView -- the paper's array indexed by group label -- drop
/// the entry without a negative tuple.
///
/// SUM over integer columns is kept in exact 64-bit arithmetic so that
/// incremental add/subtract maintenance cannot drift from recomputation;
/// MIN/MAX keep a per-group multiset to support deletions.
class GroupByOp : public Operator {
 public:
  GroupByOp(const Schema& input_schema, int group_col, AggKind agg,
            int agg_col, std::unique_ptr<StateBuffer> input_state,
            bool time_expiration);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "group-by"; }

  int group_col() const { return group_col_; }
  AggKind agg() const { return agg_; }
  int agg_col() const { return agg_col_; }

 private:
  struct Group {
    int64_t count = 0;
    int64_t isum = 0;
    double dsum = 0.0;
    std::multiset<Value> values;  // Only maintained for MIN/MAX.
  };

  static const Value kSingleGroupLabel;

  const Value& GroupLabelOf(const Tuple& t) const;
  void ApplyDelta(const Tuple& t, int sign, Emitter& out);
  double CurrentAggregate(const Group& g) const;

  Schema schema_;
  int group_col_;
  AggKind agg_;
  int agg_col_;
  bool agg_col_is_int_ = false;
  std::unique_ptr<StateBuffer> input_;
  bool time_expiration_;
  std::map<Value, Group> groups_;
};

}  // namespace upa

#endif  // UPA_OPS_GROUPBY_H_
