#ifndef UPA_OPS_DISTINCT_H_
#define UPA_OPS_DISTINCT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/key.h"
#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Duplicate elimination over a sliding window, classic implementation
/// (Section 2.1 / Figure 2): stores both the input and the current output.
/// At all times the output contains exactly one tuple per distinct key
/// present in the live input. When an output tuple expires, the input
/// buffer is probed for a live replacement with the same key, which is
/// inserted into the output state and appended to the output stream.
///
/// The input buffer may be maintained lazily; the output must be eager.
/// With `time_expiration = false` (negative tuple approach) expirations
/// arrive as negative input tuples instead: the corresponding output tuple
/// is deleted (emitting its negative downstream) and a replacement is
/// emitted, exactly the Figure 2 behaviour.
///
/// Batched execution (DESIGN.md Section 15): duplicate elimination is
/// order-dependent -- whether tuple i of a run is a duplicate depends on
/// the output state mutated by tuples 0..i-1 -- and its AdvanceTime()
/// emits (expiration negatives and replacement promotions are part of
/// the result stream). It therefore keeps the default sequential
/// ProcessBatch and exact per-tick AdvanceTime; batching around it still
/// amortizes the ingress/emitter plumbing but never reorders its work.
class DistinctOp : public Operator {
 public:
  DistinctOp(Schema schema, std::vector<int> key_cols,
             std::unique_ptr<StateBuffer> input_state,
             std::unique_ptr<StateBuffer> output_state, bool time_expiration);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "distinct"; }

  /// Only the input buffer may be lazy (the output must expire eagerly to
  /// drive replacement), so only it participates in degradation.
  void SetDegraded(bool on) override { input_->SetDegraded(on); }

  void CollectHeavyLight(HeavyLightStats* out) const override {
    input_->CollectHeavyLight(out);
    output_->CollectHeavyLight(out);
  }

  const std::vector<int>& key_cols() const { return key_cols_; }

 private:
  /// Probes the input for the latest-expiring live tuple matching `key`;
  /// returns true and fills `*found` when one exists.
  bool FindReplacement(const Key& key, const Tuple** found) const;

  /// Emits a replacement for an output tuple that just left the output.
  void Replace(const Tuple& gone, Emitter& out);

  Schema schema_;
  std::vector<int> key_cols_;
  std::unique_ptr<StateBuffer> input_;
  std::unique_ptr<StateBuffer> output_;
  bool time_expiration_;
  const Tuple* replacement_scratch_ = nullptr;
};

/// The update-pattern-aware duplicate elimination operator, denoted
/// delta-distinct after the paper's δ (Section 5.3.1). Valid for weakest
/// and weak non-monotonic inputs, i.e. when no premature expirations
/// (negative tuples) can occur.
///
/// Instead of storing the whole input, the operator stores the output plus
/// one *auxiliary* tuple per key: the latest-expiring duplicate seen since
/// the key entered the output. When an output tuple expires, the auxiliary
/// tuple (if still live) is promoted to the output and emitted, without
/// ever touching (or storing) the input. State is therefore at most twice
/// the output size.
///
/// Implementation note: the paper keeps "the youngest tuple with the same
/// distinct value", which for WKS inputs (arrival order == expiration
/// order) is the latest-expiring one. For WK inputs the two orders differ,
/// so this implementation keys the auxiliary slot on the *largest
/// expiration timestamp* (ties broken by recency), which preserves the
/// operator's guarantee -- the auxiliary tuple is live whenever any
/// duplicate is live -- under any negation-free input.
class DeltaDistinctOp : public Operator {
 public:
  DeltaDistinctOp(Schema schema, std::vector<int> key_cols,
                  std::unique_ptr<StateBuffer> output_state);

  int num_inputs() const override { return 1; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "delta-distinct"; }

  void CollectHeavyLight(HeavyLightStats* out) const override {
    output_->CollectHeavyLight(out);
  }

  const std::vector<int>& key_cols() const { return key_cols_; }

 private:
  Schema schema_;
  std::vector<int> key_cols_;
  std::unique_ptr<StateBuffer> output_;
  std::unordered_map<Key, Tuple, KeyHash> aux_;
  size_t aux_bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_OPS_DISTINCT_H_
