#include "ops/intersect.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace upa {

IntersectOp::IntersectOp(const Schema& schema,
                         std::unique_ptr<StateBuffer> left_state,
                         std::unique_ptr<StateBuffer> right_state,
                         bool time_expiration)
    : schema_(schema), time_expiration_(time_expiration) {
  state_[0] = std::move(left_state);
  state_[1] = std::move(right_state);
  UPA_CHECK(state_[0] != nullptr && state_[1] != nullptr);
}

void IntersectOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  const int other = 1 - port;
  const auto emit_match = [&](const Tuple& match) {
    Tuple result = t;  // Common schema; copy fields from the trigger.
    result.exp = std::min(t.exp, match.exp);
    out.Emit(result);
  };
  if (t.negative) {
    state_[port]->EraseOneMatch(t);
    state_[other]->ForEachLive([&](const Tuple& match) {
      if (match.FieldsEqual(t)) emit_match(match);
    });
    return;
  }
  {
    obs::InsertTimer insert_timer(profile_);
    state_[port]->Insert(t);
  }
  state_[other]->ForEachLive([&](const Tuple& match) {
    if (match.FieldsEqual(t)) emit_match(match);
  });
}

void IntersectOp::AdvanceTime(Time now, Emitter& out) {
  (void)out;
  if (time_expiration_) {
    state_[0]->Advance(now, nullptr);
    state_[1]->Advance(now, nullptr);
  } else {
    state_[0]->SetClock(now);
    state_[1]->SetClock(now);
  }
}

size_t IntersectOp::StateBytes() const {
  return state_[0]->StateBytes() + state_[1]->StateBytes();
}

size_t IntersectOp::StateTuples() const {
  return state_[0]->PhysicalCount() + state_[1]->PhysicalCount();
}

}  // namespace upa
