#ifndef UPA_OPS_INTERSECT_H_
#define UPA_OPS_INTERSECT_H_

#include <memory>
#include <string>

#include "ops/operator.h"
#include "state/buffer.h"

namespace upa {

/// Window intersection (Section 2.1): like the join, it stores both inputs
/// and each new arrival probes the other input's buffer for matching
/// (field-identical) tuples, appending results to the output.
///
/// Semantics note: the paper describes intersection operationally as the
/// probe-on-arrival binary operator above, i.e. one result per matching
/// (W1, W2) *pair*, projected onto the common schema, expiring when either
/// constituent does (exp = min). That pair-based definition is what keeps
/// the operator weak non-monotonic -- expirations stay predictable from
/// `exp` timestamps. (A min(multiplicity) bag intersection would need
/// premature deletions and hence be strict non-monotonic; compose
/// DistinctOp on top for set semantics.)
class IntersectOp : public Operator {
 public:
  IntersectOp(const Schema& schema, std::unique_ptr<StateBuffer> left_state,
              std::unique_ptr<StateBuffer> right_state, bool time_expiration);

  int num_inputs() const override { return 2; }
  const Schema& output_schema() const override { return schema_; }
  void Process(int port, const Tuple& t, Emitter& out) override;
  void AdvanceTime(Time now, Emitter& out) override;
  /// Like the join: state expires silently, results carry exp timestamps,
  /// so the batch path may defer the sweep (DESIGN.md §15).
  bool SilentExpiration() const override { return true; }
  void AdvanceClock(Time now) override {
    state_[0]->SetClock(now);
    state_[1]->SetClock(now);
  }
  size_t StateBytes() const override;
  size_t StateTuples() const override;
  std::string Name() const override { return "intersect"; }

  void SetDegraded(bool on) override {
    state_[0]->SetDegraded(on);
    state_[1]->SetDegraded(on);
  }

 private:
  Schema schema_;
  std::unique_ptr<StateBuffer> state_[2];
  bool time_expiration_;
};

}  // namespace upa

#endif  // UPA_OPS_INTERSECT_H_
