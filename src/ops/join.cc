#include "ops/join.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace upa {

JoinOp::JoinOp(const Schema& left, const Schema& right, int left_col,
               int right_col, std::unique_ptr<StateBuffer> left_state,
               std::unique_ptr<StateBuffer> right_state, bool time_expiration)
    : schema_(Schema::Concat(left, right)),
      col_{left_col, right_col},
      left_width_(left.num_fields()),
      right_width_(right.num_fields()),
      time_expiration_(time_expiration) {
  UPA_CHECK(left_col >= 0 && left_col < left.num_fields());
  UPA_CHECK(right_col >= 0 && right_col < right.num_fields());
  state_[0] = std::move(left_state);
  state_[1] = std::move(right_state);
  UPA_CHECK(state_[0] != nullptr && state_[1] != nullptr);
}

Tuple JoinOp::Combine(int port, const Tuple& t, const Tuple& match) const {
  const Tuple& l = port == 0 ? t : match;
  const Tuple& r = port == 0 ? match : t;
  Tuple result;
  result.ts = t.ts;  // Generation time: the triggering arrival/deletion.
  result.exp = std::min(l.exp, r.exp);
  result.negative = t.negative;
  result.fields.reserve(static_cast<size_t>(left_width_ + right_width_));
  result.fields.insert(result.fields.end(), l.fields.begin(), l.fields.end());
  result.fields.insert(result.fields.end(), r.fields.begin(), r.fields.end());
  return result;
}

void JoinOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  const int other = 1 - port;
  if (t.negative) {
    // Explicit deletion: undo every result this tuple participated in.
    state_[port]->EraseOneMatch(t);
    state_[other]->ForEachMatch(col_[other],
                                t.fields[static_cast<size_t>(col_[port])],
                                [&](const Tuple& match) {
                                  out.Emit(Combine(port, t, match));
                                });
    return;
  }
  {
    obs::InsertTimer insert_timer(profile_);
    state_[port]->Insert(t);
  }
  state_[other]->ForEachMatch(col_[other],
                              t.fields[static_cast<size_t>(col_[port])],
                              [&](const Tuple& match) {
                                out.Emit(Combine(port, t, match));
                              });
}

void JoinOp::ProcessBatch(int port, const Tuple* const* run, size_t n,
                          Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  for (size_t i = 0; i < n; ++i) {
    if (run[i]->negative) {
      // Deletions interleave with probes; keep exact sequential order.
      for (size_t j = 0; j < n; ++j) Process(port, *run[j], out);
      return;
    }
  }
  const int other = 1 - port;
  {
    obs::InsertTimer insert_timer(profile_);
    for (size_t i = 0; i < n; ++i) state_[port]->Insert(*run[i]);
  }
  for (size_t i = 0; i < n; ++i) {
    const Tuple& t = *run[i];
    state_[other]->ForEachMatch(col_[other],
                                t.fields[static_cast<size_t>(col_[port])],
                                [&](const Tuple& match) {
                                  out.Emit(Combine(port, t, match));
                                });
  }
}

void JoinOp::AdvanceClock(Time now) {
  state_[0]->SetClock(now);
  state_[1]->SetClock(now);
}

void JoinOp::AdvanceTime(Time now, Emitter& out) {
  (void)out;  // Join state expires silently; results carry exp timestamps.
  if (time_expiration_) {
    state_[0]->Advance(now, nullptr);
    state_[1]->Advance(now, nullptr);
  } else {
    state_[0]->SetClock(now);
    state_[1]->SetClock(now);
  }
}

size_t JoinOp::StateBytes() const {
  return state_[0]->StateBytes() + state_[1]->StateBytes();
}

size_t JoinOp::StateTuples() const {
  return state_[0]->PhysicalCount() + state_[1]->PhysicalCount();
}

}  // namespace upa
