#include "ops/stateless.h"

#include <utility>

#include "common/macros.h"

namespace upa {

SelectOp::SelectOp(Schema schema, std::vector<Predicate> preds)
    : schema_(std::move(schema)), preds_(std::move(preds)) {
  for (const Predicate& p : preds_) {
    UPA_CHECK(p.col >= 0 && p.col < schema_.num_fields());
  }
}

void SelectOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  if (EvalAll(preds_, t)) out.Emit(t);
}

void SelectOp::ProcessBatch(int port, const Tuple* const* run, size_t n,
                            Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  for (size_t i = 0; i < n; ++i) {
    if (EvalAll(preds_, *run[i])) out.Emit(*run[i]);
  }
}

void SelectOp::AdvanceTime(Time now, Emitter& out) {
  (void)now;
  (void)out;
}

ProjectOp::ProjectOp(const Schema& input_schema, std::vector<int> cols)
    : schema_(input_schema.Project(cols)), cols_(std::move(cols)) {}

void ProjectOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0);
  (void)port;
  Tuple r;
  r.ts = t.ts;
  r.exp = t.exp;
  r.negative = t.negative;
  r.fields.reserve(cols_.size());
  for (int c : cols_) r.fields.push_back(t.fields[static_cast<size_t>(c)]);
  out.Emit(r);
}

void ProjectOp::AdvanceTime(Time now, Emitter& out) {
  (void)now;
  (void)out;
}

UnionOp::UnionOp(Schema schema) : schema_(std::move(schema)) {}

void UnionOp::Process(int port, const Tuple& t, Emitter& out) {
  UPA_DCHECK(port == 0 || port == 1);
  (void)port;
  out.Emit(t);
}

void UnionOp::AdvanceTime(Time now, Emitter& out) {
  (void)now;
  (void)out;
}

}  // namespace upa
