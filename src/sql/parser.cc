#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace upa {

namespace {

// --- Tokenizer. ---

enum class TokKind { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // Identifier (as written), symbol, or string body.
  bool is_float = false;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;  // Byte offset of the token's first character.
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Splits `text` into tokens; returns false and sets *error (and
/// *error_offset to the byte where scanning stopped) on bad input.
bool Tokenize(const std::string& text, std::vector<Token>* out,
              std::string* error, size_t* error_offset) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i + 1;
      while (j < n && IsIdentChar(text[j])) ++j;
      Token t;
      t.kind = TokKind::kIdent;
      t.text = text.substr(i, j - i);
      t.offset = i;
      out->push_back(std::move(t));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t j = i + 1;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.')) {
        is_float |= text[j] == '.';
        ++j;
      }
      Token t;
      t.kind = TokKind::kNumber;
      t.text = text.substr(i, j - i);
      t.offset = i;
      t.is_float = is_float;
      if (is_float) {
        t.float_value = std::strtod(t.text.c_str(), nullptr);
      } else {
        t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
      }
      out->push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      const size_t close = text.find('\'', i + 1);
      if (close == std::string::npos) {
        *error = "unterminated string literal";
        *error_offset = i;
        return false;
      }
      Token t;
      t.kind = TokKind::kString;
      t.text = text.substr(i + 1, close - i - 1);
      t.offset = i;
      out->push_back(std::move(t));
      i = close + 1;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
        Token t;
        t.kind = TokKind::kSymbol;
        t.text = two == "<>" ? "!=" : two;
        t.offset = i;
        out->push_back(std::move(t));
        i += 2;
        continue;
      }
    }
    const std::string one(1, c);
    if (one == "," || one == "." || one == "(" || one == ")" || one == "[" ||
        one == "]" || one == "*" || one == "=" || one == "<" || one == ">") {
      Token t;
      t.kind = TokKind::kSymbol;
      t.text = one;
      t.offset = i;
      out->push_back(std::move(t));
      ++i;
      continue;
    }
    *error = "unexpected character '" + one + "'";
    *error_offset = i;
    return false;
  }
  Token end;
  end.offset = n;
  out->push_back(std::move(end));  // kEnd sentinel.
  return true;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

// --- Parser. ---

/// A FROM-list entry after resolution.
struct FromSource {
  std::string name;   // As written (used for qualified column refs).
  SourceDecl decl;
  bool windowed = false;
  bool count_window = false;
  Time range = 0;
  size_t rows = 0;
};

/// A resolved column reference: which FROM source, which column.
struct ColumnRef {
  int source = 0;
  int col = 0;
};

/// One WHERE conjunct: either column-vs-literal or column-vs-column.
struct WherePred {
  bool is_join = false;
  ColumnRef lhs;
  CmpOp op = CmpOp::kEq;
  Value rhs_literal;
  ColumnRef rhs_col;  // Valid when is_join.
};

struct AggSpec {
  bool present = false;
  AggKind kind = AggKind::kCount;
  int agg_col = -1;        // Resolved later (-1 for COUNT(*)).
  std::string agg_name;    // Column name inside the aggregate.
  size_t agg_name_at = 0;  // Byte offset of agg_name, for resolve errors.
};

struct Projection {
  bool star = false;
  bool distinct = false;
  std::vector<std::string> columns;  // Unresolved names (possibly a.b).
  // Byte offset of each entry of `columns`: resolution happens after the
  // whole statement is parsed, so errors would otherwise anchor at the
  // end of the text instead of the offending name.
  std::vector<size_t> column_offsets;
  AggSpec agg;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens,
         const std::map<std::string, SourceDecl>& sources)
      : tokens_(std::move(tokens)), sources_(sources) {}

  ParseResult Run() {
    PlanPtr left = ParseSelect();
    if (left == nullptr) return Fail();
    if (MatchKeyword("UNION") || MatchKeyword("EXCEPT") ||
        MatchKeyword("INTERSECT")) {
      const std::string op = Upper(tokens_[pos_ - 1].text);
      PlanPtr right = ParseSelect();
      if (right == nullptr) return Fail();
      if (!AtEnd()) return FailWith("trailing input after set operation");
      if (op == "UNION") {
        if (!(left->schema == right->schema)) {
          return FailWith("UNION operands must have identical schemas");
        }
        return Done(MakeUnion(std::move(left), std::move(right)));
      }
      if (op == "INTERSECT") {
        if (!(left->schema == right->schema)) {
          return FailWith("INTERSECT operands must have identical schemas");
        }
        return Done(MakeIntersect(std::move(left), std::move(right)));
      }
      // EXCEPT: the paper's attribute-based negation.
      if (left->schema.num_fields() != 1 || right->schema.num_fields() != 1) {
        return FailWith(
            "EXCEPT requires single-column operands (project first); it "
            "maps to the attribute-based negation of Equation 1");
      }
      if (left->schema.field(0).type != right->schema.field(0).type) {
        return FailWith("EXCEPT operand column types differ");
      }
      return Done(MakeNegate(std::move(left), std::move(right), 0, 0));
    }
    if (!AtEnd()) return FailWith("trailing input after query");
    return Done(std::move(left));
  }

 private:
  // -- Token helpers. --

  const Token& Peek() const { return tokens_[pos_]; }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool MatchSymbol(const std::string& s) {
    if (Peek().kind == TokKind::kSymbol && Peek().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().kind == TokKind::kIdent && Upper(Peek().text) == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokKind::kIdent && Upper(Peek().text) == kw;
  }

  bool TakeIdent(std::string* out) {
    if (Peek().kind != TokKind::kIdent) return false;
    *out = Peek().text;
    ++pos_;
    return true;
  }

  // -- Error plumbing (no exceptions). --

  PlanPtr Error(const std::string& message) {
    return ErrorAt(message, Peek().offset);
  }

  /// Error anchored at an explicit byte offset -- for names that were
  /// consumed (or are resolved later) by the time the failure surfaces.
  PlanPtr ErrorAt(const std::string& message, size_t offset) {
    if (error_.empty()) {
      error_ = message;
      error_offset_ = offset;
    }
    return nullptr;
  }

  ParseResult Fail() {
    ParseResult r;
    r.error = error_.empty() ? "parse error" : error_;
    r.error_offset = error_.empty() ? Peek().offset : error_offset_;
    return r;
  }

  ParseResult FailWith(const std::string& message) {
    error_ = message;
    error_offset_ = Peek().offset;
    return Fail();
  }

  ParseResult Done(PlanPtr plan) {
    ParseResult r;
    r.plan = std::move(plan);
    return r;
  }

  // -- Grammar productions. --

  PlanPtr ParseSelect() {
    if (!MatchKeyword("SELECT")) return Error("expected SELECT");
    Projection proj;
    if (!ParseProjection(&proj)) return nullptr;
    if (!MatchKeyword("FROM")) return Error("expected FROM");
    std::vector<FromSource> from;
    if (!ParseFromList(&from)) return nullptr;
    std::vector<WherePred> preds;
    if (MatchKeyword("WHERE") && !ParseConjunction(from, &preds)) {
      return nullptr;
    }
    std::string group_col_name;
    size_t group_at = 0;
    bool has_group_by = false;
    if (MatchKeyword("GROUP")) {
      if (!MatchKeyword("BY")) return Error("expected BY after GROUP");
      if (!ParseColumnName(&group_col_name, &group_at)) {
        return Error("expected column after GROUP BY");
      }
      has_group_by = true;
    }
    return Assemble(proj, std::move(from), preds, has_group_by,
                    group_col_name, group_at);
  }

  bool ParseProjection(Projection* proj) {
    if (MatchSymbol("*")) {
      proj->star = true;
      return true;
    }
    proj->distinct = MatchKeyword("DISTINCT");
    for (;;) {
      // Aggregate?
      for (const auto& [kw, kind] :
           {std::pair<std::string, AggKind>{"COUNT", AggKind::kCount},
            {"SUM", AggKind::kSum},
            {"AVG", AggKind::kAvg},
            {"MIN", AggKind::kMin},
            {"MAX", AggKind::kMax}}) {
        if (PeekKeyword(kw)) {
          ++pos_;
          if (!MatchSymbol("(")) {
            Error("expected ( after aggregate");
            return false;
          }
          if (proj->agg.present) {
            Error("only one aggregate per query is supported");
            return false;
          }
          proj->agg.present = true;
          proj->agg.kind = kind;
          if (MatchSymbol("*")) {
            if (kind != AggKind::kCount) {
              Error("only COUNT accepts *");
              return false;
            }
          } else if (!ParseColumnName(&proj->agg.agg_name,
                                      &proj->agg.agg_name_at)) {
            Error("expected column inside aggregate");
            return false;
          }
          if (!MatchSymbol(")")) {
            Error("expected ) after aggregate");
            return false;
          }
          goto item_done;
        }
      }
      {
        std::string col;
        size_t col_at = 0;
        if (!ParseColumnName(&col, &col_at)) {
          Error("expected column or aggregate in SELECT list");
          return false;
        }
        proj->columns.push_back(col);
        proj->column_offsets.push_back(col_at);
      }
    item_done:
      if (!MatchSymbol(",")) break;
    }
    if (proj->distinct && proj->agg.present) {
      Error("DISTINCT with aggregates is not supported");
      return false;
    }
    return true;
  }

  bool ParseColumnName(std::string* out, size_t* at = nullptr) {
    if (at != nullptr) *at = Peek().offset;
    std::string name;
    if (!TakeIdent(&name)) return false;
    if (MatchSymbol(".")) {
      std::string col;
      if (!TakeIdent(&col)) {
        Error("expected column after '.'");
        return false;
      }
      name += "." + col;
    }
    *out = name;
    return true;
  }

  bool ParseFromList(std::vector<FromSource>* from) {
    do {
      FromSource src;
      const size_t name_at = Peek().offset;
      if (!TakeIdent(&src.name)) {
        Error("expected source name in FROM");
        return false;
      }
      auto it = sources_.find(src.name);
      if (it == sources_.end()) {
        ErrorAt("unknown source '" + src.name + "'", name_at);
        return false;
      }
      src.decl = it->second;
      if (MatchSymbol("[")) {
        if (src.decl.kind != SourceKind::kStream) {
          ErrorAt("relation '" + src.name + "' cannot take a window",
                  name_at);
          return false;
        }
        if (MatchKeyword("RANGE")) {
          if (Peek().kind != TokKind::kNumber || Peek().is_float ||
              Peek().int_value <= 0) {
            Error("RANGE requires a positive integer");
            return false;
          }
          src.windowed = true;
          src.range = Peek().int_value;
          ++pos_;
        } else if (MatchKeyword("ROWS")) {
          if (Peek().kind != TokKind::kNumber || Peek().is_float ||
              Peek().int_value <= 0) {
            Error("ROWS requires a positive integer");
            return false;
          }
          src.windowed = true;
          src.count_window = true;
          src.rows = static_cast<size_t>(Peek().int_value);
          ++pos_;
        } else {
          Error("expected RANGE or ROWS in window clause");
          return false;
        }
        if (!MatchSymbol("]")) {
          Error("expected ] after window clause");
          return false;
        }
      }
      from->push_back(std::move(src));
    } while (MatchSymbol(","));
    if (from->size() > 2) {
      Error("at most two sources per SELECT (compose queries instead)");
      return false;
    }
    return true;
  }

  /// Resolves "name" or "source.name" against the FROM sources. `at` is
  /// the byte offset where the reference appeared (errors anchor there).
  bool ResolveColumn(const std::vector<FromSource>& from,
                     const std::string& spec, size_t at, ColumnRef* out) {
    const size_t dot = spec.find('.');
    if (dot != std::string::npos) {
      const std::string source = spec.substr(0, dot);
      const std::string col = spec.substr(dot + 1);
      for (size_t s = 0; s < from.size(); ++s) {
        if (from[s].name == source) {
          const int c = from[s].decl.schema.IndexOf(col);
          if (c < 0) {
            ErrorAt("no column '" + col + "' in '" + source + "'", at);
            return false;
          }
          out->source = static_cast<int>(s);
          out->col = c;
          return true;
        }
      }
      ErrorAt("unknown source '" + source + "' in column reference", at);
      return false;
    }
    int hits = 0;
    for (size_t s = 0; s < from.size(); ++s) {
      const int c = from[s].decl.schema.IndexOf(spec);
      if (c >= 0) {
        ++hits;
        out->source = static_cast<int>(s);
        out->col = c;
      }
    }
    if (hits == 0) {
      ErrorAt("unknown column '" + spec + "'", at);
      return false;
    }
    if (hits > 1) {
      ErrorAt("ambiguous column '" + spec + "' (qualify with the source name)",
              at);
      return false;
    }
    return true;
  }

  bool ParseConjunction(const std::vector<FromSource>& from,
                        std::vector<WherePred>* preds) {
    do {
      std::string lhs_name;
      size_t lhs_at = 0;
      if (!ParseColumnName(&lhs_name, &lhs_at)) {
        Error("expected column in WHERE predicate");
        return false;
      }
      WherePred pred;
      if (!ResolveColumn(from, lhs_name, lhs_at, &pred.lhs)) return false;
      if (MatchSymbol("=")) {
        pred.op = CmpOp::kEq;
      } else if (MatchSymbol("!=")) {
        pred.op = CmpOp::kNe;
      } else if (MatchSymbol("<=")) {
        pred.op = CmpOp::kLe;
      } else if (MatchSymbol(">=")) {
        pred.op = CmpOp::kGe;
      } else if (MatchSymbol("<")) {
        pred.op = CmpOp::kLt;
      } else if (MatchSymbol(">")) {
        pred.op = CmpOp::kGt;
      } else {
        Error("expected comparison operator in WHERE predicate");
        return false;
      }
      const ValueType lhs_type = from[static_cast<size_t>(pred.lhs.source)]
                                     .decl.schema.field(pred.lhs.col)
                                     .type;
      if (Peek().kind == TokKind::kNumber) {
        if (Peek().is_float) {
          if (lhs_type != ValueType::kDouble) {
            Error("numeric literal type does not match column type");
            return false;
          }
          pred.rhs_literal = Value{Peek().float_value};
        } else if (lhs_type == ValueType::kDouble) {
          pred.rhs_literal = Value{static_cast<double>(Peek().int_value)};
        } else if (lhs_type == ValueType::kInt) {
          pred.rhs_literal = Value{Peek().int_value};
        } else {
          Error("numeric literal compared against a string column");
          return false;
        }
        ++pos_;
      } else if (Peek().kind == TokKind::kString) {
        if (lhs_type != ValueType::kString) {
          Error("string literal compared against a non-string column");
          return false;
        }
        pred.rhs_literal = Value{Peek().text};
        ++pos_;
      } else {
        // Column-vs-column: join predicate.
        std::string rhs_name;
        size_t rhs_at = 0;
        if (!ParseColumnName(&rhs_name, &rhs_at)) {
          Error("expected literal or column on the right of the predicate");
          return false;
        }
        if (!ResolveColumn(from, rhs_name, rhs_at, &pred.rhs_col)) {
          return false;
        }
        if (pred.op != CmpOp::kEq) {
          Error("column-to-column predicates must be equalities");
          return false;
        }
        pred.is_join = true;
      }
      preds->push_back(std::move(pred));
    } while (MatchKeyword("AND"));
    return true;
  }

  /// Builds the leaf plan for one FROM source.
  PlanPtr BuildSource(const FromSource& src) {
    switch (src.decl.kind) {
      case SourceKind::kStream: {
        PlanPtr stream = MakeStream(src.decl.stream_id, src.decl.schema);
        if (!src.windowed) return stream;
        if (src.count_window) {
          return MakeCountWindow(std::move(stream), src.rows);
        }
        return MakeWindow(std::move(stream), src.range);
      }
      case SourceKind::kNrr:
        return MakeRelation(src.decl.stream_id, src.decl.schema, false);
      case SourceKind::kRelation:
        return MakeRelation(src.decl.stream_id, src.decl.schema, true);
    }
    return nullptr;
  }

  /// Assembles the logical plan for one SELECT block.
  PlanPtr Assemble(const Projection& proj, std::vector<FromSource> from,
                   const std::vector<WherePred>& preds, bool has_group_by,
                   const std::string& group_col_name, size_t group_at) {
    // Partition the WHERE conjuncts.
    std::vector<Predicate> pre[2];
    std::vector<const WherePred*> joins;
    for (const WherePred& p : preds) {
      if (p.is_join) {
        if (p.lhs.source == p.rhs_col.source) {
          return Error(
              "same-source column equality is not supported; only join "
              "predicates may compare two columns");
        }
        joins.push_back(&p);
        continue;
      }
      pre[p.lhs.source].push_back(Predicate{p.lhs.col, p.op, p.rhs_literal});
    }

    PlanPtr base;
    const bool is_join_query = from.size() == 2;
    if (!is_join_query) {
      if (!joins.empty()) {
        return Error("join predicate with a single source");
      }
      base = BuildSource(from[0]);
      if (base->kind == PlanOpKind::kRelation) {
        return Error("a relation cannot be queried on its own; join it "
                     "with a stream");
      }
      if (!pre[0].empty()) base = MakeSelect(std::move(base), pre[0]);
    } else {
      if (joins.size() != 1) {
        return Error("a two-source query needs exactly one join equality");
      }
      if (from[0].decl.kind != SourceKind::kStream) {
        return Error("a relation must be the second source of a join");
      }
      const WherePred& j = *joins[0];
      const ColumnRef l = j.lhs.source == 0 ? j.lhs : j.rhs_col;
      const ColumnRef r = j.lhs.source == 0 ? j.rhs_col : j.lhs;
      PlanPtr left = BuildSource(from[0]);
      PlanPtr right = BuildSource(from[1]);
      if (!pre[0].empty()) left = MakeSelect(std::move(left), pre[0]);
      if (!pre[1].empty()) {
        if (right->kind == PlanOpKind::kRelation) {
          // Predicates on the table side apply above the join (tables are
          // leaves); rebase below.
          // Handled after the join; push into post list instead.
        } else {
          right = MakeSelect(std::move(right), pre[1]);
          pre[1].clear();
        }
      }
      const int lw = left->schema.num_fields();
      base = MakeJoin(std::move(left), std::move(right), l.col, r.col);
      if (!pre[1].empty()) {
        std::vector<Predicate> rebased;
        for (Predicate p : pre[1]) {
          p.col += lw;
          rebased.push_back(std::move(p));
        }
        base = MakeSelect(std::move(base), rebased);
      }
    }

    // Column resolution against the (possibly joined) output schema.
    const int lw = is_join_query ? from[0].decl.schema.num_fields() : 0;
    auto combined_index = [&](const ColumnRef& ref) {
      return ref.source == 0 ? ref.col : lw + ref.col;
    };

    // Aggregation.
    if (proj.agg.present || has_group_by) {
      if (!proj.agg.present) {
        return Error("GROUP BY requires an aggregate in the SELECT list");
      }
      if (proj.columns.size() > (has_group_by ? 1u : 0u)) {
        return Error("SELECT list may contain only the group column and "
                     "one aggregate");
      }
      int group_col = -1;
      if (has_group_by) {
        ColumnRef ref;
        if (!ResolveColumn(from, group_col_name, group_at, &ref)) {
          return nullptr;
        }
        group_col = combined_index(ref);
        if (!proj.columns.empty()) {
          ColumnRef sel_ref;
          if (!ResolveColumn(from, proj.columns[0], proj.column_offsets[0],
                             &sel_ref)) {
            return nullptr;
          }
          if (combined_index(sel_ref) != group_col) {
            return Error("the non-aggregate SELECT column must be the GROUP "
                         "BY column");
          }
        }
      }
      int agg_col = -1;
      if (proj.agg.kind != AggKind::kCount || !proj.agg.agg_name.empty()) {
        if (proj.agg.agg_name.empty()) {
          agg_col = -1;  // COUNT(*)
        } else {
          ColumnRef ref;
          if (!ResolveColumn(from, proj.agg.agg_name, proj.agg.agg_name_at,
                             &ref)) {
            return nullptr;
          }
          agg_col = combined_index(ref);
          const ValueType t = base->schema.field(agg_col).type;
          if (proj.agg.kind != AggKind::kCount && t == ValueType::kString) {
            return Error("cannot aggregate a string column");
          }
        }
      }
      return MakeGroupBy(std::move(base), group_col, proj.agg.kind, agg_col);
    }

    // Plain projection.
    if (!proj.star) {
      std::vector<int> cols;
      for (size_t i = 0; i < proj.columns.size(); ++i) {
        ColumnRef ref;
        if (!ResolveColumn(from, proj.columns[i], proj.column_offsets[i],
                           &ref)) {
          return nullptr;
        }
        cols.push_back(combined_index(ref));
      }
      base = MakeProject(std::move(base), cols);
    }
    if (proj.distinct) {
      std::vector<int> keys;
      for (int i = 0; i < base->schema.num_fields(); ++i) keys.push_back(i);
      base = MakeDistinct(std::move(base), keys);
    }
    return base;
  }

  std::vector<Token> tokens_;
  const std::map<std::string, SourceDecl>& sources_;
  size_t pos_ = 0;
  std::string error_;
  size_t error_offset_ = ParseResult::kNoOffset;
};

}  // namespace

ParseResult ParseQuery(const std::string& text,
                       const std::map<std::string, SourceDecl>& sources) {
  std::vector<Token> tokens;
  ParseResult result;
  if (!Tokenize(text, &tokens, &result.error, &result.error_offset)) {
    return result;
  }
  Parser parser(std::move(tokens), sources);
  ParseResult parsed = parser.Run();
  if (!parsed.ok()) return parsed;
  AnnotatePatterns(parsed.plan.get());
  if (!IsValidPlan(*parsed.plan)) {
    parsed.plan.reset();
    parsed.error = "query violates planner constraints (Section 5.4.2)";
    parsed.error_offset = 0;  // A whole-plan property, not one token's.
  }
  return parsed;
}

std::string CaretContext(const std::string& text, size_t offset) {
  if (offset == ParseResult::kNoOffset) return "";
  if (offset > text.size()) offset = text.size();
  size_t line_start = text.rfind('\n', offset == 0 ? 0 : offset - 1);
  line_start = line_start == std::string::npos ? 0 : line_start + 1;
  size_t line_end = text.find('\n', offset);
  if (line_end == std::string::npos) line_end = text.size();
  std::string excerpt = text.substr(line_start, line_end - line_start);
  for (char& c : excerpt) {
    if (c == '\t') c = ' ';
  }
  std::string out = excerpt;
  out += '\n';
  out += std::string(offset - line_start, ' ');
  out += "^~~~";
  return out;
}

TokenizeResult TokenizeQuery(const std::string& text) {
  TokenizeResult r;
  std::vector<Token> raw;
  if (!Tokenize(text, &raw, &r.error, &r.error_offset)) return r;
  r.tokens.reserve(raw.size());
  for (const Token& t : raw) {
    if (t.kind == TokKind::kEnd) continue;
    SqlToken s;
    switch (t.kind) {
      case TokKind::kIdent:
        s.kind = "identifier";
        break;
      case TokKind::kNumber:
        s.kind = "number";
        break;
      case TokKind::kString:
        s.kind = "string";
        break;
      default:
        s.kind = "symbol";
        break;
    }
    s.text = t.text;
    s.offset = t.offset;
    r.tokens.push_back(std::move(s));
  }
  return r;
}

}  // namespace upa
