#include "sql/session/session.h"

#include <cstdio>
#include <utility>

#include "core/cost_model.h"

namespace upa {
namespace sqlsession {

namespace {

/// %.3g keeps the EXPLAIN goldens stable across platforms while still
/// showing enough of an estimate to compare plans by.
std::string Fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

std::string SchemaWithTypes(const Schema& s) {
  std::string out = "(";
  for (int i = 0; i < s.num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += s.field(i).name;
    out += ' ';
    out += TypeName(s.field(i).type);
  }
  out += ")";
  return out;
}

/// The operator label of logical_plan.cc's Render (kind + parameters).
/// Duplicated here because that renderer is file-local; explain_golden
/// tests pin the two against each other via PlanNode::ToString.
std::string NodeLabel(const PlanNode& n) {
  std::string out;
  switch (n.kind) {
    case PlanOpKind::kStream:
      out = "stream S" + std::to_string(n.stream_id);
      break;
    case PlanOpKind::kRelation:
      out = std::string("relation ") + (n.retroactive ? "R" : "NRR") +
            std::to_string(n.stream_id);
      break;
    case PlanOpKind::kWindow:
      out = "window [" + std::to_string(n.window_size) + "]";
      break;
    case PlanOpKind::kCountWindow:
      out = "count-window [#" + std::to_string(n.count) + "]";
      break;
    case PlanOpKind::kSelect:
      out = "select";
      for (const Predicate& p : n.preds) out += " " + p.ToString();
      break;
    case PlanOpKind::kProject:
      out = "project";
      break;
    case PlanOpKind::kUnion:
      out = "union";
      break;
    case PlanOpKind::kJoin:
      out = "join $" + std::to_string(n.left_col) + "=$" +
            std::to_string(n.right_col);
      break;
    case PlanOpKind::kIntersect:
      out = "intersect";
      break;
    case PlanOpKind::kDistinct:
      out = "distinct";
      break;
    case PlanOpKind::kGroupBy:
      out = "group-by";
      break;
    case PlanOpKind::kNegate:
      out = "negate $" + std::to_string(n.left_col) + " not-in $" +
            std::to_string(n.right_col);
      break;
  }
  return out;
}

void RenderExplainNode(const PlanNode& n, const Catalog& stats, int depth,
                       std::string* out) {
  const NodeEstimate est = EstimateNode(n, stats);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += NodeLabel(n);
  *out += "   <" + PatternName(n.pattern) + ">";
  *out += "  rate=" + Fmt(est.rate) + " size=" + Fmt(est.size) + "\n";
  for (const auto& c : n.children) {
    RenderExplainNode(*c, stats, depth + 1, out);
  }
}

bool ContainsNrrLeaf(const PlanNode& n) {
  if (n.kind == PlanOpKind::kRelation && !n.retroactive) return true;
  for (const auto& c : n.children) {
    if (ContainsNrrLeaf(*c)) return true;
  }
  return false;
}

SqlResult Ok(std::string text) {
  SqlResult r;
  r.ok = true;
  r.text = std::move(text);
  return r;
}

SqlResult Fail(std::string error,
               size_t offset = ParseResult::kNoOffset) {
  SqlResult r;
  r.error = std::move(error);
  r.error_offset = offset;
  return r;
}

/// Maps an error offset of the embedded query text onto the full
/// statement text (caret rendering happens against the statement).
size_t Rebase(size_t query_offset, size_t sql_offset) {
  if (query_offset == ParseResult::kNoOffset) return ParseResult::kNoOffset;
  return sql_offset + query_offset;
}

const char* SourceKindName(SourceKind k) {
  switch (k) {
    case SourceKind::kStream:
      return "stream";
    case SourceKind::kNrr:
      return "relation";
    case SourceKind::kRelation:
      return "retroactive relation";
  }
  return "?";
}

}  // namespace

std::string ExplainPlan(const PlanNode& plan, const Catalog& stats) {
  std::string out = "plan:\n";
  RenderExplainNode(plan, stats, 1, &out);

  const double premature = EstimatePrematureFrequency(plan, stats);
  PlannerOptions opts;
  opts.premature_frequency = premature;

  // An NRR join cannot run under NT (see BuildPipeline); its cost row is
  // reported as unavailable rather than pretending the mode is viable.
  const bool nt_viable = !ContainsNrrLeaf(plan);
  struct Row {
    ExecMode mode;
    const char* name;  // Padded for column alignment.
    bool viable;
    double cost;
  };
  Row rows[] = {
      {ExecMode::kNegativeTuple, "NT    ", nt_viable, 0.0},
      {ExecMode::kDirect, "DIRECT", true, 0.0},
      {ExecMode::kUpa, "UPA   ", true, 0.0},
  };
  int chosen = -1;
  for (int i = 0; i < 3; ++i) {
    if (!rows[i].viable) continue;
    rows[i].cost = EstimatePlanCost(plan, stats, rows[i].mode, opts).total;
    // <= so UPA wins exact ties (the engine's default execution mode).
    if (chosen < 0 || rows[i].cost <= rows[chosen].cost) chosen = i;
  }

  out += "cost (per unit time, Section 5.4.1):\n";
  for (int i = 0; i < 3; ++i) {
    out += "  ";
    out += rows[i].name;
    if (!rows[i].viable) {
      out += " = n/a (NRR join)\n";
      continue;
    }
    out += " = " + Fmt(rows[i].cost);
    if (i == chosen) out += "   (chosen)";
    out += "\n";
  }
  out += "premature deletion frequency: " + Fmt(premature) + "\n";
  return out;
}

SqlResult SqlSession::Execute(const std::string& statement) {
  StatementParse parsed = ParseStatement(statement);
  SqlResult r;
  if (!parsed.ok()) {
    r = Fail(parsed.error, parsed.error_offset);
  } else {
    r = Run(parsed.stmt);
  }
  if (!r.ok && r.error_offset != ParseResult::kNoOffset) {
    r.context = CaretContext(statement, r.error_offset);
  }
  return r;
}

SqlResult SqlSession::Run(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kCreateStream: {
      const int id = engine_->DeclareStream(stmt.name, stmt.schema);
      if (id < 0) {
        return Fail("source '" + stmt.name + "' is already declared");
      }
      return Ok("created stream " + stmt.name + " (id " +
                std::to_string(id) + ")");
    }

    case StatementKind::kCreateRelation: {
      const int id =
          engine_->DeclareRelation(stmt.name, stmt.schema, stmt.retroactive);
      if (id < 0) {
        return Fail("source '" + stmt.name + "' is already declared");
      }
      return Ok(std::string("created ") +
                (stmt.retroactive ? "retroactive relation " : "relation ") +
                stmt.name + " (id " + std::to_string(id) + ")");
    }

    case StatementKind::kRegisterQuery: {
      RegisterResult rr = engine_->RegisterSql(stmt.name, stmt.sql);
      if (!rr.ok) {
        // Recover the byte offset when the failure was a compile error
        // (registration itself reports duplicate names and the like,
        // which have no anchoring position in the text).
        ParseResult pr = engine_->catalog()->Compile(stmt.sql);
        if (!pr.ok() && pr.error == rr.error) {
          return Fail(rr.error, Rebase(pr.error_offset, stmt.sql_offset));
        }
        return Fail(rr.error);
      }
      return Ok("registered query " + stmt.name + " (" +
                std::to_string(rr.shards) +
                (rr.shards == 1 ? " shard)" : " shards)"));
    }

    case StatementKind::kUnregisterQuery: {
      std::string err;
      if (!engine_->UnregisterQuery(stmt.name, &err)) return Fail(err);
      SqlResult r = Ok("unregistered query " + stmt.name);
      r.action = SqlResult::Action::kUnregistered;
      r.action_query = stmt.name;
      return r;
    }

    case StatementKind::kSubscribe: {
      if (engine_->FindQuery(stmt.name) == nullptr) {
        return Fail("no query named '" + stmt.name + "' is registered");
      }
      SqlResult r = Ok("subscribed to " + stmt.name);
      r.action = SqlResult::Action::kSubscribe;
      r.action_query = stmt.name;
      return r;
    }

    case StatementKind::kUnsubscribe: {
      // Subscriptions live in the transport; it resolves whether one
      // exists. The session only routes the request.
      SqlResult r = Ok("unsubscribed from " + stmt.name);
      r.action = SqlResult::Action::kUnsubscribe;
      r.action_query = stmt.name;
      return r;
    }

    case StatementKind::kShowStreams: {
      const auto sources = engine_->catalog()->sources();
      if (sources.empty()) return Ok("no sources declared");
      std::string out;
      for (const auto& [name, decl] : sources) {
        out += name;
        out += "  ";
        out += SourceKindName(decl.kind);
        out += "  id=" + std::to_string(decl.stream_id);
        out += "  " + SchemaWithTypes(decl.schema) + "\n";
      }
      if (!out.empty()) out.pop_back();
      return Ok(std::move(out));
    }

    case StatementKind::kShowQueries: {
      const EngineMetrics m = engine_->Metrics();
      if (m.queries.empty()) return Ok("no queries registered");
      std::string out;
      for (const QueryMetrics& q : m.queries) {
        out += q.name;
        // FindQuery can miss when another session unregisters between
        // the metrics snapshot and this lookup; the row degrades to the
        // counters alone.
        if (const RegisteredQuery* rq = engine_->FindQuery(q.name)) {
          out += "  pattern=" + PatternName(rq->plan().pattern);
          out += "  mode=" + ExecModeName(rq->mode());
        }
        out += "  shards=" + std::to_string(q.shards);
        out += "  subscribers=" + std::to_string(q.subscribers);
        out += "  processed=" + std::to_string(q.processed);
        out += "\n";
      }
      if (!out.empty()) out.pop_back();
      return Ok(std::move(out));
    }

    case StatementKind::kShowMetrics:
      return Ok(engine_->Metrics().ToString());

    case StatementKind::kTokenize: {
      const TokenizeResult t = TokenizeQuery(stmt.sql);
      if (!t.ok()) {
        return Fail(t.error, Rebase(t.error_offset, stmt.sql_offset));
      }
      // Offsets are relative to the embedded query text (the thing being
      // tokenized), matching the DuckDB-style introspection shape.
      std::string out;
      for (const SqlToken& tok : t.tokens) {
        out += std::to_string(tok.offset);
        out += "  ";
        out += tok.kind;
        out += "  ";
        out += tok.text;
        out += "\n";
      }
      if (out.empty()) return Ok("0 tokens");
      out.pop_back();
      return Ok(std::move(out));
    }

    case StatementKind::kValidate: {
      const ParseResult pr = engine_->catalog()->Compile(stmt.sql);
      if (!pr.ok()) {
        return Fail(pr.error, Rebase(pr.error_offset, stmt.sql_offset));
      }
      return Ok("valid (root pattern " + PatternName(pr.plan->pattern) +
                ")");
    }

    case StatementKind::kExplain: {
      const ParseResult pr = engine_->catalog()->Compile(stmt.sql);
      if (!pr.ok()) {
        return Fail(pr.error, Rebase(pr.error_offset, stmt.sql_offset));
      }
      return Ok(ExplainPlan(*pr.plan, Catalog{}));
    }
  }
  return Fail("unhandled statement kind");
}

}  // namespace sqlsession
}  // namespace upa
