#ifndef UPA_SQL_SESSION_SESSION_H_
#define UPA_SQL_SESSION_SESSION_H_

#include <string>

#include "core/cost_model.h"
#include "engine/engine.h"
#include "sql/session/statement.h"

namespace upa {
namespace sqlsession {

/// Outcome of executing one session statement.
///
/// Errors carry a byte offset into the statement text plus a rendered
/// caret context (the offending source line with `^~~~` underneath), so
/// transports can show tokenizer-grade diagnostics without re-parsing.
///
/// SUBSCRIBE / UNSUBSCRIBE / UNREGISTER do not complete inside the
/// session: subscriptions are owned by the transport (the network server
/// holds the delta channel; a REPL prints the events), so the session
/// validates the statement and returns an `action` marker that tells the
/// transport what to do (attach a subscription, detach one, or sweep the
/// subscriptions of a query that no longer exists).
struct SqlResult {
  enum class Action {
    kNone,          ///< Statement fully handled here.
    kSubscribe,     ///< Transport should subscribe to `action_query`.
    kUnsubscribe,   ///< Transport should drop its sub on `action_query`.
    kUnregistered,  ///< `action_query` was unregistered; sweep its subs.
  };

  bool ok = false;
  std::string text;   ///< Human-readable result (success only).
  std::string error;  ///< Error message (failure only).
  /// Byte offset of the error into the statement text, or
  /// ParseResult::kNoOffset when the error has no anchoring position
  /// (semantic failures such as a duplicate name).
  size_t error_offset = ParseResult::kNoOffset;
  std::string context;  ///< CaretContext rendering, "" when no offset.

  Action action = Action::kNone;
  std::string action_query;  ///< Query name the action refers to.
};

/// One text-SQL session against an engine: parses session statements
/// (see statement.h for the dialect) and executes them through the
/// engine's online catalog and registry. Stateless beyond the engine
/// pointer -- any number of sessions may execute concurrently; the
/// catalog's reader/writer lock and the engine's registration lock are
/// the synchronization points, so DDL from one session never stops
/// another session's ingest or subscriptions.
///
/// The introspection statements (TOKENIZE / VALIDATE / EXPLAIN) follow
/// the shape of DuckDB's parser-introspection API: they analyze the
/// embedded query without registering or running it. EXPLAIN renders
/// the compiled plan with per-operator update patterns (Section 5.2)
/// and the Section 5.4.1 cost estimates under all three execution
/// strategies, marking the cheapest.
class SqlSession {
 public:
  /// `engine` is borrowed and must outlive the session.
  explicit SqlSession(Engine* engine) : engine_(engine) {}

  SqlResult Execute(const std::string& statement);

 private:
  SqlResult Run(const Statement& stmt);

  Engine* engine_;
};

/// The EXPLAIN rendering for a compiled plan, exposed for golden tests:
/// the operator tree (logical_plan.cc's label format) with per-edge
/// `rate=` / `size=` estimates, the per-mode cost totals, and the
/// premature-deletion frequency. `stats` supplies the cardinality
/// assumptions (a default-constructed Catalog uses the Section 6.1
/// defaults).
std::string ExplainPlan(const PlanNode& plan, const Catalog& stats);

}  // namespace sqlsession
}  // namespace upa

#endif  // UPA_SQL_SESSION_SESSION_H_
