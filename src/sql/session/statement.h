#ifndef UPA_SQL_SESSION_STATEMENT_H_
#define UPA_SQL_SESSION_STATEMENT_H_

#include <string>

#include "common/schema.h"
#include "sql/parser.h"

namespace upa {
namespace sqlsession {

/// The statement forms of the SQL session dialect (the text front door
/// carried over the network protocol's kSqlExec message; see
/// SqlSession). DDL statements mutate the engine's online catalog; the
/// introspection statements mirror the shape of DuckDB's
/// parser-introspection API (tokenize / validate / explain a query
/// without running it).
///
///   CREATE STREAM <name> (<col> <TYPE>, ...)
///   CREATE RELATION <name> (<col> <TYPE>, ...) [RETROACTIVE]
///   REGISTER QUERY <name> AS <select...>
///   UNREGISTER QUERY <name>
///   SUBSCRIBE <name>
///   UNSUBSCRIBE <name>
///   SHOW STREAMS | SHOW QUERIES | SHOW METRICS
///   TOKENIZE <select...>
///   VALIDATE <select...>
///   EXPLAIN <select...>
///
/// Types are INT, DOUBLE, STRING. Keywords are case-insensitive; one
/// optional trailing ';' is accepted.
enum class StatementKind {
  kCreateStream,
  kCreateRelation,
  kRegisterQuery,
  kUnregisterQuery,
  kSubscribe,
  kUnsubscribe,
  kShowStreams,
  kShowQueries,
  kShowMetrics,
  kTokenize,
  kValidate,
  kExplain,
};

/// One parsed session statement. Which fields are meaningful depends on
/// `kind` (the WalRecord idiom).
struct Statement {
  StatementKind kind = StatementKind::kShowStreams;
  std::string name;         ///< Stream / relation / query name.
  Schema schema;            ///< CREATE forms.
  bool retroactive = false; ///< CREATE RELATION.
  /// Embedded query text, verbatim (REGISTER ... AS, TOKENIZE, VALIDATE,
  /// EXPLAIN). `sql_offset` is its byte offset inside the statement
  /// text, so query-level error offsets can be rebased onto the full
  /// statement for caret rendering.
  std::string sql;
  size_t sql_offset = 0;
};

/// Outcome of ParseStatement: a statement or an error with a byte offset
/// into the statement text (same contract as ParseResult).
struct StatementParse {
  Statement stmt;
  std::string error;  ///< Empty on success.
  size_t error_offset = ParseResult::kNoOffset;

  bool ok() const { return error.empty(); }
};

StatementParse ParseStatement(const std::string& text);

}  // namespace sqlsession
}  // namespace upa

#endif  // UPA_SQL_SESSION_STATEMENT_H_
