#include "sql/session/statement.h"

#include <cctype>
#include <utility>
#include <vector>

namespace upa {
namespace sqlsession {

namespace {

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tiny offset-tracking scanner for the statement head. The embedded
/// query text (after AS / TOKENIZE / ...) is deliberately NOT scanned
/// here: it is sliced out verbatim and handed to the query parser, which
/// owns its own tokenizer and error offsets.
class Cursor {
 public:
  explicit Cursor(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_]))) {
      ++i_;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return i_ >= text_.size();
  }

  size_t pos() const { return i_; }

  /// Consumes one identifier-shaped word; "" when the next character is
  /// not a word character. `at` (optional) receives the word's offset.
  std::string Word(size_t* at = nullptr) {
    SkipSpace();
    if (at != nullptr) *at = i_;
    const size_t start = i_;
    while (i_ < text_.size() && IsWordChar(text_[i_])) ++i_;
    return text_.substr(start, i_ - start);
  }

  bool MatchChar(char c) {
    SkipSpace();
    if (i_ < text_.size() && text_[i_] == c) {
      ++i_;
      return true;
    }
    return false;
  }

  /// Rest of the text from the current position (leading space skipped).
  std::string Rest() {
    SkipSpace();
    return text_.substr(i_);
  }

 private:
  const std::string& text_;
  size_t i_ = 0;
};

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

StatementParse Err(std::string message, size_t offset) {
  StatementParse r;
  r.error = std::move(message);
  r.error_offset = offset;
  return r;
}

/// Parses "(col TYPE, ...)" into `schema`. Returns "" or an error
/// message (with *at set to the offending offset).
std::string ParseSchema(Cursor* c, Schema* schema, size_t* at) {
  *at = c->pos();
  if (!c->MatchChar('(')) {
    *at = c->pos();
    return "expected ( to start the column list";
  }
  std::vector<Field> fields;
  for (;;) {
    size_t word_at = 0;
    const std::string col = c->Word(&word_at);
    if (col.empty()) {
      *at = word_at;
      return "expected a column name";
    }
    const std::string type_word = c->Word(&word_at);
    const std::string type = Upper(type_word);
    Field f;
    f.name = col;
    if (type == "INT") {
      f.type = ValueType::kInt;
    } else if (type == "DOUBLE") {
      f.type = ValueType::kDouble;
    } else if (type == "STRING") {
      f.type = ValueType::kString;
    } else {
      *at = word_at;
      return "expected a column type (INT, DOUBLE, or STRING)";
    }
    for (const Field& seen : fields) {
      if (seen.name == f.name) {
        *at = word_at;
        return "duplicate column '" + f.name + "'";
      }
    }
    fields.push_back(std::move(f));
    if (c->MatchChar(',')) continue;
    if (c->MatchChar(')')) break;
    *at = c->pos();
    return "expected , or ) in the column list";
  }
  *schema = Schema(std::move(fields));
  return "";
}

}  // namespace

StatementParse ParseStatement(const std::string& raw) {
  // Tolerate one trailing ';' (REPL habit). Stripping only at the end
  // keeps every byte offset valid for the original text.
  std::string text = raw;
  {
    size_t end = text.size();
    while (end > 0 &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
      --end;
    }
    if (end > 0 && text[end - 1] == ';') --end;
    text.resize(end);
  }

  Cursor c(text);
  if (c.AtEnd()) return Err("empty statement", 0);
  size_t kw_at = 0;
  const std::string first = c.Word(&kw_at);
  if (first.empty()) {
    return Err("expected a statement keyword", kw_at);
  }
  const std::string kw = Upper(first);
  StatementParse r;

  if (kw == "CREATE") {
    size_t what_at = 0;
    const std::string what = Upper(c.Word(&what_at));
    if (what != "STREAM" && what != "RELATION") {
      return Err("expected STREAM or RELATION after CREATE", what_at);
    }
    r.stmt.kind = what == "STREAM" ? StatementKind::kCreateStream
                                   : StatementKind::kCreateRelation;
    size_t name_at = 0;
    r.stmt.name = c.Word(&name_at);
    if (r.stmt.name.empty()) {
      return Err("expected a source name", name_at);
    }
    size_t schema_at = 0;
    const std::string serr = ParseSchema(&c, &r.stmt.schema, &schema_at);
    if (!serr.empty()) return Err(serr, schema_at);
    if (r.stmt.kind == StatementKind::kCreateRelation) {
      size_t opt_at = 0;
      if (!c.AtEnd()) {
        const std::string opt = c.Word(&opt_at);
        if (Upper(opt) != "RETROACTIVE") {
          return Err("expected RETROACTIVE or end of statement", opt_at);
        }
        r.stmt.retroactive = true;
      }
    }
    if (!c.AtEnd()) {
      return Err("trailing input after CREATE statement", c.pos());
    }
    return r;
  }

  if (kw == "REGISTER" || kw == "UNREGISTER") {
    size_t q_at = 0;
    if (Upper(c.Word(&q_at)) != "QUERY") {
      return Err("expected QUERY after " + kw, q_at);
    }
    size_t name_at = 0;
    r.stmt.name = c.Word(&name_at);
    if (r.stmt.name.empty()) {
      return Err("expected a query name", name_at);
    }
    if (kw == "UNREGISTER") {
      r.stmt.kind = StatementKind::kUnregisterQuery;
      if (!c.AtEnd()) {
        return Err("trailing input after UNREGISTER QUERY", c.pos());
      }
      return r;
    }
    r.stmt.kind = StatementKind::kRegisterQuery;
    size_t as_at = 0;
    if (Upper(c.Word(&as_at)) != "AS") {
      return Err("expected AS after the query name", as_at);
    }
    c.SkipSpace();
    r.stmt.sql_offset = c.pos();
    r.stmt.sql = c.Rest();
    if (r.stmt.sql.empty()) {
      return Err("expected a query after AS", r.stmt.sql_offset);
    }
    return r;
  }

  if (kw == "SUBSCRIBE" || kw == "UNSUBSCRIBE") {
    r.stmt.kind = kw == "SUBSCRIBE" ? StatementKind::kSubscribe
                                    : StatementKind::kUnsubscribe;
    size_t name_at = 0;
    r.stmt.name = c.Word(&name_at);
    if (r.stmt.name.empty()) {
      return Err("expected a query name after " + kw, name_at);
    }
    if (!c.AtEnd()) {
      return Err("trailing input after " + kw, c.pos());
    }
    return r;
  }

  if (kw == "SHOW") {
    size_t what_at = 0;
    const std::string what = Upper(c.Word(&what_at));
    if (what == "STREAMS") {
      r.stmt.kind = StatementKind::kShowStreams;
    } else if (what == "QUERIES") {
      r.stmt.kind = StatementKind::kShowQueries;
    } else if (what == "METRICS") {
      r.stmt.kind = StatementKind::kShowMetrics;
    } else {
      return Err("expected STREAMS, QUERIES, or METRICS after SHOW",
                 what_at);
    }
    if (!c.AtEnd()) {
      return Err("trailing input after SHOW", c.pos());
    }
    return r;
  }

  if (kw == "TOKENIZE" || kw == "VALIDATE" || kw == "EXPLAIN") {
    r.stmt.kind = kw == "TOKENIZE"   ? StatementKind::kTokenize
                  : kw == "VALIDATE" ? StatementKind::kValidate
                                     : StatementKind::kExplain;
    c.SkipSpace();
    r.stmt.sql_offset = c.pos();
    r.stmt.sql = c.Rest();
    if (r.stmt.sql.empty()) {
      return Err("expected a query after " + kw, r.stmt.sql_offset);
    }
    return r;
  }

  return Err("unknown statement '" + first + "'", kw_at);
}

}  // namespace sqlsession
}  // namespace upa
