#ifndef UPA_SQL_PARSER_H_
#define UPA_SQL_PARSER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/logical_plan.h"

namespace upa {

/// How a registered name behaves as a query input (Section 4.2's
/// trichotomy: base streams, non-retroactive relations, relations).
enum class SourceKind {
  kStream,
  kNrr,       ///< Non-retroactive relation (Section 4.1).
  kRelation,  ///< Retroactive relation.
};

/// A named input registered with the parser.
struct SourceDecl {
  int stream_id = 0;
  Schema schema;
  SourceKind kind = SourceKind::kStream;
};

/// Result of ParseQuery: either a plan or a parse/semantic error message
/// (the library does not use exceptions).
struct ParseResult {
  /// `error_offset` when the error has no single anchoring position
  /// (e.g. a whole-plan validation failure).
  static constexpr size_t kNoOffset = static_cast<size_t>(-1);

  PlanPtr plan;             ///< Null on error.
  std::string error;        ///< Empty on success.
  /// Byte offset into the query text where the error was detected:
  /// the start of the offending token (== text.size() when the parser
  /// ran off the end of the statement), or kNoOffset.
  size_t error_offset = kNoOffset;

  bool ok() const { return plan != nullptr; }
};

/// Renders a caret context line for an error at byte `offset` of `text`:
/// the source line containing the offset followed by a `^~~~` marker
/// under the offending column. Returns "" when offset is
/// ParseResult::kNoOffset. Tabs in the excerpt are flattened to spaces
/// so the caret column stays aligned.
std::string CaretContext(const std::string& text, size_t offset);

/// One token of the SQL dialect, as exposed by TokenizeQuery (the
/// session layer's TOKENIZE introspection statement -- same shape as
/// DuckDB's parser-introspection API: token class + byte offset).
struct SqlToken {
  std::string kind;  ///< "identifier" | "number" | "string" | "symbol".
  std::string text;  ///< Identifier/symbol spelling or string body.
  size_t offset = 0;  ///< Byte offset of the token's first character.
};

/// Result of TokenizeQuery: the token list, or a tokenizer error with
/// the byte offset where scanning stopped.
struct TokenizeResult {
  std::vector<SqlToken> tokens;
  std::string error;  ///< Empty on success.
  size_t error_offset = ParseResult::kNoOffset;

  bool ok() const { return error.empty(); }
};

/// Runs just the tokenizer over `text` (no grammar, no catalog).
TokenizeResult TokenizeQuery(const std::string& text);

/// Compiles a declarative continuous query into a logical plan.
///
/// The accepted dialect is a CQL-flavoured subset covering exactly the
/// paper's operator algebra:
///
///   query      := select
///               | select UNION select
///               | select EXCEPT select              -- negation (Eq. 1)
///               | select INTERSECT select
///   select     := SELECT proj FROM from
///                 [WHERE conj] [GROUP BY column]
///   proj       := '*' | [DISTINCT] column_list
///               | [column ','] agg '(' column | '*' ')'
///   agg        := COUNT | SUM | AVG | MIN | MAX
///   from       := source [',' source]               -- two = equi-join
///   source     := name [window]
///   window     := '[' RANGE n ']'                   -- time-based window
///               | '[' ROWS n ']'                    -- count-based window
///   conj       := pred (AND pred)*
///   pred       := column op literal | column '=' column   -- join pred
///   op         := '=' | '!=' | '<' | '<=' | '>' | '>='
///   column     := name | name '.' name
///
/// Semantics and restrictions (all reported as errors, never silently
/// altered):
///  - A two-source FROM requires exactly one cross-source equality
///    predicate in WHERE, which becomes the join condition; remaining
///    single-source predicates are pushed below the join and
///    combined-schema predicates stay above it.
///  - A relation/NRR source may only appear as the second of two sources
///    (it becomes the R-join / NRR-join of Section 4.1) and accepts no
///    window clause.
///  - EXCEPT / INTERSECT require both operands to produce a single
///    column (project first); EXCEPT maps to the attribute-based
///    negation operator, INTERSECT to the pair-based intersection.
///  - GROUP BY requires an aggregate in the projection; an aggregate
///    without GROUP BY aggregates the whole window (single group).
///
/// Literals: integer, floating point, or single-quoted strings, matched
/// against the column's declared type.
ParseResult ParseQuery(const std::string& text,
                       const std::map<std::string, SourceDecl>& sources);

}  // namespace upa

#endif  // UPA_SQL_PARSER_H_
