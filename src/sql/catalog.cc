#include "sql/catalog.h"

#include <utility>

namespace upa {

int SourceCatalog::Declare(const std::string& name, const SourceDecl& decl) {
  for (const auto& [existing_name, existing] : sources_) {
    if (existing_name == name || existing.stream_id == decl.stream_id) {
      return -1;
    }
  }
  sources_.emplace(name, decl);
  next_id_ = std::max(next_id_, decl.stream_id + 1);
  return decl.stream_id;
}

int SourceCatalog::DeclareStream(const std::string& name, Schema schema) {
  SourceDecl decl;
  decl.stream_id = next_id_;
  decl.schema = std::move(schema);
  decl.kind = SourceKind::kStream;
  return Declare(name, decl);
}

int SourceCatalog::DeclareRelation(const std::string& name, Schema schema,
                                   bool retroactive) {
  SourceDecl decl;
  decl.stream_id = next_id_;
  decl.schema = std::move(schema);
  decl.kind = retroactive ? SourceKind::kRelation : SourceKind::kNrr;
  return Declare(name, decl);
}

const SourceDecl* SourceCatalog::Find(const std::string& name) const {
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

ParseResult SourceCatalog::Compile(const std::string& text) const {
  // ParseQuery annotates update patterns and validates the plan itself;
  // the catalog's job is only to supply the name->source resolution.
  return ParseQuery(text, sources_);
}

}  // namespace upa
