#include "sql/catalog.h"

#include <mutex>
#include <utility>

namespace upa {

int SourceCatalog::DeclareLocked(const std::string& name,
                                 SourceDecl decl) {
  for (const auto& [existing_name, existing] : sources_) {
    if (existing_name == name || existing.stream_id == decl.stream_id) {
      return -1;
    }
  }
  const int id = decl.stream_id;
  next_id_ = std::max(next_id_, id + 1);
  sources_.emplace(name, std::move(decl));
  return id;
}

int SourceCatalog::Declare(const std::string& name, const SourceDecl& decl) {
  std::unique_lock lock(mu_);
  return DeclareLocked(name, decl);
}

int SourceCatalog::DeclareStream(const std::string& name, Schema schema) {
  // The next_id_ read and the declaration must be one atomic step, so
  // concurrent sessions never mint the same id.
  std::unique_lock lock(mu_);
  SourceDecl decl;
  decl.stream_id = next_id_;
  decl.schema = std::move(schema);
  decl.kind = SourceKind::kStream;
  return DeclareLocked(name, std::move(decl));
}

int SourceCatalog::DeclareRelation(const std::string& name, Schema schema,
                                   bool retroactive) {
  std::unique_lock lock(mu_);
  SourceDecl decl;
  decl.stream_id = next_id_;
  decl.schema = std::move(schema);
  decl.kind = retroactive ? SourceKind::kRelation : SourceKind::kNrr;
  return DeclareLocked(name, std::move(decl));
}

const SourceDecl* SourceCatalog::Find(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = sources_.find(name);
  return it == sources_.end() ? nullptr : &it->second;
}

std::map<std::string, SourceDecl> SourceCatalog::sources() const {
  std::shared_lock lock(mu_);
  return sources_;
}

ParseResult SourceCatalog::Compile(const std::string& text) const {
  // ParseQuery annotates update patterns and validates the plan itself;
  // the catalog's job is only to supply the name->source resolution. The
  // shared lock pins the map for the duration of the parse.
  std::shared_lock lock(mu_);
  return ParseQuery(text, sources_);
}

}  // namespace upa
