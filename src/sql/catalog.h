#ifndef UPA_SQL_CATALOG_H_
#define UPA_SQL_CATALOG_H_

#include <map>
#include <shared_mutex>
#include <string>

#include "sql/parser.h"

namespace upa {

/// The engine-facing registry of named query inputs: the bridge between
/// "CREATE STREAM"-style declarations and the integer stream ids the
/// executor routes on. Declaring a source assigns it the next free stream
/// id (or the caller's explicit id); ParseQuery() then resolves FROM
/// clauses against the catalog's map.
///
/// Names follow Section 4.2's trichotomy: base streams, non-retroactive
/// relations, and (retroactive) relations.
///
/// The catalog is an online, shared component: SQL sessions declare
/// sources and compile queries concurrently with ingest. All methods are
/// internally synchronized with a reader/writer lock -- declarations
/// take the lock exclusively, Find/Compile/sources() take it shared, so
/// concurrent compiles never block each other and DDL never observes a
/// half-written map. Declarations never overwrite or erase, so the
/// SourceDecl pointer returned by Find() stays valid for the catalog's
/// lifetime (map nodes are stable).
class SourceCatalog {
 public:
  SourceCatalog() = default;

  // The internal mutex makes the catalog non-copyable; the fuzz tests
  // build throwaway catalogs by value, so provide explicit moves that
  // transfer only the data (never move a catalog that is being used
  // concurrently).
  SourceCatalog(SourceCatalog&& other) noexcept
      : sources_(std::move(other.sources_)), next_id_(other.next_id_) {}
  SourceCatalog& operator=(SourceCatalog&& other) noexcept {
    sources_ = std::move(other.sources_);
    next_id_ = other.next_id_;
    return *this;
  }

  /// Declares a base stream. Returns its stream id, or -1 if the name is
  /// already taken (declarations never overwrite).
  int DeclareStream(const std::string& name, Schema schema);

  /// Declares a relation; `retroactive` selects R vs NRR semantics.
  /// Updates arrive on the returned stream id as positive/negative tuples.
  int DeclareRelation(const std::string& name, Schema schema,
                      bool retroactive);

  /// Declares a source with an explicit id (trace replay wants the ids to
  /// match the trace's stream numbering). Returns `stream_id`, or -1 if
  /// the name or the id is already in use.
  int Declare(const std::string& name, const SourceDecl& decl);

  /// Looks a source up by name; nullptr if absent. The pointer remains
  /// valid for the catalog's lifetime (sources are never removed).
  const SourceDecl* Find(const std::string& name) const;

  /// Snapshot of all declarations, taken under the shared lock. Returns
  /// a copy so callers can iterate while other sessions declare.
  std::map<std::string, SourceDecl> sources() const;

  /// Compiles `text` against this catalog into an annotated, validated
  /// plan (ParseQuery performs annotation and validation); on error the
  /// result carries a message instead of a plan. Holds the shared lock
  /// for the duration of the parse, so compiles run concurrently with
  /// each other and serialize only against declarations.
  ParseResult Compile(const std::string& text) const;

 private:
  /// Dup-name / dup-id check + insert; caller holds mu_ exclusively.
  int DeclareLocked(const std::string& name, SourceDecl decl);

  mutable std::shared_mutex mu_;
  std::map<std::string, SourceDecl> sources_;
  int next_id_ = 0;
};

}  // namespace upa

#endif  // UPA_SQL_CATALOG_H_
