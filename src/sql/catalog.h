#ifndef UPA_SQL_CATALOG_H_
#define UPA_SQL_CATALOG_H_

#include <map>
#include <string>

#include "sql/parser.h"

namespace upa {

/// The engine-facing registry of named query inputs: the bridge between
/// "CREATE STREAM"-style declarations and the integer stream ids the
/// executor routes on. Declaring a source assigns it the next free stream
/// id (or the caller's explicit id); ParseQuery() then resolves FROM
/// clauses against the catalog's map.
///
/// Names follow Section 4.2's trichotomy: base streams, non-retroactive
/// relations, and (retroactive) relations.
class SourceCatalog {
 public:
  SourceCatalog() = default;

  /// Declares a base stream. Returns its stream id, or -1 if the name is
  /// already taken (declarations never overwrite).
  int DeclareStream(const std::string& name, Schema schema);

  /// Declares a relation; `retroactive` selects R vs NRR semantics.
  /// Updates arrive on the returned stream id as positive/negative tuples.
  int DeclareRelation(const std::string& name, Schema schema,
                      bool retroactive);

  /// Declares a source with an explicit id (trace replay wants the ids to
  /// match the trace's stream numbering). Returns `stream_id`, or -1 if
  /// the name or the id is already in use.
  int Declare(const std::string& name, const SourceDecl& decl);

  /// Looks a source up by name; nullptr if absent.
  const SourceDecl* Find(const std::string& name) const;

  /// Parser-ready view of all declarations.
  const std::map<std::string, SourceDecl>& sources() const {
    return sources_;
  }

  /// Compiles `text` against this catalog into an annotated, validated
  /// plan (ParseQuery performs annotation and validation); on error the
  /// result carries a message instead of a plan.
  ParseResult Compile(const std::string& text) const;

 private:
  std::map<std::string, SourceDecl> sources_;
  int next_id_ = 0;
};

}  // namespace upa

#endif  // UPA_SQL_CATALOG_H_
