#ifndef UPA_OBS_TRACE_H_
#define UPA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace upa {
namespace obs {

/// One recorded trace event (Chrome trace_event "complete" or "instant"
/// semantics).
struct TraceEvent {
  std::string name;
  const char* category = "upa";  ///< Static string.
  char phase = 'X';              ///< 'X' complete, 'i' instant.
  uint64_t ts_ns = 0;            ///< Start, NowNs() domain.
  uint64_t dur_ns = 0;           ///< Complete events only.
  uint32_t tid = 0;              ///< Stable hash of the recording thread.
};

/// Bounded ring-buffer event tracer with Chrome `trace_event` JSON
/// export (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// Overhead contract: when disabled -- the default -- the only cost at a
/// trace point is one relaxed atomic load (the `enabled()` check), so
/// instrumented hot paths stay at production speed. When enabled,
/// recording takes a mutex and copies the event name; the ring keeps the
/// most recent `capacity` events and counts what it overwrote. Toggling
/// is a runtime operation (Enable/Disable), no rebuild involved.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  /// Process-wide tracer used by the pipeline instrumentation.
  static Tracer& Global();

  /// Starts capturing into a fresh ring of `capacity` events.
  void Enable(size_t capacity = kDefaultCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a complete ('X') event. No-op when disabled.
  void RecordComplete(const std::string& name, const char* category,
                      uint64_t ts_ns, uint64_t dur_ns);
  /// Records an instant ('i') event at NowNs(). No-op when disabled.
  void RecordInstant(const std::string& name, const char* category);

  /// Events currently held (<= capacity).
  size_t size() const;
  /// Events overwritten since Enable() because the ring was full.
  uint64_t overwritten() const;
  void Clear();

  /// Chrome trace JSON of the retained events, oldest first:
  /// {"traceEvents":[...]}, timestamps in microseconds.
  std::string ToChromeJson() const;
  /// Writes ToChromeJson() to `path`; false on I/O failure.
  bool ExportChromeTrace(const std::string& path) const;

 private:
  Tracer() = default;
  void Record(TraceEvent e);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;  // Guarded by mu_.
  size_t capacity_ = kDefaultCapacity;
  size_t next_ = 0;         // Guarded by mu_; wraps at capacity_.
  bool wrapped_ = false;    // Guarded by mu_.
  uint64_t overwritten_ = 0;  // Guarded by mu_.
};

/// RAII complete-event scope. Costs one atomic load when tracing is
/// disabled; records name/start/duration when enabled.
class TraceScope {
 public:
  TraceScope(std::string name, const char* category = "upa")
      : active_(Tracer::Global().enabled()),
        name_(active_ ? std::move(name) : std::string()),
        category_(category),
        start_(active_ ? NowNs() : 0) {}
  ~TraceScope() {
    if (active_) {
      Tracer::Global().RecordComplete(name_, category_, start_,
                                      NowNs() - start_);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  bool active_;
  std::string name_;
  const char* category_;
  uint64_t start_;
};

}  // namespace obs
}  // namespace upa

#endif  // UPA_OBS_TRACE_H_
