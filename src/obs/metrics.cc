#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace upa {
namespace obs {
namespace {

/// Lower bound of histogram bucket `b` (see Histogram doc comment).
uint64_t BucketLo(int b) {
  return b == 0 ? 0 : (b == 1 ? 1 : uint64_t{1} << (b - 1));
}

/// Exclusive upper bound of bucket `b`, saturating at UINT64_MAX.
uint64_t BucketHi(int b) {
  return b >= 64 ? UINT64_MAX : uint64_t{1} << b;
}

void AtomicMin(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* a, uint64_t v) {
  uint64_t cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Keeps alphanumerics, '_' and ':' of a metric name; everything after
/// a '{' (a label set) passes through verbatim.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  bool in_labels = false;
  for (char c : name) {
    if (c == '{') in_labels = true;
    if (in_labels || std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == ':') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

/// "name{labels}" -> "name" (the TYPE line must not carry labels).
std::string BareName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

}  // namespace

void Histogram::Record(uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
  buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = mn == UINT64_MAX ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (int b = 0; b < kNumBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return s;
}

double Histogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the requested quantile, 1-based (nearest-rank definition).
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5));
  uint64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] >= target) {
      const double lo = static_cast<double>(BucketLo(b));
      const double hi = static_cast<double>(BucketHi(b));
      const double frac = static_cast<double>(target - cum) /
                          static_cast<double>(buckets[b]);
      const double v = lo + (hi - lo) * frac;
      // The exact extremes tighten the one-octave bucket estimate.
      return std::clamp(v, static_cast<double>(min), static_cast<double>(max));
    }
    cum += buckets[b];
  }
  return static_cast<double>(max);
}

Histogram::Snapshot& Histogram::Snapshot::Merge(const Snapshot& o) {
  if (o.count == 0) return *this;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (int b = 0; b < kNumBuckets; ++b) buckets[b] += o.buckets[b];
  return *this;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[SanitizeName(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[SanitizeName(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[SanitizeName(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[192];
  std::string last_type_for;
  auto type_line = [&](const std::string& name, const char* type) {
    const std::string bare = BareName(name);
    if (bare == last_type_for) return;  // One TYPE line per metric family.
    last_type_for = bare;
    out += "# TYPE " + bare + " " + type + "\n";
  };
  for (const auto& [name, c] : counters_) {
    type_line(name, "counter");
    std::snprintf(line, sizeof(line), "%s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += line;
  }
  last_type_for.clear();
  for (const auto& [name, g] : gauges_) {
    type_line(name, "gauge");
    std::snprintf(line, sizeof(line), "%s %lld\n", name.c_str(),
                  static_cast<long long>(g->value()));
    out += line;
  }
  last_type_for.clear();
  for (const auto& [name, h] : histograms_) {
    type_line(name, "histogram");
    const Histogram::Snapshot s = h->Snap();
    const std::string bare = BareName(name);
    const size_t brace = name.find('{');
    // Splice `le` into an existing label set or start a fresh one.
    const std::string labels =
        brace == std::string::npos ? "" : name.substr(brace + 1);
    auto bucket_line = [&](const std::string& le, uint64_t cum) {
      out += bare + "_bucket{";
      if (!labels.empty()) {
        out += labels.substr(0, labels.size() - 1) + ",";  // Drop '}'.
      }
      out += "le=\"" + le + "\"} " + std::to_string(cum) + "\n";
    };
    uint64_t cum = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      cum += s.buckets[b];
      bucket_line(std::to_string(BucketHi(b)), cum);
    }
    bucket_line("+Inf", s.count);
    const std::string suffix =
        brace == std::string::npos ? "" : name.substr(brace);
    out += bare + "_sum" + suffix + " " + std::to_string(s.sum) + "\n";
    out += bare + "_count" + suffix + " " + std::to_string(s.count) + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

}  // namespace obs
}  // namespace upa
