#include "obs/trace.h"

#include <cstdio>
#include <functional>
#include <thread>
#include <utility>

namespace upa {
namespace obs {
namespace {

uint32_t ThisThreadId() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* g = new Tracer();
  return *g;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  wrapped_ = false;
  overwritten_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Record(TraceEvent e) {
  e.tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  wrapped_ = true;
  ++overwritten_;
}

void Tracer::RecordComplete(const std::string& name, const char* category,
                            uint64_t ts_ns, uint64_t dur_ns) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'X';
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  Record(std::move(e));
}

void Tracer::RecordInstant(const std::string& name, const char* category) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = 'i';
  e.ts_ns = NowNs();
  Record(std::move(e));
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overwritten_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
  overwritten_ = 0;
}

std::string Tracer::ToChromeJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  const size_t n = ring_.size();
  // Oldest first: after a wrap, the oldest retained event sits at next_.
  const size_t start = wrapped_ ? next_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& e = ring_[(start + i) % n];
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += "\",\"cat\":\"";
    out += e.category;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                    "\"pid\":0,\"tid\":%u}",
                    static_cast<double>(e.ts_ns) / 1e3,
                    static_cast<double>(e.dur_ns) / 1e3, e.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                    "\"pid\":0,\"tid\":%u}",
                    static_cast<double>(e.ts_ns) / 1e3, e.tid);
    }
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::ExportChromeTrace(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace obs
}  // namespace upa
