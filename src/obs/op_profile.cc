#include "obs/op_profile.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace upa {
namespace obs {
namespace {

/// Subtraction that treats timer skew (an inner timer measuring slightly
/// more than its enclosing window) as zero rather than wrapping.
uint64_t SubSat(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

const char* PhaseCategory(Phase phase) {
  switch (phase) {
    case Phase::kProcessing:
      return "process";
    case Phase::kInsertion:
      return "insert";
    case Phase::kExpiration:
      return "expire";
  }
  return "upa";
}

}  // namespace

OpCounters& OpCounters::operator+=(const OpCounters& o) {
  tuples_in += o.tuples_in;
  negatives_in += o.negatives_in;
  emitted += o.emitted;
  process_calls += o.process_calls;
  expire_calls += o.expire_calls;
  insert_calls += o.insert_calls;
  for (int r = 0; r < 2; ++r) {
    process_self_ns[r] += o.process_self_ns[r];
    insert_process_ns[r] += o.insert_process_ns[r];
  }
  insert_expire_ns += o.insert_expire_ns;
  expire_self_ns += o.expire_self_ns;
  state_bytes += o.state_bytes;
  state_tuples += o.state_tuples;
  return *this;
}

PhaseBreakdown& PhaseBreakdown::operator+=(const PhaseBreakdown& o) {
  processing_ns += o.processing_ns;
  insertion_ns += o.insertion_ns;
  expiration_ns += o.expiration_ns;
  ingests += o.ingests;
  ticks += o.ticks;
  sampled_ingests += o.sampled_ingests;
  sampled_ticks += o.sampled_ticks;
  return *this;
}

PipelineProfiler::PipelineProfiler(const ProfilerOptions& options)
    : options_(options),
      ingest_countdown_(std::max<uint32_t>(1, options.sample_interval)),
      tick_countdown_(std::max<uint32_t>(1, options.sample_interval)) {}

void PipelineProfiler::SetTopology(std::vector<std::string> op_names) {
  ops_.clear();
  names_ = std::move(op_names);
  names_.push_back("view");
  ops_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    ops_.push_back(std::make_unique<OpProfile>());
  }
  frames_.reserve(names_.size() + 4);
}

void PipelineProfiler::BeginOp(int op_index, Phase phase) {
  OpProfile& p = *ops_[static_cast<size_t>(op_index)];
  p.active = true;
  p.context = phase;
  p.root = root_;
  frames_.push_back(Frame{op_index, phase, NowNs(), 0});
}

void PipelineProfiler::EndOp(int op_index, Phase phase) {
  const uint64_t end = NowNs();
  const Frame frame = frames_.back();
  frames_.pop_back();
  const uint64_t total = end - frame.start;
  const uint64_t self = SubSat(total, frame.child_ns);
  if (!frames_.empty()) frames_.back().child_ns += total;

  OpProfile& p = *ops_[static_cast<size_t>(op_index)];
  p.active = false;
  const int r = static_cast<int>(root_);
  switch (phase) {
    case Phase::kProcessing:
      ++p.c.process_calls;
      p.c.process_self_ns[r] += self;
      if (options_.histograms) p.process_hist.Record(self);
      break;
    case Phase::kInsertion:  // The view's Apply.
      ++p.c.insert_calls;
      p.c.insert_process_ns[r] += self;
      break;
    case Phase::kExpiration:
      ++p.c.expire_calls;
      p.c.expire_self_ns += self;
      if (options_.histograms) p.expire_hist.Record(self);
      break;
  }
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    tracer.RecordComplete(names_[static_cast<size_t>(op_index)],
                          PhaseCategory(phase), frame.start, total);
  }
}

ProfileSnapshot PipelineProfiler::Snapshot() const {
  ProfileSnapshot snap;
  // Each root's sampled time extrapolates by its own total/sampled ratio.
  const double si = sampled_ingests_ > 0 ? static_cast<double>(ingests_) /
                                               static_cast<double>(sampled_ingests_)
                                         : 0.0;
  const double st = sampled_ticks_ > 0 ? static_cast<double>(ticks_) /
                                             static_cast<double>(sampled_ticks_)
                                       : 0.0;
  snap.phases.ingests = ingests_;
  snap.phases.ticks = ticks_;
  snap.phases.sampled_ingests = sampled_ingests_;
  snap.phases.sampled_ticks = sampled_ticks_;
  snap.ops.reserve(ops_.size());
  for (size_t i = 0; i < ops_.size(); ++i) {
    const OpCounters& c = ops_[i]->c;
    OpSnapshot op;
    op.name = names_[i];
    op.c = c;
    op.processing_ns =
        static_cast<double>(SubSat(c.process_self_ns[0], c.insert_process_ns[0])) * si +
        static_cast<double>(SubSat(c.process_self_ns[1], c.insert_process_ns[1])) * st;
    op.insertion_ns = static_cast<double>(c.insert_process_ns[0]) * si +
                      static_cast<double>(c.insert_process_ns[1] +
                                          c.insert_expire_ns) *
                          st;
    op.expiration_ns =
        static_cast<double>(SubSat(c.expire_self_ns, c.insert_expire_ns)) * st;
    op.process_ns_hist = ops_[i]->process_hist.Snap();
    op.expire_ns_hist = ops_[i]->expire_hist.Snap();
    snap.phases.processing_ns += op.processing_ns;
    snap.phases.insertion_ns += op.insertion_ns;
    snap.phases.expiration_ns += op.expiration_ns;
    snap.ops.push_back(std::move(op));
  }
  return snap;
}

std::string ProfileSnapshot::ToString() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "phase totals (est.): processing %.3f ms, insertion %.3f ms, "
                "expiration %.3f ms  [%llu ingests / %llu sampled, %llu ticks "
                "/ %llu sampled]\n",
                phases.processing_ns / 1e6, phases.insertion_ns / 1e6,
                phases.expiration_ns / 1e6,
                static_cast<unsigned long long>(phases.ingests),
                static_cast<unsigned long long>(phases.sampled_ingests),
                static_cast<unsigned long long>(phases.ticks),
                static_cast<unsigned long long>(phases.sampled_ticks));
  out += line;
  std::snprintf(line, sizeof(line),
                "%-22s %10s %10s %10s %9s %9s %10s %8s %8s %8s\n", "operator",
                "proc_ms", "ins_ms", "exp_ms", "calls", "emitted", "state_KB",
                "p50_ns", "p95_ns", "p99_ns");
  out += line;
  for (const OpSnapshot& op : ops) {
    std::snprintf(
        line, sizeof(line),
        "%-22s %10.3f %10.3f %10.3f %9llu %9llu %10.1f %8.0f %8.0f %8.0f\n",
        op.name.c_str(), op.processing_ns / 1e6, op.insertion_ns / 1e6,
        op.expiration_ns / 1e6,
        static_cast<unsigned long long>(op.c.process_calls),
        static_cast<unsigned long long>(op.c.emitted),
        static_cast<double>(op.c.state_bytes) / 1024.0,
        op.process_ns_hist.Percentile(50), op.process_ns_hist.Percentile(95),
        op.process_ns_hist.Percentile(99));
    out += line;
  }
  return out;
}

}  // namespace obs
}  // namespace upa
