#ifndef UPA_OBS_OP_PROFILE_H_
#define UPA_OBS_OP_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace upa {
namespace obs {

/// The paper's Section 6.1 cost decomposition: overall execution time
/// consists of tuple *processing* (probing/combining on arrival),
/// *insertion* (adding tuples to operator state and the materialized
/// result), and *expiration* (removing tuples whose lifetime ended).
/// Every profiled operator reports its time split along exactly these
/// axes.
enum class Phase { kProcessing = 0, kInsertion = 1, kExpiration = 2 };

/// Whether the current sampled event was initiated by an arrival
/// (Pipeline::Ingest) or a clock advance (Pipeline::Tick). Sampled time
/// is extrapolated separately per root, because the two event streams
/// are sampled independently.
enum class Root { kIngest = 0, kTick = 1 };

/// Raw per-operator accumulators. Single-writer: only the thread
/// executing the owning pipeline updates them (sampled events only);
/// cross-thread readers must snapshot behind a barrier, the way
/// ShardExecutor publishes its counters.
struct OpCounters {
  uint64_t tuples_in = 0;      ///< Tuples delivered on sampled events.
  uint64_t negatives_in = 0;   ///< Negative tuples among `tuples_in`.
  uint64_t emitted = 0;        ///< Tuples this operator emitted (sampled).
  uint64_t process_calls = 0;  ///< Sampled Process() invocations.
  uint64_t expire_calls = 0;   ///< Sampled AdvanceTime() invocations.
  uint64_t insert_calls = 0;   ///< Sampled state/view insertions.
  /// Self nanoseconds in Process(), excluding downstream operators the
  /// emissions flowed into, indexed by Root.
  uint64_t process_self_ns[2] = {0, 0};
  /// Nanoseconds inside state-buffer insertions during Process().
  uint64_t insert_process_ns[2] = {0, 0};
  /// Nanoseconds inside state-buffer insertions during AdvanceTime()
  /// (e.g. the delta-distinct auxiliary promotion). Always tick-rooted.
  uint64_t insert_expire_ns = 0;
  /// Self nanoseconds in AdvanceTime() (tick-rooted by construction).
  uint64_t expire_self_ns = 0;
  size_t state_bytes = 0;   ///< Last poll of Operator::StateBytes().
  size_t state_tuples = 0;  ///< Last poll of Operator::StateTuples().

  OpCounters& operator+=(const OpCounters& o);
};

/// Live profile of one operator (or the result view), attached to the
/// operator via Operator::set_profile so state-buffer insertions inside
/// Process/AdvanceTime can be timed at the source (see InsertTimer).
/// `active` is raised by the pipeline only for the duration of a timed
/// call on a sampled event, which is what keeps the common
/// (profiler-attached, event-not-sampled) path at a couple of branches.
class OpProfile {
 public:
  bool active = false;            ///< Inside a timed call, sampled event.
  Phase context = Phase::kProcessing;  ///< Gross phase of the timed call.
  Root root = Root::kIngest;      ///< Root of the current sampled event.
  OpCounters c;
  Histogram process_hist;  ///< ns per sampled Process() call (self time).
  Histogram expire_hist;   ///< ns per sampled AdvanceTime() call.

  /// Attributes one timed state insertion (called by InsertTimer).
  void RecordInsert(uint64_t ns) {
    ++c.insert_calls;
    if (context == Phase::kExpiration) {
      c.insert_expire_ns += ns;
    } else {
      c.insert_process_ns[static_cast<int>(root)] += ns;
    }
  }
};

/// RAII timer operators wrap around their state-buffer insertions.
/// Cost when the pipeline is not profiled, or the event not sampled:
/// one pointer test plus one bool test.
class InsertTimer {
 public:
  explicit InsertTimer(OpProfile* p)
      : p_(p != nullptr && p->active ? p : nullptr),
        start_(p_ != nullptr ? NowNs() : 0) {}
  ~InsertTimer() {
    if (p_ != nullptr) p_->RecordInsert(NowNs() - start_);
  }
  InsertTimer(const InsertTimer&) = delete;
  InsertTimer& operator=(const InsertTimer&) = delete;

 private:
  OpProfile* p_;
  uint64_t start_;
};

/// Knobs for PipelineProfiler.
struct ProfilerOptions {
  /// Full per-operator timing happens on every Nth ingest (and,
  /// independently, every Nth effective tick); totals are extrapolated
  /// by the sampling ratio. A prime stride keeps the sample from
  /// phase-locking with periodic traces (e.g. strict link round-robin).
  /// 1 = measure everything (use for tracing or short runs).
  uint32_t sample_interval = 251;
  /// Poll operator state sizes every Nth *sampled* tick.
  uint32_t state_poll_every = 16;
  /// Record per-call latency histograms (p50/p95/p99).
  bool histograms = true;
};

/// Scaled whole-run estimate of the paper's three cost components.
struct PhaseBreakdown {
  double processing_ns = 0;
  double insertion_ns = 0;
  double expiration_ns = 0;
  uint64_t ingests = 0;          ///< Total arrivals the pipeline saw.
  uint64_t ticks = 0;            ///< Total effective clock advances.
  uint64_t sampled_ingests = 0;
  uint64_t sampled_ticks = 0;

  double total_ns() const {
    return processing_ns + insertion_ns + expiration_ns;
  }
  PhaseBreakdown& operator+=(const PhaseBreakdown& o);
};

/// Reporting copy of one operator's profile with scaled estimates.
struct OpSnapshot {
  std::string name;
  OpCounters c;  ///< Raw sampled accumulators.
  double processing_ns = 0;  ///< Scaled whole-run estimates.
  double insertion_ns = 0;
  double expiration_ns = 0;
  Histogram::Snapshot process_ns_hist;
  Histogram::Snapshot expire_ns_hist;
};

/// Reporting copy of a whole pipeline profile. The last entry of `ops`
/// is the materialized result view ("view"): its Apply time counts as
/// insertion, its AdvanceTime as expiration.
struct ProfileSnapshot {
  PhaseBreakdown phases;
  std::vector<OpSnapshot> ops;

  /// Aligned per-operator table (name, phase ms, call stats, p50/95/99).
  std::string ToString() const;
};

/// Sampling profiler owned by a Pipeline (see Pipeline::EnableProfiling).
///
/// The pipeline drives it: Sample*() decide whether the current event is
/// measured; BeginOp/EndOp bracket operator calls on sampled events and
/// attribute *self time* -- a frame stack subtracts the time spent in
/// downstream operators that re-entrant emissions flowed into, so
/// per-operator numbers sum without double counting.
class PipelineProfiler {
 public:
  explicit PipelineProfiler(const ProfilerOptions& options = {});

  PipelineProfiler(const PipelineProfiler&) = delete;
  PipelineProfiler& operator=(const PipelineProfiler&) = delete;

  /// Declares the operator list; a trailing "view" pseudo-operator is
  /// appended automatically. Must be called before any sampling.
  void SetTopology(std::vector<std::string> op_names);

  int num_ops() const { return static_cast<int>(ops_.size()); }
  int view_index() const { return num_ops() - 1; }
  OpProfile& op(int i) { return *ops_[static_cast<size_t>(i)]; }
  const std::string& op_name(int i) const {
    return names_[static_cast<size_t>(i)];
  }
  const ProfilerOptions& options() const { return options_; }

  /// Counts an ingest; true when this event should be fully measured.
  bool SampleIngest() {
    ++ingests_;
    if (--ingest_countdown_ == 0) {
      ingest_countdown_ = options_.sample_interval;
      ++sampled_ingests_;
      return true;
    }
    return false;
  }
  /// Counts an effective tick; true when it should be fully measured.
  bool SampleTick() {
    ++ticks_;
    if (--tick_countdown_ == 0) {
      tick_countdown_ = options_.sample_interval;
      ++sampled_ticks_;
      return true;
    }
    return false;
  }
  /// True when this sampled tick should also poll state sizes.
  bool ShouldPollState() {
    if (++sampled_ticks_since_poll_ < options_.state_poll_every) return false;
    sampled_ticks_since_poll_ = 0;
    return true;
  }

  void BeginRoot(Root root) {
    root_ = root;
    frames_.clear();
  }
  void AddRootGrossNs(Root root, uint64_t ns) {
    (root == Root::kIngest ? ingest_gross_ns_ : tick_gross_ns_) += ns;
  }
  Root root() const { return root_; }

  /// Brackets a timed operator (or view) call on a sampled event.
  /// `phase` is the gross phase: kProcessing for Process, kExpiration
  /// for AdvanceTime, kInsertion for the view's Apply.
  void BeginOp(int op_index, Phase phase);
  /// Closes the bracket; attributes self time, records the histogram,
  /// and emits a Chrome trace event when tracing is enabled.
  void EndOp(int op_index, Phase phase);

  /// Credits one emission to the operator whose frame is on top (the
  /// emitter of a tuple being delivered); no-op at the ingress.
  void NoteEmissionFromTop() {
    if (!frames_.empty()) ++ops_[static_cast<size_t>(frames_.back().op)]->c.emitted;
  }

  ProfileSnapshot Snapshot() const;

 private:
  struct Frame {
    int op;
    Phase phase;
    uint64_t start;
    uint64_t child_ns = 0;
  };

  const ProfilerOptions options_;
  std::vector<std::unique_ptr<OpProfile>> ops_;  // Operators + view.
  std::vector<std::string> names_;
  std::vector<Frame> frames_;
  Root root_ = Root::kIngest;

  uint64_t ingests_ = 0;
  uint64_t ticks_ = 0;
  uint64_t sampled_ingests_ = 0;
  uint64_t sampled_ticks_ = 0;
  uint64_t ingest_gross_ns_ = 0;  ///< Gross wall ns of sampled ingests.
  uint64_t tick_gross_ns_ = 0;    ///< Gross wall ns of sampled ticks.
  uint32_t ingest_countdown_;
  uint32_t tick_countdown_;
  uint32_t sampled_ticks_since_poll_ = 0;
};

}  // namespace obs
}  // namespace upa

#endif  // UPA_OBS_OP_PROFILE_H_
