#ifndef UPA_OBS_METRICS_H_
#define UPA_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace upa {
namespace obs {

/// Monotonic nanosecond clock used by all observability timing.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event count. Updates are single relaxed
/// atomic adds -- lock-free and safe from any thread.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time signed value (queue depths, state bytes). Lock-free.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-scale (power-of-two) latency/size histogram.
///
/// Bucket `b` holds values whose bit width is `b`, i.e. the range
/// [2^(b-1), 2^b); bucket 0 holds exact zeros and bucket 64 is the
/// overflow bucket [2^63, 2^64). Recording is a handful of relaxed
/// atomic operations -- lock-free on the hot path, exact counts under
/// concurrency. Quantiles are estimated by interpolating inside the
/// bucket containing the target rank, then clamped to the exact
/// observed [min, max], so the relative error is bounded by one octave
/// (factor-of-two bucket width) and single-sample histograms report the
/// sample exactly.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void Record(uint64_t v);

  /// A consistent-enough copy for reporting (individual loads are
  /// relaxed; concurrent recording may skew count vs. sum by a few
  /// in-flight samples, never corrupt them).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    uint64_t buckets[kNumBuckets] = {};

    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
    /// Quantile estimate for `p` in [0, 100]; 0 when empty.
    double Percentile(double p) const;
    /// Pointwise sum (shard/replica roll-ups).
    Snapshot& Merge(const Snapshot& o);
  };

  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
};

/// Name-keyed metric registry. Registration (get-or-create) takes a
/// mutex; the returned references are stable for the registry's
/// lifetime, so hot paths resolve a metric once and then update it
/// lock-free. Prometheus-style plaintext exposition via
/// RenderPrometheus().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Prometheus text exposition format, version 0.0.4: counters and
  /// gauges as single samples, histograms as cumulative `_bucket{le=}`
  /// series with `_sum`/`_count`. Metric names are sanitized to
  /// [a-zA-Z0-9_:]; a `{label="value"}` suffix in the registered name is
  /// preserved verbatim.
  std::string RenderPrometheus() const;

  /// Process-wide registry (bench harness, engine exposition).
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace upa

#endif  // UPA_OBS_METRICS_H_
