#ifndef UPA_COMMON_TUPLE_H_
#define UPA_COMMON_TUPLE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/value.h"

namespace upa {

/// Timestamps are integral "time units" (paper, Section 6.1: an average of
/// one tuple arrives on each link during one time unit).
using Time = int64_t;

/// Expiration time of tuples that never expire (tuples of infinite,
/// unwindowed streams and of relations).
inline constexpr Time kNeverExpires = std::numeric_limits<Time>::max();

/// A stream/result tuple.
///
/// Per Section 2.2 of the paper every tuple carries two timestamps: `ts`,
/// the (non-decreasing) arrival or generation time, and `exp`, the
/// precomputed expiration time. A tuple entering a time-based window of
/// size T gets `exp = ts + T`; a composite (e.g. join) result expires when
/// the first of its constituents does, so its `exp` is the minimum of the
/// constituent `exp` values. A tuple is *live* at time `now` while
/// `now < exp`.
///
/// `negative` marks negative tuples (Section 2.1): explicit deletions
/// produced by the negation operator, by retroactive-relation joins, or --
/// under the negative tuple approach -- by every expiring window tuple.
struct Tuple {
  Time ts = 0;
  Time exp = kNeverExpires;
  bool negative = false;
  std::vector<Value> fields;

  Tuple() = default;
  Tuple(Time ts_in, Time exp_in, std::vector<Value> fields_in)
      : ts(ts_in), exp(exp_in), fields(std::move(fields_in)) {}

  /// True while the tuple has not yet fallen out of its window(s).
  bool LiveAt(Time now) const { return now < exp; }

  /// Returns a copy of this tuple with the negative flag set; the deletion
  /// signal corresponding to this result (Section 2.3.1).
  Tuple AsNegative() const {
    Tuple t = *this;
    t.negative = true;
    return t;
  }

  /// Field-wise equality (ignores timestamps and sign). Negative tuples
  /// identify the result to delete by its attribute values, so this is the
  /// match predicate used when applying them.
  bool FieldsEqual(const Tuple& other) const { return fields == other.fields; }

  std::string ToString() const;
};

/// 64-bit hash over all fields.
uint64_t HashFields(const Tuple& t);

/// 64-bit hash over one field.
uint64_t HashField(const Tuple& t, int col);

/// Lexicographic comparison of field vectors; used by canonical multiset
/// comparisons in tests and the reference evaluator.
bool FieldsLess(const Tuple& a, const Tuple& b);

}  // namespace upa

#endif  // UPA_COMMON_TUPLE_H_
