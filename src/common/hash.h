#ifndef UPA_COMMON_HASH_H_
#define UPA_COMMON_HASH_H_

#include <cstdint>

namespace upa {

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer used to hash
/// field values and to combine hashes across columns.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent hash combiner (boost-style).
inline uint64_t HashCombine(uint64_t seed, uint64_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace upa

#endif  // UPA_COMMON_HASH_H_
