#include "common/value.h"

#include <functional>

#include "common/hash.h"
#include "common/macros.h"

namespace upa {

ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kInt;
    case 1:
      return ValueType::kDouble;
    case 2:
      return ValueType::kString;
    default:
      UPA_FATAL("corrupt Value variant");
  }
}

std::string ToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1:
      return std::to_string(std::get<double>(v));
    default:
      return std::get<std::string>(v);
  }
}

uint64_t HashValue(const Value& v) {
  switch (v.index()) {
    case 0:
      return Mix64(static_cast<uint64_t>(std::get<int64_t>(v)));
    case 1: {
      const double d = std::get<double>(v);
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return Mix64(bits);
    }
    default:
      return Mix64(std::hash<std::string>{}(std::get<std::string>(v)));
  }
}

int64_t AsInt(const Value& v) {
  UPA_CHECK(std::holds_alternative<int64_t>(v));
  return std::get<int64_t>(v);
}

double AsDouble(const Value& v) {
  UPA_CHECK(std::holds_alternative<double>(v));
  return std::get<double>(v);
}

const std::string& AsString(const Value& v) {
  UPA_CHECK(std::holds_alternative<std::string>(v));
  return std::get<std::string>(v);
}

double AsNumeric(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  UPA_CHECK(std::holds_alternative<double>(v));
  return std::get<double>(v);
}

}  // namespace upa
