#ifndef UPA_COMMON_KEY_H_
#define UPA_COMMON_KEY_H_

#include <vector>

#include "common/tuple.h"

namespace upa {

/// A (possibly multi-column) key extracted from a tuple, e.g. the distinct
/// key of duplicate elimination or a group-by label.
using Key = std::vector<Value>;

/// Extracts the values of `cols` from `t`, in order.
Key ExtractKey(const Tuple& t, const std::vector<int>& cols);

/// True when `t` matches `key` on `cols`.
bool KeyEquals(const Tuple& t, const std::vector<int>& cols, const Key& key);

/// Hash functor so Key can index unordered containers.
struct KeyHash {
  size_t operator()(const Key& k) const;
};

}  // namespace upa

#endif  // UPA_COMMON_KEY_H_
