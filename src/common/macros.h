#ifndef UPA_COMMON_MACROS_H_
#define UPA_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a message when `cond` is false. Used for
/// programming-error invariants on library paths (the library does not use
/// exceptions).
#define UPA_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "UPA_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Like UPA_CHECK but compiled out in release (NDEBUG) builds. Use on hot
/// paths where the invariant is internal to a single module.
#ifdef NDEBUG
#define UPA_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define UPA_DCHECK(cond) UPA_CHECK(cond)
#endif

/// Aborts with a formatted message; for unreachable code paths.
#define UPA_FATAL(msg)                                                  \
  do {                                                                  \
    std::fprintf(stderr, "UPA_FATAL at %s:%d: %s\n", __FILE__, __LINE__, \
                 (msg));                                                \
    std::abort();                                                       \
  } while (0)

#endif  // UPA_COMMON_MACROS_H_
