#ifndef UPA_COMMON_SCHEMA_H_
#define UPA_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace upa {

/// A named, typed column of a stream, window, relation or derived result.
struct Field {
  std::string name;
  ValueType type = ValueType::kInt;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// The relational schema shared by every tuple of a stream (paper,
/// Section 2: "A data stream is an append-only sequence of relational
/// tuples with the same schema").
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Number of columns.
  int num_fields() const { return static_cast<int>(fields_.size()); }

  const Field& field(int i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Returns the index of the column named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Returns the index of the column named `name`; UPA_CHECKs presence.
  int MustIndexOf(const std::string& name) const;

  /// Schema of the concatenation of `left` and `right` columns (window
  /// join output). Right-side columns that collide with a left-side name
  /// are suffixed with `suffix`.
  static Schema Concat(const Schema& left, const Schema& right,
                       const std::string& suffix = "_r");

  /// Schema restricted to the given column indexes, in order (projection).
  Schema Project(const std::vector<int>& cols) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace upa

#endif  // UPA_COMMON_SCHEMA_H_
