#include "common/schema.h"

#include <utility>

#include "common/macros.h"

namespace upa {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

const Field& Schema::field(int i) const {
  UPA_CHECK(i >= 0 && i < num_fields());
  return fields_[static_cast<size_t>(i)];
}

int Schema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[static_cast<size_t>(i)].name == name) return i;
  }
  return -1;
}

int Schema::MustIndexOf(const std::string& name) const {
  const int i = IndexOf(name);
  UPA_CHECK(i >= 0);
  return i;
}

Schema Schema::Concat(const Schema& left, const Schema& right,
                      const std::string& suffix) {
  std::vector<Field> fields = left.fields_;
  fields.reserve(left.fields_.size() + right.fields_.size());
  for (const Field& f : right.fields_) {
    Field g = f;
    if (left.IndexOf(f.name) >= 0) g.name += suffix;
    fields.push_back(std::move(g));
  }
  return Schema(std::move(fields));
}

Schema Schema::Project(const std::vector<int>& cols) const {
  std::vector<Field> fields;
  fields.reserve(cols.size());
  for (int c : cols) fields.push_back(field(c));
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[static_cast<size_t>(i)].name;
  }
  out += ")";
  return out;
}

}  // namespace upa
