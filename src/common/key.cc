#include "common/key.h"

#include "common/hash.h"
#include "common/macros.h"

namespace upa {

Key ExtractKey(const Tuple& t, const std::vector<int>& cols) {
  Key key;
  key.reserve(cols.size());
  for (int c : cols) {
    UPA_DCHECK(c >= 0 && static_cast<size_t>(c) < t.fields.size());
    key.push_back(t.fields[static_cast<size_t>(c)]);
  }
  return key;
}

bool KeyEquals(const Tuple& t, const std::vector<int>& cols, const Key& key) {
  UPA_DCHECK(cols.size() == key.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    if (t.fields[static_cast<size_t>(cols[i])] != key[i]) return false;
  }
  return true;
}

size_t KeyHash::operator()(const Key& k) const {
  uint64_t h = 0x243f6a8885a308d3ULL;
  for (const Value& v : k) h = HashCombine(h, HashValue(v));
  return static_cast<size_t>(h);
}

}  // namespace upa
