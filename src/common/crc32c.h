#ifndef UPA_COMMON_CRC32C_H_
#define UPA_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace upa {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
/// checksum guarding every durability-layer record frame. Chosen over
/// plain CRC-32 for its better error-detection properties on short
/// records and because it is the checksum used by the storage formats the
/// WAL framing follows (LevelDB/RocksDB logs, iSCSI, ext4 metadata).
/// Software table-driven implementation; fast enough for the append path
/// (one table lookup per byte, ~1 GB/s) without any ISA dependency.
///
/// `Crc32c(data, n)` computes the checksum of a buffer from scratch;
/// `Crc32cExtend(crc, data, n)` continues a running checksum, so framed
/// headers and payloads can be checksummed without concatenation.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Masked CRC, following the LevelDB log-format convention: storing the
/// CRC of data that itself embeds CRCs makes accidental collisions more
/// likely, so stored checksums are rotated and offset. Verification
/// recomputes the mask; a torn or bit-flipped frame fails the compare.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}

}  // namespace upa

#endif  // UPA_COMMON_CRC32C_H_
