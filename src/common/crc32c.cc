#include "common/crc32c.h"

namespace upa {
namespace {

/// Builds the reflected-polynomial lookup table once, at first use. A
/// 256-entry table is the classic byte-at-a-time construction; good
/// enough for WAL append rates, and it keeps the library free of
/// ISA-specific intrinsics.
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  static const Crc32cTable table;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ table.t[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace upa
