#ifndef UPA_COMMON_VALUE_H_
#define UPA_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace upa {

/// The type of a field value. Streams are sequences of relational tuples
/// (paper, Section 2), so the value system is deliberately small: integers
/// (also used for encoded IP addresses, protocol ids and timestamps),
/// doubles (aggregates such as AVG), and strings (symbolic metadata such as
/// the stock symbols of the Section 4.1 example).
enum class ValueType {
  kInt,
  kDouble,
  kString,
};

/// A single field value. Equality and ordering are the natural per-type
/// ones; mixed-type comparison is a programming error caught by variant
/// index comparison (values of one column always share a type).
using Value = std::variant<int64_t, double, std::string>;

/// Returns the ValueType tag of `v`.
ValueType TypeOf(const Value& v);

/// Renders `v` for logs and debugging output.
std::string ToString(const Value& v);

/// 64-bit hash of a value, suitable for hash-partitioned state buffers.
uint64_t HashValue(const Value& v);

/// Convenience accessors that UPA_CHECK the stored type.
int64_t AsInt(const Value& v);
double AsDouble(const Value& v);
const std::string& AsString(const Value& v);

/// Returns the value as a double regardless of numeric representation
/// (ints are widened). UPA_CHECKs that `v` is numeric.
double AsNumeric(const Value& v);

}  // namespace upa

#endif  // UPA_COMMON_VALUE_H_
