#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/macros.h"

namespace upa {

namespace {
uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed, per the xoshiro authors' advice.
  uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = Mix64(x);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  UPA_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  UPA_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double s) {
  UPA_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // Guard against rounding.
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace upa
