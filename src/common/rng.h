#ifndef UPA_COMMON_RNG_H_
#define UPA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace upa {

/// Deterministic xoshiro256** pseudo-random generator. Workload generation
/// and property tests need reproducible randomness across platforms, so the
/// library does not rely on std::mt19937's distribution implementations
/// (which are unspecified for std::*_distribution).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). UPA_DCHECKs n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over {0, 1, ..., n-1} using precomputed inverse-CDF
/// tables. Rank 0 is the most popular item. Used to give the synthetic
/// trace the skewed source-address popularity of real packet traces.
class ZipfSampler {
 public:
  /// `n` items, exponent `s` (s = 0 degenerates to uniform).
  ZipfSampler(size_t n, double s);

  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace upa

#endif  // UPA_COMMON_RNG_H_
