#include "common/tuple.h"

#include "common/hash.h"
#include "common/macros.h"

namespace upa {

std::string Tuple::ToString() const {
  std::string out = negative ? "-[" : "+[";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += upa::ToString(fields[i]);
  }
  out += "] ts=" + std::to_string(ts);
  out += exp == kNeverExpires ? " exp=inf" : " exp=" + std::to_string(exp);
  return out;
}

uint64_t HashFields(const Tuple& t) {
  uint64_t h = 0x5851f42d4c957f2dULL;
  for (const Value& v : t.fields) h = HashCombine(h, HashValue(v));
  return h;
}

uint64_t HashField(const Tuple& t, int col) {
  UPA_DCHECK(col >= 0 && static_cast<size_t>(col) < t.fields.size());
  return HashValue(t.fields[static_cast<size_t>(col)]);
}

bool FieldsLess(const Tuple& a, const Tuple& b) {
  return a.fields < b.fields;
}

}  // namespace upa
