#ifndef UPA_STATE_LIST_BUFFER_H_
#define UPA_STATE_LIST_BUFFER_H_

#include <list>
#include <string>

#include "state/buffer.h"

namespace upa {

/// The straightforward state buffer of the DIRECT baseline (Section 2.3.3):
/// a linked list kept in insertion (arrival-time) order. Insertions are
/// O(1), but because the expiration order of weak non-monotonic inputs
/// differs from the insertion order, finding expired tuples requires a
/// sequential scan of the whole buffer -- exactly the inefficiency that
/// motivates the update-pattern-aware PartitionedBuffer.
///
/// Update-pattern contract (pattern-oblivious baseline):
///  - Append order: arrival order, preserved by iteration.
///  - Expiration discipline: liveness-checked on read; Advance() scans
///    and removes everything with exp <= now (eager) or on the lazy
///    purge interval.
///  - Batch boundaries: SetClock() may bump the clock without purging;
///    because every read filters by LiveAt(now()), deferring the purge
///    scan to the batch boundary changes no result. The scan itself is
///    liveness-driven (not watermark-driven), so a single Advance() at
///    the boundary removes everything the per-tick oracle would have.
class ListBuffer : public StateBuffer {
 public:
  ListBuffer() = default;

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return tuples_.size(); }
  size_t StateBytes() const override { return bytes_; }
  void Clear() override;
  std::string Name() const override { return "list"; }

 private:
  void PurgeExpired(const ExpireFn& on_expire);

  std::list<Tuple> tuples_;
  size_t bytes_ = 0;
};

/// The WKS structure (Section 5.3.2): results expire in the order they were
/// generated, so insertions append at the tail and expirations pop from the
/// head -- both O(1). Insert() UPA_DCHECKs the FIFO property.
///
/// Update-pattern contract (WKS, Section 5.2 rules 1-3):
///  - Append order: non-decreasing `exp` -- the producer must emit in
///    expiration order (asserted). Iteration is FIFO.
///  - Expiration discipline: predictable and FIFO; Advance() pops the
///    expired prefix, so one pop per expired tuple, never a scan.
///  - Batch boundaries: SetClock() may run ahead of the physical purge;
///    the expired residue stays a head prefix (FIFO invariant), reads
///    skip it via LiveAt(now()), and the next Advance() pops exactly
///    that prefix. No mutation may break exp monotonicity mid-batch:
///    inserts after a clock bump must still carry exp >= the tail's.
class FifoBuffer : public StateBuffer {
 public:
  FifoBuffer() = default;

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return tuples_.size(); }
  size_t StateBytes() const override { return bytes_; }
  void Clear() override;
  std::string Name() const override { return "fifo"; }

 private:
  std::list<Tuple> tuples_;  // Ordered by exp (== insertion order).
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_LIST_BUFFER_H_
