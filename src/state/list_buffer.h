#ifndef UPA_STATE_LIST_BUFFER_H_
#define UPA_STATE_LIST_BUFFER_H_

#include <list>
#include <string>

#include "state/buffer.h"

namespace upa {

/// The straightforward state buffer of the DIRECT baseline (Section 2.3.3):
/// a linked list kept in insertion (arrival-time) order. Insertions are
/// O(1), but because the expiration order of weak non-monotonic inputs
/// differs from the insertion order, finding expired tuples requires a
/// sequential scan of the whole buffer -- exactly the inefficiency that
/// motivates the update-pattern-aware PartitionedBuffer.
class ListBuffer : public StateBuffer {
 public:
  ListBuffer() = default;

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return tuples_.size(); }
  size_t StateBytes() const override { return bytes_; }
  void Clear() override;
  std::string Name() const override { return "list"; }

 private:
  void PurgeExpired(const ExpireFn& on_expire);

  std::list<Tuple> tuples_;
  size_t bytes_ = 0;
};

/// The WKS structure (Section 5.3.2): results expire in the order they were
/// generated, so insertions append at the tail and expirations pop from the
/// head -- both O(1). Insert() UPA_DCHECKs the FIFO property.
class FifoBuffer : public StateBuffer {
 public:
  FifoBuffer() = default;

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return tuples_.size(); }
  size_t StateBytes() const override { return bytes_; }
  void Clear() override;
  std::string Name() const override { return "fifo"; }

 private:
  std::list<Tuple> tuples_;  // Ordered by exp (== insertion order).
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_LIST_BUFFER_H_
