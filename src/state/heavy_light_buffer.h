#ifndef UPA_STATE_HEAVY_LIGHT_BUFFER_H_
#define UPA_STATE_HEAVY_LIGHT_BUFFER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "state/buffer.h"
#include "state/freq_tracker.h"

namespace upa {

/// Heavy-light partitioned state (DESIGN.md Section 16), after
/// "Maintaining Queries under Updates Using Heavy-Light Partitioning of
/// the Input Relations": a decorator over any key-probed StateBuffer that
/// splits keys by probe frequency. *Light* keys stay exactly as the inner
/// buffer stores them and are probed by delegation (a scan for the
/// scan-probed structures). *Heavy* keys -- the top-K of a space-bounded
/// frequency sketch -- additionally keep a materialized, enumeration-ready
/// per-key copy vector, so a probe touches only the matches instead of the
/// whole buffer. Under the Zipf-skewed LBL workload the heavy set absorbs
/// most probes, collapsing the O(N)-per-arrival probe term to O(matches).
///
/// Correctness by order replication: every tuple always lives in the inner
/// buffer, which keeps serving ForEachLive/Advance/serialization, and each
/// heavy copy vector is maintained in exactly the inner buffer's
/// per-key enumeration order (`ProbeOrder`). A heavy probe therefore
/// yields the same tuples in the same order as the delegated scan would
/// have -- promotion and demotion are invisible in results by
/// construction, which is what the skew differential battery pins.
///
/// Barrier-only repartitioning: promotion/demotion decisions are taken
/// only when the buffer's logical clock crosses an epoch boundary
/// (SetClock/Advance -- the shard's tick barriers), never mid-tuple, so a
/// shard's heavy set is a deterministic function of its probe sequence and
/// clock movements. Recovery needs no heavy/light metadata: a rebuilt
/// replica starts with a cold sketch and an empty heavy set, re-learning
/// frequencies as probes arrive, with identical results throughout.
class HeavyLightBuffer : public StateBuffer {
 public:
  /// Per-key enumeration order of the wrapped structure. A heavy copy
  /// vector sorted by the matching (partition, expiration, arrival) key
  /// reproduces the inner buffer's probe order exactly.
  enum class ProbeOrder {
    /// FifoBuffer, ListBuffer, and single-bucket HashBuffer probes:
    /// arrival order.
    kArrival,
    /// Lazy PartitionedBuffer: partition index, then arrival.
    kPartitionArrival,
    /// Eager PartitionedBuffer: partition index, then expiration, then
    /// arrival.
    kPartitionExp,
  };

  struct Options {
    /// Sketch count a key must reach within the current epoch to qualify
    /// as heavy. Must be >= 1 (0 disables wrapping at the planner).
    uint64_t threshold = 8;
    /// Top-K bound on the heavy set.
    size_t max_heavy_keys = 64;
    /// Resident-key bound of the frequency sketch.
    size_t tracker_capacity = 256;
    /// Repartition cadence in time units; promotion/demotion happens when
    /// the logical clock crosses a multiple of this.
    Time epoch = 1;
    /// Sketch duty cycle while the heavy partition is not pulling its
    /// weight: when the heavy set absorbed less than 1/8 of the probes
    /// since the last observed barrier, the sketch freezes (no
    /// observations, no decay, no repartitioning) except during epochs
    /// whose index is a multiple of this. Bounds the tracker tax on
    /// workloads with no exploitable skew to ~1/probation_epochs of the
    /// probe stream, at the price of up to probation_epochs * epoch
    /// detection latency when skew first appears. 1 = always observe.
    /// The 1/8 bar is deliberately low: any workload where heavy copies
    /// pay for themselves clears it by a wide margin.
    int64_t probation_epochs = 4;
  };

  /// `key_col` is the probed column; `partition_span`/`num_partitions`
  /// describe the inner PartitionedBuffer geometry (ignored under
  /// kArrival).
  HeavyLightBuffer(std::unique_ptr<StateBuffer> inner, int key_col,
                   ProbeOrder order, Time partition_span, int num_partitions,
                   const Options& options);

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  void SetClock(Time now) override;
  void SetDegraded(bool on) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override;
  size_t StateBytes() const override;
  void Clear() override;
  std::string Name() const override;
  void CollectHeavyLight(HeavyLightStats* out) const override;

  const StateBuffer& inner() const { return *inner_; }

  /// Test hooks.
  std::vector<Value> HeavyKeysForTest() const;
  const KeyFrequencyTracker& tracker_for_test() const { return tracker_; }
  /// Forces an immediate observed repartition at the current clock (tests
  /// only; production repartitioning is driven by epoch crossings). Keeps
  /// the sketch observing so subsequent probes count regardless of the
  /// duty cycle.
  void RepartitionForTest() {
    observing_ = true;
    Repartition(/*elapsed_epochs=*/1);
    observing_ = true;
  }
  /// Live rows of one heavy key in enumeration order (empty when light).
  std::vector<Tuple> HeavyEnumerationForTest(const Value& key) const;

 private:
  /// One materialized copy of a stored tuple of a heavy key. `part` and
  /// `exp_key` are the enumeration sort prefix per ProbeOrder; `seq` is a
  /// global arrival sequence (promotion scans assign fresh sequences in
  /// inner enumeration order, so relative order is preserved).
  struct Entry {
    int64_t part = 0;
    Time exp_key = 0;
    uint64_t seq = 0;
    Tuple tuple;
  };
  struct HeavyState {
    std::vector<Entry> entries;
    /// Probe hits since the last barrier, credited to the sketch in bulk
    /// at repartition time so heavy probes never touch the tracker.
    uint64_t hits = 0;
  };

  static bool EntryLess(const Entry& a, const Entry& b);
  Entry MakeEntry(const Tuple& t);
  void InsertEntry(HeavyState* hs, Entry e);
  size_t EntryBytes(const Entry& e) const;
  void MaybeRepartition();
  /// `elapsed_epochs` is the number of epochs since the last observed
  /// barrier (> 1 after a frozen stretch); the cold-demotion bar scales
  /// with it so a frozen interval does not make retention easier.
  void Repartition(int64_t elapsed_epochs);

  std::unique_ptr<StateBuffer> inner_;
  int key_col_;
  ProbeOrder order_;
  Time partition_span_;
  int num_partitions_;
  Options options_;

  /// Mutated on const probe paths (ForEachMatch), like the staged-run
  /// folds of PartitionedBuffer: observation and hit counters never change
  /// the logical contents.
  mutable KeyFrequencyTracker tracker_;
  /// Mutable for the same reason: probe paths bump per-key hit tallies.
  mutable std::map<Value, HeavyState> heavy_;
  uint64_t next_seq_ = 0;
  int64_t last_epoch_ = 0;
  /// Epoch index of the last observed barrier; the gap to the current
  /// barrier scales the cold-demotion bar across frozen stretches.
  int64_t last_observed_epoch_ = 0;
  /// Observed barriers seen so far; the duty cycle may only freeze after
  /// two of them, so cold-start promotion (qualify, then confirm) is
  /// never stretched across a frozen gap.
  int64_t observed_barriers_ = 0;
  /// Second-chance admission: keys that qualified at the previous
  /// observed barrier but were not yet heavy. Promotion requires
  /// qualifying at two consecutive observed barriers, which squares the
  /// probability that random collisions in a low-skew probe stream
  /// promote a key that then pays maintenance for nothing.
  std::set<Value> pending_;
  /// Whether the sketch ingests probes this epoch (see
  /// Options::probation_epochs). Starts true so cold-start skew is
  /// detected within the first epoch.
  bool observing_ = true;
  /// Probe-counter snapshots taken at the last observed barrier; the
  /// deltas give the heavy partition's actual absorption ratio, which
  /// drives the duty cycle (ground truth, immune to sketch estimation
  /// error).
  uint64_t hits_at_barrier_ = 0;
  uint64_t light_at_barrier_ = 0;
  size_t heavy_bytes_ = 0;

  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  mutable uint64_t heavy_probe_hits_ = 0;
  mutable uint64_t light_probes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_HEAVY_LIGHT_BUFFER_H_
