#ifndef UPA_STATE_INDEXED_BUFFER_H_
#define UPA_STATE_INDEXED_BUFFER_H_

#include <string>
#include <vector>

#include "state/buffer.h"

namespace upa {

/// Extension beyond the SIGMOD'05 paper, in the direction of the authors'
/// companion report "Indexing the Results of Sliding Window Queries"
/// (Golab, Prahladka, Özsu, 2005): a state buffer that is *both*
/// expiration-partitioned and key-indexed.
///
/// The paper's structures force a choice: the partitioned buffer
/// (Figure 7) makes expiration cheap but probes scan everything, while
/// the NT hash table makes keyed lookups cheap but has no time-based
/// expiration. This buffer crosses the two: tuples live in a grid of
/// `P x B` small cells -- the row selected by the expiration-time block
/// (exactly the circular calendar of the partitioned buffer), the column
/// by a hash of the key attribute. Probes visit one column (P short
/// cells); expiration visits one row; both are sub-linear in the buffer
/// size. The price is P*B cell headers of memory overhead, which the E9
/// ablation benchmark quantifies.
///
/// Update-pattern contract (WK, Section 5.2 rule 4):
///  - Append order: arbitrary; each cell is kept sorted by expiration
///    time at insert (tuples with equal `exp` keep arrival order).
///  - Expiration discipline: predictable. Advance(now) expires exactly
///    the tuples with `exp <= now`; in eager mode they are reported via
///    `on_expire` in row order, expiration-sorted within a cell.
///  - Batch boundaries: the physical purge may lag the logical clock.
///    SetClock() bumps `now()` without purging; the purge watermark
///    (`purged_to_`) is tracked separately, so the next Advance() sweeps
///    every row whose block intersects (purged_to_, now]. Reads filter by
///    LiveAt(now()), so deferral is invisible to results; after a batch
///    boundary LiveCount()==PhysicalCount() again.
class IndexedBuffer : public StateBuffer {
 public:
  /// `key_col`: the probe attribute. `num_partitions` P and `window_span`
  /// behave as in PartitionedBuffer; `num_buckets` B is the hash fan-out.
  IndexedBuffer(int key_col, int num_partitions, Time window_span,
                int num_buckets);

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return count_; }
  size_t StateBytes() const override;
  void Clear() override;
  std::string Name() const override { return "indexed"; }

  int key_col() const { return key_col_; }

 private:
  /// One grid cell: expiration-sorted tuples from index `head` on (the
  /// prefix before `head` is purged and compacted away periodically).
  struct Cell {
    std::vector<Tuple> items;
    size_t head = 0;
  };

  int64_t BlockOf(Time exp) const { return exp / span_; }
  size_t RowOf(Time exp) const {
    return static_cast<size_t>(BlockOf(exp) % static_cast<int64_t>(rows_));
  }
  size_t ColOf(const Value& v) const;
  Cell& CellAt(size_t row, size_t col) {
    return grid_[row * static_cast<size_t>(buckets_) + col];
  }
  const Cell& CellAt(size_t row, size_t col) const {
    return grid_[row * static_cast<size_t>(buckets_) + col];
  }

  void PurgeRow(size_t row, const ExpireFn& on_expire);
  void PurgeCell(Cell& cell, const ExpireFn& on_expire);

  int key_col_;
  int rows_;     // Expiration partitions (P).
  int buckets_;  // Hash buckets (B).
  Time span_;
  std::vector<Cell> grid_;  // rows_ x buckets_, each sorted by exp.
  /// Purge watermark: everything with exp <= purged_to_ is physically
  /// gone. Lags now_ while purging is deferred to a batch boundary.
  Time purged_to_ = 0;
  size_t count_ = 0;
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_INDEXED_BUFFER_H_
