#include "state/list_buffer.h"

#include "common/macros.h"

namespace upa {

void ListBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  tuples_.push_back(t);
  bytes_ += EstimateTupleBytes(t);
}

void ListBuffer::Advance(Time now, const ExpireFn& on_expire) {
  BumpClock(now);
  if (!lazy_) {
    PurgeExpired(on_expire);
    return;
  }
  UPA_CHECK(on_expire == nullptr);
  if (LazyPurgeDue(now_)) PurgeExpired(nullptr);
}

void ListBuffer::PurgeExpired(const ExpireFn& on_expire) {
  for (auto it = tuples_.begin(); it != tuples_.end();) {
    if (!it->LiveAt(now_)) {
      bytes_ -= EstimateTupleBytes(*it);
      if (on_expire != nullptr) on_expire(*it);
      it = tuples_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t ListBuffer::LiveCount() const {
  // In lazy mode, expired tuples linger until the next purge, so the live
  // count is computed on demand (it is only read by metrics and tests).
  if (!lazy_) return tuples_.size();
  size_t live = 0;
  for (const Tuple& t : tuples_) {
    if (t.LiveAt(now_)) ++live;
  }
  return live;
}

bool ListBuffer::EraseOneMatch(const Tuple& t) {
  for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
    if (it->exp == t.exp && it->FieldsEqual(t)) {
      bytes_ -= EstimateTupleBytes(*it);
      tuples_.erase(it);
      return true;
    }
  }
  return false;
}

void ListBuffer::ForEachLive(const TupleFn& fn) const {
  for (const Tuple& t : tuples_) {
    if (t.LiveAt(now_)) fn(t);
  }
}

void ListBuffer::ForEachMatch(int col, const Value& v,
                              const TupleFn& fn) const {
  for (const Tuple& t : tuples_) {
    if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
  }
}

void ListBuffer::Clear() {
  tuples_.clear();
  bytes_ = 0;
}

void FifoBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  // The caller asserts a WKS input: expiration order equals arrival order.
  UPA_DCHECK(tuples_.empty() || tuples_.back().exp <= t.exp);
  tuples_.push_back(t);
  bytes_ += EstimateTupleBytes(t);
}

void FifoBuffer::Advance(Time now, const ExpireFn& on_expire) {
  BumpClock(now);
  if (lazy_) {
    UPA_CHECK(on_expire == nullptr);
    if (!LazyPurgeDue(now_)) return;
  }
  while (!tuples_.empty() && !tuples_.front().LiveAt(now_)) {
    bytes_ -= EstimateTupleBytes(tuples_.front());
    if (!lazy_ && on_expire != nullptr) on_expire(tuples_.front());
    tuples_.pop_front();
  }
}

bool FifoBuffer::EraseOneMatch(const Tuple& t) {
  for (auto it = tuples_.begin(); it != tuples_.end(); ++it) {
    if (it->exp == t.exp && it->FieldsEqual(t)) {
      bytes_ -= EstimateTupleBytes(*it);
      tuples_.erase(it);
      return true;
    }
  }
  return false;
}

void FifoBuffer::ForEachLive(const TupleFn& fn) const {
  // Expired-but-unpurged tuples (lazy mode) form a prefix.
  for (const Tuple& t : tuples_) {
    if (t.LiveAt(now_)) fn(t);
  }
}

void FifoBuffer::ForEachMatch(int col, const Value& v,
                              const TupleFn& fn) const {
  for (const Tuple& t : tuples_) {
    if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
  }
}

size_t FifoBuffer::LiveCount() const {
  size_t live = 0;
  for (const Tuple& t : tuples_) {
    if (t.LiveAt(now_)) ++live;
  }
  return live;
}

void FifoBuffer::Clear() {
  tuples_.clear();
  bytes_ = 0;
}

}  // namespace upa
