#ifndef UPA_STATE_HASH_BUFFER_H_
#define UPA_STATE_HASH_BUFFER_H_

#include <list>
#include <string>
#include <vector>

#include "state/buffer.h"

namespace upa {

/// Hash-table state buffer keyed on one attribute, with a fixed
/// user-defined bucket count (paper, Section 5.4.1: "in the negative tuple
/// approach, the state buffer is a hash table on the key attribute with a
/// user-defined number of buckets").
///
/// This is the structure of choice when expirations arrive as explicit
/// negative tuples: the corresponding real tuple is located by probing the
/// key bucket rather than by scanning, making deletions cheap. It is also
/// used above the negation operator in the hybrid strategy of Section 5.4.3
/// when premature expirations are expected to be frequent. Conversely it
/// has no efficient *time-based* expiration: Advance() must scan, so direct
/// execution over hash state is deliberately supported but slow.
///
/// `scan_probes` reproduces the paper's NT cost accounting (Section
/// 5.4.1): the hash index serves *deletions* (negative-tuple lookups),
/// while join/match probing still scans the whole buffer -- the model
/// charges lambda1*N1 + lambda2*N2, doubled, to NT joins. Leave it false
/// for genuinely hash-probed state (relation tables, hybrid views).
///
/// Update-pattern contract (STR / NT state):
///  - Append order: arbitrary; buckets keep per-bucket arrival order.
///  - Expiration discipline: deletion-driven. Under NT execution every
///    removal arrives as an explicit negative tuple (EraseOneMatch by
///    (fields, exp) identity); time only moves via SetClock() so that
///    liveness checks observe the current instant. Advance() with a
///    callback exists for eager clock-driven use but must scan.
///  - Batch boundaries: signed deltas must NOT be reordered across each
///    other for the same key -- a negative must see its positive already
///    applied -- so batched callers keep per-key delta order and may only
///    defer the clock-driven purge scan, never the negative-tuple
///    deletes. LiveCount() equals the stored count in deletion-driven
///    use; while a clock-driven purge is deferred it may transiently
///    count expired residents (reads stay correct via LiveAt(now())).
class HashBuffer : public StateBuffer {
 public:
  /// `key_col` is the column the table is keyed on; `num_buckets` >= 1.
  HashBuffer(int key_col, int num_buckets, bool scan_probes = false);

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return count_; }
  size_t StateBytes() const override;
  void Clear() override;
  std::string Name() const override { return "hash"; }

  int key_col() const { return key_col_; }

 private:
  size_t BucketOf(const Value& v) const;

  int key_col_;
  bool scan_probes_;
  std::vector<std::list<Tuple>> buckets_;
  size_t count_ = 0;
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_HASH_BUFFER_H_
