#ifndef UPA_STATE_FREQ_TRACKER_H_
#define UPA_STATE_FREQ_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/value.h"

namespace upa {

/// Space-bounded per-key probe-frequency estimator backing heavy-light
/// state partitioning (DESIGN.md Section 16). A deterministic variant of
/// the space-saving sketch: at most `capacity` keys are resident; when a
/// new key arrives into a full sketch it replaces the resident with the
/// smallest (count, key) pair and inherits its count plus the new weight,
/// which keeps the classic guarantee that every resident's count
/// overestimates its true frequency by at most the smallest resident
/// count.
///
/// Determinism contract: every result is a pure function of the
/// ingest-order sequence of Observe()/Credit()/Decay() calls. Ties are
/// broken by the natural Value ordering (variant index, then per-type),
/// never by hash order or allocation order, so two replicas fed the same
/// probe sequence report byte-identical heavy sets -- the property the
/// skew differential battery pins. Hashing is used only to index
/// residents; eviction picks the minimum (count, key) over all residents,
/// which is iteration-order independent.
///
/// Cost contract: the tracker taxes every light probe of a wrapped
/// buffer, so Observe() must stay far cheaper than the O(n) scan it
/// instruments even in the adversarial low-skew regime where every
/// observation of a full sketch evicts. Increments are one hash lookup;
/// evictions amortize their victim scan through a cached candidate list
/// (all residents at the current minimum count, consumed in key order --
/// counts never decrease between decays, so the list stays exhaustive).
class KeyFrequencyTracker {
 public:
  explicit KeyFrequencyTracker(size_t capacity);

  /// Counts one observation of `v` (a probe against the wrapped state).
  void Observe(const Value& v) { Credit(v, 1); }

  /// Counts `weight` observations of `v` at once. Heavy-partition hits
  /// are tallied per key and credited in bulk at the next repartition
  /// barrier, keeping the sketch entirely off the heavy probe path.
  void Credit(const Value& v, uint64_t weight);

  /// Halves every resident count and evicts those that reach zero. Called
  /// once per repartition epoch so that counts approximate a sliding
  /// exponentially-decayed window and cooled-off keys free sketch space.
  void Decay();

  /// Estimated count of `v`; zero when not resident.
  uint64_t CountOf(const Value& v) const;

  /// Keys whose guaranteed count (count minus inherited error) reaches
  /// `threshold`, ordered by (count descending, key ascending), truncated
  /// to `max_keys`. `threshold` must be >= 1.
  std::vector<Value> HeavyKeys(uint64_t threshold, size_t max_keys) const;

  size_t size() const { return slots_.size(); }
  size_t capacity() const { return capacity_; }

  void Clear();

  /// Approximate heap footprint, for StateBytes() accounting.
  size_t StateBytes() const;

 private:
  struct Slot {
    Value key;
    uint64_t count;
    /// Overestimation bound inherited at insertion (the evicted victim's
    /// count): true frequency lies in [count - err, count]. Heavy
    /// qualification uses the guaranteed lower bound, otherwise the
    /// eviction-churn minimum of a low-skew workload inflates every
    /// newcomer past the threshold and cold keys get promoted.
    uint64_t err;
  };

  struct ValueHasher {
    size_t operator()(const Value& v) const {
      return static_cast<size_t>(HashValue(v));
    }
  };

  /// Returns the slot index of the eviction victim: the resident with the
  /// smallest (count, key). Serves from min_candidates_ when possible and
  /// rescans otherwise.
  size_t PickVictim();

  size_t capacity_;
  std::vector<Slot> slots_;
  std::unordered_map<Value, size_t, ValueHasher> index_;

  /// Keys whose count equalled min_bound_ at the last victim scan, in
  /// ascending key order; entries whose count moved on are skipped at
  /// consumption time. Invalidated by Decay()/Clear().
  std::vector<Value> min_candidates_;
  size_t next_candidate_ = 0;
  uint64_t min_bound_ = 0;
  bool candidates_valid_ = false;
};

}  // namespace upa

#endif  // UPA_STATE_FREQ_TRACKER_H_
