#ifndef UPA_STATE_SERDE_H_
#define UPA_STATE_SERDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "common/value.h"

namespace upa {
namespace serde {

/// Binary serialization for tuples and values, used by the durability
/// layer (WAL records and checkpoint manifests). The format is
/// little-endian, fixed-width integers, length-prefixed strings. It is
/// deliberately simple: framing, versioning and corruption detection are
/// the responsibility of the enclosing record format (CRC32C frames, see
/// src/engine/durability/wal.h); this layer only has to be unambiguous
/// and, on the decode side, safe against arbitrary byte garbage -- a
/// decoder fed a corrupted payload must return false, never crash,
/// over-read, or allocate unbounded memory.

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutDouble(std::string* out, double v);
/// u32 length prefix + raw bytes.
void PutString(std::string* out, const std::string& s);
/// Tag byte (0 = int64, 1 = double, 2 = string) + payload.
void PutValue(std::string* out, const Value& v);
/// ts | exp | negative | field count | fields.
void PutTuple(std::string* out, const Tuple& t);

/// Bounds-checked cursor over an encoded payload. Every getter returns
/// false (and poisons the reader) instead of reading past the end; string
/// and vector lengths are validated against the remaining byte count
/// before any allocation, so a corrupted length cannot trigger a huge
/// reservation.
class Reader {
 public:
  Reader(const void* data, size_t size)
      : p_(static_cast<const unsigned char*>(data)), end_(p_ + size) {}
  explicit Reader(const std::string& s) : Reader(s.data(), s.size()) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetDouble(double* v);
  bool GetString(std::string* v);
  bool GetValue(Value* v);
  bool GetTuple(Tuple* t);

  bool ok() const { return ok_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  /// True when the payload was consumed exactly (decoders should demand
  /// this so trailing garbage is treated as corruption, not ignored).
  bool AtEnd() const { return ok_ && p_ == end_; }

 private:
  bool Need(size_t n);

  const unsigned char* p_;
  const unsigned char* end_;
  bool ok_ = true;
};

/// Order-independent 64-bit digest of a tuple multiset's *rows*: the
/// per-tuple hashes of the field encodings (not ts/exp) are combined
/// commutatively, so two snapshots of the same logical view contents
/// digest equally regardless of iteration order. Used by recovery to
/// verify that replaying a checkpoint's retained tuples reproduced the
/// view recorded at the checkpoint barrier. Timestamps are deliberately
/// excluded: replay reproduces the row multiset exactly (the engine's
/// determinism contract), but the representative metadata of a
/// distinct/group-by output -- which arrival's ts a surviving duplicate
/// carries -- may legitimately differ between the original replica and a
/// rebuilt one.
uint64_t RowsDigest(const std::vector<Tuple>& tuples);

}  // namespace serde
}  // namespace upa

#endif  // UPA_STATE_SERDE_H_
