#include "state/heavy_light_buffer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/macros.h"

namespace upa {

HeavyLightBuffer::HeavyLightBuffer(std::unique_ptr<StateBuffer> inner,
                                   int key_col, ProbeOrder order,
                                   Time partition_span, int num_partitions,
                                   const Options& options)
    : inner_(std::move(inner)),
      key_col_(key_col),
      order_(order),
      partition_span_(std::max<Time>(1, partition_span)),
      num_partitions_(std::max(1, num_partitions)),
      options_(options),
      tracker_(options.tracker_capacity) {
  UPA_CHECK(inner_ != nullptr);
  UPA_CHECK(key_col_ >= 0);
  UPA_CHECK(options_.threshold >= 1);
  UPA_CHECK(options_.max_heavy_keys >= 1);
  UPA_CHECK(options_.epoch >= 1);
}

bool HeavyLightBuffer::EntryLess(const Entry& a, const Entry& b) {
  if (a.part != b.part) return a.part < b.part;
  if (a.exp_key != b.exp_key) return a.exp_key < b.exp_key;
  return a.seq < b.seq;
}

HeavyLightBuffer::Entry HeavyLightBuffer::MakeEntry(const Tuple& t) {
  Entry e;
  e.seq = next_seq_++;
  if (order_ != ProbeOrder::kArrival) {
    e.part = (t.exp / partition_span_) % num_partitions_;
    if (order_ == ProbeOrder::kPartitionExp) e.exp_key = t.exp;
  }
  e.tuple = t;
  return e;
}

void HeavyLightBuffer::InsertEntry(HeavyState* hs, Entry e) {
  heavy_bytes_ += EntryBytes(e);
  auto& v = hs->entries;
  // Arrival-ordered structures always append (monotone seq); partitioned
  // orders insort, still O(1) for the common in-order case.
  auto pos = v.empty() || EntryLess(v.back(), e)
                 ? v.end()
                 : std::upper_bound(v.begin(), v.end(), e, EntryLess);
  v.insert(pos, std::move(e));
}

size_t HeavyLightBuffer::EntryBytes(const Entry& e) const {
  return sizeof(Entry) + EstimateTupleBytes(e.tuple) - sizeof(Tuple);
}

void HeavyLightBuffer::Insert(const Tuple& t) {
  inner_->Insert(t);
  if (heavy_.empty()) return;
  UPA_DCHECK(key_col_ < static_cast<int>(t.fields.size()));
  auto it = heavy_.find(t.fields[key_col_]);
  if (it != heavy_.end()) InsertEntry(&it->second, MakeEntry(t));
}

void HeavyLightBuffer::Advance(Time now, const ExpireFn& on_expire) {
  inner_->Advance(now, on_expire);
  BumpClock(now);
  MaybeRepartition();
}

void HeavyLightBuffer::SetClock(Time now) {
  inner_->SetClock(now);
  BumpClock(now);
  MaybeRepartition();
}

void HeavyLightBuffer::SetDegraded(bool on) { inner_->SetDegraded(on); }

bool HeavyLightBuffer::EraseOneMatch(const Tuple& t) {
  if (!inner_->EraseOneMatch(t)) return false;
  if (heavy_.empty()) return true;
  UPA_DCHECK(key_col_ < static_cast<int>(t.fields.size()));
  auto it = heavy_.find(t.fields[key_col_]);
  if (it != heavy_.end()) {
    auto& v = it->second.entries;
    // Copies with equal (fields, exp) are interchangeable, so removing
    // the first matching copy mirrors whichever one the inner buffer
    // removed.
    for (auto e = v.begin(); e != v.end(); ++e) {
      if (e->tuple.exp == t.exp && e->tuple.FieldsEqual(t)) {
        heavy_bytes_ -= EntryBytes(*e);
        v.erase(e);
        break;
      }
    }
  }
  return true;
}

void HeavyLightBuffer::ForEachLive(const TupleFn& fn) const {
  inner_->ForEachLive(fn);
}

void HeavyLightBuffer::ForEachMatch(int col, const Value& v,
                                    const TupleFn& fn) const {
  if (col != key_col_) {
    inner_->ForEachMatch(col, v, fn);
    return;
  }
  auto it = heavy_.empty() ? heavy_.end() : heavy_.find(v);
  if (it == heavy_.end()) {
    // The sketch taxes only light probes, which already pay an O(n) scan,
    // and only during observed epochs (the duty cycle bounds the tax when
    // no skew is present); heavy hits are tallied per key and credited in
    // bulk at the next barrier.
    if (observing_) tracker_.Observe(v);
    ++light_probes_;
    inner_->ForEachMatch(col, v, fn);
    return;
  }
  ++heavy_probe_hits_;
  ++it->second.hits;
  for (const Entry& e : it->second.entries) {
    if (e.tuple.LiveAt(now())) fn(e.tuple);
  }
}

size_t HeavyLightBuffer::LiveCount() const { return inner_->LiveCount(); }

size_t HeavyLightBuffer::PhysicalCount() const {
  return inner_->PhysicalCount();
}

size_t HeavyLightBuffer::StateBytes() const {
  return inner_->StateBytes() + heavy_bytes_ + tracker_.StateBytes();
}

void HeavyLightBuffer::Clear() {
  inner_->Clear();
  heavy_.clear();
  pending_.clear();
  tracker_.Clear();
  heavy_bytes_ = 0;
}

std::string HeavyLightBuffer::Name() const {
  return "heavy-light(" + inner_->Name() + ")";
}

void HeavyLightBuffer::CollectHeavyLight(HeavyLightStats* out) const {
  out->heavy_keys += heavy_.size();
  out->promotions += promotions_;
  out->demotions += demotions_;
  out->heavy_probe_hits += heavy_probe_hits_;
  out->light_probes += light_probes_;
}

std::vector<Value> HeavyLightBuffer::HeavyKeysForTest() const {
  std::vector<Value> keys;
  keys.reserve(heavy_.size());
  for (const auto& [key, hs] : heavy_) keys.push_back(key);
  return keys;
}

std::vector<Tuple> HeavyLightBuffer::HeavyEnumerationForTest(
    const Value& key) const {
  std::vector<Tuple> rows;
  auto it = heavy_.find(key);
  if (it == heavy_.end()) return rows;
  for (const Entry& e : it->second.entries) {
    if (e.tuple.LiveAt(now())) rows.push_back(e.tuple);
  }
  return rows;
}

void HeavyLightBuffer::MaybeRepartition() {
  const int64_t epoch = now() / options_.epoch;
  if (epoch <= last_epoch_) return;
  last_epoch_ = epoch;
  if (!observing_) {
    // Frozen epoch: the sketch saw no probes, so there is nothing to
    // repartition. Resume observation on the probation cadence.
    observing_ = options_.probation_epochs <= 1 ||
                 epoch % options_.probation_epochs == 0;
    return;
  }
  Repartition(std::max<int64_t>(1, epoch - last_observed_epoch_));
  last_observed_epoch_ = epoch;
  // Duty cycle on measured absorption: when the heavy partition took less
  // than 1/8 of the probes since the last observed barrier, the workload
  // has no exploitable skew and the sketch freezes until the next
  // probation epoch. The ratio uses the real probe counters -- ground
  // truth, immune to sketch estimation error -- and any workload where
  // heavy copies pay for themselves clears 1/8 by a wide margin.
  // Surviving heavy keys keep serving their copies while frozen
  // (result-invariant either way) and are re-judged when observation
  // resumes.
  const uint64_t hits = heavy_probe_hits_ - hits_at_barrier_;
  const uint64_t probes = hits + (light_probes_ - light_at_barrier_);
  hits_at_barrier_ = heavy_probe_hits_;
  light_at_barrier_ = light_probes_;
  // The first two observed barriers never freeze: second-chance admission
  // needs two consecutive observed barriers, and a frozen gap in between
  // would stretch cold-start promotion latency for genuinely hot keys.
  ++observed_barriers_;
  observing_ = observed_barriers_ < 2 || hits * 8 >= probes ||
               options_.probation_epochs <= 1 ||
               epoch % options_.probation_epochs == 0;
}

void HeavyLightBuffer::Repartition(int64_t elapsed_epochs) {
  // Credit heavy-partition hits accumulated since the last barrier before
  // selecting the next heavy set, so a still-hot heavy key is not demoted
  // for having bypassed the sketch. Keys whose measured hit *rate* fell
  // below the threshold are cold no matter what the sketch estimates (its
  // counts for heavy keys are stale EWDA carry by construction): they are
  // demoted and barred from re-promotion at this barrier, so a key
  // promoted on sketch overestimation is evicted at the next observed
  // barrier on ground truth. The bar scales with the elapsed epochs so a
  // frozen stretch does not dilute it.
  const uint64_t cold_bar =
      options_.threshold * static_cast<uint64_t>(elapsed_epochs);
  std::set<Value> cold;
  for (auto& [key, hs] : heavy_) {
    tracker_.Credit(key, hs.hits);
    if (hs.hits < cold_bar) cold.insert(key);
    hs.hits = 0;
  }
  std::vector<Value> target =
      tracker_.HeavyKeys(options_.threshold, options_.max_heavy_keys);
  if (!cold.empty()) {
    target.erase(std::remove_if(target.begin(), target.end(),
                                [&](const Value& k) {
                                  return cold.count(k) > 0;
                                }),
                 target.end());
  }
  const std::set<Value> target_set(target.begin(), target.end());

  // Demote keys that cooled off; their tuples remain in the inner buffer
  // untouched, so demotion only drops the materialized copies.
  for (auto it = heavy_.begin(); it != heavy_.end();) {
    if (target_set.count(it->first) == 0) {
      for (const Entry& e : it->second.entries) heavy_bytes_ -= EntryBytes(e);
      ++demotions_;
      it = heavy_.erase(it);
    } else {
      ++it;
    }
  }

  // Prune expired copies of surviving heavy keys (probes filter by
  // liveness, so this is purely a space bound).
  for (auto& [key, hs] : heavy_) {
    auto& v = hs.entries;
    auto keep = v.begin();
    for (auto e = v.begin(); e != v.end(); ++e) {
      if (e->tuple.LiveAt(now())) {
        if (keep != e) *keep = std::move(*e);
        ++keep;
      } else {
        heavy_bytes_ -= EntryBytes(*e);
      }
    }
    v.erase(keep, v.end());
  }

  // Second-chance admission: a candidate is promoted only after
  // qualifying at two consecutive observed barriers. A genuinely hot key
  // re-qualifies immediately and pays one barrier of extra latency; a key
  // that qualified through random collisions in a low-skew stream almost
  // never re-qualifies, so the heavy set stays empty where there is no
  // skew to exploit. Cold-demoted keys were excluded from `target` above
  // and so restart the full qualify-confirm ladder.
  std::set<Value> fresh;
  std::set<Value> next_pending;
  for (const Value& k : target) {
    if (heavy_.count(k) != 0) continue;
    if (pending_.count(k) != 0) {
      fresh.insert(k);
    } else {
      next_pending.insert(k);
    }
  }
  pending_ = std::move(next_pending);
  if (!fresh.empty()) {
    promotions_ += fresh.size();
    for (const Value& k : fresh) heavy_.emplace(k, HeavyState{});
    inner_->ForEachLive([&](const Tuple& t) {
      UPA_DCHECK(key_col_ < static_cast<int>(t.fields.size()));
      const Value& k = t.fields[key_col_];
      if (fresh.count(k) == 0) return;
      InsertEntry(&heavy_[k], MakeEntry(t));
    });
  }

  tracker_.Decay();
}

}  // namespace upa
