#include "state/freq_tracker.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace upa {

KeyFrequencyTracker::KeyFrequencyTracker(size_t capacity)
    : capacity_(capacity) {
  UPA_CHECK(capacity_ >= 1);
}

void KeyFrequencyTracker::Credit(const Value& v, uint64_t weight) {
  if (weight == 0) return;
  auto it = index_.find(v);
  if (it != index_.end()) {
    // Counts only grow between decays, so stale min_candidates_ entries
    // are detected by the count check at consumption time.
    slots_[it->second].count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    index_.emplace(v, slots_.size());
    slots_.push_back(Slot{v, weight, 0});
    return;
  }
  // Space-saving replacement: evict the minimum (count, key) resident and
  // credit the newcomer with its count plus the new weight.
  const size_t vi = PickVictim();
  const uint64_t inherited = slots_[vi].count;
  index_.erase(slots_[vi].key);
  slots_[vi] = Slot{v, inherited + weight, inherited};
  index_.emplace(v, vi);
}

size_t KeyFrequencyTracker::PickVictim() {
  while (candidates_valid_ && next_candidate_ < min_candidates_.size()) {
    const Value& cand = min_candidates_[next_candidate_];
    auto it = index_.find(cand);
    if (it != index_.end() && slots_[it->second].count == min_bound_) {
      ++next_candidate_;
      return it->second;
    }
    // Incremented past the bound (or re-keyed by a prior eviction): no
    // longer the minimum, skip permanently for this bound generation.
    ++next_candidate_;
  }
  // Rescan: find the smallest count, then collect every resident at that
  // count in ascending key order. New entries always enter above the
  // bound (inheritance adds weight) and increments only raise counts, so
  // the list remains exhaustive until it drains.
  UPA_DCHECK(!slots_.empty());
  uint64_t min_count = slots_[0].count;
  for (const Slot& s : slots_) min_count = std::min(min_count, s.count);
  min_bound_ = min_count;
  min_candidates_.clear();
  for (const Slot& s : slots_) {
    if (s.count == min_count) min_candidates_.push_back(s.key);
  }
  std::sort(min_candidates_.begin(), min_candidates_.end());
  candidates_valid_ = true;
  next_candidate_ = 1;  // Slot 0 of the list is consumed right now.
  auto it = index_.find(min_candidates_[0]);
  UPA_DCHECK(it != index_.end());
  return it->second;
}

void KeyFrequencyTracker::Decay() {
  size_t keep = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    slots_[i].count /= 2;
    slots_[i].err /= 2;
    if (slots_[i].count > 0) {
      if (keep != i) slots_[keep] = std::move(slots_[i]);
      ++keep;
    }
  }
  slots_.resize(keep);
  index_.clear();
  for (size_t i = 0; i < slots_.size(); ++i) index_.emplace(slots_[i].key, i);
  candidates_valid_ = false;
  min_candidates_.clear();
  next_candidate_ = 0;
}

uint64_t KeyFrequencyTracker::CountOf(const Value& v) const {
  auto it = index_.find(v);
  return it == index_.end() ? 0 : slots_[it->second].count;
}

std::vector<Value> KeyFrequencyTracker::HeavyKeys(uint64_t threshold,
                                                  size_t max_keys) const {
  UPA_CHECK(threshold >= 1);
  std::vector<std::pair<uint64_t, Value>> qualifying;
  for (const Slot& s : slots_) {
    // Qualify on the guaranteed lower bound; rank on the raw count.
    if (s.count - s.err >= threshold) qualifying.emplace_back(s.count, s.key);
  }
  // Highest count first; equal counts in natural key order. The explicit
  // tie-break keeps the result independent of slot order.
  std::sort(qualifying.begin(), qualifying.end(), [](const auto& a,
                                                     const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });
  if (qualifying.size() > max_keys) qualifying.resize(max_keys);
  std::vector<Value> keys;
  keys.reserve(qualifying.size());
  for (auto& [count, key] : qualifying) keys.push_back(std::move(key));
  return keys;
}

void KeyFrequencyTracker::Clear() {
  slots_.clear();
  index_.clear();
  min_candidates_.clear();
  next_candidate_ = 0;
  candidates_valid_ = false;
}

size_t KeyFrequencyTracker::StateBytes() const {
  size_t bytes = sizeof(*this);
  for (const Slot& s : slots_) {
    // One slot plus one index node per resident, plus the candidate list.
    bytes += sizeof(Slot) + sizeof(size_t) + 3 * sizeof(void*);
    if (const auto* str = std::get_if<std::string>(&s.key)) {
      bytes += str->capacity();
    }
  }
  bytes += min_candidates_.capacity() * sizeof(Value);
  return bytes;
}

}  // namespace upa
