#include "state/indexed_buffer.h"

#include <algorithm>

#include "common/macros.h"

namespace upa {

namespace {
constexpr size_t kCellOverheadBytes = 24;
}  // namespace

IndexedBuffer::IndexedBuffer(int key_col, int num_partitions,
                             Time window_span, int num_buckets)
    : key_col_(key_col), rows_(num_partitions), buckets_(num_buckets) {
  UPA_CHECK(key_col_ >= 0);
  UPA_CHECK(rows_ >= 1);
  UPA_CHECK(buckets_ >= 1);
  UPA_CHECK(window_span >= 1);
  span_ = std::max<Time>(1, (window_span + rows_ - 1) / rows_);
  grid_.resize(static_cast<size_t>(rows_) * static_cast<size_t>(buckets_));
}

size_t IndexedBuffer::ColOf(const Value& v) const {
  return static_cast<size_t>(HashValue(v) %
                             static_cast<uint64_t>(buckets_));
}

void IndexedBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  UPA_DCHECK(static_cast<size_t>(key_col_) < t.fields.size());
  std::list<Tuple>& cell =
      Cell(RowOf(t.exp), ColOf(t.fields[static_cast<size_t>(key_col_)]));
  // Cells are sorted by expiration time (mostly-append workloads).
  auto it = cell.end();
  while (it != cell.begin()) {
    auto prev = std::prev(it);
    if (prev->exp <= t.exp) break;
    it = prev;
  }
  cell.insert(it, t);
  ++count_;
  bytes_ += EstimateTupleBytes(t);
}

void IndexedBuffer::Advance(Time now, const ExpireFn& on_expire) {
  const Time prev_now = now_;
  BumpClock(now);
  if (lazy_) {
    UPA_CHECK(on_expire == nullptr);
    if (!LazyPurgeDue(now_)) return;
    if (count_ == 0) return;
    for (size_t row = 0; row < static_cast<size_t>(rows_); ++row) {
      PurgeRow(row, nullptr);
    }
    return;
  }
  if (count_ == 0) return;
  const int64_t first_block = BlockOf(prev_now);
  const int64_t last_block = BlockOf(now_);
  const int64_t nrows = rows_;
  const int64_t nblocks = std::min<int64_t>(last_block - first_block + 1,
                                            nrows);
  for (int64_t b = 0; b < nblocks; ++b) {
    PurgeRow(static_cast<size_t>((first_block + b) % nrows), on_expire);
  }
}

void IndexedBuffer::PurgeRow(size_t row, const ExpireFn& on_expire) {
  for (int col = 0; col < buckets_; ++col) {
    std::list<Tuple>& cell = Cell(row, static_cast<size_t>(col));
    while (!cell.empty() && !cell.front().LiveAt(now_)) {
      bytes_ -= EstimateTupleBytes(cell.front());
      --count_;
      if (on_expire != nullptr) on_expire(cell.front());
      cell.pop_front();
    }
  }
}

bool IndexedBuffer::EraseOneMatch(const Tuple& t) {
  UPA_DCHECK(static_cast<size_t>(key_col_) < t.fields.size());
  const size_t col = ColOf(t.fields[static_cast<size_t>(key_col_)]);
  std::list<Tuple>& cell = Cell(RowOf(t.exp), col);
  for (auto it = cell.begin(); it != cell.end(); ++it) {
    if (it->exp == t.exp && it->FieldsEqual(t)) {
      bytes_ -= EstimateTupleBytes(*it);
      --count_;
      cell.erase(it);
      return true;
    }
  }
  return false;
}

void IndexedBuffer::ForEachLive(const TupleFn& fn) const {
  for (const std::list<Tuple>& cell : grid_) {
    for (const Tuple& t : cell) {
      if (t.LiveAt(now_)) fn(t);
    }
  }
}

void IndexedBuffer::ForEachMatch(int col, const Value& v,
                                 const TupleFn& fn) const {
  if (col != key_col_) {
    for (const std::list<Tuple>& cell : grid_) {
      for (const Tuple& t : cell) {
        if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
      }
    }
    return;
  }
  // One column of the grid: P short lists instead of the whole buffer.
  const size_t bucket = ColOf(v);
  for (size_t row = 0; row < static_cast<size_t>(rows_); ++row) {
    for (const Tuple& t : Cell(row, bucket)) {
      if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
    }
  }
}

size_t IndexedBuffer::LiveCount() const {
  if (!lazy_) return count_;
  size_t live = 0;
  for (const std::list<Tuple>& cell : grid_) {
    for (const Tuple& t : cell) {
      if (t.LiveAt(now_)) ++live;
    }
  }
  return live;
}

size_t IndexedBuffer::StateBytes() const {
  return bytes_ + grid_.size() * kCellOverheadBytes;
}

void IndexedBuffer::Clear() {
  for (std::list<Tuple>& cell : grid_) cell.clear();
  count_ = 0;
  bytes_ = 0;
}

}  // namespace upa
