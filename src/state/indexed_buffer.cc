#include "state/indexed_buffer.h"

#include <algorithm>

#include "common/macros.h"

namespace upa {

namespace {
constexpr size_t kCellOverheadBytes = 24;
}  // namespace

IndexedBuffer::IndexedBuffer(int key_col, int num_partitions,
                             Time window_span, int num_buckets)
    : key_col_(key_col), rows_(num_partitions), buckets_(num_buckets) {
  UPA_CHECK(key_col_ >= 0);
  UPA_CHECK(rows_ >= 1);
  UPA_CHECK(buckets_ >= 1);
  UPA_CHECK(window_span >= 1);
  span_ = std::max<Time>(1, (window_span + rows_ - 1) / rows_);
  grid_.resize(static_cast<size_t>(rows_) * static_cast<size_t>(buckets_));
}

size_t IndexedBuffer::ColOf(const Value& v) const {
  return static_cast<size_t>(HashValue(v) %
                             static_cast<uint64_t>(buckets_));
}

void IndexedBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  UPA_DCHECK(static_cast<size_t>(key_col_) < t.fields.size());
  Cell& cell =
      CellAt(RowOf(t.exp), ColOf(t.fields[static_cast<size_t>(key_col_)]));
  // Cells are sorted by expiration time; upper_bound lands after any
  // equal-exp tuples, so ties keep arrival order. Mostly-append
  // workloads insert at (or near) the tail.
  auto it = std::upper_bound(
      cell.items.begin() + static_cast<ptrdiff_t>(cell.head),
      cell.items.end(), t.exp,
      [](Time e, const Tuple& u) { return e < u.exp; });
  cell.items.insert(it, t);
  ++count_;
  bytes_ += EstimateTupleBytes(t);
}

void IndexedBuffer::Advance(Time now, const ExpireFn& on_expire) {
  BumpClock(now);
  if (lazy_) {
    UPA_CHECK(on_expire == nullptr);
    if (!LazyPurgeDue(now_)) return;
    purged_to_ = now_;
    if (count_ == 0) return;
    for (size_t row = 0; row < static_cast<size_t>(rows_); ++row) {
      PurgeRow(row, nullptr);
    }
    return;
  }
  if (now_ <= purged_to_) return;
  // Blocks that intersect (purged_to_, now_] hold every expired tuple;
  // the watermark (not the previous clock) keeps this correct when the
  // clock was bumped without purging across a batch.
  const int64_t first_block = BlockOf(purged_to_);
  const int64_t last_block = BlockOf(now_);
  const int64_t nrows = rows_;
  const int64_t nblocks = std::min<int64_t>(last_block - first_block + 1,
                                            nrows);
  purged_to_ = now_;
  if (count_ == 0) return;
  for (int64_t b = 0; b < nblocks; ++b) {
    PurgeRow(static_cast<size_t>((first_block + b) % nrows), on_expire);
  }
}

void IndexedBuffer::PurgeRow(size_t row, const ExpireFn& on_expire) {
  for (int col = 0; col < buckets_; ++col) {
    PurgeCell(CellAt(row, static_cast<size_t>(col)), on_expire);
  }
}

void IndexedBuffer::PurgeCell(Cell& cell, const ExpireFn& on_expire) {
  std::vector<Tuple>& v = cell.items;
  size_t h = cell.head;
  while (h < v.size() && !v[h].LiveAt(now_)) {
    bytes_ -= EstimateTupleBytes(v[h]);
    --count_;
    if (on_expire != nullptr) on_expire(v[h]);
    ++h;
  }
  cell.head = h;
  if (cell.head > 0 && cell.head * 2 >= v.size()) {
    v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(cell.head));
    cell.head = 0;
  }
}

bool IndexedBuffer::EraseOneMatch(const Tuple& t) {
  UPA_DCHECK(static_cast<size_t>(key_col_) < t.fields.size());
  const size_t col = ColOf(t.fields[static_cast<size_t>(key_col_)]);
  Cell& cell = CellAt(RowOf(t.exp), col);
  std::vector<Tuple>& v = cell.items;
  for (size_t i = cell.head; i < v.size(); ++i) {
    if (v[i].exp == t.exp && v[i].FieldsEqual(t)) {
      bytes_ -= EstimateTupleBytes(v[i]);
      --count_;
      v.erase(v.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void IndexedBuffer::ForEachLive(const TupleFn& fn) const {
  for (const Cell& cell : grid_) {
    for (size_t i = cell.head; i < cell.items.size(); ++i) {
      if (cell.items[i].LiveAt(now_)) fn(cell.items[i]);
    }
  }
}

void IndexedBuffer::ForEachMatch(int col, const Value& v,
                                 const TupleFn& fn) const {
  if (col != key_col_) {
    for (const Cell& cell : grid_) {
      for (size_t i = cell.head; i < cell.items.size(); ++i) {
        const Tuple& t = cell.items[i];
        if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
      }
    }
    return;
  }
  // One column of the grid: P short cells instead of the whole buffer.
  const size_t bucket = ColOf(v);
  for (size_t row = 0; row < static_cast<size_t>(rows_); ++row) {
    const Cell& cell = CellAt(row, bucket);
    for (size_t i = cell.head; i < cell.items.size(); ++i) {
      const Tuple& t = cell.items[i];
      if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
    }
  }
}

size_t IndexedBuffer::LiveCount() const {
  // Cells are expiration-sorted, so the expired-but-unpurged residue
  // (purging deferred to a batch boundary, or lazy mode) is a prefix of
  // each cell; skipping it makes the count exact in either discipline.
  size_t live = 0;
  for (const Cell& cell : grid_) {
    const std::vector<Tuple>& v = cell.items;
    auto it = std::partition_point(
        v.begin() + static_cast<ptrdiff_t>(cell.head), v.end(),
        [this](const Tuple& t) { return !t.LiveAt(now_); });
    live += static_cast<size_t>(v.end() - it);
  }
  return live;
}

size_t IndexedBuffer::StateBytes() const {
  return bytes_ + grid_.size() * kCellOverheadBytes;
}

void IndexedBuffer::Clear() {
  for (Cell& cell : grid_) {
    cell.items.clear();
    cell.head = 0;
  }
  count_ = 0;
  bytes_ = 0;
  purged_to_ = now_;
}

}  // namespace upa
