#ifndef UPA_STATE_PARTITIONED_BUFFER_H_
#define UPA_STATE_PARTITIONED_BUFFER_H_

#include <list>
#include <string>
#include <vector>

#include "state/buffer.h"

namespace upa {

/// The update-pattern-aware state structure for weak non-monotonic inputs
/// (paper, Section 5.3.2 and Figure 7): a circular array of partitions that
/// bucket tuples by expiration time.
///
/// With insertion order different from expiration order (WK patterns),
/// keeping one list ordered by insertion makes deletions scan the whole
/// buffer, while keeping it ordered by expiration makes insertions scan the
/// whole buffer. Partitioning by expiration time bounds both costs to one
/// partition: a tuple with expiration time `exp` lives in partition
/// `(exp / span) % P`, where `span` covers 1/P of the window range. The
/// structure behaves like a calendar queue whose events are expirations.
///
/// In eager mode each partition is kept sorted by expiration time, so
/// Advance() pops an expired prefix of the due partition(s); insertions
/// sort into a single partition (~N/P tuples). In lazy mode partitions are
/// kept in insertion order (O(1) insert) and purged by scanning only the
/// due partitions.
///
/// More partitions means less state to scan per operation but more
/// per-partition overhead -- the tradeoff of experiment E6.
class PartitionedBuffer : public StateBuffer {
 public:
  /// `num_partitions` P >= 1; `window_span` is the width of the expiration
  /// range the circle must cover, normally the (largest) window size
  /// feeding this state.
  PartitionedBuffer(int num_partitions, Time window_span);

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return count_; }
  size_t StateBytes() const override;
  void Clear() override;
  std::string Name() const override { return "partitioned"; }

  int num_partitions() const { return static_cast<int>(parts_.size()); }

 private:
  int64_t BlockOf(Time exp) const { return exp / span_; }
  std::list<Tuple>& PartitionOf(Time exp);

  /// Removes tuples with exp <= now_ from partition `p`.
  void PurgePartition(size_t p, const ExpireFn& on_expire);

  Time span_;
  std::vector<std::list<Tuple>> parts_;
  size_t count_ = 0;
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_PARTITIONED_BUFFER_H_
