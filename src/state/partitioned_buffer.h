#ifndef UPA_STATE_PARTITIONED_BUFFER_H_
#define UPA_STATE_PARTITIONED_BUFFER_H_

#include <string>
#include <vector>

#include "state/buffer.h"

namespace upa {

/// The update-pattern-aware state structure for weak non-monotonic inputs
/// (paper, Section 5.3.2 and Figure 7): a circular array of partitions that
/// bucket tuples by expiration time.
///
/// With insertion order different from expiration order (WK patterns),
/// keeping one list ordered by insertion makes deletions scan the whole
/// buffer, while keeping it ordered by expiration makes insertions scan the
/// whole buffer. Partitioning by expiration time bounds both costs to one
/// partition: a tuple with expiration time `exp` lives in partition
/// `(exp / span) % P`, where `span` covers 1/P of the window range. The
/// structure behaves like a calendar queue whose events are expirations.
///
/// Update-pattern contract (WK, Section 5.2 rule 4):
///  - Append order: arbitrary. Insert() accepts tuples in any expiration
///    order and is O(1) — each tuple is appended to its partition's
///    *staged* run and folded into the expiration-sorted run on the next
///    purge or read of that partition (a stable merge, so tuples with
///    equal `exp` keep arrival order, matching the historical
///    insert-after-ties discipline).
///  - Expiration discipline: predictable. Every tuple carries its exact
///    `exp` at insert; Advance(now) expires precisely the tuples with
///    `exp <= now`, never early, never late. Eager mode reports them (in
///    block order, expiration-sorted within a partition) via `on_expire`.
///  - Batch boundaries: physical purging may lag the logical clock.
///    SetClock()/AdvanceClock-style deferral bumps `now()` without
///    purging; the buffer tracks the purge watermark separately
///    (`purged_to_`), so a later Advance() sweeps every block in
///    (purged_to_, now] even if the clock moved first. Reads filter by
///    LiveAt(now()), so deferring the sweep to a batch boundary is
///    invisible to results. After a batch boundary (Advance called with
///    the batch's final clock) the expired prefix of every due partition
///    is gone and LiveCount()==PhysicalCount() again.
///
/// In eager mode each partition keeps an expiration-sorted vector plus a
/// small unsorted staged run; Advance() pops an expired prefix of the due
/// partition(s). In lazy mode partitions are kept in insertion order
/// (O(1) insert) and purged by scanning only the due partitions every
/// purge interval.
///
/// More partitions means less state to scan per operation but more
/// per-partition overhead -- the tradeoff of experiment E6.
class PartitionedBuffer : public StateBuffer {
 public:
  /// `num_partitions` P >= 1; `window_span` is the width of the expiration
  /// range the circle must cover, normally the (largest) window size
  /// feeding this state.
  PartitionedBuffer(int num_partitions, Time window_span);

  void Insert(const Tuple& t) override;
  void Advance(Time now, const ExpireFn& on_expire) override;
  bool EraseOneMatch(const Tuple& t) override;
  void ForEachLive(const TupleFn& fn) const override;
  void ForEachMatch(int col, const Value& v, const TupleFn& fn) const override;
  size_t LiveCount() const override;
  size_t PhysicalCount() const override { return count_; }
  size_t StateBytes() const override;
  void Clear() override;
  std::string Name() const override { return "partitioned"; }

  int num_partitions() const { return static_cast<int>(parts_.size()); }

  /// Width of one expiration block (1/P of the covered window range).
  /// Exposed so HeavyLightBuffer can replicate the block enumeration
  /// order of wrapped partitioned state.
  Time block_span() const { return span_; }

 private:
  /// One expiration block. `sorted` is ordered by (exp, arrival) from
  /// index `head` on (the prefix before `head` is already purged and is
  /// compacted away periodically); `staged` holds recent eager inserts
  /// not yet merged. Lazy mode uses `sorted` as a plain insertion-order
  /// vector and never stages.
  struct Partition {
    std::vector<Tuple> sorted;
    std::vector<Tuple> staged;
    size_t head = 0;
  };

  int64_t BlockOf(Time exp) const { return exp / span_; }
  Partition& PartitionOf(Time exp);

  /// Folds `staged` into `sorted` (stable on equal exp). No-op when
  /// nothing is staged.
  void MergeStaged(Partition& p) const;

  /// Removes tuples with exp <= now_ from partition `p`.
  void PurgePartition(size_t p, const ExpireFn& on_expire);

  Time span_;
  /// Mutable: reads fold staged runs in place (logical state unchanged).
  mutable std::vector<Partition> parts_;
  /// Purge watermark: every tuple with exp <= purged_to_ has been
  /// physically removed. Lags now_ while purging is deferred.
  Time purged_to_ = 0;
  size_t count_ = 0;
  size_t bytes_ = 0;
};

}  // namespace upa

#endif  // UPA_STATE_PARTITIONED_BUFFER_H_
