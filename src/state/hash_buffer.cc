#include "state/hash_buffer.h"

#include "common/macros.h"

namespace upa {

namespace {
constexpr size_t kBucketOverheadBytes = 24;
}  // namespace

HashBuffer::HashBuffer(int key_col, int num_buckets, bool scan_probes)
    : key_col_(key_col), scan_probes_(scan_probes) {
  UPA_CHECK(key_col >= 0);
  UPA_CHECK(num_buckets >= 1);
  buckets_.resize(static_cast<size_t>(num_buckets));
}

size_t HashBuffer::BucketOf(const Value& v) const {
  return static_cast<size_t>(HashValue(v) % buckets_.size());
}

void HashBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  UPA_DCHECK(static_cast<size_t>(key_col_) < t.fields.size());
  buckets_[BucketOf(t.fields[static_cast<size_t>(key_col_)])].push_back(t);
  ++count_;
  bytes_ += EstimateTupleBytes(t);
}

void HashBuffer::Advance(Time now, const ExpireFn& on_expire) {
  BumpClock(now);
  if (lazy_) {
    UPA_CHECK(on_expire == nullptr);
    if (!LazyPurgeDue(now_)) return;
  }
  if (count_ == 0) return;
  // Time-based expiration over hash state scans every bucket; under the
  // negative tuple approach this path is idle because expirations arrive
  // as negative tuples and are handled by EraseOneMatch.
  for (std::list<Tuple>& bucket : buckets_) {
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (!it->LiveAt(now_)) {
        bytes_ -= EstimateTupleBytes(*it);
        --count_;
        if (!lazy_ && on_expire != nullptr) on_expire(*it);
        it = bucket.erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool HashBuffer::EraseOneMatch(const Tuple& t) {
  UPA_DCHECK(static_cast<size_t>(key_col_) < t.fields.size());
  std::list<Tuple>& bucket =
      buckets_[BucketOf(t.fields[static_cast<size_t>(key_col_)])];
  for (auto it = bucket.begin(); it != bucket.end(); ++it) {
    if (it->exp == t.exp && it->FieldsEqual(t)) {
      bytes_ -= EstimateTupleBytes(*it);
      --count_;
      bucket.erase(it);
      return true;
    }
  }
  return false;
}

void HashBuffer::ForEachLive(const TupleFn& fn) const {
  for (const std::list<Tuple>& bucket : buckets_) {
    for (const Tuple& t : bucket) {
      if (t.LiveAt(now_)) fn(t);
    }
  }
}

void HashBuffer::ForEachMatch(int col, const Value& v,
                              const TupleFn& fn) const {
  if (col == key_col_ && !scan_probes_) {
    for (const Tuple& t : buckets_[BucketOf(v)]) {
      if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
    }
    return;
  }
  for (const std::list<Tuple>& bucket : buckets_) {
    for (const Tuple& t : bucket) {
      if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
    }
  }
}

size_t HashBuffer::LiveCount() const {
  if (!lazy_) return count_;
  size_t live = 0;
  for (const std::list<Tuple>& bucket : buckets_) {
    for (const Tuple& t : bucket) {
      if (t.LiveAt(now_)) ++live;
    }
  }
  return live;
}

size_t HashBuffer::StateBytes() const {
  return bytes_ + buckets_.size() * kBucketOverheadBytes;
}

void HashBuffer::Clear() {
  for (std::list<Tuple>& bucket : buckets_) bucket.clear();
  count_ = 0;
  bytes_ = 0;
}

}  // namespace upa
