#include "state/buffer.h"

#include "common/key.h"
#include "common/macros.h"
#include "state/serde.h"

namespace upa {

void StateBuffer::SerializeLive(std::string* out) const {
  // Count prefix first: reserve the slot, then patch it after iteration
  // so the encoding stays single-pass over the buffer.
  const size_t count_pos = out->size();
  serde::PutU64(out, 0);
  uint64_t count = 0;
  ForEachLive([&](const Tuple& t) {
    serde::PutTuple(out, t);
    ++count;
  });
  std::string prefix;
  serde::PutU64(&prefix, count);
  out->replace(count_pos, prefix.size(), prefix);
}

uint64_t StateBuffer::LiveDigest() const {
  std::vector<Tuple> live;
  live.reserve(LiveCount());
  ForEachLive([&live](const Tuple& t) { live.push_back(t); });
  return serde::RowsDigest(live);
}

void StateBuffer::SetLazy(Time purge_interval) {
  UPA_CHECK(purge_interval > 0);
  UPA_CHECK(PhysicalCount() == 0);
  lazy_ = true;
  purge_interval_ = purge_interval;
  last_purge_ = now_;
}

void StateBuffer::SetDegraded(bool on) {
  if (on == degraded_ || !lazy_) return;
  degraded_ = on;
  if (on) {
    normal_interval_ = purge_interval_;
    purge_interval_ = purge_interval_ * kDegradeFactor;
  } else {
    purge_interval_ = normal_interval_;
    // Leave last_purge_ alone: if the widened interval deferred a purge
    // past the normal schedule, the next Advance() is immediately due.
  }
}

bool StateBuffer::LazyPurgeDue(Time now) {
  if (now - last_purge_ < purge_interval_) return false;
  last_purge_ = now;
  return true;
}

void StateBuffer::BumpClock(Time now) {
  // Local clocks are monotone; tuples are processed in timestamp order
  // (Section 2), so a stale `now` indicates a driver bug.
  UPA_DCHECK(now >= now_);
  if (now > now_) now_ = now;
}

void ForEachMatchKey(const StateBuffer& buf, const std::vector<int>& cols,
                     const std::vector<Value>& key, const TupleFn& fn) {
  UPA_DCHECK(cols.size() == key.size());
  UPA_DCHECK(!cols.empty());
  if (cols.size() == 1) {
    buf.ForEachMatch(cols[0], key[0], fn);
    return;
  }
  buf.ForEachLive([&](const Tuple& t) {
    if (KeyEquals(t, cols, key)) fn(t);
  });
}

size_t EstimateTupleBytes(const Tuple& t) {
  size_t bytes = sizeof(Tuple) + t.fields.capacity() * sizeof(Value);
  for (const Value& v : t.fields) {
    if (const auto* s = std::get_if<std::string>(&v)) bytes += s->capacity();
  }
  return bytes;
}

}  // namespace upa
