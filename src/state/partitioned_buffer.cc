#include "state/partitioned_buffer.h"

#include <algorithm>

#include "common/macros.h"

namespace upa {

namespace {
// Rough heap overhead of one std::list partition (head node + bookkeeping);
// used so the E6 experiment sees the paper's space/time tradeoff.
constexpr size_t kPartitionOverheadBytes = 64;
}  // namespace

PartitionedBuffer::PartitionedBuffer(int num_partitions, Time window_span) {
  UPA_CHECK(num_partitions >= 1);
  UPA_CHECK(window_span >= 1);
  span_ = std::max<Time>(1, (window_span + num_partitions - 1) / num_partitions);
  parts_.resize(static_cast<size_t>(num_partitions));
}

std::list<Tuple>& PartitionedBuffer::PartitionOf(Time exp) {
  const size_t idx =
      static_cast<size_t>(BlockOf(exp) % static_cast<int64_t>(parts_.size()));
  return parts_[idx];
}

void PartitionedBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  std::list<Tuple>& part = PartitionOf(t.exp);
  if (lazy_) {
    part.push_back(t);
  } else {
    // Keep the partition sorted by expiration time. Tuples mostly arrive in
    // roughly increasing exp order, so scan from the tail.
    auto it = part.end();
    while (it != part.begin()) {
      auto prev = std::prev(it);
      if (prev->exp <= t.exp) break;
      it = prev;
    }
    part.insert(it, t);
  }
  ++count_;
  bytes_ += EstimateTupleBytes(t);
}

void PartitionedBuffer::Advance(Time now, const ExpireFn& on_expire) {
  const Time prev_now = now_;
  BumpClock(now);
  if (lazy_) {
    UPA_CHECK(on_expire == nullptr);
    if (!LazyPurgeDue(now_)) return;
    // A lazy purge covers everything that expired since the previous
    // purge, which spans many blocks; sweep every partition (amortized
    // over the purge interval).
    if (count_ == 0) return;
    for (size_t p = 0; p < parts_.size(); ++p) PurgePartition(p, nullptr);
    return;
  }
  if (count_ == 0) return;
  // Tuples that expired in (prev_now, now_] live in the partitions whose
  // blocks intersect that range; visit each at most once.
  const int64_t first_block = BlockOf(prev_now);
  const int64_t last_block = BlockOf(now_);
  const int64_t nparts = static_cast<int64_t>(parts_.size());
  const int64_t nblocks = std::min<int64_t>(last_block - first_block + 1, nparts);
  for (int64_t b = 0; b < nblocks; ++b) {
    const size_t p = static_cast<size_t>((first_block + b) % nparts);
    PurgePartition(p, on_expire);
  }
}

void PartitionedBuffer::PurgePartition(size_t p, const ExpireFn& on_expire) {
  std::list<Tuple>& part = parts_[p];
  if (!lazy_) {
    // Sorted by exp: the expired tuples form a prefix.
    while (!part.empty() && !part.front().LiveAt(now_)) {
      bytes_ -= EstimateTupleBytes(part.front());
      --count_;
      if (on_expire != nullptr) on_expire(part.front());
      part.pop_front();
    }
    return;
  }
  for (auto it = part.begin(); it != part.end();) {
    if (!it->LiveAt(now_)) {
      bytes_ -= EstimateTupleBytes(*it);
      --count_;
      it = part.erase(it);
    } else {
      ++it;
    }
  }
}

bool PartitionedBuffer::EraseOneMatch(const Tuple& t) {
  // Premature expiration via a negative tuple: the structure is not indexed
  // for this, so all partitions are scanned (Section 5.3.2 accepts this
  // cost when premature expirations are rare).
  for (std::list<Tuple>& part : parts_) {
    for (auto it = part.begin(); it != part.end(); ++it) {
      if (it->exp == t.exp && it->FieldsEqual(t)) {
        bytes_ -= EstimateTupleBytes(*it);
        --count_;
        part.erase(it);
        return true;
      }
    }
  }
  return false;
}

void PartitionedBuffer::ForEachLive(const TupleFn& fn) const {
  for (const std::list<Tuple>& part : parts_) {
    for (const Tuple& t : part) {
      if (t.LiveAt(now_)) fn(t);
    }
  }
}

void PartitionedBuffer::ForEachMatch(int col, const Value& v,
                                     const TupleFn& fn) const {
  for (const std::list<Tuple>& part : parts_) {
    for (const Tuple& t : part) {
      if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
    }
  }
}

size_t PartitionedBuffer::LiveCount() const {
  if (!lazy_) return count_;
  size_t live = 0;
  for (const std::list<Tuple>& part : parts_) {
    for (const Tuple& t : part) {
      if (t.LiveAt(now_)) ++live;
    }
  }
  return live;
}

size_t PartitionedBuffer::StateBytes() const {
  return bytes_ + parts_.size() * kPartitionOverheadBytes;
}

void PartitionedBuffer::Clear() {
  for (std::list<Tuple>& part : parts_) part.clear();
  count_ = 0;
  bytes_ = 0;
}

}  // namespace upa
