#include "state/partitioned_buffer.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/macros.h"

namespace upa {

namespace {
// Rough heap overhead of one partition (vector headers + bookkeeping);
// used so the E6 experiment sees the paper's space/time tradeoff.
constexpr size_t kPartitionOverheadBytes = 64;

bool ExpLess(const Tuple& a, const Tuple& b) { return a.exp < b.exp; }
}  // namespace

PartitionedBuffer::PartitionedBuffer(int num_partitions, Time window_span) {
  UPA_CHECK(num_partitions >= 1);
  UPA_CHECK(window_span >= 1);
  span_ = std::max<Time>(1, (window_span + num_partitions - 1) / num_partitions);
  parts_.resize(static_cast<size_t>(num_partitions));
}

PartitionedBuffer::Partition& PartitionedBuffer::PartitionOf(Time exp) {
  const size_t idx =
      static_cast<size_t>(BlockOf(exp) % static_cast<int64_t>(parts_.size()));
  return parts_[idx];
}

void PartitionedBuffer::Insert(const Tuple& t) {
  UPA_DCHECK(!t.negative);
  UPA_DCHECK(t.LiveAt(now_));
  Partition& part = PartitionOf(t.exp);
  if (lazy_) {
    // Insertion order; purged by scan on the lazy interval.
    part.sorted.push_back(t);
  } else {
    // O(1): stage now, fold into the sorted run when the partition is
    // next purged or read. The fold is stable, so equal-exp tuples keep
    // arrival order (same discipline as sorting in place at insert).
    part.staged.push_back(t);
  }
  ++count_;
  bytes_ += EstimateTupleBytes(t);
}

void PartitionedBuffer::MergeStaged(Partition& p) const {
  if (p.staged.empty()) return;
  std::stable_sort(p.staged.begin(), p.staged.end(), ExpLess);
  // Drop the already-purged prefix so the merge works on live data only.
  if (p.head > 0) {
    p.sorted.erase(p.sorted.begin(),
                   p.sorted.begin() + static_cast<ptrdiff_t>(p.head));
    p.head = 0;
  }
  const Time min_exp = p.staged.front().exp;
  const size_t old_size = p.sorted.size();
  p.sorted.insert(p.sorted.end(),
                  std::make_move_iterator(p.staged.begin()),
                  std::make_move_iterator(p.staged.end()));
  p.staged.clear();
  // Only the tail with exp >= min staged exp participates in the merge.
  auto lo = std::lower_bound(
      p.sorted.begin(), p.sorted.begin() + static_cast<ptrdiff_t>(old_size),
      min_exp, [](const Tuple& t, Time e) { return t.exp < e; });
  std::inplace_merge(lo, p.sorted.begin() + static_cast<ptrdiff_t>(old_size),
                     p.sorted.end(), ExpLess);
}

void PartitionedBuffer::Advance(Time now, const ExpireFn& on_expire) {
  BumpClock(now);
  if (lazy_) {
    UPA_CHECK(on_expire == nullptr);
    if (!LazyPurgeDue(now_)) return;
    // A lazy purge covers everything that expired since the previous
    // purge, which spans many blocks; sweep every partition (amortized
    // over the purge interval).
    purged_to_ = now_;
    if (count_ == 0) return;
    for (size_t p = 0; p < parts_.size(); ++p) PurgePartition(p, nullptr);
    return;
  }
  if (now_ <= purged_to_) return;
  // Tuples that expired in (purged_to_, now_] live in the partitions
  // whose blocks intersect that range; visit each at most once. Using the
  // purge watermark (not the previous clock) keeps this correct when the
  // clock was bumped without purging across a batch.
  const int64_t first_block = BlockOf(purged_to_);
  const int64_t last_block = BlockOf(now_);
  const int64_t nparts = static_cast<int64_t>(parts_.size());
  const int64_t nblocks =
      std::min<int64_t>(last_block - first_block + 1, nparts);
  purged_to_ = now_;
  if (count_ == 0) return;
  for (int64_t b = 0; b < nblocks; ++b) {
    const size_t p = static_cast<size_t>((first_block + b) % nparts);
    PurgePartition(p, on_expire);
  }
}

void PartitionedBuffer::PurgePartition(size_t p, const ExpireFn& on_expire) {
  Partition& part = parts_[p];
  if (!lazy_) {
    // Fold staged tuples in only when some of them are due; otherwise the
    // expired tuples (if any) form a prefix of the sorted run already.
    bool staged_due = false;
    for (const Tuple& t : part.staged) {
      if (!t.LiveAt(now_)) {
        staged_due = true;
        break;
      }
    }
    if (staged_due) MergeStaged(part);
    std::vector<Tuple>& v = part.sorted;
    size_t h = part.head;
    while (h < v.size() && !v[h].LiveAt(now_)) {
      bytes_ -= EstimateTupleBytes(v[h]);
      --count_;
      if (on_expire != nullptr) on_expire(v[h]);
      ++h;
    }
    part.head = h;
    // Compact once the purged prefix dominates the partition.
    if (part.head > 0 && part.head * 2 >= v.size()) {
      v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(part.head));
      part.head = 0;
    }
    return;
  }
  std::vector<Tuple>& v = part.sorted;
  size_t w = 0;
  for (size_t r = 0; r < v.size(); ++r) {
    if (v[r].LiveAt(now_)) {
      if (w != r) v[w] = std::move(v[r]);
      ++w;
    } else {
      bytes_ -= EstimateTupleBytes(v[r]);
      --count_;
    }
  }
  v.resize(w);
}

bool PartitionedBuffer::EraseOneMatch(const Tuple& t) {
  // Premature expiration via a negative tuple: the structure is not indexed
  // for this, so all partitions are scanned (Section 5.3.2 accepts this
  // cost when premature expirations are rare).
  for (Partition& part : parts_) {
    if (!lazy_) MergeStaged(part);
    std::vector<Tuple>& v = part.sorted;
    for (size_t i = part.head; i < v.size(); ++i) {
      if (v[i].exp == t.exp && v[i].FieldsEqual(t)) {
        bytes_ -= EstimateTupleBytes(v[i]);
        --count_;
        v.erase(v.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
  }
  return false;
}

void PartitionedBuffer::ForEachLive(const TupleFn& fn) const {
  for (Partition& part : parts_) {
    if (!lazy_) MergeStaged(part);
    const std::vector<Tuple>& v = part.sorted;
    for (size_t i = part.head; i < v.size(); ++i) {
      if (v[i].LiveAt(now_)) fn(v[i]);
    }
  }
}

void PartitionedBuffer::ForEachMatch(int col, const Value& v,
                                     const TupleFn& fn) const {
  for (Partition& part : parts_) {
    if (!lazy_) MergeStaged(part);
    const std::vector<Tuple>& vec = part.sorted;
    for (size_t i = part.head; i < vec.size(); ++i) {
      const Tuple& t = vec[i];
      if (t.LiveAt(now_) && t.fields[static_cast<size_t>(col)] == v) fn(t);
    }
  }
}

size_t PartitionedBuffer::LiveCount() const {
  if (!lazy_) {
    // Exact even while purging is deferred: the expired residue is a
    // prefix of each sorted run (binary search), plus a scan of the
    // (small) staged runs.
    size_t live = 0;
    for (const Partition& part : parts_) {
      const std::vector<Tuple>& v = part.sorted;
      auto it = std::partition_point(
          v.begin() + static_cast<ptrdiff_t>(part.head), v.end(),
          [this](const Tuple& t) { return !t.LiveAt(now_); });
      live += static_cast<size_t>(v.end() - it);
      for (const Tuple& t : part.staged) {
        if (t.LiveAt(now_)) ++live;
      }
    }
    return live;
  }
  size_t live = 0;
  for (const Partition& part : parts_) {
    for (const Tuple& t : part.sorted) {
      if (t.LiveAt(now_)) ++live;
    }
  }
  return live;
}

size_t PartitionedBuffer::StateBytes() const {
  return bytes_ + parts_.size() * kPartitionOverheadBytes;
}

void PartitionedBuffer::Clear() {
  for (Partition& part : parts_) {
    part.sorted.clear();
    part.staged.clear();
    part.head = 0;
  }
  count_ = 0;
  bytes_ = 0;
  purged_to_ = now_;
}

}  // namespace upa
