#ifndef UPA_STATE_BUFFER_H_
#define UPA_STATE_BUFFER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/tuple.h"

namespace upa {

/// Callback invoked for each tuple removed by eager expiration.
using ExpireFn = std::function<void(const Tuple&)>;

/// Callback for iteration over live tuples.
using TupleFn = std::function<void(const Tuple&)>;

/// Counters exposed by heavy-light partitioned state (DESIGN.md
/// Section 16). `heavy_keys` is the current resident heavy-key count (a
/// gauge); the rest are cumulative over the buffer's lifetime. Summed
/// across buffers, operators, and shards on the way to the metrics
/// endpoint (`upa_state_heavy_keys` et al).
struct HeavyLightStats {
  uint64_t heavy_keys = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t heavy_probe_hits = 0;
  uint64_t light_probes = 0;

  HeavyLightStats& operator+=(const HeavyLightStats& o) {
    heavy_keys += o.heavy_keys;
    promotions += o.promotions;
    demotions += o.demotions;
    heavy_probe_hits += o.heavy_probe_hits;
    light_probes += o.light_probes;
    return *this;
  }
};

/// Abstract state buffer used by stateful operators (join inputs, duplicate
/// elimination input/output, negation inputs) and by materialized results.
///
/// The paper's central processing observation (Sections 2.3.3 and 5.3.2) is
/// that the cost of maintaining a buffer depends on the relationship between
/// its insertion order and its expiration order, i.e. on the update pattern
/// of the sub-query feeding it. The concrete implementations are:
///
///  - FifoBuffer:         WKS inputs (expiration order == insertion order).
///  - ListBuffer:         the straightforward structure used by the DIRECT
///                        baseline; O(1) insert, sequential scans to expire.
///  - PartitionedBuffer:  the paper's Figure 7 circular array of partitions
///                        bucketed by expiration time; the UPA structure for
///                        WK inputs.
///  - HashBuffer:         hash table on a key attribute; the structure used
///                        by the negative tuple approach, where expirations
///                        arrive as explicit negative tuples.
///
/// Expiration discipline (Section 2.3): a buffer is maintained either
/// *eagerly* (expired tuples are removed, and reported via a callback, as
/// soon as the buffer's logical clock passes their `exp`) or *lazily*
/// (expired tuples are merely skipped during iteration and physically
/// purged every `purge_interval` time units). Operators that must react to
/// expirations -- duplicate elimination, group-by, negation, and
/// materialized final results -- use eager buffers; join/intersection
/// inputs may be lazy at the price of transiently higher memory use.
///
/// Batched execution (DESIGN.md Section 15) adds a third cadence: the
/// logical clock may be bumped per tick via SetClock() while the physical
/// purge (Advance with the sweep) runs once per batch. This is legal for
/// any consumer that passes `on_expire == nullptr` -- reads filter by
/// LiveAt(now()), so a deferred purge is invisible to results -- and each
/// implementation documents in its own header what the expired-but-
/// unpurged residue looks like and which mutations stay legal across a
/// batch boundary. Consumers that must *observe* expirations keep exact
/// per-tick Advance() calls; deferral never applies to them.
class StateBuffer {
 public:
  virtual ~StateBuffer() = default;

  StateBuffer(const StateBuffer&) = delete;
  StateBuffer& operator=(const StateBuffer&) = delete;

  /// Switches the buffer to lazy maintenance with the given physical purge
  /// interval (time units). Must be called before the first Insert.
  void SetLazy(Time purge_interval);

  bool lazy() const { return lazy_; }

  /// Overload degradation (engine watchdog): temporarily widens the lazy
  /// purge interval by `kDegradeFactor` so overloaded shards spend less
  /// time on physical expiration (the Section 6.1 lazy knob, opened
  /// further). Only lazy buffers react -- eager buffers back operators
  /// that must observe every expiration (duplicate elimination, group-by,
  /// negation) and keep their discipline. Liveness checks still skip
  /// logically expired tuples, so degradation trades memory for CPU
  /// without changing results. Idempotent; `SetDegraded(false)` restores
  /// the configured interval and lets the next Advance() catch up.
  /// Virtual so decorators (HeavyLightBuffer) can forward to the wrapped
  /// buffer.
  virtual void SetDegraded(bool on);

  bool degraded() const { return degraded_; }

  /// Widening applied to the lazy purge interval while degraded (40% of
  /// the window at the default 5% lazy fraction).
  static constexpr Time kDegradeFactor = 8;

  /// Current logical clock (the operator's local clock, Section 2.3.2).
  Time now() const { return now_; }

  /// Advances the logical clock without purging. Used under the negative
  /// tuple approach, where physical removal is driven by negative tuples
  /// but liveness checks must still observe the current time. Virtual so
  /// decorators can keep the inner buffer's clock in step (and, for
  /// HeavyLightBuffer, observe barrier points).
  virtual void SetClock(Time now) { BumpClock(now); }

  /// Adds a live tuple. UPA_DCHECKs that `t.exp > now()`.
  virtual void Insert(const Tuple& t) = 0;

  /// Advances the logical clock to `now`. In eager mode, removes every
  /// tuple with `exp <= now` and invokes `on_expire` (may be nullptr) for
  /// each. In lazy mode, `on_expire` must be nullptr; physical purging
  /// happens every `purge_interval` time units.
  virtual void Advance(Time now, const ExpireFn& on_expire) = 0;

  /// Removes one stored tuple whose fields and expiration time equal
  /// `t`'s (negative tuple handling, Section 2.3.1). Matching is by
  /// (fields, exp) identity and deliberately ignores liveness: the
  /// negative tuple for an expiring window tuple arrives exactly when the
  /// clock reaches its `exp`, at which point LiveAt() is already false.
  /// Returns false if nothing matches.
  virtual bool EraseOneMatch(const Tuple& t) = 0;

  /// Invokes `fn` for every live tuple (logically expired tuples retained
  /// by a lazy buffer are skipped).
  virtual void ForEachLive(const TupleFn& fn) const = 0;

  /// Invokes `fn` for every live tuple whose column `col` equals `v`.
  virtual void ForEachMatch(int col, const Value& v, const TupleFn& fn) const = 0;

  /// Number of live tuples.
  virtual size_t LiveCount() const = 0;

  /// Number of physically stored tuples (>= LiveCount() when lazy).
  virtual size_t PhysicalCount() const = 0;

  /// Approximate heap footprint in bytes, for the memory experiments.
  virtual size_t StateBytes() const = 0;

  virtual void Clear() = 0;

  virtual std::string Name() const = 0;

  /// Serialization hook for the durability layer: appends a count-prefixed
  /// canonical encoding of every *live* tuple to `out`. Liveness is the
  /// pattern-aware truncation rule made concrete -- a kFifo (WKS) buffer's
  /// expired prefix, a kPredictable (WK) buffer's expired partitions, and
  /// a lazy buffer's logically-dead residents are all skipped, so the
  /// serialized state is exactly what a recovering replica must contain
  /// and nothing more.
  void SerializeLive(std::string* out) const;

  /// Order-independent 64-bit digest of the live *rows* (see
  /// serde::RowsDigest). Two buffers holding the same live row multiset
  /// digest equally even if their physical layouts differ, which lets
  /// recovery compare a replayed replica against the checkpointed
  /// original without serializing either in full.
  uint64_t LiveDigest() const;

  /// Accumulates heavy-light partitioning counters into `out`. Plain
  /// buffers have none; HeavyLightBuffer overrides.
  virtual void CollectHeavyLight(HeavyLightStats* out) const {
    (void)out;
  }

 protected:
  StateBuffer() = default;

  /// Returns true when a lazy buffer should physically purge at `now`, and
  /// records the purge time.
  bool LazyPurgeDue(Time now);

  void BumpClock(Time now);

  Time now_ = 0;
  bool lazy_ = false;
  bool degraded_ = false;
  Time purge_interval_ = 0;
  Time normal_interval_ = 0;  ///< Saved across a degraded episode.
  Time last_purge_ = 0;
};

/// Approximate heap bytes occupied by one stored tuple (used by the memory
/// experiments; not an allocator-exact measure).
size_t EstimateTupleBytes(const Tuple& t);

/// Invokes `fn` for every live tuple of `buf` matching `key` on `cols`.
/// Single-column keys dispatch to ForEachMatch so that hash buffers probe
/// one bucket; multi-column keys scan.
void ForEachMatchKey(const StateBuffer& buf, const std::vector<int>& cols,
                     const std::vector<Value>& key, const TupleFn& fn);

}  // namespace upa

#endif  // UPA_STATE_BUFFER_H_
