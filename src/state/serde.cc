#include "state/serde.h"

#include <cstring>

namespace upa {
namespace serde {
namespace {

/// Value tag bytes. Part of the on-disk format; append-only.
constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagDouble = 1;
constexpr uint8_t kTagString = 2;

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutValue(std::string* out, const Value& v) {
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    PutU8(out, kTagInt);
    PutI64(out, *i);
  } else if (const double* d = std::get_if<double>(&v)) {
    PutU8(out, kTagDouble);
    PutDouble(out, *d);
  } else {
    PutU8(out, kTagString);
    PutString(out, std::get<std::string>(v));
  }
}

void PutTuple(std::string* out, const Tuple& t) {
  PutI64(out, t.ts);
  PutI64(out, t.exp);
  PutU8(out, t.negative ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(t.fields.size()));
  for (const Value& v : t.fields) PutValue(out, v);
}

bool Reader::Need(size_t n) {
  if (!ok_ || remaining() < n) {
    ok_ = false;
    return false;
  }
  return true;
}

bool Reader::GetU8(uint8_t* v) {
  if (!Need(1)) return false;
  *v = *p_++;
  return true;
}

bool Reader::GetU32(uint32_t* v) {
  if (!Need(4)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) out |= static_cast<uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  *v = out;
  return true;
}

bool Reader::GetU64(uint64_t* v) {
  if (!Need(8)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  *v = out;
  return true;
}

bool Reader::GetI64(int64_t* v) {
  uint64_t u;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool Reader::GetDouble(double* v) {
  uint64_t bits;
  if (!GetU64(&bits)) return false;
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

bool Reader::GetString(std::string* v) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (!Need(len)) return false;  // Validates before allocating.
  v->assign(reinterpret_cast<const char*>(p_), len);
  p_ += len;
  return true;
}

bool Reader::GetValue(Value* v) {
  uint8_t tag;
  if (!GetU8(&tag)) return false;
  switch (tag) {
    case kTagInt: {
      int64_t i;
      if (!GetI64(&i)) return false;
      *v = i;
      return true;
    }
    case kTagDouble: {
      double d;
      if (!GetDouble(&d)) return false;
      *v = d;
      return true;
    }
    case kTagString: {
      std::string s;
      if (!GetString(&s)) return false;
      *v = std::move(s);
      return true;
    }
    default:
      ok_ = false;
      return false;
  }
}

bool Reader::GetTuple(Tuple* t) {
  uint8_t neg;
  uint32_t nfields;
  if (!GetI64(&t->ts) || !GetI64(&t->exp) || !GetU8(&neg) ||
      !GetU32(&nfields)) {
    return false;
  }
  if (neg > 1) {  // Must be a boolean; anything else is garbage.
    ok_ = false;
    return false;
  }
  t->negative = neg != 0;
  // Every field costs at least one tag byte, so a field count exceeding
  // the remaining bytes is corrupt; reject before reserving.
  if (nfields > remaining()) {
    ok_ = false;
    return false;
  }
  t->fields.clear();
  t->fields.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    Value v;
    if (!GetValue(&v)) return false;
    t->fields.push_back(std::move(v));
  }
  return true;
}

uint64_t RowsDigest(const std::vector<Tuple>& tuples) {
  // FNV-1a over each tuple's row encoding, summed mod 2^64. Addition is
  // commutative, making the digest order-independent but multiset-exact
  // (a missing or duplicated row shifts the sum).
  uint64_t digest = 0;
  std::string buf;
  for (const Tuple& t : tuples) {
    buf.clear();
    PutU8(&buf, t.negative ? 1 : 0);
    PutU32(&buf, static_cast<uint32_t>(t.fields.size()));
    for (const Value& v : t.fields) PutValue(&buf, v);
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : buf) {
      h ^= c;
      h *= 1099511628211ull;
    }
    digest += h;
  }
  return digest;
}

}  // namespace serde
}  // namespace upa
