#ifndef UPA_REF_REFERENCE_H_
#define UPA_REF_REFERENCE_H_

#include <map>
#include <vector>

#include "core/logical_plan.h"

namespace upa {

/// From-scratch reference evaluator: the executable form of the paper's
/// continuous-query semantics (Definitions 1 and 2).
///
/// The evaluator records the complete history of every base stream and of
/// every relation's update stream; EvalAt(tau) then recomputes the answer
/// of the logical plan as a one-time relational query over the states of
/// the streams, sliding windows, and relations at time tau. It makes no
/// attempt to be fast or incremental -- it is the oracle the incremental
/// engine (all three execution strategies) is tested against.
///
/// Semantics implemented:
///  - Time window of size W at time tau contains tuples with
///    tau - W < ts <= tau; a count window of size N contains the N most
///    recently arrived tuples.
///  - NRR joins reflect, for each result tuple, the relation state at the
///    result's generation time (Definition 2); retroactive relation joins
///    reflect the state at tau (Definition 1). Relation updates with
///    timestamp equal to a stream tuple's are considered to happen first.
///  - Negation (Equation 1) and duplicate elimination return max(v1-v2, 0)
///    resp. one tuple per distinct key; *which* of several field-distinct
///    tuples sharing the key/value represents the answer is unspecified,
///    so comparisons against the engine should project onto the key
///    columns (the engine's tie-breaking is an implementation choice the
///    paper leaves open).
///
/// Limitation (documented): for NRR joins the generation time of a left
/// input tuple is taken from the timestamps the oracle propagates
/// (arrival time through stateless operators, max of constituents through
/// joins); left inputs containing duplicate elimination or negation may
/// re-emit tuples at later times in the engine, so NRR joins should sit
/// over stateless/windowed inputs -- the configuration the paper's
/// Section 4.1 metadata scenario uses.
class ReferenceEvaluator {
 public:
  /// `plan` must outlive the evaluator and be annotated/validated.
  explicit ReferenceEvaluator(const PlanNode* plan);

  /// Records one base event: a stream arrival, or a relation update
  /// (positive insert / negative delete, exp = kNeverExpires).
  void Observe(int stream_id, const Tuple& t);

  /// Recomputes the full answer multiset at time `tau`. Group-by plans
  /// yield (group, aggregate) tuples, mirroring GroupArrayView::Snapshot.
  std::vector<Tuple> EvalAt(Time tau) const;

 private:
  std::vector<Tuple> Eval(const PlanNode& n, Time tau) const;
  std::vector<Tuple> RelationStateAt(int stream_id, Time tau) const;

  const PlanNode* plan_;
  std::map<int, std::vector<Tuple>> history_;
};

}  // namespace upa

#endif  // UPA_REF_REFERENCE_H_
