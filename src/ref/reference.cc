#include "ref/reference.h"

#include <algorithm>
#include <map>

#include "common/key.h"
#include "common/macros.h"

namespace upa {

ReferenceEvaluator::ReferenceEvaluator(const PlanNode* plan) : plan_(plan) {
  UPA_CHECK(plan_ != nullptr);
}

void ReferenceEvaluator::Observe(int stream_id, const Tuple& t) {
  std::vector<Tuple>& hist = history_[stream_id];
  UPA_DCHECK(hist.empty() || hist.back().ts <= t.ts);
  hist.push_back(t);
}

std::vector<Tuple> ReferenceEvaluator::EvalAt(Time tau) const {
  return Eval(*plan_, tau);
}

std::vector<Tuple> ReferenceEvaluator::RelationStateAt(int stream_id,
                                                       Time tau) const {
  std::vector<Tuple> state;
  auto it = history_.find(stream_id);
  if (it == history_.end()) return state;
  for (const Tuple& t : it->second) {
    if (t.ts > tau) break;
    if (!t.negative) {
      state.push_back(t);
      continue;
    }
    for (auto s = state.begin(); s != state.end(); ++s) {
      if (s->FieldsEqual(t)) {
        state.erase(s);
        break;
      }
    }
  }
  return state;
}

namespace {

/// Aggregates a group per GroupByOp's semantics, from scratch.
double ComputeAggregate(const std::vector<const Tuple*>& group, AggKind agg,
                        int agg_col) {
  switch (agg) {
    case AggKind::kCount:
      return static_cast<double>(group.size());
    case AggKind::kSum:
    case AggKind::kAvg: {
      double sum = 0.0;
      for (const Tuple* t : group) {
        sum += AsNumeric(t->fields[static_cast<size_t>(agg_col)]);
      }
      if (agg == AggKind::kSum) return sum;
      return group.empty() ? 0.0 : sum / static_cast<double>(group.size());
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      UPA_CHECK(!group.empty());
      double best = AsNumeric(group[0]->fields[static_cast<size_t>(agg_col)]);
      for (const Tuple* t : group) {
        const double v = AsNumeric(t->fields[static_cast<size_t>(agg_col)]);
        best = agg == AggKind::kMin ? std::min(best, v) : std::max(best, v);
      }
      return best;
    }
  }
  return 0.0;
}

Tuple JoinPair(const Tuple& l, const Tuple& r) {
  Tuple out;
  out.ts = std::max(l.ts, r.ts);
  out.exp = std::min(l.exp, r.exp);
  out.fields.reserve(l.fields.size() + r.fields.size());
  out.fields.insert(out.fields.end(), l.fields.begin(), l.fields.end());
  out.fields.insert(out.fields.end(), r.fields.begin(), r.fields.end());
  return out;
}

}  // namespace

std::vector<Tuple> ReferenceEvaluator::Eval(const PlanNode& n,
                                            Time tau) const {
  switch (n.kind) {
    case PlanOpKind::kStream: {
      std::vector<Tuple> out;
      auto it = history_.find(n.stream_id);
      if (it == history_.end()) return out;
      for (const Tuple& t : it->second) {
        if (t.ts > tau) break;
        Tuple u = t;
        u.exp = kNeverExpires;
        out.push_back(std::move(u));
      }
      return out;
    }
    case PlanOpKind::kRelation:
      return RelationStateAt(n.stream_id, tau);
    case PlanOpKind::kWindow: {
      const PlanNode& stream = n.child(0);
      std::vector<Tuple> out;
      auto it = history_.find(stream.stream_id);
      if (it == history_.end()) return out;
      for (const Tuple& t : it->second) {
        if (t.ts > tau) break;
        if (t.ts > tau - n.window_size) {
          Tuple u = t;
          u.exp = t.ts + n.window_size;
          out.push_back(std::move(u));
        }
      }
      return out;
    }
    case PlanOpKind::kCountWindow: {
      const PlanNode& stream = n.child(0);
      std::vector<Tuple> arrived;
      auto it = history_.find(stream.stream_id);
      if (it == history_.end()) return arrived;
      for (const Tuple& t : it->second) {
        if (t.ts > tau) break;
        arrived.push_back(t);
      }
      if (arrived.size() > n.count) {
        arrived.erase(arrived.begin(),
                      arrived.end() - static_cast<long>(n.count));
      }
      for (Tuple& t : arrived) t.exp = kNeverExpires;
      return arrived;
    }
    case PlanOpKind::kSelect: {
      std::vector<Tuple> in = Eval(n.child(0), tau);
      std::vector<Tuple> out;
      for (Tuple& t : in) {
        if (EvalAll(n.preds, t)) out.push_back(std::move(t));
      }
      return out;
    }
    case PlanOpKind::kProject: {
      std::vector<Tuple> in = Eval(n.child(0), tau);
      for (Tuple& t : in) {
        std::vector<Value> fields;
        fields.reserve(n.cols.size());
        for (int c : n.cols) {
          fields.push_back(std::move(t.fields[static_cast<size_t>(c)]));
        }
        t.fields = std::move(fields);
      }
      return in;
    }
    case PlanOpKind::kUnion: {
      std::vector<Tuple> out = Eval(n.child(0), tau);
      std::vector<Tuple> right = Eval(n.child(1), tau);
      out.insert(out.end(), std::make_move_iterator(right.begin()),
                 std::make_move_iterator(right.end()));
      return out;
    }
    case PlanOpKind::kJoin: {
      const std::vector<Tuple> left = Eval(n.child(0), tau);
      const PlanNode& rnode = n.child(1);
      std::vector<Tuple> out;
      if (rnode.kind == PlanOpKind::kRelation && !rnode.retroactive) {
        // Definition 2: each result reflects the NRR state at the result's
        // generation time.
        for (const Tuple& l : left) {
          const std::vector<Tuple> rel = RelationStateAt(rnode.stream_id, l.ts);
          for (const Tuple& r : rel) {
            if (l.fields[static_cast<size_t>(n.left_col)] ==
                r.fields[static_cast<size_t>(n.right_col)]) {
              out.push_back(JoinPair(l, r));
            }
          }
        }
        return out;
      }
      const std::vector<Tuple> right = Eval(rnode, tau);
      for (const Tuple& l : left) {
        for (const Tuple& r : right) {
          if (l.fields[static_cast<size_t>(n.left_col)] ==
              r.fields[static_cast<size_t>(n.right_col)]) {
            out.push_back(JoinPair(l, r));
          }
        }
      }
      return out;
    }
    case PlanOpKind::kIntersect: {
      const std::vector<Tuple> left = Eval(n.child(0), tau);
      const std::vector<Tuple> right = Eval(n.child(1), tau);
      std::vector<Tuple> out;
      for (const Tuple& l : left) {
        for (const Tuple& r : right) {
          if (l.FieldsEqual(r)) {
            Tuple u = l;
            u.ts = std::max(l.ts, r.ts);
            u.exp = std::min(l.exp, r.exp);
            out.push_back(std::move(u));
          }
        }
      }
      return out;
    }
    case PlanOpKind::kDistinct: {
      const std::vector<Tuple> in = Eval(n.child(0), tau);
      std::map<Key, const Tuple*> reps;
      for (const Tuple& t : in) {
        reps.emplace(ExtractKey(t, n.cols), &t);
      }
      std::vector<Tuple> out;
      out.reserve(reps.size());
      for (const auto& [key, t] : reps) out.push_back(*t);
      return out;
    }
    case PlanOpKind::kGroupBy: {
      const std::vector<Tuple> in = Eval(n.child(0), tau);
      std::map<Value, std::vector<const Tuple*>> groups;
      const Value single{static_cast<int64_t>(0)};
      for (const Tuple& t : in) {
        const Value& label =
            n.group_col >= 0 ? t.fields[static_cast<size_t>(n.group_col)]
                             : single;
        groups[label].push_back(&t);
      }
      std::vector<Tuple> out;
      out.reserve(groups.size());
      for (const auto& [label, members] : groups) {
        Tuple t;
        t.ts = tau;
        t.fields = {label,
                    Value{ComputeAggregate(members, n.agg, n.agg_col)}};
        out.push_back(std::move(t));
      }
      return out;
    }
    case PlanOpKind::kNegate: {
      const std::vector<Tuple> left = Eval(n.child(0), tau);
      const std::vector<Tuple> right = Eval(n.child(1), tau);
      std::map<Value, int64_t> v2;
      for (const Tuple& r : right) {
        ++v2[r.fields[static_cast<size_t>(n.right_col)]];
      }
      // Emit each left tuple while its value's remaining right
      // multiplicity is exhausted (Equation 1: max(v1 - v2, 0) copies).
      std::map<Value, int64_t> remaining = v2;
      std::vector<Tuple> out;
      for (const Tuple& l : left) {
        int64_t& rem = remaining[l.fields[static_cast<size_t>(n.left_col)]];
        if (rem > 0) {
          --rem;
        } else {
          out.push_back(l);
        }
      }
      return out;
    }
  }
  UPA_FATAL("unhandled plan node kind");
}

}  // namespace upa
