#include "exec/replay.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace upa {

ReplayMetrics ReplayTrace(const Trace& trace, Pipeline* pipeline,
                          const ReplayOptions& options) {
  UPA_CHECK(pipeline != nullptr);
  ReplayMetrics m;
  obs::Histogram latency;
  const auto start = std::chrono::steady_clock::now();
  uint64_t since_poll = 0;
  uint64_t since_checkpoint = 0;
  for (const TraceEvent& e : trace.events) {
    // Traces may carry streams this query does not reference.
    if (!pipeline->HasStream(e.stream)) continue;
    if (options.measure_latency) {
      const auto t0 = std::chrono::steady_clock::now();
      pipeline->Tick(e.tuple.ts);
      pipeline->Ingest(e.stream, e.tuple);
      const auto t1 = std::chrono::steady_clock::now();
      latency.Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    } else {
      pipeline->Tick(e.tuple.ts);
      pipeline->Ingest(e.stream, e.tuple);
    }
    ++m.tuples;
    if (options.state_poll_interval > 0 &&
        ++since_poll >= options.state_poll_interval) {
      since_poll = 0;
      m.max_state_bytes = std::max(m.max_state_bytes, pipeline->StateBytes());
      m.max_state_tuples =
          std::max(m.max_state_tuples, pipeline->StateTuples());
    }
    if (options.checkpoint_interval > 0 &&
        ++since_checkpoint >= options.checkpoint_interval) {
      since_checkpoint = 0;
      if (options.on_checkpoint) options.on_checkpoint(e.tuple.ts);
    }
  }
  if (options.drain > 0 && !trace.events.empty()) {
    const Time last = trace.LastTs();
    const Time step = std::max<Time>(1, options.drain_step);
    for (Time t = last + step; t <= last + options.drain; t += step) {
      pipeline->Tick(t);
      if (options.checkpoint_interval > 0 && options.on_checkpoint) {
        options.on_checkpoint(t);
      }
    }
  }
  const auto end = std::chrono::steady_clock::now();
  m.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (m.tuples > 0) {
    m.ms_per_1000_tuples =
        m.wall_seconds * 1000.0 / (static_cast<double>(m.tuples) / 1000.0);
  }
  m.stats = pipeline->stats();
  if (pipeline->profiling()) {
    m.profiled = true;
    m.profile = pipeline->profiler()->Snapshot();
  }
  if (options.state_poll_interval > 0) {
    m.max_state_bytes = std::max(m.max_state_bytes, pipeline->StateBytes());
    m.max_state_tuples = std::max(m.max_state_tuples, pipeline->StateTuples());
  }
  if (options.measure_latency) {
    m.latency_measured = true;
    m.latency_ns = latency.Snap();
  }
  return m;
}

}  // namespace upa
