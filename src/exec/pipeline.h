#ifndef UPA_EXEC_PIPELINE_H_
#define UPA_EXEC_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exec/view.h"
#include "obs/op_profile.h"
#include "ops/operator.h"

namespace upa {

/// Execution counters for one pipeline run.
///
/// Counting discipline (pinned by exec_test): every counter is bumped at
/// exactly one program point, so re-entrant Deliver chains (an operator
/// emitting during Process/AdvanceTime) never double-count. `ingested`
/// counts Ingest() calls — a stream bound to several ingress nodes still
/// counts once; `delivered` counts *deliveries to an operator input port*,
/// so the same base tuple fanned out to two bindings counts twice there,
/// and each derived emission counts once per hop it travels.
///
/// The counters are plain sums, so stats of pipeline replicas running
/// disjoint partitions of a stream merge with `operator+=` (the engine's
/// per-query rollup).
struct PipelineStats {
  uint64_t ingested = 0;           ///< Base tuples pushed in.
  uint64_t delivered = 0;          ///< Tuples delivered to any operator.
  uint64_t negatives_delivered = 0;///< Negative tuples among `delivered`.
  uint64_t results_pos = 0;        ///< Positive tuples applied to the view.
  uint64_t results_neg = 0;        ///< Negative tuples applied to the view.

  PipelineStats& operator+=(const PipelineStats& o) {
    ingested += o.ingested;
    delivered += o.delivered;
    negatives_delivered += o.negatives_delivered;
    results_pos += o.results_pos;
    results_neg += o.results_neg;
    return *this;
  }
  friend PipelineStats operator+(PipelineStats a, const PipelineStats& b) {
    return a += b;
  }
};

/// What the update-pattern invariant checker asserts about tuples reaching
/// the materialized view, derived from the root's update pattern (the
/// Section 5.2 propagation rules). Defined here rather than reusing
/// core/update_pattern.h because exec sits below core in the layering.
enum class PatternInvariant {
  /// MONO/STR roots (and group-by replace semantics): positive results
  /// must merely be live on arrival; deletions may be premature, so
  /// negatives are unconstrained.
  kLiveOnly,
  /// WKS roots: results expire in FIFO order, so positive results carry
  /// non-decreasing exp timestamps, and every negative (an expiration
  /// signalled under the NT approach) arrives exactly when the clock
  /// passes its exp -- never prematurely, never late.
  kFifo,
  /// WK roots: expirations are predictable from exp timestamps but not
  /// FIFO; positives must be live, negatives on schedule as for kFifo.
  kPredictable,
};

/// A physical query plan wired for push-based execution.
///
/// Operators form a tree; each operator's emissions are routed to its
/// parent's input port, and the root's emissions feed the materialized
/// ResultView. Per the paper's processing model (Section 2), the driver
/// must alternate:
///
///   pipeline.Tick(ts);              // advance clocks / expire, bottom-up
///   pipeline.Ingest(stream_id, t);  // then process the new arrival
///
/// with non-decreasing timestamps. Tick() walks operators in insertion
/// (topological, children-first) order, which makes the negative tuple
/// approach work out naturally: materialized windows at the leaves emit
/// their expiration negatives into parents whose local clocks have not yet
/// advanced, exactly the Section 2.3.2 local-clock discipline.
class Pipeline {
 public:
  Pipeline() = default;

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Adds `op`, wiring the existing nodes `children` (in port order) to
  /// feed it. Children must be added before parents. Returns the node id.
  int AddOperator(std::unique_ptr<Operator> op,
                  const std::vector<int>& children);

  /// Installs the materialized view fed by the (unique) root operator.
  /// Must be called after all operators are added.
  void SetView(std::unique_ptr<ResultView> view);

  /// Declares that tuples of `stream_id` enter at `node`'s input `port`.
  /// A stream may be bound to several ingress nodes (e.g. two windows of
  /// different sizes over one base stream, or a self-join): each Ingest()
  /// then delivers the tuple to every binding, in binding order.
  void BindStream(int stream_id, int node, int port = 0);

  /// Advances time to `now` (idempotent per timestamp).
  void Tick(Time now);

  /// Pushes one tuple of `stream_id` through the plan.
  void Ingest(int stream_id, const Tuple& t);

  /// Pushes a run of same-stream, same-timestamp tuples through the plan
  /// (the batched ingest path, DESIGN.md Section 15). `run` borrows the
  /// caller's tuples. The caller must have Tick()ed to the run's
  /// timestamp, exactly as for Ingest(). Delivery hands whole runs to
  /// Operator::ProcessBatch stage by stage; emission order -- and hence
  /// every result and counter -- is identical to calling Ingest() n
  /// times. Streams bound to several ingress nodes fall back to
  /// per-tuple delivery (batching would reorder the binding interleave).
  void IngestRun(int stream_id, const Tuple* const* run, size_t n);

  /// Opts this pipeline into batched execution: Tick() inside a
  /// BeginBatch()/EndBatch() bracket advances silent operators
  /// (Operator::SilentExpiration) by clock only, deferring their
  /// physical expiration sweeps -- and the view's -- to EndBatch().
  /// Expiration-observing operators are unaffected; they keep exact
  /// per-tick AdvanceTime calls in every mode. Call after SetView().
  void EnableBatching();

  bool batching_enabled() const { return batching_enabled_; }

  /// Marks the start of a batch. No-op unless EnableBatching() was
  /// called; idempotent, so drivers may bracket unconditionally.
  void BeginBatch();

  /// Marks a batch boundary: flushes every deferred expiration sweep up
  /// to the last tick. After EndBatch() the pipeline's physical state is
  /// byte-identical to per-tuple execution at the same clock -- barriers
  /// (snapshots, digests, checkpoints) must run on this side of the
  /// bracket. Idempotent.
  void EndBatch();

  /// True if `stream_id` is bound to an ingress node.
  bool HasStream(int stream_id) const {
    return stream_bindings_.count(stream_id) > 0;
  }

  const ResultView& view() const;
  ResultView* mutable_view() { return view_.get(); }

  const PipelineStats& stats() const { return stats_; }

  /// Attaches a sampling profiler that splits every operator's time into
  /// the paper's Section 6.1 cost components (processing / insertion /
  /// expiration). Call after SetView(). Overhead design: unprofiled
  /// pipelines pay one null check per Tick/Ingest; profiled pipelines pay
  /// a counter decrement per event and full timing only on every
  /// `options.sample_interval`-th event, off the unsampled code path.
  void EnableProfiling(const obs::ProfilerOptions& options = {});

  bool profiling() const { return profiler_ != nullptr; }
  obs::PipelineProfiler* profiler() { return profiler_.get(); }
  const obs::PipelineProfiler* profiler() const { return profiler_.get(); }

  /// Overload degradation: forwards the flag to every operator (lazy
  /// state buffers widen their purge interval; everything else ignores
  /// it). Results are unaffected -- liveness checks already skip
  /// logically expired tuples -- so the engine may flip this at any batch
  /// boundary. Idempotent.
  void SetDegraded(bool on);

  bool degraded() const { return degraded_; }

  /// Debug-mode update-pattern invariant checker: every tuple delivered
  /// to the view is asserted (UPA_CHECK, i.e. abort on violation) to obey
  /// `invariant` -- see PatternInvariant. Callers map the plan root's
  /// annotated UpdatePattern: WKS -> kFifo, WK -> kPredictable,
  /// MONO/STR/group-by -> kLiveOnly.
  void EnableInvariantChecks(PatternInvariant invariant);

  /// Installs (or clears, with an empty function) a delta sink: every
  /// output-stream tuple the root delivers to the materialized view is
  /// also handed to `sink`, after the view has applied it. This is the
  /// subscription tap of the network layer -- the tuples a sink observes
  /// are exactly the view's update stream, so they obey the same Section
  /// 5.2 pattern contract the invariant checker asserts (a monotonic or
  /// WKS root never produces a negative tuple, a group-by root emits
  /// (group, agg, count) replace records). The sink runs on whatever
  /// thread drives the pipeline (the shard worker); it must not call back
  /// into the pipeline.
  void SetDeltaSink(std::function<void(const Tuple&)> sink) {
    delta_sink_ = std::move(sink);
  }

  bool has_delta_sink() const { return static_cast<bool>(delta_sink_); }

  /// Total operator + view state, for the memory experiments.
  size_t StateBytes() const;
  size_t StateTuples() const;

  /// Sums heavy-light partitioning counters (DESIGN.md Section 16) over
  /// every operator's state buffers. All-zero unless the planner wrapped
  /// state in HeavyLightBuffer (heavy_threshold > 0).
  HeavyLightStats CollectHeavyLight() const {
    HeavyLightStats s;
    for (const Node& n : nodes_) n.op->CollectHeavyLight(&s);
    return s;
  }

  int num_operators() const { return static_cast<int>(nodes_.size()); }
  const Operator& op(int node) const { return *nodes_[size_t(node)].op; }

  std::string DebugString() const;

 private:
  struct Node {
    std::unique_ptr<Operator> op;
    int parent = -1;
    int parent_port = 0;
  };

  void Deliver(int node, int port, const Tuple& t);
  void DeliverRun(int node, int port, const Tuple* const* run, size_t n);
  void DeliverToView(const Tuple& t);
  void CheckViewInvariant(const Tuple& t) const;
  void SampledIngestOne(int node, int port, const Tuple& t);

  // Cold mirror of the Tick/Deliver paths taken only on sampled events:
  // operator calls are bracketed with profiler frames, emissions counted,
  // and state sizes polled. Kept separate so the unsampled path stays as
  // fast as an unprofiled pipeline.
  void TickSampled(Time now);
  void DeliverSampled(int node, int port, const Tuple& t);
  void DeliverToViewSampled(const Tuple& t);

  std::vector<Node> nodes_;
  std::unique_ptr<ResultView> view_;
  std::function<void(const Tuple&)> delta_sink_;
  std::multimap<int, std::pair<int, int>> stream_bindings_;  // id->(node,port)
  Time last_tick_ = -1;
  PipelineStats stats_;
  std::unique_ptr<obs::PipelineProfiler> profiler_;
  bool degraded_ = false;

  // Batched execution (EnableBatching/BeginBatch/EndBatch).
  bool batching_enabled_ = false;
  bool in_batch_ = false;
  std::vector<uint8_t> silent_;  ///< Cached Operator::SilentExpiration.

  // Invariant checker state (EnableInvariantChecks).
  bool check_invariants_ = false;
  PatternInvariant invariant_ = PatternInvariant::kLiveOnly;
  Time tick_floor_ = -1;           ///< last_tick_ before the current tick.
  mutable Time max_pos_exp_ = 0;   ///< kFifo: largest positive exp seen.
};

}  // namespace upa

#endif  // UPA_EXEC_PIPELINE_H_
