#include "exec/pipeline.h"

#include <utility>

#include "common/macros.h"

namespace upa {

int Pipeline::AddOperator(std::unique_ptr<Operator> op,
                          const std::vector<int>& children) {
  UPA_CHECK(op != nullptr);
  UPA_CHECK(static_cast<int>(children.size()) <= op->num_inputs());
  const int id = static_cast<int>(nodes_.size());
  for (size_t port = 0; port < children.size(); ++port) {
    const int child = children[port];
    UPA_CHECK(child >= 0 && child < id);
    Node& c = nodes_[static_cast<size_t>(child)];
    UPA_CHECK(c.parent == -1);  // Trees only: one consumer per node.
    c.parent = id;
    c.parent_port = static_cast<int>(port);
  }
  Node node;
  node.op = std::move(op);
  nodes_.push_back(std::move(node));
  return id;
}

void Pipeline::SetView(std::unique_ptr<ResultView> view) {
  UPA_CHECK(view != nullptr);
  UPA_CHECK(view_ == nullptr);
  int roots = 0;
  for (const Node& n : nodes_) roots += n.parent == -1 ? 1 : 0;
  UPA_CHECK(roots == 1);
  view_ = std::move(view);
}

void Pipeline::BindStream(int stream_id, int node, int port) {
  UPA_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  UPA_CHECK(port >= 0 &&
            port < nodes_[static_cast<size_t>(node)].op->num_inputs());
  stream_bindings_.emplace(stream_id, std::make_pair(node, port));
}

void Pipeline::EnableProfiling(const obs::ProfilerOptions& options) {
  UPA_CHECK(view_ != nullptr);  // Topology must be complete.
  profiler_ = std::make_unique<obs::PipelineProfiler>(options);
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const Node& n : nodes_) names.push_back(n.op->Name());
  profiler_->SetTopology(std::move(names));
  for (size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].op->set_profile(&profiler_->op(static_cast<int>(i)));
  }
}

void Pipeline::SetDegraded(bool on) {
  if (on == degraded_) return;
  degraded_ = on;
  for (Node& n : nodes_) n.op->SetDegraded(on);
}

void Pipeline::EnableInvariantChecks(PatternInvariant invariant) {
  check_invariants_ = true;
  invariant_ = invariant;
}

void Pipeline::CheckViewInvariant(const Tuple& t) const {
  if (t.negative) {
    if (invariant_ == PatternInvariant::kLiveOnly) return;  // STR: premature
                                                            // deletions allowed.
    // WKS/WK: every deletion is an expiration, signalled exactly when the
    // clock passes the tuple's exp -- within the tick that crossed it.
    UPA_CHECK(t.exp <= last_tick_);
    UPA_CHECK(t.exp > tick_floor_);
    return;
  }
  // Positive results must be live as of the previous tick: a result may
  // legally be generated in the very tick that also expires it (e.g. a
  // negation re-exposing a left tuple whose window ends at this instant —
  // the view's own expiration sweep removes it again within the tick),
  // but never later than that.
  UPA_CHECK(t.exp > tick_floor_);
  if (invariant_ == PatternInvariant::kFifo) {
    // WKS: FIFO expiration == generation order carries non-decreasing exp.
    UPA_CHECK(t.exp >= max_pos_exp_);
    max_pos_exp_ = t.exp;
  }
}

void Pipeline::EnableBatching() {
  UPA_CHECK(view_ != nullptr);  // Topology must be complete.
  batching_enabled_ = true;
  silent_.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    silent_[i] = nodes_[i].op->SilentExpiration() ? 1 : 0;
  }
}

void Pipeline::BeginBatch() {
  if (!batching_enabled_) return;
  in_batch_ = true;
}

void Pipeline::EndBatch() {
  if (!in_batch_) return;
  in_batch_ = false;
  if (last_tick_ < 0) return;
  // Flush the deferred sweeps up to the batch's final clock. Silent
  // operators emit nothing on a tick by contract; the emitter aborts if
  // one ever does.
  class MustNotEmit : public Emitter {
   public:
    void Emit(const Tuple& t) override {
      (void)t;
      UPA_CHECK(false);  // SilentExpiration operator emitted on a tick.
    }
  };
  MustNotEmit sink;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (silent_[i] != 0) nodes_[i].op->AdvanceTime(last_tick_, sink);
  }
  if (view_ != nullptr) view_->AdvanceTime(last_tick_);
}

void Pipeline::Tick(Time now) {
  if (now <= last_tick_) return;
  tick_floor_ = last_tick_;
  last_tick_ = now;
  if (profiler_ != nullptr && profiler_->SampleTick()) {
    TickSampled(now);
    return;
  }
  // Children first: materialized windows at the leaves emit expiration
  // negatives into parents that have not advanced yet.
  class TickEmitter : public Emitter {
   public:
    TickEmitter(Pipeline* p, int node) : p_(p), node_(node) {}
    void Emit(const Tuple& t) override {
      const Node& n = p_->nodes_[static_cast<size_t>(node_)];
      p_->Deliver(n.parent, n.parent_port, t);
    }

   private:
    Pipeline* p_;
    int node_;
  };
  if (in_batch_) {
    // Deferred-sweep mode: silent operators advance clocks only (their
    // purges run at EndBatch); expiration-observing operators keep the
    // exact per-tick path, since their tick output is part of the
    // result stream.
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (silent_[i] != 0) {
        nodes_[i].op->AdvanceClock(now);
      } else {
        TickEmitter e(this, static_cast<int>(i));
        nodes_[i].op->AdvanceTime(now, e);
      }
    }
    if (view_ != nullptr) view_->AdvanceClock(now);
    return;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    TickEmitter e(this, static_cast<int>(i));
    nodes_[i].op->AdvanceTime(now, e);
  }
  if (view_ != nullptr) view_->AdvanceTime(now);
}

void Pipeline::Ingest(int stream_id, const Tuple& t) {
  const auto [begin, end] = stream_bindings_.equal_range(stream_id);
  UPA_CHECK(begin != end);
  UPA_CHECK(t.ts <= last_tick_);
  ++stats_.ingested;
  if (profiler_ != nullptr && profiler_->SampleIngest()) {
    profiler_->BeginRoot(obs::Root::kIngest);
    const uint64_t start = obs::NowNs();
    for (auto it = begin; it != end; ++it) {
      DeliverSampled(it->second.first, it->second.second, t);
    }
    profiler_->AddRootGrossNs(obs::Root::kIngest, obs::NowNs() - start);
    return;
  }
  for (auto it = begin; it != end; ++it) {
    Deliver(it->second.first, it->second.second, t);
  }
}

void Pipeline::IngestRun(int stream_id, const Tuple* const* run, size_t n) {
  if (n == 0) return;
  if (n == 1) {
    Ingest(stream_id, *run[0]);
    return;
  }
  const auto [begin, end] = stream_bindings_.equal_range(stream_id);
  UPA_CHECK(begin != end);
  UPA_CHECK(run[n - 1]->ts <= last_tick_);
  UPA_DCHECK(run[0]->ts == run[n - 1]->ts);
  if (std::next(begin) != end) {
    // Multiple ingress bindings (e.g. a self-join): tuple-at-a-time
    // delivery interleaves the bindings per tuple, so a batched hand-off
    // would reorder work against state. Fall back.
    for (size_t i = 0; i < n; ++i) Ingest(stream_id, *run[i]);
    return;
  }
  const int node = begin->second.first;
  const int port = begin->second.second;
  stats_.ingested += n;
  size_t i = 0;
  while (i < n) {
    if (profiler_ != nullptr && profiler_->SampleIngest()) {
      // Sampled events take the instrumented per-tuple path so the
      // profiler's cost decomposition keeps its meaning under batching.
      SampledIngestOne(node, port, *run[i]);
      ++i;
      continue;
    }
    size_t j = i + 1;
    bool sample_j = false;
    while (j < n) {
      if (profiler_ != nullptr && profiler_->SampleIngest()) {
        sample_j = true;
        break;
      }
      ++j;
    }
    DeliverRun(node, port, run + i, j - i);
    if (sample_j) {
      SampledIngestOne(node, port, *run[j]);
      ++j;
    }
    i = j;
  }
}

void Pipeline::SampledIngestOne(int node, int port, const Tuple& t) {
  profiler_->BeginRoot(obs::Root::kIngest);
  const uint64_t start = obs::NowNs();
  DeliverSampled(node, port, t);
  profiler_->AddRootGrossNs(obs::Root::kIngest, obs::NowNs() - start);
}

void Pipeline::DeliverRun(int node, int port, const Tuple* const* run,
                          size_t n) {
  if (n == 0) return;
  if (node < 0) {
    for (size_t i = 0; i < n; ++i) DeliverToView(*run[i]);
    return;
  }
  if (n == 1) {
    Deliver(node, port, *run[0]);
    return;
  }
  stats_.delivered += n;
  for (size_t i = 0; i < n; ++i) {
    if (run[i]->negative) ++stats_.negatives_delivered;
  }
  Node& nd = nodes_[static_cast<size_t>(node)];
  // Collect the run's emissions, then forward them as a run to the
  // parent. ProcessBatch preserves per-tuple emission order and parents
  // never feed back into children, so the sequence reaching the view is
  // identical to tuple-at-a-time delivery.
  std::vector<Tuple> emitted;
  VectorEmitter collect(&emitted);
  nd.op->ProcessBatch(port, run, n, collect);
  if (emitted.empty()) return;
  std::vector<const Tuple*> next;
  next.reserve(emitted.size());
  for (const Tuple& t : emitted) next.push_back(&t);
  DeliverRun(nd.parent, nd.parent_port, next.data(), next.size());
}

void Pipeline::Deliver(int node, int port, const Tuple& t) {
  if (node < 0) {
    DeliverToView(t);
    return;
  }
  ++stats_.delivered;
  if (t.negative) ++stats_.negatives_delivered;
  Node& n = nodes_[static_cast<size_t>(node)];
  class ForwardEmitter : public Emitter {
   public:
    ForwardEmitter(Pipeline* p, int node) : p_(p), node_(node) {}
    void Emit(const Tuple& t) override {
      const Node& n = p_->nodes_[static_cast<size_t>(node_)];
      p_->Deliver(n.parent, n.parent_port, t);
    }

   private:
    Pipeline* p_;
    int node_;
  };
  ForwardEmitter e(this, node);
  n.op->Process(port, t, e);
}

void Pipeline::DeliverToView(const Tuple& t) {
  if (check_invariants_) CheckViewInvariant(t);
  if (t.negative) {
    ++stats_.results_neg;
  } else {
    ++stats_.results_pos;
  }
  if (view_ != nullptr) view_->Apply(t);
  if (delta_sink_) delta_sink_(t);
}

void Pipeline::TickSampled(Time now) {
  obs::PipelineProfiler& prof = *profiler_;
  prof.BeginRoot(obs::Root::kTick);
  const uint64_t start = obs::NowNs();
  class SampledTickEmitter : public Emitter {
   public:
    SampledTickEmitter(Pipeline* p, int node) : p_(p), node_(node) {}
    void Emit(const Tuple& t) override {
      ++p_->profiler_->op(node_).c.emitted;
      const Node& n = p_->nodes_[static_cast<size_t>(node_)];
      p_->DeliverSampled(n.parent, n.parent_port, t);
    }

   private:
    Pipeline* p_;
    int node_;
  };
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const int node = static_cast<int>(i);
    SampledTickEmitter e(this, node);
    prof.BeginOp(node, obs::Phase::kExpiration);
    nodes_[i].op->AdvanceTime(now, e);
    prof.EndOp(node, obs::Phase::kExpiration);
  }
  if (view_ != nullptr) {
    prof.BeginOp(prof.view_index(), obs::Phase::kExpiration);
    view_->AdvanceTime(now);
    prof.EndOp(prof.view_index(), obs::Phase::kExpiration);
  }
  prof.AddRootGrossNs(obs::Root::kTick, obs::NowNs() - start);
  if (prof.ShouldPollState()) {
    for (size_t i = 0; i < nodes_.size(); ++i) {
      obs::OpCounters& c = prof.op(static_cast<int>(i)).c;
      c.state_bytes = nodes_[i].op->StateBytes();
      c.state_tuples = nodes_[i].op->StateTuples();
    }
    if (view_ != nullptr) {
      obs::OpCounters& c = prof.op(prof.view_index()).c;
      c.state_bytes = view_->StateBytes();
      c.state_tuples = view_->Size();
    }
  }
}

void Pipeline::DeliverSampled(int node, int port, const Tuple& t) {
  if (node < 0) {
    DeliverToViewSampled(t);
    return;
  }
  ++stats_.delivered;
  if (t.negative) ++stats_.negatives_delivered;
  obs::PipelineProfiler& prof = *profiler_;
  obs::OpCounters& c = prof.op(node).c;
  ++c.tuples_in;
  if (t.negative) ++c.negatives_in;
  Node& n = nodes_[static_cast<size_t>(node)];
  class SampledForwardEmitter : public Emitter {
   public:
    SampledForwardEmitter(Pipeline* p, int node) : p_(p), node_(node) {}
    void Emit(const Tuple& t) override {
      ++p_->profiler_->op(node_).c.emitted;
      const Node& n = p_->nodes_[static_cast<size_t>(node_)];
      p_->DeliverSampled(n.parent, n.parent_port, t);
    }

   private:
    Pipeline* p_;
    int node_;
  };
  SampledForwardEmitter e(this, node);
  prof.BeginOp(node, obs::Phase::kProcessing);
  n.op->Process(port, t, e);
  prof.EndOp(node, obs::Phase::kProcessing);
}

void Pipeline::DeliverToViewSampled(const Tuple& t) {
  if (check_invariants_) CheckViewInvariant(t);
  if (t.negative) {
    ++stats_.results_neg;
  } else {
    ++stats_.results_pos;
  }
  obs::PipelineProfiler& prof = *profiler_;
  obs::OpCounters& c = prof.op(prof.view_index()).c;
  ++c.tuples_in;
  if (t.negative) ++c.negatives_in;
  if (view_ != nullptr) {
    prof.BeginOp(prof.view_index(), obs::Phase::kInsertion);
    view_->Apply(t);
    prof.EndOp(prof.view_index(), obs::Phase::kInsertion);
  }
  if (delta_sink_) delta_sink_(t);
}

const ResultView& Pipeline::view() const {
  UPA_CHECK(view_ != nullptr);
  return *view_;
}

size_t Pipeline::StateBytes() const {
  size_t bytes = view_ != nullptr ? view_->StateBytes() : 0;
  for (const Node& n : nodes_) bytes += n.op->StateBytes();
  return bytes;
}

size_t Pipeline::StateTuples() const {
  size_t tuples = view_ != nullptr ? view_->Size() : 0;
  for (const Node& n : nodes_) tuples += n.op->StateTuples();
  return tuples;
}

std::string Pipeline::DebugString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "#" + std::to_string(i) + " " + nodes_[i].op->Name();
    if (nodes_[i].parent >= 0) {
      out += " -> #" + std::to_string(nodes_[i].parent) + ":" +
             std::to_string(nodes_[i].parent_port);
    } else {
      out += " -> view";
    }
    out += "\n";
  }
  return out;
}

}  // namespace upa
