#include "exec/pipeline.h"

#include <utility>

#include "common/macros.h"

namespace upa {

int Pipeline::AddOperator(std::unique_ptr<Operator> op,
                          const std::vector<int>& children) {
  UPA_CHECK(op != nullptr);
  UPA_CHECK(static_cast<int>(children.size()) <= op->num_inputs());
  const int id = static_cast<int>(nodes_.size());
  for (size_t port = 0; port < children.size(); ++port) {
    const int child = children[port];
    UPA_CHECK(child >= 0 && child < id);
    Node& c = nodes_[static_cast<size_t>(child)];
    UPA_CHECK(c.parent == -1);  // Trees only: one consumer per node.
    c.parent = id;
    c.parent_port = static_cast<int>(port);
  }
  Node node;
  node.op = std::move(op);
  nodes_.push_back(std::move(node));
  return id;
}

void Pipeline::SetView(std::unique_ptr<ResultView> view) {
  UPA_CHECK(view != nullptr);
  UPA_CHECK(view_ == nullptr);
  int roots = 0;
  for (const Node& n : nodes_) roots += n.parent == -1 ? 1 : 0;
  UPA_CHECK(roots == 1);
  view_ = std::move(view);
}

void Pipeline::BindStream(int stream_id, int node, int port) {
  UPA_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  UPA_CHECK(port >= 0 &&
            port < nodes_[static_cast<size_t>(node)].op->num_inputs());
  stream_bindings_.emplace(stream_id, std::make_pair(node, port));
}

void Pipeline::Tick(Time now) {
  if (now <= last_tick_) return;
  last_tick_ = now;
  // Children first: materialized windows at the leaves emit expiration
  // negatives into parents that have not advanced yet.
  class TickEmitter : public Emitter {
   public:
    TickEmitter(Pipeline* p, int node) : p_(p), node_(node) {}
    void Emit(const Tuple& t) override {
      const Node& n = p_->nodes_[static_cast<size_t>(node_)];
      p_->Deliver(n.parent, n.parent_port, t);
    }

   private:
    Pipeline* p_;
    int node_;
  };
  for (size_t i = 0; i < nodes_.size(); ++i) {
    TickEmitter e(this, static_cast<int>(i));
    nodes_[i].op->AdvanceTime(now, e);
  }
  if (view_ != nullptr) view_->AdvanceTime(now);
}

void Pipeline::Ingest(int stream_id, const Tuple& t) {
  const auto [begin, end] = stream_bindings_.equal_range(stream_id);
  UPA_CHECK(begin != end);
  UPA_CHECK(t.ts <= last_tick_);
  ++stats_.ingested;
  for (auto it = begin; it != end; ++it) {
    Deliver(it->second.first, it->second.second, t);
  }
}

void Pipeline::Deliver(int node, int port, const Tuple& t) {
  if (node < 0) {
    DeliverToView(t);
    return;
  }
  ++stats_.delivered;
  if (t.negative) ++stats_.negatives_delivered;
  Node& n = nodes_[static_cast<size_t>(node)];
  class ForwardEmitter : public Emitter {
   public:
    ForwardEmitter(Pipeline* p, int node) : p_(p), node_(node) {}
    void Emit(const Tuple& t) override {
      const Node& n = p_->nodes_[static_cast<size_t>(node_)];
      p_->Deliver(n.parent, n.parent_port, t);
    }

   private:
    Pipeline* p_;
    int node_;
  };
  ForwardEmitter e(this, node);
  n.op->Process(port, t, e);
}

void Pipeline::DeliverToView(const Tuple& t) {
  if (t.negative) {
    ++stats_.results_neg;
  } else {
    ++stats_.results_pos;
  }
  if (view_ != nullptr) view_->Apply(t);
}

const ResultView& Pipeline::view() const {
  UPA_CHECK(view_ != nullptr);
  return *view_;
}

size_t Pipeline::StateBytes() const {
  size_t bytes = view_ != nullptr ? view_->StateBytes() : 0;
  for (const Node& n : nodes_) bytes += n.op->StateBytes();
  return bytes;
}

size_t Pipeline::StateTuples() const {
  size_t tuples = view_ != nullptr ? view_->Size() : 0;
  for (const Node& n : nodes_) tuples += n.op->StateTuples();
  return tuples;
}

std::string Pipeline::DebugString() const {
  std::string out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out += "#" + std::to_string(i) + " " + nodes_[i].op->Name();
    if (nodes_[i].parent >= 0) {
      out += " -> #" + std::to_string(nodes_[i].parent) + ":" +
             std::to_string(nodes_[i].parent_port);
    } else {
      out += " -> view";
    }
    out += "\n";
  }
  return out;
}

}  // namespace upa
