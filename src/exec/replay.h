#ifndef UPA_EXEC_REPLAY_H_
#define UPA_EXEC_REPLAY_H_

#include <cstdint>
#include <functional>

#include "exec/pipeline.h"
#include "obs/metrics.h"
#include "workload/trace.h"

namespace upa {

/// Measurement results of one trace replay, in the units the paper reports
/// (Section 6.1: "average overall query execution times -- including
/// processing, tuple insertion, and expiration -- per 1000 tuples").
struct ReplayMetrics {
  uint64_t tuples = 0;
  double wall_seconds = 0.0;
  /// Milliseconds of execution time per 1000 input tuples processed.
  double ms_per_1000_tuples = 0.0;
  size_t max_state_bytes = 0;
  size_t max_state_tuples = 0;
  PipelineStats stats;
  /// Filled when the pipeline had a profiler attached (see
  /// Pipeline::EnableProfiling): the Section 6.1 phase breakdown and
  /// per-operator cost estimates for this replay.
  bool profiled = false;
  obs::ProfileSnapshot profile;
  /// Per-tuple processing latency (one Tick + Ingest, nanoseconds),
  /// recorded when ReplayOptions::measure_latency is set. Tail latency is
  /// the skew experiments' second axis: a scan-probed buffer under a
  /// Zipf-heavy key pays its O(N) probe on exactly the popular arrivals,
  /// which the mean hides but the p99 exposes.
  bool latency_measured = false;
  obs::Histogram::Snapshot latency_ns;
};

/// Options for ReplayTrace.
struct ReplayOptions {
  /// Poll pipeline state size every this many tuples (0 = never).
  uint64_t state_poll_interval = 1000;
  /// Invoked after every `checkpoint_interval` tuples with the current
  /// time; used by correctness tests to compare views against the
  /// reference evaluator. 0 disables.
  uint64_t checkpoint_interval = 0;
  std::function<void(Time now)> on_checkpoint;
  /// After the last event, keep ticking once per `drain_step` time units
  /// for `drain` more time units so that pending expirations are applied
  /// (the paper's handling of idle inputs: operators initiate expiration
  /// even without arrivals). 0 disables.
  Time drain = 0;
  Time drain_step = 1;
  /// Time every Tick + Ingest pair individually and fill
  /// ReplayMetrics::latency_ns. Two clock reads per tuple -- leave off
  /// unless the benchmark reports tail latency.
  bool measure_latency = false;
};

/// Replays `trace` through `pipeline` (Tick + Ingest per event, per the
/// Section 2 processing model) and returns timing/size metrics.
ReplayMetrics ReplayTrace(const Trace& trace, Pipeline* pipeline,
                          const ReplayOptions& options = {});

}  // namespace upa

#endif  // UPA_EXEC_REPLAY_H_
