#ifndef UPA_EXEC_VIEW_H_
#define UPA_EXEC_VIEW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/tuple.h"
#include "state/buffer.h"

namespace upa {

/// How a remote mirror must interpret a view's delta stream (the tuples a
/// Pipeline delta sink observes). Multiset views (BufferView) apply
/// positive tuples as inserts and negative tuples as one-match deletes;
/// group-array views (GroupArrayView) receive (group, agg, count)
/// replace records where count = 0 drops the group. The network layer
/// ships this tag in every subscription ack so a client materializer can
/// reproduce the server-side view exactly.
enum class ViewDeltaKind : uint8_t {
  kMultiset = 0,      ///< Insert positives, erase one (fields, exp) match.
  kGroupReplace = 1,  ///< (group, agg, count) replaces; count 0 removes.
};

/// A materialized view of a continuous query's answer set (Definition 2:
/// the output of a non-monotonic query is a materialized view reflecting
/// all real and negative tuples produced on the output stream).
class ResultView {
 public:
  virtual ~ResultView() = default;

  ResultView(const ResultView&) = delete;
  ResultView& operator=(const ResultView&) = delete;

  /// Applies one output-stream tuple: positive tuples are inserted,
  /// negative tuples delete their (fields, exp) match.
  virtual void Apply(const Tuple& t) = 0;

  /// Advances the view's clock; under direct maintenance also expires
  /// results whose `exp` has passed.
  virtual void AdvanceTime(Time now) = 0;

  /// Batched execution (DESIGN.md Section 15): advances the view's clock
  /// without the physical expiration sweep, which the pipeline defers to
  /// one AdvanceTime() at the batch boundary. Reads filter by liveness,
  /// so the deferral is invisible to snapshots and digests taken at
  /// barriers (which always follow a batch boundary). The default is the
  /// full advance, for views whose AdvanceTime is already trivial.
  virtual void AdvanceClock(Time now) { AdvanceTime(now); }

  /// Number of live result tuples.
  virtual size_t Size() const = 0;

  virtual size_t StateBytes() const = 0;

  /// Copies out the live result tuples (order unspecified).
  virtual std::vector<Tuple> Snapshot() const = 0;

  /// Order-independent digest of the live result rows, used by the
  /// durability layer to verify that a recovered replica's view matches
  /// the state recorded at a checkpoint barrier. Defined over the field
  /// values only (views with equal row multisets digest equally): a
  /// replica rebuilt by replay reproduces the rows exactly, but which
  /// arrival's ts a distinct/group-by representative carries may differ.
  virtual uint64_t Digest() const;

  virtual std::string Name() const = 0;

 protected:
  ResultView() = default;
};

/// View backed by any StateBuffer. With `time_expiration` (direct/UPA
/// execution) expired results are removed eagerly by the clock -- the
/// update-pattern-aware choice of buffer (FIFO for WKS results,
/// partitioned for WK, a plain list for the DIRECT baseline) determines
/// the maintenance cost. Without it (negative tuple approach) removal is
/// driven purely by negative tuples and the buffer is typically a hash
/// table on the key attribute.
class BufferView : public ResultView {
 public:
  BufferView(std::unique_ptr<StateBuffer> buffer, bool time_expiration);

  void Apply(const Tuple& t) override;
  void AdvanceTime(Time now) override;
  /// Clock only; the buffer's purge watermark lags until the batch-end
  /// AdvanceTime. Correct in both maintenance modes (under NT, removal
  /// is negative-tuple-driven and AdvanceTime is a clock bump anyway).
  void AdvanceClock(Time now) override { buffer_->SetClock(now); }
  size_t Size() const override { return buffer_->LiveCount(); }
  size_t StateBytes() const override { return buffer_->StateBytes(); }
  std::vector<Tuple> Snapshot() const override;
  /// Delegates to the buffer's pattern-aware hook (skips expired state).
  uint64_t Digest() const override { return buffer_->LiveDigest(); }
  std::string Name() const override { return "view:" + buffer_->Name(); }

  const StateBuffer& buffer() const { return *buffer_; }

 private:
  std::unique_ptr<StateBuffer> buffer_;
  bool time_expiration_;
};

/// The group-by result store (Section 5.3.2: "the result consists of
/// aggregate values for each group and can be stored as an array, indexed
/// by group label"). Each incoming (group, agg, count) tuple *replaces*
/// the entry for its group; count = 0 drops the group, mirroring
/// relational GROUP BY semantics without negative tuples (Rule 4).
class GroupArrayView : public ResultView {
 public:
  GroupArrayView() = default;

  void Apply(const Tuple& t) override;
  void AdvanceTime(Time now) override;
  size_t Size() const override { return groups_.size(); }
  size_t StateBytes() const override;
  /// Snapshot tuples have fields (group, aggregate).
  std::vector<Tuple> Snapshot() const override;
  std::string Name() const override { return "view:group-array"; }

  /// Aggregate value for `group`, or nullptr if the group is absent.
  const double* Lookup(const Value& group) const;

 private:
  std::map<Value, double> groups_;
};

}  // namespace upa

#endif  // UPA_EXEC_VIEW_H_
