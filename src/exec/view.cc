#include "exec/view.h"

#include <utility>

#include "common/macros.h"
#include "state/serde.h"

namespace upa {

uint64_t ResultView::Digest() const { return serde::RowsDigest(Snapshot()); }

BufferView::BufferView(std::unique_ptr<StateBuffer> buffer,
                       bool time_expiration)
    : buffer_(std::move(buffer)), time_expiration_(time_expiration) {
  UPA_CHECK(buffer_ != nullptr);
  // A materialized answer must satisfy Definition 1 at all times, so lazy
  // maintenance is not allowed for the final view.
  UPA_CHECK(!buffer_->lazy());
}

void BufferView::Apply(const Tuple& t) {
  if (t.negative) {
    buffer_->EraseOneMatch(t);
    return;
  }
  buffer_->Insert(t);
}

void BufferView::AdvanceTime(Time now) {
  if (time_expiration_) {
    buffer_->Advance(now, nullptr);
  } else {
    buffer_->SetClock(now);
  }
}

std::vector<Tuple> BufferView::Snapshot() const {
  std::vector<Tuple> out;
  out.reserve(buffer_->LiveCount());
  buffer_->ForEachLive([&out](const Tuple& t) { out.push_back(t); });
  return out;
}

void GroupArrayView::Apply(const Tuple& t) {
  UPA_CHECK(!t.negative);
  UPA_CHECK(t.fields.size() == 3);
  const Value& group = t.fields[0];
  const int64_t count = AsInt(t.fields[2]);
  if (count == 0) {
    groups_.erase(group);
  } else {
    groups_[group] = AsDouble(t.fields[1]);
  }
}

void GroupArrayView::AdvanceTime(Time now) {
  (void)now;  // Replacement semantics: nothing expires by time here.
}

size_t GroupArrayView::StateBytes() const {
  return groups_.size() * (sizeof(Value) + sizeof(double) + 48);
}

std::vector<Tuple> GroupArrayView::Snapshot() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& [group, agg] : groups_) {
    Tuple t;
    t.fields = {group, Value{agg}};
    out.push_back(std::move(t));
  }
  return out;
}

const double* GroupArrayView::Lookup(const Value& group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : &it->second;
}

}  // namespace upa
