#ifndef UPA_NET_SESSION_H_
#define UPA_NET_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/update_pattern.h"
#include "engine/subscription.h"
#include "net/protocol.h"

namespace upa {
namespace net {

class Session;

/// What the server does when a subscriber cannot keep up -- i.e. when a
/// session's queued-but-unsent subscription bytes exceed the configured
/// cap. Only bulky delta frames are subject to the cap; watermark,
/// reset, drop-notice and request-response frames always enqueue, so
/// control traffic cannot deadlock on a full data queue.
enum class SlowConsumerPolicy {
  /// The emitting engine thread blocks until the writer drains the
  /// session below the cap. This is end-to-end backpressure (the engine
  /// slows to the slowest subscriber, exactly like the engine's own
  /// kBlock ingest policy) -- a subscriber that never reads can stall
  /// the pipeline, so use it only for trusted consumers.
  kBlock,
  /// The subscription is dropped: its pending deltas are discarded, a
  /// kSubDropped notice is pushed (bypassing the cap), and the server
  /// unsubscribes it from the engine. The session stays usable; the
  /// client may re-subscribe, which re-synchronizes it via a fresh
  /// snapshot. Counted in upa_net_slow_drops_total.
  kDropSubscription,
};

/// Bridges the window between Engine::Subscribe returning and the
/// session learning the subscription id: the engine assigns the id
/// inside Subscribe, but deltas may start flowing the instant it
/// returns -- before the caller can register the id with the session.
/// Events arriving before the channel is armed are buffered, then
/// replayed in order (the hub serializes emissions, so ordering is
/// preserved end to end). Shared by kSubscribe and the SQL SUBSCRIBE
/// statement.
///
/// The delivery callback holds `mu` across the whole delivery into the
/// session (lock order: SubChannel::mu before Session's internal lock,
/// never the reverse). That makes resume adoption race-free: the poll
/// thread disarms every channel under `mu`, after which no event can be
/// mid-flight into the old session, moves the subscription state to the
/// adopting session, re-points `session`, and re-arms -- events landing
/// in the window buffer in `backlog` and replay in order.
struct SubChannel {
  std::mutex mu;
  bool armed = false;
  uint64_t sub_id = 0;
  std::shared_ptr<Session> session;
  std::vector<SubscriptionEvent> backlog;
};

/// One accepted connection (or, between disconnect and lease expiry, a
/// detached resumable session). The poll thread owns the read side
/// (`in`, handshake state, request dispatch) without locking; the send
/// side is a mutex-guarded output buffer fed by the poll thread
/// (responses), engine threads (subscription events, via Server's hub
/// callbacks) and drained by the server's writer thread. Sessions are
/// reference-counted by the server and by in-flight subscription
/// callbacks.
///
/// Resumable-session lifecycle (DESIGN.md Section 17): every
/// kSubData/kSubWatermark/kSubReset frame is stamped with a
/// per-subscription sequence number and retained in a bounded replay
/// ring. On connection loss the server Detach()es the session instead
/// of closing it: subscriptions stay attached to the engine and keep
/// feeding the ring (the dead socket's output buffer is discarded).
/// A reconnecting client's kResume adopts the detached session's
/// subscription state into its new session (AdoptFrom) and either
/// replays the ring suffix past the client's acked sequence
/// (ReplayFrom) or -- when the ring was overrun -- pushes a fresh
/// snapshot as a kSubReset (PushReset).
class Session {
 public:
  enum class Kind {
    kBinary,  ///< The engine wire protocol.
    kHttp,    ///< One-shot HTTP /metrics scrape.
  };

  /// `wake_writer` / `wake_poll` poke the server's threads (self-pipe);
  /// both must stay callable for the session's lifetime.
  /// `replay_ring_cap` bounds the summed encoded-frame bytes retained
  /// across this session's replay rings (0 disables retention).
  Session(uint64_t id, int fd, Kind kind, SlowConsumerPolicy policy,
          size_t send_cap_bytes, size_t replay_ring_cap,
          std::function<void()> wake_writer, std::function<void()> wake_poll);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  Kind kind() const { return kind_; }

  // --- Poll-thread-only state (never touched by other threads) ---

  std::string in;        ///< Unconsumed inbound bytes.
  bool handshaken = false;
  /// Protocol version negotiated by kHello (the server accepts every
  /// version up to kProtocolVersion; version-gated requests such as
  /// kSqlExec check this).
  uint32_t version = 0;
  /// Session token issued in kHelloAck (0 when resumption is off).
  uint64_t token = 0;
  /// Millisecond timestamps driving the heartbeat state machine: any
  /// inbound byte counts as liveness.
  int64_t last_in_ms = 0;
  int64_t ping_sent_ms = 0;
  /// Engine subscription ids attached to this session -> query name
  /// (needed to unsubscribe on close).
  std::map<uint64_t, std::string> engine_subs;
  /// The delivery channel per subscription, kept so kResume can re-point
  /// it at the adopting session.
  std::map<uint64_t, std::shared_ptr<SubChannel>> channels;

  // --- Output path (any thread) ---

  /// Registers a subscription with the session's event path. `pattern`
  /// drives the Section 5.2 delivery contract: for kMonotonic, kWeakest
  /// and kWeak subscriptions negative deltas are filtered out (they can
  /// only be expiration signals, which the exp timestamps plus
  /// watermarks already imply); only kStrict subscriptions forward
  /// signed tuples.
  void AddSub(uint64_t sub_id, UpdatePattern pattern);

  /// Detaches a subscription from the event path (pending deltas and
  /// its replay ring are discarded). The caller must separately
  /// unsubscribe from the engine.
  void RemoveSub(uint64_t sub_id);

  /// Delivers one engine subscription event. Called from engine threads
  /// (under the channel lock). Deltas are batched per subscription and
  /// flushed as kSubData frames at watermark boundaries, when the batch
  /// reaches kDeltaBatchMax, or before any response frame; watermarks
  /// and resets enqueue immediately (after the flush) so a subscriber
  /// never observes an event ordering the engine did not produce.
  void OnSubEvent(uint64_t sub_id, const SubscriptionEvent& ev);

  /// Enqueues a response/control frame. Flushes every subscription's
  /// pending deltas first (a response must never overtake data emitted
  /// before it) and bypasses the send cap. Responses with a nonzero
  /// req_id are cached (last one only) so a retried request after a
  /// resume can be answered idempotently.
  void QueueResponse(const Message& m);

  /// Enqueues raw bytes (the HTTP path and cached-response replay),
  /// bypassing the cap.
  void QueueBytes(std::string bytes);

  /// Flushes all pending delta batches to the output buffer (poll thread
  /// housekeeping, so deltas never linger while the connection idles).
  void FlushPending();

  /// Subscriptions dropped by the slow-consumer policy since the last
  /// call (poll thread: unsubscribe them from the engine).
  std::vector<uint64_t> TakeDropped();

  // --- Resumable-session interface (poll thread) ---

  /// Detaches the session from its (dead) socket: discards the output
  /// buffer, releases any emitter blocked on the send cap, and makes
  /// every later append a ring-only operation. Subscription state and
  /// replay rings keep accumulating; the fd stays open (harmlessly)
  /// until the session is destroyed. Not reversible -- resumption
  /// adopts the state into a fresh session instead.
  void Detach();
  bool detached() const {
    return detached_.load(std::memory_order_acquire);
  }

  /// Writer-thread signal that the socket errored: the poll thread
  /// decides whether to detach (resumable) or close.
  void MarkDisconnected() {
    disconnected_.store(true, std::memory_order_release);
  }
  bool disconnected() const {
    return disconnected_.load(std::memory_order_acquire);
  }

  /// Adopts `old`'s subscription state (sequence counters, pending
  /// deltas, replay rings, cached response) into this session. The
  /// caller must have disarmed every channel first so no delivery is
  /// mid-flight into `old`.
  void AdoptFrom(Session& old);

  /// True when the replay ring can serve every frame after `last_acked`
  /// for `sub_id` (also true when the ring starts with a reset, which
  /// supersedes anything older). False on an unknown sub, a bogus ack
  /// (ahead of what was ever sent), or an overrun ring.
  bool CanReplay(uint64_t sub_id, uint64_t last_acked);

  /// Appends every ringed frame with seq > `last_acked` to the output
  /// buffer (cap-exempt).
  void ReplayFrom(uint64_t sub_id, uint64_t last_acked);

  /// Pushes a kSubReset carrying `snapshot` for `sub_id`: discards the
  /// pending batch, supersedes the replay ring (the reset becomes its
  /// first frame), stamps the next sequence number. Used for the resume
  /// snapshot-fallback path; engine-driven resets go through OnSubEvent
  /// and behave identically.
  void PushReset(uint64_t sub_id, std::vector<Tuple> snapshot);

  /// Looks up the cached response for a retried request. Returns false
  /// when `req_id` does not match the most recent response.
  bool CachedResponse(uint64_t req_id, std::string* frame);

  /// Summed encoded-frame bytes currently retained in replay rings.
  size_t ring_bytes();

  // --- Writer-thread interface ---

  /// Writer-thread-only: bytes taken from the buffer but not yet written
  /// to the socket.
  std::string residual;
  /// True when the session has bytes to send (residual or buffered).
  bool HasOutput();
  /// Swaps the buffered output into `*out` (appending) and releases any
  /// blocked emitters. Returns false if there was nothing to take.
  bool TakeOutput(std::string* out);

  /// Close this session after everything queued so far has been written
  /// (the HTTP path). Checked by the writer via should_close_after_drain.
  void CloseAfterDrain();
  bool close_after_drain() const {
    return close_after_drain_.load(std::memory_order_relaxed);
  }

  /// Marks the session dead (IO error on a non-resumable session, lease
  /// expiry, protocol error, server stop): wakes any emitter blocked on
  /// the send cap and makes every later queue/emit call a no-op.
  /// Idempotent; does not close the fd (closed when the last reference
  /// drops).
  void MarkClosed();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // --- Counters (relaxed; aggregated into ServerStats) ---
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> slow_drops{0};
  std::atomic<uint64_t> block_waits{0};
  /// Frames evicted from replay rings to stay under the cap; a resume
  /// whose ack predates the evicted point falls back to a snapshot.
  std::atomic<uint64_t> ring_overruns{0};

 private:
  /// One retained (already encoded) push frame.
  struct ReplayFrame {
    uint64_t seq = 0;
    bool is_reset = false;
    std::string bytes;
  };

  struct SubState {
    UpdatePattern pattern = UpdatePattern::kMonotonic;
    std::vector<Tuple> pending;  ///< Deltas awaiting a kSubData frame.
    /// Next sequence number to stamp (one counter per subscription,
    /// shared by data/watermark/reset frames; starts at 1).
    uint64_t next_seq = 1;
    /// Retained frames, oldest first; contiguous seqs
    /// (evicted_to, next_seq).
    std::deque<ReplayFrame> ring;
    size_t ring_bytes = 0;
    /// Highest sequence number evicted from the ring (0 = none).
    uint64_t evicted_to = 0;
  };

  /// Encodes and appends one kSubData frame for `sub`'s pending deltas,
  /// enforcing the send cap per the slow-consumer policy. The frame is
  /// stamped and ringed unconditionally (even when detached). Returns
  /// false if the subscription was dropped (kDropSubscription) or the
  /// session closed. `lock` is the held session lock (released and
  /// reacquired while blocking under kBlock).
  bool FlushPendingLocked(uint64_t sub_id, SubState* sub,
                          std::unique_lock<std::mutex>* lock);
  void FlushAllPendingLocked(std::unique_lock<std::mutex>* lock);
  /// Stamps `m` with `sub`'s next sequence, rings the encoded frame,
  /// and appends it to the output buffer unless detached. Returns the
  /// encoded frame size.
  void StampAndRingLocked(SubState* sub, Message* m, bool is_reset,
                          std::string* encoded);
  void ResetSubLocked(SubState* sub, uint64_t sub_id,
                      std::vector<Tuple> snapshot);
  /// Evicts oldest frames (largest ring first) until the session-wide
  /// ring budget is met.
  void EvictRingsLocked();
  void AppendLocked(const std::string& bytes);

  const uint64_t id_;
  const int fd_;
  const Kind kind_;
  const SlowConsumerPolicy policy_;
  const size_t cap_bytes_;
  const size_t ring_cap_bytes_;
  const std::function<void()> wake_writer_;
  const std::function<void()> wake_poll_;

  std::mutex mu_;
  std::condition_variable can_send_;        // kBlock waiters.
  std::string out_;                         // Guarded by mu_.
  std::map<uint64_t, SubState> sub_state_;  // Guarded by mu_.
  std::vector<uint64_t> dropped_;           // Guarded by mu_.
  size_t ring_total_ = 0;                   // Guarded by mu_.
  uint64_t last_req_id_ = 0;                // Guarded by mu_.
  std::string last_resp_frame_;             // Guarded by mu_.
  std::atomic<bool> closed_{false};
  std::atomic<bool> detached_{false};
  std::atomic<bool> disconnected_{false};
  std::atomic<bool> close_after_drain_{false};
};

/// Deltas buffered per subscription before a kSubData frame is cut.
inline constexpr size_t kDeltaBatchMax = 256;

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_SESSION_H_
