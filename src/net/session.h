#ifndef UPA_NET_SESSION_H_
#define UPA_NET_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/update_pattern.h"
#include "engine/subscription.h"
#include "net/protocol.h"

namespace upa {
namespace net {

/// What the server does when a subscriber cannot keep up -- i.e. when a
/// session's queued-but-unsent subscription bytes exceed the configured
/// cap. Only bulky delta frames are subject to the cap; watermark,
/// reset, drop-notice and request-response frames always enqueue, so
/// control traffic cannot deadlock on a full data queue.
enum class SlowConsumerPolicy {
  /// The emitting engine thread blocks until the writer drains the
  /// session below the cap. This is end-to-end backpressure (the engine
  /// slows to the slowest subscriber, exactly like the engine's own
  /// kBlock ingest policy) -- a subscriber that never reads can stall
  /// the pipeline, so use it only for trusted consumers.
  kBlock,
  /// The subscription is dropped: its pending deltas are discarded, a
  /// kSubDropped notice is pushed (bypassing the cap), and the server
  /// unsubscribes it from the engine. The session stays usable; the
  /// client may re-subscribe, which re-synchronizes it via a fresh
  /// snapshot. Counted in upa_net_slow_drops_total.
  kDropSubscription,
};

/// One accepted connection. The poll thread owns the read side (`in`,
/// handshake state, request dispatch) without locking; the send side is
/// a mutex-guarded output buffer fed by the poll thread (responses),
/// engine threads (subscription events, via Server's hub callbacks) and
/// drained by the server's writer thread. Sessions are reference-counted
/// by the server and by in-flight subscription callbacks.
class Session {
 public:
  enum class Kind {
    kBinary,  ///< The engine wire protocol.
    kHttp,    ///< One-shot HTTP /metrics scrape.
  };

  /// `wake_writer` / `wake_poll` poke the server's threads (self-pipe);
  /// both must stay callable for the session's lifetime.
  Session(uint64_t id, int fd, Kind kind, SlowConsumerPolicy policy,
          size_t send_cap_bytes, std::function<void()> wake_writer,
          std::function<void()> wake_poll);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }
  int fd() const { return fd_; }
  Kind kind() const { return kind_; }

  // --- Poll-thread-only state (never touched by other threads) ---

  std::string in;        ///< Unconsumed inbound bytes.
  bool handshaken = false;
  /// Protocol version negotiated by kHello (the server accepts every
  /// version up to kProtocolVersion; version-gated requests such as
  /// kSqlExec check this).
  uint32_t version = 0;
  /// Engine subscription ids attached to this session -> query name
  /// (needed to unsubscribe on close).
  std::map<uint64_t, std::string> engine_subs;

  // --- Output path (any thread) ---

  /// Registers a subscription with the session's event path. `pattern`
  /// drives the Section 5.2 delivery contract: for kMonotonic, kWeakest
  /// and kWeak subscriptions negative deltas are filtered out (they can
  /// only be expiration signals, which the exp timestamps plus
  /// watermarks already imply); only kStrict subscriptions forward
  /// signed tuples.
  void AddSub(uint64_t sub_id, UpdatePattern pattern);

  /// Detaches a subscription from the event path (pending deltas are
  /// discarded). The caller must separately unsubscribe from the engine.
  void RemoveSub(uint64_t sub_id);

  /// Delivers one engine subscription event. Called from engine threads
  /// (under the hub lock). Deltas are batched per subscription and
  /// flushed as kSubData frames at watermark boundaries, when the batch
  /// reaches kDeltaBatchMax, or before any response frame; watermarks
  /// and resets enqueue immediately (after the flush) so a subscriber
  /// never observes an event ordering the engine did not produce.
  void OnSubEvent(uint64_t sub_id, const SubscriptionEvent& ev);

  /// Enqueues a response/control frame. Flushes every subscription's
  /// pending deltas first (a response must never overtake data emitted
  /// before it) and bypasses the send cap.
  void QueueResponse(const Message& m);

  /// Enqueues raw bytes (the HTTP path), bypassing the cap.
  void QueueBytes(std::string bytes);

  /// Flushes all pending delta batches to the output buffer (poll thread
  /// housekeeping, so deltas never linger while the connection idles).
  void FlushPending();

  /// Subscriptions dropped by the slow-consumer policy since the last
  /// call (poll thread: unsubscribe them from the engine).
  std::vector<uint64_t> TakeDropped();

  // --- Writer-thread interface ---

  /// Writer-thread-only: bytes taken from the buffer but not yet written
  /// to the socket.
  std::string residual;
  /// True when the session has bytes to send (residual or buffered).
  bool HasOutput();
  /// Swaps the buffered output into `*out` (appending) and releases any
  /// blocked emitters. Returns false if there was nothing to take.
  bool TakeOutput(std::string* out);

  /// Close this session after everything queued so far has been written
  /// (the HTTP path). Checked by the writer via should_close_after_drain.
  void CloseAfterDrain();
  bool close_after_drain() const {
    return close_after_drain_.load(std::memory_order_relaxed);
  }

  /// Marks the session dead (IO error, protocol error, server stop):
  /// wakes any emitter blocked on the send cap and makes every later
  /// queue/emit call a no-op. Idempotent; does not close the fd (the
  /// poll thread does, once, when it reaps the session).
  void MarkClosed();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  // --- Counters (relaxed; aggregated into ServerStats) ---
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> slow_drops{0};
  std::atomic<uint64_t> block_waits{0};

 private:
  struct SubState {
    UpdatePattern pattern = UpdatePattern::kMonotonic;
    std::vector<Tuple> pending;  ///< Deltas awaiting a kSubData frame.
  };

  /// Encodes and appends one kSubData frame for `sub`'s pending deltas,
  /// enforcing the send cap per the slow-consumer policy. Returns false
  /// if the subscription was dropped (kDropSubscription) or the session
  /// closed. `lock` is the held session lock (released/reacquired while
  /// blocking under kBlock).
  bool FlushPendingLocked(uint64_t sub_id, SubState* sub,
                          std::unique_lock<std::mutex>* lock);
  void FlushAllPendingLocked(std::unique_lock<std::mutex>* lock);
  void AppendLocked(const std::string& bytes);

  const uint64_t id_;
  const int fd_;
  const Kind kind_;
  const SlowConsumerPolicy policy_;
  const size_t cap_bytes_;
  const std::function<void()> wake_writer_;
  const std::function<void()> wake_poll_;

  std::mutex mu_;
  std::condition_variable can_send_;        // kBlock waiters.
  std::string out_;                         // Guarded by mu_.
  std::map<uint64_t, SubState> sub_state_;  // Guarded by mu_.
  std::vector<uint64_t> dropped_;           // Guarded by mu_.
  std::atomic<bool> closed_{false};
  std::atomic<bool> close_after_drain_{false};
};

/// Deltas buffered per subscription before a kSubData frame is cut.
inline constexpr size_t kDeltaBatchMax = 256;

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_SESSION_H_
