#ifndef UPA_NET_CLIENT_H_
#define UPA_NET_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "common/value.h"
#include "core/update_pattern.h"
#include "exec/view.h"
#include "net/protocol.h"

namespace upa {
namespace net {

/// Outcome of one text-SQL statement (Client::SqlExec / kSqlResult).
/// `ok` distinguishes statement-level failure (bad SQL, unknown name --
/// the connection stays healthy) from the transport-level failure
/// SqlExec itself reports by returning false.
struct SqlExecResult {
  bool ok = false;
  std::string text;   ///< Human-readable result (success).
  std::string error;  ///< Statement error message (failure).
  /// Byte offset of the error into the statement text, -1 when the
  /// error has no anchoring position.
  int64_t error_offset = -1;
  /// Caret context (`^~~~` under the offending column), "" if none.
  std::string context;
  /// Mirror attached by a successful SUBSCRIBE statement (owned by the
  /// Client, like Client::Subscribe's); null for every other statement.
  class SubscriptionMirror* mirror = nullptr;
};

/// Automatic-reconnect knobs (Client::set_reconnect). Off by default:
/// with `enabled` false a connection loss surfaces as a failed call, the
/// pre-v3 behavior. With it on, the client reconnects with capped
/// exponential backoff, re-handshakes, and resumes its session under the
/// server's lease (DESIGN.md Section 17), so subscription mirrors survive
/// the outage.
struct ReconnectPolicy {
  bool enabled = false;
  /// Socket (re)connection attempts per outage before giving up.
  int max_attempts = 10;
  /// First retry delay; doubles per attempt up to `backoff_max_ms`.
  int backoff_base_ms = 10;
  int backoff_max_ms = 2000;
  /// Seed for the deterministic jitter added to each backoff (tests pin
  /// exact reconnect timing by fixing this).
  uint64_t jitter_seed = 1;
};

/// Client-side resilience counters (Client::stats). The differential
/// chaos tests pin these against the server's upa_net_* counters: every
/// client resume has a matching server-side adoption, split identically
/// into replayed / snapshot / lost subscriptions.
struct ClientStats {
  uint64_t reconnects = 0;        ///< Successful re-handshakes.
  uint64_t resumes = 0;           ///< Successful kResume adoptions.
  uint64_t resume_replays = 0;    ///< Subs caught up from the replay ring.
  uint64_t resume_snapshots = 0;  ///< Subs reset to a fresh snapshot.
  uint64_t resume_lost = 0;       ///< Subs dropped (lease expired / query gone).
  uint64_t frames_deduped = 0;    ///< Replayed frames already applied.
};

/// What RegisterAck reports about a (possibly pre-existing) query.
struct ClientQueryInfo {
  std::string name;
  int shards = 0;
  bool partitioned = false;
  std::string partition_note;
  UpdatePattern pattern = UpdatePattern::kMonotonic;
};

/// Client-side materialization of one subscription: replays the server's
/// pattern-aware event stream (snapshot, deltas, watermarks, resets)
/// into a local mirror of the query's result view. The mirror equals the
/// server-side view exactly at every watermark boundary -- that is the
/// contract pinned by the networked differential tests.
///
/// Interpretation is driven by (view_kind, pattern), per Section 5.2:
///  - kGroupReplace: deltas are (group, agg, count) replace records;
///    count 0 drops the group; rows render as (group, agg).
///  - kMultiset + kStrict: deltas are signed tuples; a negative erases
///    its one (fields, exp) match. Watermarks are recorded but expire
///    nothing (STR removal is complete via negatives).
///  - kMultiset + others (MONO/WKS/WK): deltas are positive only (the
///    server filters expiration negatives); a watermark w expires every
///    row with exp <= w, reproducing the view's time-based maintenance.
///
/// Owned by the Client that created it; methods are only safe from the
/// thread driving that Client (the client is blocking, not thread-safe).
class SubscriptionMirror {
 public:
  uint64_t sub_id() const { return sub_id_; }
  const std::string& query() const { return query_; }
  UpdatePattern pattern() const { return pattern_; }
  ViewDeltaKind view_kind() const { return view_kind_; }

  /// Highest watermark (engine barrier time) applied so far.
  Time watermark() const { return watermark_; }

  /// True once the server pushed kSubDropped (slow-consumer policy). The
  /// mirror stops updating; re-subscribe to resynchronize.
  bool dropped() const { return dropped_; }

  uint64_t deltas_applied() const { return deltas_applied_; }
  /// Negative deltas applied (nonzero only for kStrict subscriptions --
  /// the never-negative invariant for other patterns is pinned by tests
  /// via this counter).
  uint64_t negatives_applied() const { return negatives_applied_; }
  /// kSubReset events applied (post-recovery resynchronizations).
  uint64_t resets_applied() const { return resets_applied_; }
  /// Highest per-subscription sequence number applied (v3 frames stamp
  /// one; replayed frames at or below this are dropped as duplicates).
  uint64_t last_seq() const { return last_seq_; }

  /// Copies out the mirrored live rows (order unspecified; group views
  /// render as (group, agg) like GroupArrayView::Snapshot).
  std::vector<Tuple> Rows() const;

 private:
  friend class Client;

  SubscriptionMirror(uint64_t sub_id, std::string query,
                     UpdatePattern pattern, ViewDeltaKind view_kind);

  void ApplySnapshot(const std::vector<Tuple>& rows, Time at);
  void ApplyDelta(const Tuple& t);
  void ApplyWatermark(Time t);
  /// Sequence-dedup gate: false when `seq` was already applied (a resume
  /// replayed a frame the client had before the disconnect). seq 0
  /// (pre-v3 frames) always passes.
  bool AcceptSeq(uint64_t seq);

  const uint64_t sub_id_;
  const std::string query_;
  const UpdatePattern pattern_;
  const ViewDeltaKind view_kind_;

  Time watermark_ = -1;
  bool dropped_ = false;
  uint64_t deltas_applied_ = 0;
  uint64_t negatives_applied_ = 0;
  uint64_t resets_applied_ = 0;
  uint64_t last_seq_ = 0;

  std::vector<Tuple> rows_;          ///< kMultiset state.
  std::map<Value, double> groups_;   ///< kGroupReplace state.
};

/// Blocking client for the engine's binary protocol. One socket, one
/// driving thread: every request waits for its response, dispatching any
/// interleaved subscription pushes to the mirrors on the way. Because
/// the server publishes watermark/reset frames before acking a Flush,
/// `Flush()` returning true implies every mirror is synchronized to the
/// new barrier -- no separate wait is needed.
///
/// Not thread-safe; drive it from a single thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and performs the version handshake.
  bool Connect(const std::string& host, int port,
               std::string* error = nullptr,
               const std::string& client_name = "upa-client");
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// Server name from the handshake.
  const std::string& server_name() const { return server_name_; }

  /// Session token from the handshake (0 = server resumption disabled).
  uint64_t token() const { return token_; }

  /// Enables/configures automatic reconnect-with-resume. Takes effect on
  /// the next connection loss.
  void set_reconnect(ReconnectPolicy policy) { reconnect_ = policy; }
  const ReconnectPolicy& reconnect() const { return reconnect_; }

  ClientStats stats() const { return stats_; }

  /// Test hook: drops the socket as if the network failed, keeping the
  /// session state (token, mirrors, request ids) so the next call
  /// exercises the reconnect-with-resume path. No-op when disconnected.
  void Disconnect();

  /// Declares (or idempotently re-finds) a source; returns its stream id
  /// or -1.
  int64_t DeclareStream(const std::string& name, const Schema& schema,
                        std::string* error = nullptr);
  int64_t DeclareRelation(const std::string& name, const Schema& schema,
                          bool retroactive, std::string* error = nullptr);

  /// Registers `sql` under `name` (shards 0 = server default). Safe to
  /// repeat with identical SQL (reconnect to a recovered server).
  bool RegisterQuery(const std::string& name, const std::string& sql,
                     int shards = 0, ClientQueryInfo* info = nullptr,
                     std::string* error = nullptr);

  /// Ships a batch of (stream_id, tuple) arrivals. The server ingests
  /// through Engine::Ingest, so durability (WAL) applies when enabled.
  bool IngestBatch(const std::vector<std::pair<uint32_t, Tuple>>& batch,
                   std::string* error = nullptr);

  /// Advances the engine clock without an arrival.
  bool Advance(Time now, std::string* error = nullptr);

  /// Engine-wide barrier. On return every subscription mirror reflects
  /// the barrier-time view (watermarks arrive before the ack).
  bool Flush(std::string* error = nullptr);

  /// Server-side barrier + full answer-set snapshot of `query`.
  bool Snapshot(const std::string& query, std::vector<Tuple>* out,
                Time* at = nullptr, std::string* error = nullptr);

  /// Subscribes to `query`. The returned mirror is owned by this Client
  /// (valid until Unsubscribe/Close) and starts synchronized to the
  /// subscribe-time snapshot.
  SubscriptionMirror* Subscribe(const std::string& query,
                                std::string* error = nullptr);
  bool Unsubscribe(SubscriptionMirror* sub, std::string* error = nullptr);

  bool Ping(std::string* error = nullptr);

  /// Executes one text-SQL session statement (see src/sql/session/
  /// statement.h for the dialect; requires a --sql server). Returns
  /// false only on transport errors; statement-level failures come back
  /// in `out->error` (with byte offset and caret context) with SqlExec
  /// returning true. A successful SUBSCRIBE statement attaches a
  /// SubscriptionMirror (returned via `out->mirror`, owned by this
  /// Client); UNSUBSCRIBE and UNREGISTER mark affected mirrors dropped
  /// via the server's kSubDropped pushes.
  bool SqlExec(const std::string& statement, SqlExecResult* out,
               std::string* error = nullptr);

  /// Drains subscription pushes the server sent on its own initiative
  /// (delta batches cut at kDeltaBatchMax, drop notices) without issuing
  /// a request. Returns false only on connection errors; waits up to
  /// `timeout_ms` for the first frame (0 = only what is already
  /// buffered/readable).
  bool PollEvents(int timeout_ms = 0, std::string* error = nullptr);

 private:
  /// Sends `req` (stamping a fresh req_id) and blocks for the matching
  /// response, dispatching req_id-0 pushes to mirrors. A kError response
  /// fills `*error` and returns false. On transport loss with reconnect
  /// enabled, reconnects (resuming the session) and retries: kSubscribe/
  /// kSqlExec retry under a fresh req_id (their pre-loss execution, if
  /// any, was torn down by the resume's orphan sweep), everything else
  /// retries under the same req_id so the server's response cache
  /// absorbs a request that already executed.
  bool Call(Message* req, Message* resp, std::string* error);
  bool SendAll(const std::string& bytes, std::string* error);
  /// Reads one frame. `timeout_ms` < 0 blocks indefinitely. Returns 1 on
  /// frame, 0 on timeout, -1 on error/EOF. The timeout is a deadline on
  /// the whole frame: partial reads and EINTR wake-ups consume it rather
  /// than rearming it.
  int ReadFrame(Message* out, int timeout_ms, std::string* error);
  void DispatchPush(const Message& m);

  /// Connect() pieces, reused by Reconnect(): raw socket + TCP_NODELAY,
  /// then the kHello exchange (records server_name_/token_).
  bool ConnectSocket(std::string* error);
  bool Handshake(std::string* error);
  /// Drops the socket and, per the policy, reconnects with backoff and
  /// resumes the session (newest token candidate first). Returns true
  /// once connected and handshaken -- even when every resume candidate
  /// was rejected, in which case the mirrors are marked dropped
  /// (stats().resume_lost) and the connection is fresh.
  bool Reconnect(std::string* error);
  /// One kResume exchange for `token`; fills `*accepted`. False only on
  /// transport loss.
  bool TryResume(uint64_t token, bool* accepted, std::string* error);
  void DropSocket();

  int fd_ = -1;
  uint64_t next_req_id_ = 1;
  std::string inbuf_;
  std::string server_name_;
  std::map<uint64_t, std::unique_ptr<SubscriptionMirror>> subs_;

  /// Connection parameters retained for reconnects.
  std::string host_;
  int port_ = 0;
  std::string client_name_;

  uint64_t token_ = 0;
  /// Tokens of previous incarnations that may still own subscriptions
  /// server-side, newest first (a reconnect interrupted mid-resume
  /// leaves more than one live candidate).
  std::vector<uint64_t> resume_candidates_;
  ReconnectPolicy reconnect_;
  ClientStats stats_;
  uint64_t jitter_state_ = 0;
  bool in_reconnect_ = false;
};

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_CLIENT_H_
