#include "net/session.h"

#include <unistd.h>

#include <utility>

namespace upa {
namespace net {

Session::Session(uint64_t id, int fd, Kind kind, SlowConsumerPolicy policy,
                 size_t send_cap_bytes, std::function<void()> wake_writer,
                 std::function<void()> wake_poll)
    : id_(id),
      fd_(fd),
      kind_(kind),
      policy_(policy),
      cap_bytes_(send_cap_bytes),
      wake_writer_(std::move(wake_writer)),
      wake_poll_(std::move(wake_poll)) {}

Session::~Session() {
  // The fd is closed only when the last reference (server map, in-flight
  // subscription callbacks, writer snapshot) drops, so no thread can race
  // a write against a recycled descriptor number.
  if (fd_ >= 0) ::close(fd_);
}

void Session::AddSub(uint64_t sub_id, UpdatePattern pattern) {
  std::lock_guard<std::mutex> lock(mu_);
  sub_state_[sub_id].pattern = pattern;
}

void Session::RemoveSub(uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(mu_);
  sub_state_.erase(sub_id);
}

void Session::OnSubEvent(uint64_t sub_id, const SubscriptionEvent& ev) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sub_state_.find(sub_id);
  if (it == sub_state_.end() || closed()) return;
  SubState& sub = it->second;
  switch (ev.kind) {
    case SubscriptionEvent::Kind::kDelta: {
      // Section 5.2 delivery contract: only STR subscriptions carry
      // signed tuples. For monotonic roots a negative cannot occur at
      // all; for WKS/WK roots a negative can only be the NT-mode
      // expiration signal, which the exp stamp plus the watermark
      // already imply -- forwarding it would just duplicate information
      // the pattern guarantees, so it is filtered here (and its absence
      // is pinned by tests).
      if (ev.delta.negative && sub.pattern != UpdatePattern::kStrict) return;
      sub.pending.push_back(ev.delta);
      if (sub.pending.size() >= kDeltaBatchMax) {
        // May release the lock under kBlock; the iterator is not reused.
        FlushPendingLocked(sub_id, &sub, &lock);
      }
      break;
    }
    case SubscriptionEvent::Kind::kWatermark: {
      if (!FlushPendingLocked(sub_id, &sub, &lock)) return;
      Message m;
      m.type = MsgType::kSubWatermark;
      m.sub_id = sub_id;
      m.time = ev.time;
      AppendLocked(EncodeFrame(m));
      break;
    }
    case SubscriptionEvent::Kind::kReset: {
      // The snapshot supersedes anything buffered.
      sub.pending.clear();
      Message m;
      m.type = MsgType::kSubReset;
      m.sub_id = sub_id;
      m.tuples = ev.snapshot;
      AppendLocked(EncodeFrame(m));
      break;
    }
  }
}

bool Session::FlushPendingLocked(uint64_t sub_id, SubState* sub,
                                 std::unique_lock<std::mutex>* lock) {
  if (sub->pending.empty()) return true;
  Message m;
  m.type = MsgType::kSubData;
  m.sub_id = sub_id;
  m.tuples = std::move(sub->pending);
  sub->pending.clear();
  const std::string frame = EncodeFrame(m);
  if (out_.size() + frame.size() > cap_bytes_) {
    if (policy_ == SlowConsumerPolicy::kBlock) {
      block_waits.fetch_add(1, std::memory_order_relaxed);
      wake_writer_();
      can_send_.wait(*lock, [this, &frame] {
        return closed() || out_.size() + frame.size() <= cap_bytes_;
      });
      if (closed()) return false;
    } else {
      // kDropSubscription: discard, notify, and hand the id to the poll
      // thread for the engine-side unsubscribe (it cannot happen here:
      // this runs inside the hub callback, under the hub lock).
      slow_drops.fetch_add(1, std::memory_order_relaxed);
      sub_state_.erase(sub_id);
      dropped_.push_back(sub_id);
      Message notice;
      notice.type = MsgType::kSubDropped;
      notice.sub_id = sub_id;
      AppendLocked(EncodeFrame(notice));
      wake_poll_();
      return false;
    }
  }
  AppendLocked(frame);
  return true;
}

void Session::AppendLocked(const std::string& bytes) {
  if (closed()) return;
  out_ += bytes;
  frames_out.fetch_add(1, std::memory_order_relaxed);
  wake_writer_();
}

void Session::FlushAllPendingLocked(std::unique_lock<std::mutex>* lock) {
  // FlushPendingLocked may erase the entry (kDropSubscription) or drop
  // the lock (kBlock), so iterate over a snapshot of the ids and re-find
  // each one.
  std::vector<uint64_t> ids;
  ids.reserve(sub_state_.size());
  for (const auto& [sub_id, sub] : sub_state_) {
    if (!sub.pending.empty()) ids.push_back(sub_id);
  }
  for (uint64_t sub_id : ids) {
    auto it = sub_state_.find(sub_id);
    if (it == sub_state_.end() || it->second.pending.empty()) continue;
    FlushPendingLocked(sub_id, &it->second, lock);
  }
}

void Session::QueueResponse(const Message& m) {
  std::unique_lock<std::mutex> lock(mu_);
  // A response must not overtake subscription data produced before it
  // (e.g. a FlushAck must follow the watermarks that barrier emitted).
  FlushAllPendingLocked(&lock);
  AppendLocked(EncodeFrame(m));
}

void Session::QueueBytes(std::string bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(bytes);
}

void Session::FlushPending() {
  std::unique_lock<std::mutex> lock(mu_);
  FlushAllPendingLocked(&lock);
}

std::vector<uint64_t> Session::TakeDropped() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(dropped_, {});
}

bool Session::HasOutput() {
  if (!residual.empty()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return !out_.empty();
}

bool Session::TakeOutput(std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.empty()) return false;
  out->append(out_);
  out_.clear();
  can_send_.notify_all();
  return true;
}

void Session::CloseAfterDrain() {
  close_after_drain_.store(true, std::memory_order_relaxed);
  wake_writer_();
}

void Session::MarkClosed() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_.store(true, std::memory_order_release);
  }
  can_send_.notify_all();
}

}  // namespace net
}  // namespace upa
