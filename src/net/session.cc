#include "net/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace upa {
namespace net {

Session::Session(uint64_t id, int fd, Kind kind, SlowConsumerPolicy policy,
                 size_t send_cap_bytes, size_t replay_ring_cap,
                 std::function<void()> wake_writer,
                 std::function<void()> wake_poll)
    : id_(id),
      fd_(fd),
      kind_(kind),
      policy_(policy),
      cap_bytes_(send_cap_bytes),
      ring_cap_bytes_(replay_ring_cap),
      wake_writer_(std::move(wake_writer)),
      wake_poll_(std::move(wake_poll)) {}

Session::~Session() {
  // The fd is closed only when the last reference (server map, in-flight
  // subscription callbacks, writer snapshot) drops, so no thread can race
  // a write against a recycled descriptor number.
  if (fd_ >= 0) ::close(fd_);
}

void Session::AddSub(uint64_t sub_id, UpdatePattern pattern) {
  std::lock_guard<std::mutex> lock(mu_);
  sub_state_[sub_id].pattern = pattern;
}

void Session::RemoveSub(uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sub_state_.find(sub_id);
  if (it == sub_state_.end()) return;
  ring_total_ -= it->second.ring_bytes;
  sub_state_.erase(it);
}

void Session::OnSubEvent(uint64_t sub_id, const SubscriptionEvent& ev) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sub_state_.find(sub_id);
  if (it == sub_state_.end() || closed()) return;
  SubState& sub = it->second;
  switch (ev.kind) {
    case SubscriptionEvent::Kind::kDelta: {
      // Section 5.2 delivery contract: only STR subscriptions carry
      // signed tuples. For monotonic roots a negative cannot occur at
      // all; for WKS/WK roots a negative can only be the NT-mode
      // expiration signal, which the exp stamp plus the watermark
      // already imply -- forwarding it would just duplicate information
      // the pattern guarantees, so it is filtered here (and its absence
      // is pinned by tests).
      if (ev.delta.negative && sub.pattern != UpdatePattern::kStrict) return;
      sub.pending.push_back(ev.delta);
      if (sub.pending.size() >= kDeltaBatchMax) {
        // May release the lock under kBlock; the iterator is not reused.
        FlushPendingLocked(sub_id, &sub, &lock);
      }
      break;
    }
    case SubscriptionEvent::Kind::kWatermark: {
      if (!FlushPendingLocked(sub_id, &sub, &lock)) return;
      // FlushPendingLocked may have released the lock (kBlock); the
      // entry can only have been erased by a concurrent drop, in which
      // case the iterator is gone.
      auto again = sub_state_.find(sub_id);
      if (again == sub_state_.end()) return;
      Message m;
      m.type = MsgType::kSubWatermark;
      m.sub_id = sub_id;
      m.time = ev.time;
      std::string frame;
      StampAndRingLocked(&again->second, &m, /*is_reset=*/false, &frame);
      AppendLocked(frame);
      break;
    }
    case SubscriptionEvent::Kind::kReset:
      ResetSubLocked(&sub, sub_id, ev.snapshot);
      break;
  }
}

void Session::ResetSubLocked(SubState* sub, uint64_t sub_id,
                             std::vector<Tuple> snapshot) {
  // The snapshot supersedes anything buffered or ringed: the pending
  // batch is dropped and the ring collapses to just the reset frame,
  // from which any older ack can catch up (not an overrun).
  sub->pending.clear();
  ring_total_ -= sub->ring_bytes;
  sub->ring.clear();
  sub->ring_bytes = 0;
  Message m;
  m.type = MsgType::kSubReset;
  m.sub_id = sub_id;
  m.tuples = std::move(snapshot);
  std::string frame;
  StampAndRingLocked(sub, &m, /*is_reset=*/true, &frame);
  AppendLocked(frame);
}

void Session::StampAndRingLocked(SubState* sub, Message* m, bool is_reset,
                                 std::string* encoded) {
  m->seq = sub->next_seq++;
  *encoded = EncodeFrame(*m);
  if (ring_cap_bytes_ == 0) {
    sub->evicted_to = m->seq;
    return;
  }
  sub->ring.push_back(ReplayFrame{m->seq, is_reset, *encoded});
  sub->ring_bytes += encoded->size();
  ring_total_ += encoded->size();
  EvictRingsLocked();
}

void Session::EvictRingsLocked() {
  while (ring_total_ > ring_cap_bytes_) {
    SubState* fattest = nullptr;
    for (auto& [sub_id, sub] : sub_state_) {
      if (sub.ring.empty()) continue;
      if (fattest == nullptr || sub.ring_bytes > fattest->ring_bytes) {
        fattest = &sub;
      }
    }
    if (fattest == nullptr) break;
    ReplayFrame& front = fattest->ring.front();
    fattest->evicted_to = front.seq;
    fattest->ring_bytes -= front.bytes.size();
    ring_total_ -= front.bytes.size();
    fattest->ring.pop_front();
    ring_overruns.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Session::FlushPendingLocked(uint64_t sub_id, SubState* sub,
                                 std::unique_lock<std::mutex>* lock) {
  if (sub->pending.empty()) return true;
  Message m;
  m.type = MsgType::kSubData;
  m.sub_id = sub_id;
  m.tuples = std::move(sub->pending);
  sub->pending.clear();
  std::string frame;
  StampAndRingLocked(sub, &m, /*is_reset=*/false, &frame);
  // A detached session has no live socket: the frame lives in the ring
  // for replay and the send cap does not apply.
  if (detached()) return true;
  if (out_.size() + frame.size() > cap_bytes_) {
    if (policy_ == SlowConsumerPolicy::kBlock) {
      block_waits.fetch_add(1, std::memory_order_relaxed);
      wake_writer_();
      can_send_.wait(*lock, [this, &frame] {
        return closed() || detached() ||
               out_.size() + frame.size() <= cap_bytes_;
      });
      if (closed()) return false;
      if (detached()) return true;  // Ringed above; nothing to send.
    } else {
      // kDropSubscription: discard, notify, and hand the id to the poll
      // thread for the engine-side unsubscribe (it cannot happen here:
      // this runs inside the hub callback, under the channel lock).
      slow_drops.fetch_add(1, std::memory_order_relaxed);
      ring_total_ -= sub->ring_bytes;
      sub_state_.erase(sub_id);
      dropped_.push_back(sub_id);
      Message notice;
      notice.type = MsgType::kSubDropped;
      notice.sub_id = sub_id;
      AppendLocked(EncodeFrame(notice));
      wake_poll_();
      return false;
    }
  }
  AppendLocked(frame);
  return true;
}

void Session::AppendLocked(const std::string& bytes) {
  if (closed() || detached()) return;
  out_ += bytes;
  frames_out.fetch_add(1, std::memory_order_relaxed);
  wake_writer_();
}

void Session::FlushAllPendingLocked(std::unique_lock<std::mutex>* lock) {
  // FlushPendingLocked may erase the entry (kDropSubscription) or drop
  // the lock (kBlock), so iterate over a snapshot of the ids and re-find
  // each one.
  std::vector<uint64_t> ids;
  ids.reserve(sub_state_.size());
  for (const auto& [sub_id, sub] : sub_state_) {
    if (!sub.pending.empty()) ids.push_back(sub_id);
  }
  for (uint64_t sub_id : ids) {
    auto it = sub_state_.find(sub_id);
    if (it == sub_state_.end() || it->second.pending.empty()) continue;
    FlushPendingLocked(sub_id, &it->second, lock);
  }
}

void Session::QueueResponse(const Message& m) {
  std::unique_lock<std::mutex> lock(mu_);
  // A response must not overtake subscription data produced before it
  // (e.g. a FlushAck must follow the watermarks that barrier emitted).
  FlushAllPendingLocked(&lock);
  const std::string frame = EncodeFrame(m);
  if (m.req_id != 0 && m.type != MsgType::kHelloAck &&
      m.type != MsgType::kResumeAck) {
    // One-deep response cache: after a resume, a client retrying its
    // last un-acked request (same req_id) gets this frame replayed
    // instead of re-executing a possibly non-idempotent request.
    // Handshake and resume acks are excluded, mirroring the lookup-side
    // skip: they are sent on the new connection *between* the original
    // request and its retry, and caching them would clobber the adopted
    // response the retry is about to ask for (turning e.g. a retried
    // kIngestBatch into a double ingest).
    last_req_id_ = m.req_id;
    last_resp_frame_ = frame;
  }
  AppendLocked(frame);
}

void Session::QueueBytes(std::string bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(bytes);
}

void Session::FlushPending() {
  std::unique_lock<std::mutex> lock(mu_);
  FlushAllPendingLocked(&lock);
}

std::vector<uint64_t> Session::TakeDropped() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::exchange(dropped_, {});
}

void Session::Detach() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    detached_.store(true, std::memory_order_release);
    // The socket is dead: whatever was queued but unsent is recoverable
    // from the replay rings, so drop it rather than leak it.
    out_.clear();
  }
  // A heartbeat-initiated detach abandons a socket that may still be
  // open; shut it down (the fd itself stays with the session until the
  // destructor) so a merely-slow peer sees the connection die and takes
  // its reconnect path instead of waiting forever.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  can_send_.notify_all();
}

void Session::AdoptFrom(Session& old) {
  std::scoped_lock lock(old.mu_, mu_);
  sub_state_ = std::move(old.sub_state_);
  old.sub_state_.clear();
  ring_total_ = old.ring_total_;
  old.ring_total_ = 0;
  dropped_ = std::move(old.dropped_);
  old.dropped_.clear();
  last_req_id_ = old.last_req_id_;
  last_resp_frame_ = std::move(old.last_resp_frame_);
  old.last_req_id_ = 0;
  old.last_resp_frame_.clear();
}

bool Session::CanReplay(uint64_t sub_id, uint64_t last_acked) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sub_state_.find(sub_id);
  if (it == sub_state_.end()) return false;
  const SubState& sub = it->second;
  if (last_acked >= sub.next_seq) return false;       // Bogus claim.
  if (last_acked + 1 == sub.next_seq) return true;    // Fully caught up.
  // A ring that starts with a reset supersedes everything older, so it
  // can serve any stale ack.
  if (!sub.ring.empty() && sub.ring.front().is_reset) return true;
  return last_acked >= sub.evicted_to;
}

void Session::ReplayFrom(uint64_t sub_id, uint64_t last_acked) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sub_state_.find(sub_id);
  if (it == sub_state_.end()) return;
  for (const ReplayFrame& f : it->second.ring) {
    if (f.seq <= last_acked) continue;
    AppendLocked(f.bytes);
  }
}

void Session::PushReset(uint64_t sub_id, std::vector<Tuple> snapshot) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = sub_state_.find(sub_id);
  if (it == sub_state_.end()) return;
  ResetSubLocked(&it->second, sub_id, std::move(snapshot));
}

bool Session::CachedResponse(uint64_t req_id, std::string* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (req_id == 0 || req_id != last_req_id_) return false;
  *frame = last_resp_frame_;
  return true;
}

size_t Session::ring_bytes() {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_total_;
}

bool Session::HasOutput() {
  if (!residual.empty()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  return !out_.empty();
}

bool Session::TakeOutput(std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.empty()) return false;
  out->append(out_);
  out_.clear();
  can_send_.notify_all();
  return true;
}

void Session::CloseAfterDrain() {
  close_after_drain_.store(true, std::memory_order_relaxed);
  wake_writer_();
}

void Session::MarkClosed() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_.store(true, std::memory_order_release);
  }
  can_send_.notify_all();
}

}  // namespace net
}  // namespace upa
