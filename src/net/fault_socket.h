#ifndef UPA_NET_FAULT_SOCKET_H_
#define UPA_NET_FAULT_SOCKET_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault.h"

namespace upa {
namespace net {

struct FaultProxyOptions {
  /// Where forwarded connections go (the real server).
  std::string target_host = "127.0.0.1";
  int target_port = 0;
  /// Seeds the chunking RNG (how reads are split/coalesced before
  /// forwarding). A (seed, schedule) pair reproduces a run byte-exactly.
  uint64_t seed = 1;
  /// Scheduled network faults (kNetRst / kNetDelay), consulted once per
  /// forwarded chunk. May be null: the proxy then only re-segments.
  FaultInjector* injector = nullptr;
  /// Upper bound on one forwarded chunk. Below the loopback MSS so
  /// frame splits genuinely cross read() boundaries at the receiver.
  size_t max_chunk_bytes = 1536;
};

/// Deterministic network fault layer for the chaos tests: a loopback TCP
/// proxy that forwards bytes between clients and the engine server while
/// re-segmenting the stream (partial writes, split and coalesced frames)
/// with a seeded RNG, and injecting the scheduled faults -- connection
/// resets (real RSTs via SO_LINGER abort) and forwarding stalls -- at
/// deterministic byte offsets via FaultInjector::OnNetBytes.
///
/// Single poll thread owns every connection; a stall therefore delays
/// all traffic through the proxy, which is the congestion model the
/// tests want. Reconnecting clients get fresh proxied connections, so a
/// Client pointed at port() exercises its full reconnect-with-resume
/// path under fire without the server noticing anything but socket
/// errors.
class FaultProxy {
 public:
  explicit FaultProxy(FaultProxyOptions options);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Binds an ephemeral loopback port and starts the forwarding thread.
  bool Start(std::string* error = nullptr);
  /// Aborts every connection and joins the thread. Idempotent.
  void Stop();

  /// Port clients should connect to (after Start).
  int port() const { return port_; }

  uint64_t connections() const { return connections_.load(); }
  uint64_t rsts_injected() const { return rsts_injected_.load(); }
  uint64_t bytes_forwarded() const { return bytes_forwarded_.load(); }

 private:
  struct Conn {
    int client_fd = -1;
    int server_fd = -1;
  };

  void Run();
  /// Forwards readable bytes one rng-sized chunk at a time, consulting
  /// the injector per chunk. Returns false when the connection must die
  /// (peer EOF, error, or an injected RST).
  bool Pump(Conn* c, int dir);
  void Abort(Conn* c, bool rst);

  const FaultProxyOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::vector<Conn> conns_;
  uint64_t rng_state_ = 0;

  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> rsts_injected_{0};
  std::atomic<uint64_t> bytes_forwarded_{0};
};

}  // namespace net
}  // namespace upa

#endif  // UPA_NET_FAULT_SOCKET_H_
