#include "net/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"

namespace upa {
namespace net {
namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Drains a self-pipe (reads and discards whatever is buffered).
void DrainPipe(int fd) {
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
}

void Poke(int fd) {
  const char b = 1;
  // The pipe is non-blocking; a full pipe already guarantees a wakeup.
  (void)!::write(fd, &b, 1);
}

Message MakeError(uint64_t req_id, std::string text) {
  Message m;
  m.type = MsgType::kError;
  m.req_id = req_id;
  m.text = std::move(text);
  return m;
}

/// Bridges the window between Engine::Subscribe returning and the
/// session learning the subscription id: the engine assigns the id
/// inside Subscribe, but deltas may start flowing the instant it
/// returns -- before the caller can register the id with the session.
/// Events arriving before the channel is armed are buffered, then
/// replayed in order (the hub serializes emissions, so ordering is
/// preserved end to end). Shared by kSubscribe and the SQL SUBSCRIBE
/// statement.
struct SubChannel {
  std::mutex mu;
  bool armed = false;
  uint64_t sub_id = 0;
  std::shared_ptr<Session> session;
  std::vector<SubscriptionEvent> backlog;
};

/// Engine-side subscribe + session-side registration. Returns null when
/// the query is unknown; otherwise the channel is attached but NOT yet
/// armed -- the caller queues its response frame first (so the client
/// sees the subscription exist before its first delta), then calls
/// ArmSubChannel.
std::shared_ptr<SubChannel> AttachSubscription(
    Engine* engine, const std::shared_ptr<Session>& s,
    const std::string& query, SubscriptionInfo* info) {
  auto ch = std::make_shared<SubChannel>();
  ch->session = s;
  const bool ok = engine->Subscribe(
      query,
      [ch](const SubscriptionEvent& ev) {
        std::unique_lock<std::mutex> lock(ch->mu);
        if (!ch->armed) {
          ch->backlog.push_back(ev);
          return;
        }
        const uint64_t id = ch->sub_id;
        lock.unlock();
        ch->session->OnSubEvent(id, ev);
      },
      info);
  if (!ok) return nullptr;
  s->AddSub(info->id, info->pattern);
  s->engine_subs[info->id] = query;
  return ch;
}

void ArmSubChannel(const std::shared_ptr<SubChannel>& ch,
                   const std::shared_ptr<Session>& s, uint64_t sub_id) {
  std::lock_guard<std::mutex> lock(ch->mu);
  ch->armed = true;
  ch->sub_id = sub_id;
  for (const SubscriptionEvent& ev : ch->backlog) {
    s->OnSubEvent(sub_id, ev);
  }
  ch->backlog.clear();
}

}  // namespace

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)), sql_(engine) {
  UPA_CHECK(engine_ != nullptr);
}

Server::~Server() { Stop(); }

int Server::OpenListener(int port, std::string* error, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, options_.bind.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad bind address: " + options_.bind;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    if (error != nullptr) {
      *error = "bind/listen " + options_.bind + ":" + std::to_string(port) +
               ": " + strerror(errno);
    }
    ::close(fd);
    return -1;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  SetNonBlocking(fd);
  return fd;
}

bool Server::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) return true;
  if (options_.port < 0 && options_.metrics_port < 0) {
    if (error != nullptr) *error = "both listeners disabled";
    return false;
  }
  if (::pipe(poll_pipe_) != 0 || ::pipe(writer_pipe_) != 0) {
    if (error != nullptr) *error = "pipe: " + std::string(strerror(errno));
    return false;
  }
  for (int fd : {poll_pipe_[0], poll_pipe_[1], writer_pipe_[0],
                 writer_pipe_[1]}) {
    SetNonBlocking(fd);
  }
  if (options_.port >= 0) {
    listen_fd_ = OpenListener(options_.port, error, &port_);
    if (listen_fd_ < 0) return false;
  }
  if (options_.metrics_port >= 0) {
    metrics_fd_ = OpenListener(options_.metrics_port, error, &metrics_port_);
    if (metrics_fd_ < 0) {
      if (listen_fd_ >= 0) ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  }
  stopping_.store(false, std::memory_order_release);
  poll_exited_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  poll_thread_ = std::thread([this] { PollLoop(); });
  writer_thread_ = std::thread([this] { WriterLoop(); });
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Release any engine thread blocked on a session's send cap before
  // joining: a poll thread stuck in an engine barrier can only return
  // once the blocked emitters are freed.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, s] : sessions_) s->MarkClosed();
  }
  WakePoll();
  WakeWriter();
  if (poll_thread_.joinable()) poll_thread_.join();
  if (writer_thread_.joinable()) writer_thread_.join();
  // The threads are gone; tear the sessions down on this thread.
  std::map<uint64_t, std::shared_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (auto& [id, s] : sessions) {
    s->MarkClosed();
    for (const auto& [sub_id, query] : s->engine_subs) {
      engine_->Unsubscribe(query, sub_id);
    }
    s->engine_subs.clear();
    closed_frames_in_.fetch_add(s->frames_in.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    closed_frames_out_.fetch_add(
        s->frames_out.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    closed_bytes_in_.fetch_add(s->bytes_in.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    closed_bytes_out_.fetch_add(s->bytes_out.load(std::memory_order_relaxed),
                                std::memory_order_relaxed);
    closed_slow_drops_.fetch_add(
        s->slow_drops.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  for (int* fd : {&listen_fd_, &metrics_fd_, &poll_pipe_[0], &poll_pipe_[1],
                  &writer_pipe_[0], &writer_pipe_[1]}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

void Server::WakePoll() { Poke(poll_pipe_[1]); }
void Server::WakeWriter() { Poke(writer_pipe_[1]); }

void Server::AcceptPending(int listen_fd, Session::Kind kind) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or error: nothing more to accept.
    size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = sessions_.size();
    }
    if (active >= static_cast<size_t>(options_.max_sessions)) {
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>(
        next_session_id_++, fd, kind, options_.slow_consumer,
        options_.send_cap_bytes, [this] { WakeWriter(); },
        [this] { WakePoll(); });
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[session->id()] = session;
  }
}

bool Server::ReadSession(const std::shared_ptr<Session>& s) {
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(s->fd(), buf, sizeof(buf));
    if (n > 0) {
      s->in.append(buf, static_cast<size_t>(n));
      s->bytes_in.fetch_add(static_cast<uint64_t>(n),
                            std::memory_order_relaxed);
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  return s->kind() == Session::Kind::kBinary ? HandleBinaryInput(s)
                                             : HandleHttpInput(s);
}

bool Server::HandleBinaryInput(const std::shared_ptr<Session>& s) {
  size_t off = 0;
  bool ok = true;
  while (ok) {
    Message m;
    size_t consumed = 0;
    const DecodeStatus status =
        DecodeFrame(s->in.data() + off, s->in.size() - off, &m, &consumed);
    if (status == DecodeStatus::kNeedMore) break;
    if (status != DecodeStatus::kOk) {
      // Framing is byte-positional: a corrupt frame means the stream can
      // never be resynchronized. Tell the client why, then drain-close.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      s->QueueResponse(MakeError(0, status == DecodeStatus::kTooLarge
                                        ? "frame exceeds size limit"
                                        : "corrupt frame"));
      s->CloseAfterDrain();
      ok = false;
      break;
    }
    off += consumed;
    s->frames_in.fetch_add(1, std::memory_order_relaxed);
    ok = HandleRequest(s, std::move(m));
  }
  if (off > 0) s->in.erase(0, off);
  return ok;
}

bool Server::HandleHttpInput(const std::shared_ptr<Session>& s) {
  // Answer once the header block is complete (or clearly hostile).
  if (s->in.find("\r\n\r\n") == std::string::npos && s->in.size() < 8192 &&
      !s->in.empty()) {
    // Also answer bare "GET /metrics\n"-style probes once a newline is
    // seen: HandleMetricsRequest only needs the request line.
    if (s->in.find('\n') == std::string::npos) return true;
  }
  if (s->in.empty()) return true;
  const std::string response = HandleMetricsRequest(
      s->in, options_.metrics_render ? options_.metrics_render
                                     : metrics_render_);
  s->QueueBytes(response);
  s->CloseAfterDrain();
  s->in.clear();
  return true;
}

bool Server::HandleRequest(const std::shared_ptr<Session>& s, Message&& m) {
  if (!s->handshaken && m.type != MsgType::kHello) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    s->QueueResponse(MakeError(m.req_id, "handshake required"));
    s->CloseAfterDrain();
    return false;
  }
  switch (m.type) {
    case MsgType::kHello: {
      // Every version up to ours is accepted (v1 clients simply cannot
      // use the v2-gated kSqlExec); newer versions are rejected.
      if (m.version < 1 || m.version > kProtocolVersion) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        s->QueueResponse(MakeError(
            m.req_id, "unsupported protocol version " +
                          std::to_string(m.version) + " (server speaks " +
                          std::to_string(kProtocolVersion) + ")"));
        s->CloseAfterDrain();
        return false;
      }
      s->handshaken = true;
      s->version = m.version;
      Message ack;
      ack.type = MsgType::kHelloAck;
      ack.req_id = m.req_id;
      ack.version = m.version;  // Echo the negotiated (client's) version.
      ack.name = options_.server_name;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kDeclareStream:
    case MsgType::kDeclareRelation: {
      const bool is_stream = m.type == MsgType::kDeclareStream;
      const SourceDecl* existing = engine_->catalog()->Find(m.name);
      int64_t id = -1;
      if (existing != nullptr) {
        // Idempotent re-declaration (a client reconnecting to a durable
        // server finds its sources restored): same shape => same id.
        const SourceKind want =
            is_stream ? SourceKind::kStream
                      : (m.flag ? SourceKind::kRelation : SourceKind::kNrr);
        if (existing->kind == want && existing->schema == m.schema) {
          id = existing->stream_id;
        } else {
          s->QueueResponse(MakeError(
              m.req_id, "source '" + m.name +
                            "' already declared with a different shape"));
          return true;
        }
      } else {
        id = is_stream
                 ? engine_->DeclareStream(m.name, m.schema)
                 : engine_->DeclareRelation(m.name, m.schema, m.flag);
      }
      if (id < 0) {
        s->QueueResponse(MakeError(m.req_id, "declaration failed"));
        return true;
      }
      Message ack;
      ack.type = MsgType::kDeclareAck;
      ack.req_id = m.req_id;
      ack.id = id;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kRegisterQuery: {
      Message ack;
      ack.type = MsgType::kRegisterAck;
      ack.req_id = m.req_id;
      if (const RegisteredQuery* q = engine_->FindQuery(m.name)) {
        // Idempotent re-registration against a recovered server.
        if (q->sql() != m.text) {
          s->QueueResponse(MakeError(
              m.req_id, "query '" + m.name +
                            "' already registered with different SQL"));
          return true;
        }
        ack.name = m.name;
        ack.shards = static_cast<uint32_t>(q->num_shards());
        ack.flag = q->scheme().partitionable;
        ack.text = q->scheme().ToString();
        ack.pattern = static_cast<uint8_t>(q->plan().pattern);
        s->QueueResponse(ack);
        return true;
      }
      QueryOptions qopts;
      qopts.shards = static_cast<int>(m.shards);
      const RegisterResult r = engine_->RegisterSql(m.name, m.text, qopts);
      if (!r.ok) {
        s->QueueResponse(MakeError(m.req_id, r.error));
        return true;
      }
      const RegisteredQuery* q = engine_->FindQuery(m.name);
      ack.name = r.name;
      ack.shards = static_cast<uint32_t>(r.shards);
      ack.flag = r.partitioned;
      ack.text = r.partition_note;
      ack.pattern =
          q != nullptr ? static_cast<uint8_t>(q->plan().pattern) : 0;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kIngestBatch: {
      // Server-side ingest goes through Engine::Ingest, so it is WAL-
      // logged before routing when durability is on -- a networked
      // producer gets the same crash guarantees as an in-process one.
      for (const auto& [stream, tuple] : m.batch) {
        engine_->Ingest(static_cast<int>(stream), tuple);
      }
      Message ack;
      ack.type = MsgType::kIngestAck;
      ack.req_id = m.req_id;
      ack.id = static_cast<int64_t>(m.batch.size());
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kAdvance: {
      engine_->AdvanceTo(m.time);
      Message ack;
      ack.type = MsgType::kAdvanceAck;
      ack.req_id = m.req_id;
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kFlush: {
      Message ack;
      ack.type = MsgType::kFlushAck;
      ack.req_id = m.req_id;
      // Watermarks (and any post-recovery resets) are published to the
      // session buffers inside Flush, before this ack is queued, so the
      // client observes them first.
      ack.flag = engine_->Flush();
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kSnapshotReq: {
      Message resp;
      resp.type = MsgType::kSnapshotResp;
      resp.req_id = m.req_id;
      resp.flag = engine_->Snapshot(m.name, &resp.tuples);
      resp.time = engine_->clock();
      s->QueueResponse(resp);
      return true;
    }
    case MsgType::kSubscribe:
      HandleSubscribe(s, m);
      return true;
    case MsgType::kUnsubscribe: {
      Message ack;
      ack.type = MsgType::kUnsubscribeAck;
      ack.req_id = m.req_id;
      ack.flag = engine_->Unsubscribe(m.name, m.sub_id);
      s->RemoveSub(m.sub_id);
      s->engine_subs.erase(m.sub_id);
      s->QueueResponse(ack);
      return true;
    }
    case MsgType::kSqlExec: {
      if (!options_.enable_sql) {
        s->QueueResponse(MakeError(
            m.req_id, "SQL sessions are disabled on this server"));
        return true;
      }
      if (s->version < 2) {
        s->QueueResponse(MakeError(
            m.req_id, "kSqlExec requires protocol version 2 (session "
                      "negotiated version " +
                          std::to_string(s->version) + ")"));
        return true;
      }
      HandleSqlExec(s, m);
      return true;
    }
    case MsgType::kPing: {
      Message pong;
      pong.type = MsgType::kPong;
      pong.req_id = m.req_id;
      s->QueueResponse(pong);
      return true;
    }
    default: {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      s->QueueResponse(MakeError(
          m.req_id, std::string("unexpected message type ") +
                        MsgTypeName(m.type)));
      s->CloseAfterDrain();
      return false;
    }
  }
}

void Server::HandleSubscribe(const std::shared_ptr<Session>& s,
                             const Message& m) {
  SubscriptionInfo info;
  auto ch = AttachSubscription(engine_, s, m.name, &info);
  if (ch == nullptr) {
    s->QueueResponse(MakeError(m.req_id, "unknown query '" + m.name + "'"));
    return;
  }
  // Ack (with the starting snapshot) before draining the backlog, so the
  // client sees the subscription exist before its first delta.
  Message ack;
  ack.type = MsgType::kSubscribeAck;
  ack.req_id = m.req_id;
  ack.flag = true;
  ack.sub_id = info.id;
  ack.pattern = static_cast<uint8_t>(info.pattern);
  ack.view_kind = static_cast<uint8_t>(info.view_kind);
  ack.time = engine_->clock();
  ack.tuples = std::move(info.snapshot);
  s->QueueResponse(ack);
  ArmSubChannel(ch, s, info.id);
}

void Server::SweepQuerySubs(const std::string& query) {
  std::vector<std::shared_ptr<Session>> all;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    all.reserve(sessions_.size());
    for (auto& [id, sess] : sessions_) all.push_back(sess);
  }
  for (auto& sess : all) {
    if (sess->kind() != Session::Kind::kBinary) continue;
    for (auto it = sess->engine_subs.begin();
         it != sess->engine_subs.end();) {
      if (it->second != query) {
        ++it;
        continue;
      }
      const uint64_t sub_id = it->first;
      sess->RemoveSub(sub_id);
      it = sess->engine_subs.erase(it);
      Message drop;
      drop.type = MsgType::kSubDropped;
      drop.req_id = 0;
      drop.sub_id = sub_id;
      sess->QueueResponse(drop);
    }
  }
}

void Server::HandleSqlExec(const std::shared_ptr<Session>& s,
                           const Message& m) {
  Message resp;
  resp.type = MsgType::kSqlResult;
  resp.req_id = m.req_id;
  resp.id = -1;

  sqlsession::SqlResult r = sql_.Execute(m.text);
  if (!r.ok) {
    resp.flag = false;
    resp.text = std::move(r.error);
    resp.name = std::move(r.context);
    if (r.error_offset != ParseResult::kNoOffset) {
      resp.id = static_cast<int64_t>(r.error_offset);
    }
    s->QueueResponse(resp);
    return;
  }

  switch (r.action) {
    case sqlsession::SqlResult::Action::kSubscribe: {
      SubscriptionInfo info;
      auto ch = AttachSubscription(engine_, s, r.action_query, &info);
      if (ch == nullptr) {
        // The query disappeared between the session's check and the
        // attach (another session unregistered it).
        resp.flag = false;
        resp.text = "no query named '" + r.action_query + "' is registered";
        s->QueueResponse(resp);
        return;
      }
      resp.flag = true;
      resp.text = std::move(r.text);
      resp.name = r.action_query;  // Query name (clients key mirrors on it).
      resp.sub_id = info.id;
      resp.pattern = static_cast<uint8_t>(info.pattern);
      resp.view_kind = static_cast<uint8_t>(info.view_kind);
      resp.time = engine_->clock();
      resp.tuples = std::move(info.snapshot);
      s->QueueResponse(resp);
      ArmSubChannel(ch, s, info.id);
      return;
    }
    case sqlsession::SqlResult::Action::kUnsubscribe: {
      // Detach every subscription this session holds on the query.
      int removed = 0;
      for (auto it = s->engine_subs.begin(); it != s->engine_subs.end();) {
        if (it->second != r.action_query) {
          ++it;
          continue;
        }
        engine_->Unsubscribe(it->second, it->first);
        s->RemoveSub(it->first);
        // Uniform drop signal so client-side mirrors notice without
        // tracking which statement removed them.
        Message drop;
        drop.type = MsgType::kSubDropped;
        drop.req_id = 0;
        drop.sub_id = it->first;
        s->QueueResponse(drop);
        it = s->engine_subs.erase(it);
        ++removed;
      }
      if (removed == 0) {
        resp.flag = false;
        resp.text = "no subscription to '" + r.action_query +
                    "' on this session";
        s->QueueResponse(resp);
        return;
      }
      resp.flag = true;
      resp.text = std::move(r.text);
      s->QueueResponse(resp);
      return;
    }
    case sqlsession::SqlResult::Action::kUnregistered:
      // Engine-side teardown is done (shards joined, hub destroyed);
      // notify and forget every session's subs on the dropped query.
      SweepQuerySubs(r.action_query);
      break;
    case sqlsession::SqlResult::Action::kNone:
      break;
  }
  resp.flag = true;
  resp.text = std::move(r.text);
  s->QueueResponse(resp);
}

void Server::ReapDropped(const std::shared_ptr<Session>& s) {
  for (uint64_t sub_id : s->TakeDropped()) {
    auto it = s->engine_subs.find(sub_id);
    if (it == s->engine_subs.end()) continue;
    engine_->Unsubscribe(it->second, sub_id);
    s->engine_subs.erase(it);
  }
}

void Server::CloseSession(const std::shared_ptr<Session>& s) {
  s->MarkClosed();
  for (const auto& [sub_id, query] : s->engine_subs) {
    engine_->Unsubscribe(query, sub_id);
  }
  s->engine_subs.clear();
  closed_frames_in_.fetch_add(s->frames_in.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  closed_frames_out_.fetch_add(s->frames_out.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  closed_bytes_in_.fetch_add(s->bytes_in.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  closed_bytes_out_.fetch_add(s->bytes_out.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  closed_slow_drops_.fetch_add(s->slow_drops.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(s->id());
}

void Server::PollLoop() {
  metrics_render_ = [this] {
    return engine_->Metrics().ToPrometheus() +
           obs::MetricsRegistry::Global().RenderPrometheus();
  };
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> polled;
  while (!stopping_.load(std::memory_order_acquire)) {
    fds.clear();
    polled.clear();
    fds.push_back({poll_pipe_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    if (metrics_fd_ >= 0) fds.push_back({metrics_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, s] : sessions_) {
        if (s->closed() || s->close_after_drain()) continue;
        polled.push_back(s);
        fds.push_back({s->fd(), POLLIN, 0});
      }
    }
    const int n = ::poll(fds.data(), fds.size(), 100);
    if (stopping_.load(std::memory_order_acquire)) break;
    size_t idx = 0;
    if (fds[idx].revents & POLLIN) DrainPipe(poll_pipe_[0]);
    ++idx;
    if (listen_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) {
        AcceptPending(listen_fd_, Session::Kind::kBinary);
      }
      ++idx;
    }
    if (metrics_fd_ >= 0) {
      if (fds[idx].revents & POLLIN) {
        AcceptPending(metrics_fd_, Session::Kind::kHttp);
      }
      ++idx;
    }
    if (n > 0) {
      for (size_t i = 0; i < polled.size(); ++i) {
        const short re = fds[idx + i].revents;
        if (re == 0) continue;
        if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) {
          if (!ReadSession(polled[i])) {
            if (!polled[i]->close_after_drain()) CloseSession(polled[i]);
          }
        }
      }
    }
    // Housekeeping: flush idle delta batches, unsubscribe slow-consumer
    // drops, reap dead sessions, refresh exported metrics.
    std::vector<std::shared_ptr<Session>> all;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      all.reserve(sessions_.size());
      for (auto& [id, s] : sessions_) all.push_back(s);
    }
    for (auto& s : all) {
      if (s->kind() == Session::Kind::kBinary) {
        s->FlushPending();
        ReapDropped(s);
      }
      if (s->closed()) CloseSession(s);
    }
    ExportMetrics();
  }
  poll_exited_.store(true, std::memory_order_release);
  WakeWriter();
}

void Server::WriterLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> writable;
  while (!(stopping_.load(std::memory_order_acquire) &&
           poll_exited_.load(std::memory_order_acquire))) {
    fds.clear();
    writable.clear();
    fds.push_back({writer_pipe_[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (auto& [id, s] : sessions_) {
        if (s->closed()) continue;
        if (s->HasOutput() || s->close_after_drain()) {
          writable.push_back(s);
          fds.push_back({s->fd(), POLLOUT, 0});
        }
      }
    }
    ::poll(fds.data(), fds.size(), 50);
    if (fds[0].revents & POLLIN) DrainPipe(writer_pipe_[0]);
    for (size_t i = 0; i < writable.size(); ++i) {
      const std::shared_ptr<Session>& s = writable[i];
      if (s->closed()) continue;
      if ((fds[1 + i].revents & (POLLERR | POLLHUP)) != 0) {
        s->MarkClosed();
        WakePoll();
        continue;
      }
      if ((fds[1 + i].revents & POLLOUT) == 0 && s->HasOutput()) continue;
      if (s->residual.empty()) s->TakeOutput(&s->residual);
      while (!s->residual.empty()) {
        const ssize_t n =
            ::send(s->fd(), s->residual.data(), s->residual.size(),
                   MSG_NOSIGNAL);
        if (n > 0) {
          s->bytes_out.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
          s->residual.erase(0, static_cast<size_t>(n));
          // Refill from the buffer so a blocked emitter is released as
          // soon as its bytes are in flight.
          if (s->residual.empty()) s->TakeOutput(&s->residual);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        s->MarkClosed();
        WakePoll();
        break;
      }
      if (s->residual.empty() && !s->HasOutput() && s->close_after_drain()) {
        s->MarkClosed();
        WakePoll();
      }
    }
  }
}

void Server::ExportMetrics() {
  const ServerStats now = Stats();
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("upa_net_sessions_total")
      .Add(now.sessions_opened - exported_.sessions_opened);
  reg.GetCounter("upa_net_frames_in_total")
      .Add(now.frames_in - exported_.frames_in);
  reg.GetCounter("upa_net_frames_out_total")
      .Add(now.frames_out - exported_.frames_out);
  reg.GetCounter("upa_net_bytes_in_total")
      .Add(now.bytes_in - exported_.bytes_in);
  reg.GetCounter("upa_net_bytes_out_total")
      .Add(now.bytes_out - exported_.bytes_out);
  reg.GetCounter("upa_net_protocol_errors_total")
      .Add(now.protocol_errors - exported_.protocol_errors);
  reg.GetCounter("upa_net_slow_drops_total")
      .Add(now.slow_drops - exported_.slow_drops);
  reg.GetGauge("upa_net_sessions_active")
      .Set(static_cast<int64_t>(now.sessions_active));
  reg.GetGauge("upa_net_subscriptions")
      .Set(static_cast<int64_t>(now.subscriptions));
  exported_ = now;
}

ServerStats Server::Stats() const {
  ServerStats st;
  st.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  st.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  st.sessions_active = sessions_.size();
  for (const auto& [id, s] : sessions_) {
    st.slow_drops += s->slow_drops.load(std::memory_order_relaxed);
    st.frames_in += s->frames_in.load(std::memory_order_relaxed);
    st.frames_out += s->frames_out.load(std::memory_order_relaxed);
    st.bytes_in += s->bytes_in.load(std::memory_order_relaxed);
    st.bytes_out += s->bytes_out.load(std::memory_order_relaxed);
    st.subscriptions += s->engine_subs.size();
  }
  st.frames_in += closed_frames_in_.load(std::memory_order_relaxed);
  st.frames_out += closed_frames_out_.load(std::memory_order_relaxed);
  st.bytes_in += closed_bytes_in_.load(std::memory_order_relaxed);
  st.bytes_out += closed_bytes_out_.load(std::memory_order_relaxed);
  st.slow_drops += closed_slow_drops_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace net
}  // namespace upa
